//! TCN \[13\]: the CNN-family baseline of Tabs. 6–7. Joints are flattened
//! into channels and the model is a stack of strided temporal
//! convolutions — no graph structure at all, which is exactly why the
//! GCN/DHGCN family beats it.

use crate::common::{linear_eval, ModelDims};
use crate::tcn::TemporalConv;
use dhg_nn::{global_avg_pool, BatchNorm2d, Buffer, Linear, Module};
use dhg_tensor::{Tensor, Workspace};
use rand::Rng;

/// Interpretable temporal-convolution classifier over flattened joints.
pub struct TcnClassifier {
    input_bn: BatchNorm2d,
    layers: Vec<TemporalConv>,
    fc: Linear,
    dims: ModelDims,
    /// Cached input-BN eval affine; present iff compiled for serving.
    inference: Option<(Vec<f32>, Vec<f32>)>,
}

impl TcnClassifier {
    /// Build with the given per-layer channel widths (stride 2 on every
    /// layer after the first, mirroring the published architecture's
    /// progressive downsampling).
    pub fn new(dims: ModelDims, widths: &[usize], dropout: f32, rng: &mut impl Rng) -> Self {
        assert!(!widths.is_empty(), "need at least one layer");
        let flat = dims.in_channels * dims.n_joints;
        let input_bn = BatchNorm2d::new(flat);
        let mut layers = Vec::with_capacity(widths.len());
        let mut in_ch = flat;
        for (i, &w) in widths.iter().enumerate() {
            let stride = if i == 0 { 1 } else { 2 };
            layers.push(TemporalConv::new(in_ch, w, stride, 1, dropout, rng));
            in_ch = w;
        }
        let fc = Linear::new(in_ch, dims.n_classes, rng);
        TcnClassifier { input_bn, layers, fc, dims, inference: None }
    }

    /// The model geometry.
    pub fn dims(&self) -> ModelDims {
        self.dims
    }
}

impl Module for TcnClassifier {
    fn forward(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "input must be [N, C, T, V]");
        let (n, c, t, v) = (s[0], s[1], s[2], s[3]);
        assert_eq!(c, self.dims.in_channels);
        assert_eq!(v, self.dims.n_joints);
        // [N, C, T, V] → [N, C·V, T, 1]
        let flat = x.permute(&[0, 1, 3, 2]).reshape(&[n, c * v, t, 1]);
        let mut h = self.input_bn.forward(&flat);
        for layer in &self.layers {
            h = layer.forward(&h).relu();
        }
        self.fc.forward(&global_avg_pool(&h))
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.input_bn.parameters();
        for l in &self.layers {
            ps.extend(l.parameters());
        }
        ps.extend(self.fc.parameters());
        ps
    }

    fn set_training(&mut self, training: bool) {
        self.input_bn.set_training(training);
        for l in &mut self.layers {
            l.set_training(training);
        }
        if training {
            self.inference = None;
        }
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.input_bn.buffers();
        for l in &self.layers {
            bs.extend(l.buffers());
        }
        bs
    }

    fn prepare_inference(&mut self) {
        self.set_training(false);
        for l in &mut self.layers {
            l.prepare_inference();
        }
        self.inference = Some(self.input_bn.eval_affine());
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, Dim, Plan, SymShape};
        let mut p = Plan::new(input);
        if !p.expect_nctv(self.dims.in_channels, self.dims.n_joints) || p.has_errors() {
            return p;
        }
        let flat = self.dims.in_channels * self.dims.n_joints;
        let flattened = SymShape(vec![input.at(0), Dim::Known(flat), input.at(2), Dim::Known(1)]);
        p.push_op("permute_reshape", format!("[N, C, T, V] -> [N, {flat}, T, 1]"), flattened);
        p.extend("input_bn", self.input_bn.plan(&p.output().clone()));
        for (i, l) in self.layers.iter().enumerate() {
            p.extend(&format!("layers[{i}]"), l.plan(&p.output().clone()));
            if p.has_errors() {
                return p;
            }
            p.push_op("relu", "", p.output().clone());
        }
        let channels = p.output().at(1);
        p.push_op("global_avg_pool", "mean over (T, V)", SymShape(vec![input.at(0), channels]));
        p.extend("fc", self.fc.plan(&p.output().clone()));
        if !self.input_bn.training() && self.inference.is_none() {
            p.warn(
                DiagCode::NotPrepared,
                "eval-mode TcnClassifier without a compiled serving path; call prepare_inference()",
            );
        }
        p
    }

    fn forward_inference(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let Some((scale, shift)) = &self.inference else {
            let _guard = dhg_tensor::no_grad();
            return self.forward(x);
        };
        let _guard = dhg_tensor::no_grad();
        let s = x.shape();
        assert_eq!(s.len(), 4, "input must be [N, C, T, V]");
        let (n, c, t, v) = (s[0], s[1], s[2], s[3]);
        assert_eq!(c, self.dims.in_channels);
        assert_eq!(v, self.dims.n_joints);
        let xnd = x.data();
        let xs = xnd.data();
        // Flatten joints into channels and apply the input-BN affine in the
        // same pass: [N, C, T, V] → normalised [N, C·V, T, 1].
        let mut flat = ws.take(n * c * v * t);
        for ni in 0..n {
            for ci in 0..c {
                for vi in 0..v {
                    let k = ci * v + vi;
                    let (sc, sh) = (scale[k], shift[k]);
                    let src = (ni * c + ci) * t * v + vi;
                    let dst = ((ni * c + ci) * v + vi) * t;
                    for ti in 0..t {
                        flat[dst + ti] = sc * xs[src + ti * v] + sh;
                    }
                }
            }
        }
        let mut h = dhg_tensor::NdArray::from_vec(flat, &[n, c * v, t, 1]);
        for layer in &self.layers {
            let mut next = layer.forward_eval(&h, ws);
            next.relu_inplace();
            ws.recycle(h);
            h = next;
        }
        let pooled = h.mean_axes(&[2, 3], false); // [N, C]
        ws.recycle(h);
        Tensor::constant(linear_eval(&self.fc, &pooled, ws))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhg_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = TcnClassifier::new(
            ModelDims { in_channels: 3, n_joints: 25, n_classes: 6 },
            &[32, 32],
            0.0,
            &mut rng,
        );
        let x = Tensor::constant(NdArray::ones(&[2, 3, 16, 25]));
        assert_eq!(m.forward(&x).shape(), vec![2, 6]);
    }

    #[test]
    fn all_parameters_train() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = TcnClassifier::new(
            ModelDims { in_channels: 3, n_joints: 18, n_classes: 4 },
            &[16],
            0.0,
            &mut rng,
        );
        let x = Tensor::constant(NdArray::ones(&[1, 3, 8, 18]));
        m.forward(&x).cross_entropy(&[0]).backward();
        assert!(m.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn compiled_inference_matches_eval_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = TcnClassifier::new(
            ModelDims { in_channels: 3, n_joints: 25, n_classes: 6 },
            &[16, 16],
            0.0,
            &mut rng,
        );
        let x = Tensor::constant(NdArray::from_vec(
            (0..2 * 3 * 16 * 25).map(|i| (i as f32 * 0.017).sin()).collect(),
            &[2, 3, 16, 25],
        ));
        m.forward(&x); // warm BN stats
        m.set_training(false);
        let reference = {
            let _g = dhg_tensor::no_grad();
            m.forward(&x).array()
        };
        m.prepare_inference();
        let mut ws = Workspace::new();
        let before = dhg_tensor::graph_nodes_created();
        let got = m.forward_inference(&x, &mut ws).array();
        assert_eq!(dhg_tensor::graph_nodes_created(), before, "compiled path built graph nodes");
        assert!(reference.allclose(&got, 1e-4, 1e-5), "compiled logits diverged");
    }

    #[test]
    fn no_joint_mixing_before_fc() {
        // TCN treats joints as independent channels: permuting the joint
        // order at the input only permutes channels, so a model with
        // identical per-channel weights can't tell — here we just verify
        // the architectural claim that the spatial axis is size 1 inside.
        let mut rng = StdRng::seed_from_u64(0);
        let m = TcnClassifier::new(
            ModelDims { in_channels: 3, n_joints: 25, n_classes: 4 },
            &[8, 8],
            0.0,
            &mut rng,
        );
        let x = Tensor::constant(NdArray::ones(&[1, 3, 16, 25]));
        let flat = x.permute(&[0, 1, 3, 2]).reshape(&[1, 75, 16, 1]);
        let h = m.layers[0].forward(&m.input_bn.forward(&flat));
        assert_eq!(h.shape()[3], 1);
    }
}
