//! The temporal convolution unit shared by every block (§3.5: kernel
//! fixed at `3 × 1`, receptive field widened via dilation).

use dhg_nn::{BatchNorm2d, Buffer, Conv2d, Dropout, EvalConv, Module};
use dhg_tensor::{NdArray, Tensor, Workspace};
use rand::Rng;

/// `3×1` temporal convolution → BatchNorm → (optional) dropout. ReLU and
/// the residual connection are applied by the owning block.
pub struct TemporalConv {
    conv: Conv2d,
    bn: BatchNorm2d,
    dropout: Option<Dropout>,
    stride: usize,
    /// Conv+BN folded for serving; built by [`Module::prepare_inference`],
    /// dropped when training resumes.
    inference: Option<EvalConv>,
}

impl TemporalConv {
    /// A temporal unit with the paper's fixed kernel size 3.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        dilation: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let conv = Conv2d::temporal(in_channels, out_channels, 3, stride, dilation, rng);
        let bn = BatchNorm2d::new(out_channels);
        let dropout = if dropout > 0.0 { Some(Dropout::new(dropout, rng.gen())) } else { None };
        TemporalConv { conv, bn, dropout, stride, inference: None }
    }

    /// The temporal stride (2 halves the frame count).
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Grad-free eval forward on raw arrays through the folded Conv+BN
    /// kernel (dropout is the identity in eval mode). Requires
    /// [`Module::prepare_inference`] to have run.
    pub fn forward_eval(&self, x: &NdArray, ws: &mut Workspace) -> NdArray {
        self.inference
            .as_ref()
            .expect("TemporalConv::forward_eval requires prepare_inference()")
            .forward(x, ws)
    }
}

impl Module for TemporalConv {
    fn forward(&self, x: &Tensor) -> Tensor {
        let y = self.bn.forward(&self.conv.forward(x));
        match &self.dropout {
            Some(d) => d.forward(&y),
            None => y,
        }
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.conv.parameters();
        ps.extend(self.bn.parameters());
        ps
    }

    fn buffers(&self) -> Vec<Buffer> {
        self.bn.buffers()
    }

    fn set_training(&mut self, training: bool) {
        self.bn.set_training(training);
        if let Some(d) = &mut self.dropout {
            d.set_training(training);
        }
        if training {
            // folded weights are stale once the parameters move again
            self.inference = None;
        }
    }

    fn prepare_inference(&mut self) {
        self.set_training(false);
        self.inference = Some(EvalConv::from_conv_bn(&self.conv, &self.bn));
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, Plan};
        let mut p = Plan::new(input);
        p.extend("conv", self.conv.plan(input));
        if p.has_errors() {
            return p;
        }
        let after_conv = p.output().clone();
        p.extend("bn", self.bn.plan(&after_conv));
        if let Some(d) = &self.dropout {
            let after_bn = p.output().clone();
            p.extend("dropout", d.plan(&after_bn));
        }
        if !self.bn.training() && self.inference.is_none() {
            p.warn(
                DiagCode::NotPrepared,
                "eval-mode TemporalConv without a folded Conv+BN kernel; \
                 call prepare_inference() before serving",
            );
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhg_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn preserves_frames_at_stride_one() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = TemporalConv::new(4, 8, 1, 1, 0.0, &mut rng);
        let x = Tensor::constant(NdArray::ones(&[2, 4, 12, 25]));
        assert_eq!(t.forward(&x).shape(), vec![2, 8, 12, 25]);
    }

    #[test]
    fn stride_two_halves_frames() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = TemporalConv::new(4, 4, 2, 1, 0.0, &mut rng);
        let x = Tensor::constant(NdArray::ones(&[1, 4, 12, 25]));
        assert_eq!(t.forward(&x).shape(), vec![1, 4, 6, 25]);
        assert_eq!(t.stride(), 2);
    }

    #[test]
    fn dilation_preserves_frames() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = TemporalConv::new(4, 4, 1, 2, 0.0, &mut rng);
        let x = Tensor::constant(NdArray::ones(&[1, 4, 12, 25]));
        assert_eq!(t.forward(&x).shape(), vec![1, 4, 12, 25]);
    }

    #[test]
    fn folded_eval_matches_unfused_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = TemporalConv::new(3, 4, 1, 1, 0.0, &mut rng);
        // warm the BN stats, then compare the two eval paths
        for i in 0..3 {
            let x = Tensor::constant(NdArray::from_vec(
                (0..2 * 3 * 8 * 5).map(|j| ((i * 17 + j) as f32 * 0.11).sin()).collect(),
                &[2, 3, 8, 5],
            ));
            t.forward(&x);
        }
        t.prepare_inference();
        let x = NdArray::from_vec(
            (0..2 * 3 * 8 * 5).map(|j| (j as f32 * 0.07).cos()).collect(),
            &[2, 3, 8, 5],
        );
        let reference = {
            let _g = dhg_tensor::no_grad();
            t.forward(&Tensor::constant(x.clone())).array()
        };
        let mut ws = Workspace::new();
        let got = t.forward_eval(&x, &mut ws);
        assert!(reference.allclose(&got, 1e-5, 1e-6));
        // resuming training must drop the folded cache
        t.set_training(true);
        assert!(t.inference.is_none());
    }

    #[test]
    fn training_switch_reaches_children() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut t = TemporalConv::new(2, 2, 1, 1, 0.3, &mut rng);
        t.set_training(false);
        // eval forward must be deterministic (dropout off)
        let x = Tensor::constant(NdArray::ones(&[1, 2, 6, 5]));
        let a = t.forward(&x).array();
        let b = t.forward(&x).array();
        assert!(a.allclose(&b, 1e-6, 1e-7));
    }
}
