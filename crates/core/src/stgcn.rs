//! ST-GCN \[37\]: the first graph-convolutional skeleton model (§3.1) and
//! the reference GCN baseline of Tabs. 6–7.

use crate::common::{apply_vertex_op, apply_vertex_op_eval, linear_eval, ModelDims, StageSpec};
use crate::tcn::TemporalConv;
use dhg_nn::{global_avg_pool, BatchNorm2d, Buffer, Conv2d, EvalConv, Linear, Module};
use dhg_tensor::ops::Conv2dSpec;
use dhg_tensor::{NdArray, Tensor, Workspace};
use rand::Rng;

/// One spatial-temporal block: fixed-operator graph convolution (Eq. 1)
/// with a pointwise Θ, then a temporal convolution, with a residual
/// connection.
pub struct StGcnBlock {
    op: Tensor,
    /// ST-GCN's learnable edge-importance weighting, initialised to ones.
    importance: Tensor,
    theta: Conv2d,
    bn: BatchNorm2d,
    tcn: TemporalConv,
    /// Projection for the residual path when channels or stride change.
    residual_proj: Option<Conv2d>,
    inference: Option<StGcnBlockInference>,
}

/// Serving caches of an [`StGcnBlock`]: importance-weighted operator
/// precomputed, BN folded into Θ, residual baked; the temporal unit holds
/// its own folded Conv+BN.
struct StGcnBlockInference {
    op: NdArray,
    theta: EvalConv,
    residual: Option<EvalConv>,
}

impl StGcnBlock {
    /// Build a block around a fixed `[V, V]` operator.
    pub fn new(
        op: NdArray,
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let v = op.shape()[0];
        let importance = Tensor::param(NdArray::ones(&[v, v]));
        let theta = Conv2d::pointwise(in_channels, out_channels, rng);
        let bn = BatchNorm2d::new(out_channels);
        let tcn = TemporalConv::new(out_channels, out_channels, stride, 1, dropout, rng);
        let residual_proj = if in_channels != out_channels || stride != 1 {
            let spec = Conv2dSpec {
                kernel: (1, 1),
                stride: (stride, 1),
                padding: (0, 0),
                dilation: (1, 1),
            };
            Some(Conv2d::new(in_channels, out_channels, spec, rng))
        } else {
            None
        };
        StGcnBlock {
            op: Tensor::constant(op),
            importance,
            theta,
            bn,
            tcn,
            residual_proj,
            inference: None,
        }
    }

    /// Grad-free eval forward on raw arrays; requires
    /// [`Module::prepare_inference`].
    fn forward_eval(&self, x: &NdArray, ws: &mut Workspace) -> NdArray {
        let inf = self.inference.as_ref().expect("StGcnBlock eval requires prepare_inference()");
        let mixed = apply_vertex_op_eval(x, &inf.op, ws);
        // BN folded into Θ, ReLU fused into its output pass
        let spatial = inf.theta.forward_relu(&mixed, ws);
        ws.recycle(mixed);
        let mut out = self.tcn.forward_eval(&spatial, ws);
        ws.recycle(spatial);
        match &inf.residual {
            Some(proj) => {
                let r = proj.forward(x, ws);
                out.add_relu_inplace(&r);
                ws.recycle(r);
            }
            None => out.add_relu_inplace(x),
        }
        out
    }
}

impl Module for StGcnBlock {
    fn forward(&self, x: &Tensor) -> Tensor {
        let weighted_op = self.op.mul(&self.importance);
        let spatial = self.theta.forward(&apply_vertex_op(x, &weighted_op));
        let spatial = self.bn.forward(&spatial).relu();
        let temporal = self.tcn.forward(&spatial);
        let residual = match &self.residual_proj {
            Some(proj) => proj.forward(x),
            None => x.clone(),
        };
        temporal.add(&residual).relu()
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = vec![self.importance.clone()];
        ps.extend(self.theta.parameters());
        ps.extend(self.bn.parameters());
        ps.extend(self.tcn.parameters());
        if let Some(p) = &self.residual_proj {
            ps.extend(p.parameters());
        }
        ps
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.bn.buffers();
        bs.extend(self.tcn.buffers());
        bs
    }

    fn set_training(&mut self, training: bool) {
        self.bn.set_training(training);
        self.tcn.set_training(training);
        if training {
            self.inference = None;
        }
    }

    fn prepare_inference(&mut self) {
        self.set_training(false);
        self.tcn.prepare_inference();
        let (scale, shift) = self.bn.eval_affine();
        let op = self.op.data();
        let imp = self.importance.data();
        let weighted: Vec<f32> = op.data().iter().zip(imp.data()).map(|(&a, &b)| a * b).collect();
        self.inference = Some(StGcnBlockInference {
            op: NdArray::from_vec(weighted, op.shape()),
            theta: EvalConv::fold_affine(&self.theta, &scale, &shift),
            residual: self.residual_proj.as_ref().map(EvalConv::from_conv),
        });
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, OpCost, Plan};
        let mut p = Plan::new(input);
        if input.rank() != 4 {
            p.error(
                DiagCode::RankMismatch,
                format!("features must be [N, C, T, V], got rank {} {input}", input.rank()),
            );
            return p;
        }
        let op_v = self.op.shape()[0];
        if let Some(v) = input.known(3) {
            if v != op_v {
                p.error(
                    DiagCode::JointMismatch,
                    format!("operator must be [V, V]: operator has {op_v} joints, input has {v}"),
                );
                return p;
            }
        }
        // workspace events mirror forward_eval: mixed → spatial → ret,
        // each recycled as soon as its consumer has run; the caller owns
        // (and eventually gives) `ret`
        let vcost = OpCost::vertex_op(
            input.known(1).unwrap_or(1) as u64,
            input.known(2).unwrap_or(1) as u64,
            op_v as u64,
        );
        p.ws_take("mixed", input);
        p.push_op_costed(
            "vertex_op",
            format!("importance-weighted [{op_v}, {op_v}] operator"),
            input.clone(),
            vcost,
        );
        p.extend("theta", self.theta.plan(&p.output().clone()));
        if p.has_errors() {
            return p;
        }
        p.ws_take("spatial", &p.output().clone());
        p.ws_give("mixed");
        p.extend("bn", self.bn.plan(&p.output().clone()));
        p.push_op("relu", "", p.output().clone());
        p.extend("tcn", self.tcn.plan(&p.output().clone()));
        if p.has_errors() {
            return p;
        }
        let main_out = p.output().clone();
        p.ws_take("ret", &main_out);
        p.ws_give("spatial");
        let residual_out = match &self.residual_proj {
            Some(proj) => proj.plan(input).output().clone(),
            None => input.clone(),
        };
        if residual_out != main_out {
            p.error(
                DiagCode::ShapeMismatch,
                format!("residual path produces {residual_out} but main path produces {main_out}"),
            );
        }
        if self.residual_proj.is_some() {
            p.ws_take("res", &main_out);
            p.ws_give("res");
        }
        p.push_op("residual_add_relu", "", main_out);
        if !self.bn.training() && self.inference.is_none() {
            p.warn(
                DiagCode::NotPrepared,
                "eval-mode StGcnBlock without serving caches; call prepare_inference()",
            );
        }
        p
    }
}

/// The full ST-GCN classifier: input BatchNorm, a stack of blocks over the
/// normalised skeleton adjacency, global average pooling and a linear
/// classifier.
pub struct StGcn {
    input_bn: crate::common::DataBn,
    blocks: Vec<StGcnBlock>,
    fc: Linear,
    dims: ModelDims,
    /// Cached input-BN eval affine; present iff compiled for serving.
    inference: Option<(Vec<f32>, Vec<f32>)>,
}

impl StGcn {
    /// Build ST-GCN over a fixed `[V, V]` operator (normally
    /// `graph.normalized_adjacency()`).
    pub fn new(
        dims: ModelDims,
        operator: NdArray,
        stages: &[StageSpec],
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!stages.is_empty(), "need at least one stage");
        assert_eq!(operator.shape(), &[dims.n_joints, dims.n_joints], "operator/joint mismatch");
        let input_bn = crate::common::DataBn::new(dims.in_channels, dims.n_joints);
        let mut blocks = Vec::with_capacity(stages.len());
        let mut in_ch = dims.in_channels;
        for stage in stages {
            blocks.push(StGcnBlock::new(
                operator.clone(),
                in_ch,
                stage.channels,
                stage.stride,
                dropout,
                rng,
            ));
            in_ch = stage.channels;
        }
        let fc = Linear::new(in_ch, dims.n_classes, rng);
        StGcn { input_bn, blocks, fc, dims, inference: None }
    }

    /// Number of blocks in the backbone.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The model geometry.
    pub fn dims(&self) -> ModelDims {
        self.dims
    }
}

impl Module for StGcn {
    fn forward(&self, x: &Tensor) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "input must be [N, C, T, V]");
        assert_eq!(shape[1], self.dims.in_channels, "channel mismatch");
        assert_eq!(shape[3], self.dims.n_joints, "joint mismatch");
        let mut h = self.input_bn.forward(x);
        for block in &self.blocks {
            h = block.forward(&h);
        }
        self.fc.forward(&global_avg_pool(&h))
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.input_bn.parameters();
        for b in &self.blocks {
            ps.extend(b.parameters());
        }
        ps.extend(self.fc.parameters());
        ps
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.input_bn.buffers();
        for b in &self.blocks {
            bs.extend(b.buffers());
        }
        bs
    }

    fn set_training(&mut self, training: bool) {
        self.input_bn.set_training(training);
        for b in &mut self.blocks {
            b.set_training(training);
        }
        if training {
            self.inference = None;
        }
    }

    fn prepare_inference(&mut self) {
        self.set_training(false);
        for b in &mut self.blocks {
            b.prepare_inference();
        }
        self.inference = Some(self.input_bn.eval_affine());
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, Plan, SymShape};
        let mut p = Plan::new(input);
        if !p.expect_nctv(self.dims.in_channels, self.dims.n_joints) || p.has_errors() {
            return p;
        }
        // mirror forward_inference: each block's input buffer is recycled
        // as soon as the block has produced its successor
        p.ws_take("h0", input);
        p.extend("input_bn", self.input_bn.plan(input));
        for (i, b) in self.blocks.iter().enumerate() {
            p.extend(&format!("blocks[{i}]"), b.plan(&p.output().clone()));
            if p.has_errors() {
                return p;
            }
            p.ws_give(&if i == 0 { "h0".to_string() } else { format!("blocks[{}].ret", i - 1) });
        }
        if !self.blocks.is_empty() {
            p.ws_give(&format!("blocks[{}].ret", self.blocks.len() - 1));
        }
        let channels = p.output().at(1);
        p.push_op("global_avg_pool", "mean over (T, V)", SymShape(vec![input.at(0), channels]));
        p.extend("fc", self.fc.plan(&p.output().clone()));
        p.ws_take("logits", &p.output().clone());
        if !self.input_bn.training() && self.inference.is_none() {
            p.warn(
                DiagCode::NotPrepared,
                "eval-mode StGcn without a compiled serving path; call prepare_inference()",
            );
        }
        p
    }

    fn forward_inference(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let Some((bn_scale, bn_shift)) = &self.inference else {
            let _guard = dhg_tensor::no_grad();
            return self.forward(x);
        };
        let _guard = dhg_tensor::no_grad();
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "input must be [N, C, T, V]");
        assert_eq!(shape[1], self.dims.in_channels, "channel mismatch");
        assert_eq!(shape[3], self.dims.n_joints, "joint mismatch");
        let xnd = x.data();
        let mut h = self.input_bn.forward_affine(&xnd, bn_scale, bn_shift, ws);
        for block in &self.blocks {
            let next = block.forward_eval(&h, ws);
            ws.recycle(h);
            h = next;
        }
        let pooled = h.mean_axes(&[2, 3], false); // [N, C]
        ws.recycle(h);
        Tensor::constant(linear_eval(&self.fc, &pooled, ws))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::small_stages;
    use dhg_skeleton::SkeletonTopology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> StGcn {
        let mut rng = StdRng::seed_from_u64(0);
        let topo = SkeletonTopology::ntu25();
        StGcn::new(
            ModelDims { in_channels: 3, n_joints: 25, n_classes: 7 },
            topo.graph().normalized_adjacency(),
            &small_stages(),
            0.0,
            &mut rng,
        )
    }

    #[test]
    fn forward_produces_logits() {
        let m = model();
        let x = Tensor::constant(NdArray::ones(&[2, 3, 16, 25]));
        let y = m.forward(&x);
        assert_eq!(y.shape(), vec![2, 7]);
        assert!(y.array().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn has_trainable_parameters_everywhere() {
        let m = model();
        assert!(m.n_parameters() > 1000);
        let x = Tensor::constant(NdArray::ones(&[1, 3, 16, 25]));
        m.forward(&x).cross_entropy(&[3]).backward();
        let with_grad = m.parameters().iter().filter(|p| p.grad().is_some()).count();
        assert_eq!(with_grad, m.parameters().len(), "every parameter should get a gradient");
    }

    #[test]
    fn stride_stages_shrink_time() {
        let m = model(); // last stage has stride 2
        let x = Tensor::constant(NdArray::ones(&[1, 3, 16, 25]));
        // internal check via the blocks directly
        let h = m.input_bn.forward(&x);
        let h = m.blocks[0].forward(&h);
        assert_eq!(h.shape(), vec![1, 16, 16, 25]);
        let h = m.blocks[1].forward(&h);
        let h = m.blocks[2].forward(&h);
        assert_eq!(h.shape(), vec![1, 32, 8, 25]);
    }

    #[test]
    fn compiled_inference_matches_eval_within_tolerance() {
        let mut m = model();
        let x = Tensor::constant(NdArray::from_vec(
            (0..2 * 3 * 16 * 25).map(|i| (i as f32 * 0.023).sin()).collect(),
            &[2, 3, 16, 25],
        ));
        m.forward(&x); // warm BN stats
        m.set_training(false);
        let reference = {
            let _g = dhg_tensor::no_grad();
            m.forward(&x).array()
        };
        m.prepare_inference();
        let mut ws = Workspace::new();
        let got = m.forward_inference(&x, &mut ws).array();
        assert!(reference.allclose(&got, 1e-4, 1e-5), "compiled logits diverged");
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let mut m = model();
        m.set_training(false);
        let x = Tensor::constant(NdArray::ones(&[1, 3, 16, 25]));
        let a = m.forward(&x).array();
        let b = m.forward(&x).array();
        assert!(a.allclose(&b, 1e-6, 1e-7));
    }
}
