//! LSTM baseline (ST-LSTM-like \[21\]): joints flattened per frame, a
//! recurrent encoder, and a linear classifier. Represents the RNN family
//! rows of Tabs. 7–8.

use crate::common::ModelDims;
use dhg_nn::{Linear, Lstm, Module};
use dhg_tensor::Tensor;
use rand::Rng;

/// Recurrent skeleton classifier.
pub struct LstmClassifier {
    lstm: Lstm,
    fc: Linear,
    dims: ModelDims,
}

impl LstmClassifier {
    /// Build with the given hidden width.
    pub fn new(dims: ModelDims, hidden: usize, rng: &mut impl Rng) -> Self {
        let input = dims.in_channels * dims.n_joints;
        LstmClassifier {
            lstm: Lstm::new(input, hidden, rng),
            fc: Linear::new(hidden, dims.n_classes, rng),
            dims,
        }
    }

    /// The model geometry.
    pub fn dims(&self) -> ModelDims {
        self.dims
    }
}

impl Module for LstmClassifier {
    fn forward(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "input must be [N, C, T, V]");
        let (n, c, t, v) = (s[0], s[1], s[2], s[3]);
        assert_eq!(c, self.dims.in_channels);
        assert_eq!(v, self.dims.n_joints);
        // [N, C, T, V] → [N, T, C·V]
        let seq = x.permute(&[0, 2, 1, 3]).reshape(&[n, t, c * v]);
        self.fc.forward(&self.lstm.forward(&seq))
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.lstm.parameters();
        ps.extend(self.fc.parameters());
        ps
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{Dim, Plan, SymShape};
        let mut p = Plan::new(input);
        if !p.expect_nctv(self.dims.in_channels, self.dims.n_joints) || p.has_errors() {
            return p;
        }
        let width = self.dims.in_channels * self.dims.n_joints;
        let seq = SymShape(vec![input.at(0), input.at(2), Dim::Known(width)]);
        p.push_op("permute_reshape", format!("[N, C, T, V] -> [N, T, {width}]"), seq);
        p.extend("lstm", self.lstm.plan(&p.output().clone()));
        if p.has_errors() {
            return p;
        }
        p.extend("fc", self.fc.plan(&p.output().clone()));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhg_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = LstmClassifier::new(
            ModelDims { in_channels: 3, n_joints: 25, n_classes: 5 },
            24,
            &mut rng,
        );
        let x = Tensor::constant(NdArray::ones(&[2, 3, 6, 25]));
        let y = m.forward(&x);
        assert_eq!(y.shape(), vec![2, 5]);
        y.cross_entropy(&[0, 4]).backward();
        assert!(m.parameters().iter().all(|p| p.grad().is_some()));
    }
}
