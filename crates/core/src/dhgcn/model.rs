//! The full DHGCN classifier (§3.5, Fig. 5).

use super::block::DhstBlock;
use crate::common::{paper_stages, small_stages, ModelDims, StageSpec};
use dhg_hypergraph::{dynamic_operators, Hypergraph};
use dhg_nn::{global_avg_pool, Buffer, Linear, Module};
use dhg_skeleton::{static_hypergraph, SkeletonTopology};
use dhg_tensor::{NdArray, Tensor, Workspace};
use rand::Rng;

/// Which spatial branches are active — the Tab. 4 ablation axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchConfig {
    /// Branch 1: static hypergraph (Eq. 5).
    pub static_hypergraph: bool,
    /// Branch 2: dynamic joint weight (Eq. 6–9).
    pub dynamic_joint_weight: bool,
    /// Branch 3: dynamic topology (§3.4).
    pub dynamic_topology: bool,
}

impl BranchConfig {
    /// All three branches — the full DHGCN.
    pub fn full() -> Self {
        BranchConfig { static_hypergraph: true, dynamic_joint_weight: true, dynamic_topology: true }
    }

    /// Tab. 4 "no/static".
    pub fn no_static() -> Self {
        BranchConfig { static_hypergraph: false, ..Self::full() }
    }

    /// Tab. 4 "no/joint" (dynamic joint weight removed).
    pub fn no_joint_weight() -> Self {
        BranchConfig { dynamic_joint_weight: false, ..Self::full() }
    }

    /// Tab. 4 "no/topology".
    pub fn no_topology() -> Self {
        BranchConfig { dynamic_topology: false, ..Self::full() }
    }

    /// Tab. 4 "no/dynamic": both dynamic branches removed, static only.
    pub fn no_dynamic() -> Self {
        BranchConfig {
            static_hypergraph: true,
            dynamic_joint_weight: false,
            dynamic_topology: false,
        }
    }

    /// Number of active branches.
    pub fn n_active(&self) -> usize {
        usize::from(self.static_hypergraph)
            + usize::from(self.dynamic_joint_weight)
            + usize::from(self.dynamic_topology)
    }

    /// The row label used by the Tab. 4 harness.
    pub fn label(&self) -> &'static str {
        match (self.static_hypergraph, self.dynamic_joint_weight, self.dynamic_topology) {
            (true, true, true) => "DHGCN",
            (false, true, true) => "DHGCN(no/static)",
            (true, false, true) => "DHGCN(no/joint)",
            (true, true, false) => "DHGCN(no/topology)",
            (true, false, false) => "DHGCN(no/dynamic)",
            _ => "DHGCN(custom)",
        }
    }
}

/// Dynamic-topology rebuild granularity — now owned by the hypergraph
/// crate's incremental-construction subsystem and re-exported here for the
/// historical path (`dhg_core::TopologyGranularity`).
pub use dhg_hypergraph::TopologyGranularity;

/// Hyper-parameters of [`Dhgcn`].
#[derive(Clone, Debug, PartialEq)]
pub struct DhgcnConfig {
    /// Input/output geometry.
    pub dims: ModelDims,
    /// Backbone stages (channels + temporal stride per block).
    pub stages: Vec<StageSpec>,
    /// `k_n`: joints per k-NN hyperedge (Tab. 3; best 3).
    pub kn: usize,
    /// `k_m`: number of k-means hyperedges (Tab. 3; best 4).
    pub km: usize,
    /// Active spatial branches (Tab. 4).
    pub branches: BranchConfig,
    /// Dynamic-topology rebuild granularity.
    pub granularity: TopologyGranularity,
    /// Width of the Eq. 10 FC embedding; 0 means "match the block's
    /// output width" (full feature bandwidth through the branch).
    pub embed_channels: usize,
    /// Dropout inside temporal units.
    pub dropout: f32,
    /// Per-block temporal dilation rates, cycled if shorter than the
    /// backbone ("a larger receptive field can be obtained by using
    /// different dilation rates", §3.5).
    pub dilations: Vec<usize>,
}

impl DhgcnConfig {
    /// The paper's configuration: 10 DHST blocks (Fig. 5), `k_n = 3`,
    /// `k_m = 4` (Tab. 3), per-frame dynamic topology.
    pub fn paper(dims: ModelDims) -> Self {
        DhgcnConfig {
            dims,
            stages: paper_stages(),
            kn: 3,
            km: 4,
            branches: BranchConfig::full(),
            granularity: TopologyGranularity::PerFrame,
            embed_channels: 0,
            dropout: 0.5,
            dilations: vec![1, 1, 2],
        }
    }

    /// The CPU-scale experiment configuration (see DESIGN.md): identical
    /// architecture, 3 blocks, narrow channels, per-sample topology.
    pub fn small(dims: ModelDims) -> Self {
        DhgcnConfig {
            dims,
            stages: small_stages(),
            kn: 3,
            km: 4,
            branches: BranchConfig::full(),
            granularity: TopologyGranularity::PerSample,
            embed_channels: 0,
            dropout: 0.05,
            dilations: vec![1, 2],
        }
    }
}

/// The Dynamic Hypergraph Convolutional Network.
///
/// The input is the raw coordinate batch `[N, 3, T, V]`; the model itself
/// derives the per-frame joint-weight operators (Eq. 6–9) from it before
/// feature extraction begins, then runs the DHST backbone, global average
/// pooling and the classifier head.
pub struct Dhgcn {
    config: DhgcnConfig,
    static_hg: Hypergraph,
    input_bn: crate::common::DataBn,
    blocks: Vec<DhstBlock>,
    fc: Linear,
    /// Cached input-BN eval affine; present iff the model is compiled for
    /// serving (every block then holds its own folded caches).
    inference: Option<(Vec<f32>, Vec<f32>)>,
}

impl Dhgcn {
    /// Build over an explicit static hypergraph.
    pub fn new(config: DhgcnConfig, static_hg: Hypergraph, rng: &mut impl Rng) -> Self {
        assert_eq!(
            static_hg.n_vertices(),
            config.dims.n_joints,
            "static hypergraph does not match the joint count"
        );
        assert!(!config.stages.is_empty(), "need at least one stage");
        assert!(config.kn <= config.dims.n_joints, "k_n exceeds joint count");
        assert!(config.km <= config.dims.n_joints, "k_m exceeds joint count");
        let static_op = static_hg.operator();
        let input_bn = crate::common::DataBn::new(config.dims.in_channels, config.dims.n_joints);
        let mut blocks = Vec::with_capacity(config.stages.len());
        let mut in_ch = config.dims.in_channels;
        for (i, stage) in config.stages.iter().enumerate() {
            let dilation = config.dilations[i % config.dilations.len()];
            let embed = if config.embed_channels == 0 { stage.channels } else { config.embed_channels };
            blocks.push(DhstBlock::new(
                &static_op,
                in_ch,
                stage.channels,
                stage.stride,
                dilation,
                config.branches,
                config.kn,
                config.km,
                embed,
                config.granularity,
                config.dropout,
                rng,
            ));
            in_ch = stage.channels;
        }
        let fc = Linear::new(in_ch, config.dims.n_classes, rng);
        Dhgcn { config, static_hg, input_bn, blocks, fc, inference: None }
    }

    /// Build over a skeleton topology's standard static hypergraph
    /// (Fig. 3).
    pub fn for_topology(config: DhgcnConfig, topology: &SkeletonTopology, rng: &mut impl Rng) -> Self {
        let hg = static_hypergraph(topology);
        Self::new(config, hg, rng)
    }

    /// The static hypergraph the joint-weight operators are built over —
    /// streaming sessions use it to maintain the Eq. 9 operators
    /// incrementally outside the model.
    pub fn static_hypergraph(&self) -> &Hypergraph {
        &self.static_hg
    }

    /// The model configuration.
    pub fn config(&self) -> &DhgcnConfig {
        &self.config
    }

    /// Number of DHST blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Compute the Eq. 9 operators `[N, T, V, V]` from a raw coordinate
    /// batch `[N, 3, T, V]`.
    pub fn dynamic_joint_weight_ops(&self, x: &NdArray) -> NdArray {
        let s = x.shape();
        let (n, t, v) = (s[0], s[2], s[3]);
        let positions = x.permute(&[0, 2, 3, 1]); // [N, T, V, 3]
        let mut per_sample = Vec::with_capacity(n);
        for ni in 0..n {
            let sample = positions.slice_axis(0, ni, 1).reshape(&[t, v, 3]);
            per_sample.push(dynamic_operators(&self.static_hg, &sample).reshape(&[1, t, v, v]));
        }
        let refs: Vec<&NdArray> = per_sample.iter().collect();
        NdArray::concat(&refs, 0)
    }

    /// The training/eval forward with an optional override for the Eq. 9
    /// joint-weight operators. `ops_override` must be `[N, T, V, V]` at the
    /// input temporal resolution; streaming sessions pass rolling operators
    /// maintained outside the model, offline callers pass `None` and the
    /// model derives them from the raw coordinates.
    fn forward_with_ops(&self, x: &Tensor, ops_override: Option<&NdArray>) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "input must be [N, C, T, V]");
        assert_eq!(shape[1], self.config.dims.in_channels, "channel mismatch");
        assert_eq!(shape[3], self.config.dims.n_joints, "joint mismatch");
        // Dynamic joint-weight operators come from the *raw coordinates*
        // (moving distance, Eq. 6) — computed once, shared by all blocks
        // at the same temporal resolution (no per-block copies), and
        // subsampled whenever a block strides over time.
        let needs_ops = self.blocks.iter().any(|b| b.needs_dynamic_ops());
        let mut ops: Option<Tensor> = if needs_ops {
            Some(match ops_override {
                Some(o) => Tensor::constant(o.clone()),
                None => Tensor::constant(self.dynamic_joint_weight_ops(&x.data())),
            })
        } else {
            None
        };

        let mut h = self.input_bn.forward(x);
        for block in &self.blocks {
            let ops_tensor =
                block.needs_dynamic_ops().then(|| ops.as_ref().expect("ops precomputed"));
            h = block.forward(&h, ops_tensor);
            if block.stride() > 1 {
                if let Some(o) = &ops {
                    let t_out = h.shape()[2];
                    let sub = Self::subsample_ops(&o.data(), t_out, block.stride());
                    ops = Some(Tensor::constant(sub));
                }
            }
        }
        self.fc.forward(&global_avg_pool(&h))
    }

    /// Grad-free serving forward with an optional override for the Eq. 9
    /// joint-weight operators (`ops_override`, shape `[N, T, V, V]`,
    /// one normalized operator per frame). [`Module::forward_inference`]
    /// delegates here with `None`; streaming sessions inject rolling
    /// operators instead.
    pub fn forward_serving(
        &self,
        x: &Tensor,
        ops_override: Option<&NdArray>,
        ws: &mut Workspace,
    ) -> Tensor {
        let _guard = dhg_tensor::no_grad();
        let Some((bn_scale, bn_shift)) = &self.inference else {
            // not compiled: grad-free but otherwise identical to forward
            return self.forward_with_ops(x, ops_override);
        };
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "input must be [N, C, T, V]");
        assert_eq!(shape[1], self.config.dims.in_channels, "channel mismatch");
        assert_eq!(shape[3], self.config.dims.n_joints, "joint mismatch");
        let xnd = x.data();
        let needs_ops = self.blocks.iter().any(|b| b.needs_dynamic_ops());
        let mut ops: Option<NdArray> = if needs_ops {
            Some(match ops_override {
                Some(o) => o.clone(),
                None => self.dynamic_joint_weight_ops(&xnd),
            })
        } else {
            None
        };
        let mut h = self.input_bn.forward_affine(&xnd, bn_scale, bn_shift, ws);
        for block in &self.blocks {
            let block_ops = block
                .needs_dynamic_ops()
                .then(|| ops.as_ref().expect("ops precomputed"));
            let next = block.forward_eval(&h, block_ops, ws);
            ws.recycle(h);
            h = next;
            if block.stride() > 1 {
                if let Some(o) = &ops {
                    let t_out = h.shape()[2];
                    ops = Some(Self::subsample_ops(o, t_out, block.stride()));
                }
            }
        }
        let pooled = h.mean_axes(&[2, 3], false); // [N, C]
        ws.recycle(h);
        Tensor::constant(crate::common::linear_eval(&self.fc, &pooled, ws))
    }

    /// Subsample per-frame operators to a coarser temporal resolution
    /// (after a strided block, frame `t` corresponds to input frame
    /// `t · stride`).
    fn subsample_ops(ops: &NdArray, t_out: usize, stride: usize) -> NdArray {
        let mut frames = Vec::with_capacity(t_out);
        for t in 0..t_out {
            let src = (t * stride).min(ops.shape()[1] - 1);
            frames.push(ops.slice_axis(1, src, 1));
        }
        let refs: Vec<&NdArray> = frames.iter().collect();
        NdArray::concat(&refs, 1)
    }
}

impl Module for Dhgcn {
    fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_with_ops(x, None)
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.input_bn.parameters();
        for b in &self.blocks {
            ps.extend(b.parameters());
        }
        ps.extend(self.fc.parameters());
        ps
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.input_bn.buffers();
        for b in &self.blocks {
            bs.extend(b.buffers());
        }
        bs
    }

    fn set_training(&mut self, training: bool) {
        self.input_bn.set_training(training);
        for b in &mut self.blocks {
            b.set_training(training);
        }
        if training {
            self.inference = None;
        }
    }

    fn prepare_inference(&mut self) {
        self.set_training(false);
        for b in &mut self.blocks {
            b.prepare_inference();
        }
        self.inference = Some(self.input_bn.eval_affine());
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, Plan, Severity, SymShape};
        let mut p = Plan::new(input);
        if !p.expect_nctv(self.config.dims.in_channels, self.config.dims.n_joints)
            || p.has_errors()
        {
            return p;
        }
        // the static hypergraph the model convolves with must satisfy the
        // incidence invariants, or every block's operator is garbage
        for issue in dhg_hypergraph::validate_hypergraph(&self.static_hg) {
            let code = match issue {
                dhg_hypergraph::IncidenceIssue::EmptyEdge { .. } => DiagCode::IncidenceEmptyEdge,
                dhg_hypergraph::IncidenceIssue::UncoveredVertex { .. } => {
                    DiagCode::IncidenceUncoveredVertex
                }
                dhg_hypergraph::IncidenceIssue::NotBinary { .. } => DiagCode::IncidenceNotBinary,
                dhg_hypergraph::IncidenceIssue::ImpNotNormalized { .. }
                | dhg_hypergraph::IncidenceIssue::ImpOutsideSupport { .. } => {
                    DiagCode::ImpNotNormalized
                }
                dhg_hypergraph::IncidenceIssue::SingularVertexDegree { .. }
                | dhg_hypergraph::IncidenceIssue::SingularEdgeDegree { .. } => {
                    DiagCode::DegreeSingular
                }
            };
            p.diag(code, Severity::Error, format!("static hypergraph: {issue}"));
        }
        if p.has_errors() {
            return p;
        }
        // mirror forward_serving: each block's input buffer is recycled
        // as soon as the block has produced its successor
        p.ws_take("h0", input);
        p.extend("input_bn", self.input_bn.plan(input));
        for (i, b) in self.blocks.iter().enumerate() {
            p.extend(&format!("blocks[{i}]"), b.plan(&p.output().clone()));
            if p.has_errors() {
                return p;
            }
            p.ws_give(&if i == 0 { "h0".to_string() } else { format!("blocks[{}].ret", i - 1) });
        }
        if !self.blocks.is_empty() {
            p.ws_give(&format!("blocks[{}].ret", self.blocks.len() - 1));
        }
        let channels = p.output().at(1);
        p.push_op("global_avg_pool", "mean over (T, V)", SymShape(vec![input.at(0), channels]));
        p.extend("fc", self.fc.plan(&p.output().clone()));
        p.ws_take("logits", &p.output().clone());
        if !self.input_bn.training() && self.inference.is_none() {
            p.warn(
                DiagCode::NotPrepared,
                "eval-mode Dhgcn without a compiled serving path; call prepare_inference()",
            );
        }
        p
    }

    fn forward_inference(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        self.forward_serving(x, None, ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dims() -> ModelDims {
        ModelDims { in_channels: 3, n_joints: 25, n_classes: 6 }
    }

    fn small_model(branches: BranchConfig) -> Dhgcn {
        let mut rng = StdRng::seed_from_u64(0);
        let mut config = DhgcnConfig::small(dims());
        config.branches = branches;
        Dhgcn::for_topology(config, &SkeletonTopology::ntu25(), &mut rng)
    }

    fn input(n: usize, t: usize) -> Tensor {
        let data: Vec<f32> = (0..n * 3 * t * 25).map(|i| (i as f32 * 0.017).sin()).collect();
        Tensor::constant(NdArray::from_vec(data, &[n, 3, t, 25]))
    }

    #[test]
    fn full_model_forward_backward() {
        let m = small_model(BranchConfig::full());
        let x = input(2, 8);
        let y = m.forward(&x);
        assert_eq!(y.shape(), vec![2, 6]);
        y.cross_entropy(&[1, 4]).backward();
        let missing = m.parameters().iter().filter(|p| p.grad().is_none()).count();
        assert_eq!(missing, 0, "all parameters must receive gradients");
    }

    #[test]
    fn every_ablation_variant_runs() {
        for branches in [
            BranchConfig::no_static(),
            BranchConfig::no_joint_weight(),
            BranchConfig::no_topology(),
            BranchConfig::no_dynamic(),
        ] {
            let m = small_model(branches);
            let y = m.forward(&input(1, 8));
            assert_eq!(y.shape(), vec![1, 6], "{}", branches.label());
        }
    }

    #[test]
    fn paper_config_builds_ten_blocks() {
        let c = DhgcnConfig::paper(dims());
        assert_eq!(c.stages.len(), 10, "Fig. 5: ten DHST blocks");
        assert_eq!((c.kn, c.km), (3, 4), "Tab. 3 best setting");
        // building the full paper model is heavy; verify cheaply that
        // construction succeeds with one paper-width stage
        let mut rng = StdRng::seed_from_u64(0);
        let mut small = c.clone();
        small.stages = vec![small.stages[0]];
        small.granularity = TopologyGranularity::PerSample;
        let m = Dhgcn::for_topology(small, &SkeletonTopology::ntu25(), &mut rng);
        assert_eq!(m.n_blocks(), 1);
    }

    #[test]
    fn dynamic_ops_shape_and_rows() {
        let m = small_model(BranchConfig::full());
        let x = input(2, 8).array();
        let ops = m.dynamic_joint_weight_ops(&x);
        assert_eq!(ops.shape(), &[2, 8, 25, 25]);
        assert!(ops.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn subsample_ops_picks_strided_frames() {
        let ops = NdArray::from_vec((0..2 * 4).map(|i| i as f32).collect(), &[2, 4, 1, 1]);
        let sub = Dhgcn::subsample_ops(&ops, 2, 2);
        assert_eq!(sub.shape(), &[2, 2, 1, 1]);
        assert_eq!(sub.data(), &[0.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn compiled_inference_matches_eval_and_builds_no_graph() {
        let mut m = small_model(BranchConfig::full());
        let x = input(2, 8);
        // warm BN statistics, then switch to eval
        m.forward(&x);
        m.set_training(false);
        let reference = {
            let _g = dhg_tensor::no_grad();
            m.forward(&x).array()
        };
        m.prepare_inference();
        let mut ws = dhg_tensor::Workspace::new();
        let before = dhg_tensor::graph_nodes_created();
        let got = m.forward_inference(&x, &mut ws).array();
        assert_eq!(
            dhg_tensor::graph_nodes_created(),
            before,
            "compiled inference must not allocate autograd nodes"
        );
        assert_eq!(got.shape(), reference.shape());
        assert!(reference.allclose(&got, 1e-4, 1e-5), "compiled logits diverged");
        // uncompiled default: grad-free but bitwise identical to forward
        // (set_training(true) drops the compiled caches)
        m.set_training(true);
        m.set_training(false);
        let unprepared = m.forward_inference(&x, &mut ws).array();
        assert_eq!(unprepared, reference);
    }

    #[test]
    fn model_buffers_cover_every_batchnorm() {
        let m = small_model(BranchConfig::full());
        // DataBn (2) + per block BN (2) + TCN BN (2)
        assert_eq!(m.buffers().len(), 2 + m.n_blocks() * 4);
    }

    #[test]
    fn branch_labels_match_table4_rows() {
        assert_eq!(BranchConfig::full().label(), "DHGCN");
        assert_eq!(BranchConfig::no_static().label(), "DHGCN(no/static)");
        assert_eq!(BranchConfig::no_joint_weight().label(), "DHGCN(no/joint)");
        assert_eq!(BranchConfig::no_topology().label(), "DHGCN(no/topology)");
        assert_eq!(BranchConfig::no_dynamic().label(), "DHGCN(no/dynamic)");
        assert_eq!(BranchConfig::no_dynamic().n_active(), 1);
    }

    #[test]
    fn strided_model_keeps_ops_aligned() {
        // small_stages has a stride-2 third block; with the joint-weight
        // branch active the ops must track the halved frame count
        let m = small_model(BranchConfig::full());
        let y = m.forward(&input(1, 16));
        assert_eq!(y.shape(), vec![1, 6]);
    }
}
