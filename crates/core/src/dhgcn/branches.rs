//! The three spatial branches of a DHST block.

use crate::common::{
    apply_dynamic_vertex_op, apply_dynamic_vertex_op_eval, apply_per_sample_vertex_op,
    apply_per_sample_vertex_op_eval, apply_vertex_op, apply_vertex_op_eval,
};
use dhg_hypergraph::{stacked_operators, stacked_operators_with, TopologyConfig};
use dhg_nn::{Conv2d, EvalConv, Module};
use dhg_tensor::{NdArray, Tensor, Workspace};
use rand::Rng;

use super::model::TopologyGranularity;

/// Branch 1 — static hypergraph convolution (Eq. 5): a fixed `[V, V]`
/// operator, modulated by ST-GCN's learnable edge-importance mask `M`
/// (applied elementwise, initialised to ones), followed by a pointwise Θ.
/// Deliberately *not* adaptive beyond `M`: the paper's dynamic branches
/// own all sample-dependent and learned topology (§3.3–3.4), which is
/// what the Tab. 4 ablation isolates.
pub struct StaticBranch {
    op: Tensor,
    importance: Tensor,
    theta: Conv2d,
}

impl StaticBranch {
    /// Build from a precomputed static operator.
    pub fn new(op: NdArray, in_channels: usize, out_channels: usize, rng: &mut impl Rng) -> Self {
        let v = op.shape()[0];
        StaticBranch {
            op: Tensor::constant(op),
            importance: Tensor::param(NdArray::ones(&[v, v])),
            theta: Conv2d::pointwise(in_channels, out_channels, rng),
        }
    }

    /// Forward `[N, C, T, V] → [N, C_out, T, V]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let weighted = self.op.mul(&self.importance);
        self.theta.forward(&apply_vertex_op(x, &weighted))
    }

    /// Trainable parameters (M and Θ).
    pub fn parameters(&self) -> Vec<Tensor> {
        let mut ps = vec![self.importance.clone()];
        ps.extend(self.theta.parameters());
        ps
    }

    /// Static shape plan mirroring [`StaticBranch::forward`]; workspace
    /// events mirror the compiled eval path (mixed → theta out, with the
    /// returned `ret` buffer owned by the caller).
    pub fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, OpCost, Plan};
        let mut p = Plan::new(input);
        let op_v = self.op.shape()[0];
        if let Some(v) = input.known(3) {
            if v != op_v {
                p.error(
                    DiagCode::JointMismatch,
                    format!("operator must be [V, V]: operator has {op_v} joints, input has {v}"),
                );
                return p;
            }
        }
        let vcost = OpCost::vertex_op(
            input.known(1).unwrap_or(1) as u64,
            input.known(2).unwrap_or(1) as u64,
            op_v as u64,
        );
        p.ws_take("mixed", input);
        p.push_op_costed(
            "vertex_op",
            format!("static hypergraph operator [{op_v}, {op_v}]"),
            input.clone(),
            vcost,
        );
        p.extend("theta", self.theta.plan(&p.output().clone()));
        p.ws_take("ret", &p.output().clone());
        p.ws_give("mixed");
        p
    }

    /// Bake the branch for serving: the importance-weighted operator is
    /// precomputed once and Θ absorbs the block BN's per-channel affine.
    pub(crate) fn compile(&self, scale: &[f32], shift: &[f32]) -> StaticBranchEval {
        let op = self.op.data();
        let imp = self.importance.data();
        let weighted: Vec<f32> =
            op.data().iter().zip(imp.data()).map(|(&a, &b)| a * b).collect();
        StaticBranchEval {
            op: NdArray::from_vec(weighted, op.shape()),
            theta: EvalConv::fold_affine(&self.theta, scale, shift),
        }
    }
}

/// Compiled [`StaticBranch`]: cached weighted operator + folded Θ.
pub(crate) struct StaticBranchEval {
    op: NdArray,
    theta: EvalConv,
}

impl StaticBranchEval {
    pub(crate) fn forward(&self, x: &NdArray, ws: &mut Workspace) -> NdArray {
        let mixed = apply_vertex_op_eval(x, &self.op, ws);
        let out = self.theta.forward(&mixed, ws);
        ws.recycle(mixed);
        out
    }
}

/// Branch 2 — dynamic joint weight (§3.3): per-frame `Imp·Impᵀ`
/// operators built by the model from joint moving distances (Eq. 6–9),
/// then a pointwise Θ.
///
/// The operators are data (not parameters): the discrete weight
/// construction of Eq. 7 is not differentiated, matching the paper, while
/// gradients flow through the feature path.
pub struct JointWeightBranch {
    importance: Tensor,
    theta: Conv2d,
}

impl JointWeightBranch {
    /// Build the branch for skeletons of `n_joints` vertices.
    pub fn new(in_channels: usize, out_channels: usize, n_joints: usize, rng: &mut impl Rng) -> Self {
        JointWeightBranch {
            importance: Tensor::param(NdArray::ones(&[n_joints, n_joints])),
            theta: Conv2d::pointwise(in_channels, out_channels, rng),
        }
    }

    /// Forward with the per-frame operators `ops ∈ [N, T, V, V]` (the
    /// edge-importance mask broadcasts over samples and frames).
    pub fn forward(&self, x: &Tensor, ops: &Tensor) -> Tensor {
        let weighted = ops.mul(&self.importance);
        self.theta.forward(&apply_dynamic_vertex_op(x, &weighted))
    }

    /// Trainable parameters (M and Θ).
    pub fn parameters(&self) -> Vec<Tensor> {
        let mut ps = vec![self.importance.clone()];
        ps.extend(self.theta.parameters());
        ps
    }

    /// Static shape plan mirroring [`JointWeightBranch::forward`];
    /// workspace events mirror the compiled eval path (weighted operator
    /// copy → mixed → theta out, `ret` owned by the caller).
    pub fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, OpCost, Plan, SymShape};
        let mut p = Plan::new(input);
        let op_v = self.importance.shape()[0];
        if let Some(v) = input.known(3) {
            if v != op_v {
                p.error(
                    DiagCode::JointMismatch,
                    format!("operator must be square in V: branch has {op_v} joints, input has {v}"),
                );
                return p;
            }
        }
        let (c, t) = (input.known(1).unwrap_or(1) as u64, input.known(2).unwrap_or(1) as u64);
        let ops_shape = SymShape::batched(&[t as usize, op_v, op_v]);
        let vcost = OpCost::vertex_op(c, t, op_v as u64)
            .plus(OpCost::elementwise(&ops_shape));
        p.ws_take("weighted", &ops_shape);
        p.ws_take("mixed", input);
        p.ws_give("weighted");
        p.push_op_costed("dynamic_vertex_op", "per-frame Eq. 9 operators", input.clone(), vcost);
        p.extend("theta", self.theta.plan(&p.output().clone()));
        p.ws_take("ret", &p.output().clone());
        p.ws_give("mixed");
        p
    }

    /// Bake the branch for serving (Θ absorbs the block BN affine).
    pub(crate) fn compile(&self, scale: &[f32], shift: &[f32]) -> JointWeightBranchEval {
        JointWeightBranchEval {
            importance: self.importance.data().clone(),
            theta: EvalConv::fold_affine(&self.theta, scale, shift),
        }
    }
}

/// Compiled [`JointWeightBranch`]: folded Θ; the per-frame operators still
/// arrive as data each forward.
pub(crate) struct JointWeightBranchEval {
    importance: NdArray,
    theta: EvalConv,
}

impl JointWeightBranchEval {
    /// `ops` is `[N, T, V, V]` from the model's Eq. 9 construction.
    pub(crate) fn forward(&self, x: &NdArray, ops: &NdArray, ws: &mut Workspace) -> NdArray {
        let imp = self.importance.data();
        let vv = imp.len();
        let mut weighted = ws.take(ops.data().len());
        for (blk, o) in weighted.chunks_mut(vv).zip(ops.data().chunks(vv)) {
            for ((w, &ov), &iv) in blk.iter_mut().zip(o).zip(imp) {
                *w = ov * iv;
            }
        }
        let weighted = NdArray::from_vec(weighted, ops.shape());
        let mixed = apply_dynamic_vertex_op_eval(x, &weighted, ws);
        ws.recycle(weighted);
        let out = self.theta.forward(&mixed, ws);
        ws.recycle(mixed);
        out
    }
}

/// Branch 3 — dynamic topology (§3.4): embed features with an FC layer
/// (Eq. 10, realised as a pointwise convolution over joints), construct
/// `k_n`-NN and `k_m`-means hyperedges in the embedded space, and convolve
/// with the resulting per-sample (or per-frame) hypergraph operator.
///
/// Gradients reach the embedding `W_map` through the convolved features;
/// the discrete hyperedge selection itself is treated as constant, as any
/// k-NN/k-means construction must be.
pub struct TopologyBranch {
    embed: Conv2d,
    importance: Tensor,
    /// The end-to-end learned topology refinement (§3.4 trains the
    /// dynamic topology "in an end-to-end manner"): an additive `[V, V]`
    /// matrix complementing the discrete k-NN/k-means construction, in the
    /// spirit of 2s-AGCN's learned `B`. Initialised to zeros.
    learned: Tensor,
    theta: Conv2d,
    kn: usize,
    km: usize,
    granularity: TopologyGranularity,
    embed_channels: usize,
    seed: u64,
}

impl TopologyBranch {
    /// Build the branch. `kn`/`km` are the Tab. 3 hyper-parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        embed_channels: usize,
        n_joints: usize,
        kn: usize,
        km: usize,
        granularity: TopologyGranularity,
        seed: u64,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(kn >= 1 && km >= 1, "k_n and k_m must be positive");
        TopologyBranch {
            embed: Conv2d::pointwise(in_channels, embed_channels, rng),
            importance: Tensor::param(NdArray::ones(&[n_joints, n_joints])),
            learned: Tensor::param(NdArray::zeros(&[n_joints, n_joints])),
            theta: Conv2d::pointwise(embed_channels, out_channels, rng),
            kn,
            km,
            granularity,
            embed_channels,
            seed,
        }
    }

    /// The `(k_n, k_m)` pair.
    pub fn ks(&self) -> (usize, usize) {
        (self.kn, self.km)
    }

    /// Forward `[N, C, T, V] → [N, C_out, T, V]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        // Eq. 10: X_new = σ(W_map · f_in)
        let embedded = self.embed.forward(x).relu();
        debug_assert_eq!(embedded.shape()[1], self.embed_channels);
        // coordinates for topology construction: detached embedded features
        let feats = embedded.data().permute(&[0, 2, 3, 1]); // [N, T, V, E]
        let config = TopologyConfig::new(self.kn, self.km, self.seed);
        let stacked = stacked_operators(&feats, self.granularity, &config);
        let mixed = match self.granularity {
            TopologyGranularity::PerSample => {
                let op = Tensor::constant(stacked).mul(&self.importance).add(&self.learned);
                apply_per_sample_vertex_op(&embedded, &op)
            }
            TopologyGranularity::PerFrame => {
                let op = Tensor::constant(stacked).mul(&self.importance).add(&self.learned);
                apply_dynamic_vertex_op(&embedded, &op)
            }
        };
        self.theta.forward(&mixed)
    }

    /// Trainable parameters (`W_map`, M, B and Θ).
    pub fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.embed.parameters();
        ps.push(self.importance.clone());
        ps.push(self.learned.clone());
        ps.extend(self.theta.parameters());
        ps
    }

    /// Static shape plan mirroring [`TopologyBranch::forward`];
    /// workspace events mirror the compiled eval path (embedded → mixed →
    /// theta out, `ret` owned by the caller).
    pub fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, OpCost, Plan};
        let mut p = Plan::new(input);
        let op_v = self.importance.shape()[0];
        if let Some(v) = input.known(3) {
            if v != op_v {
                p.error(
                    DiagCode::JointMismatch,
                    format!("operator must be square in V: branch has {op_v} joints, input has {v}"),
                );
                return p;
            }
        }
        p.ws_take("embedded", &input.with_dim(1, dhg_nn::Dim::Known(self.embed_channels)));
        p.extend("embed", self.embed.plan(input));
        if p.has_errors() {
            return p;
        }
        p.push_op("relu", "", p.output().clone());
        let mode = match self.granularity {
            TopologyGranularity::PerSample => "per-sample",
            TopologyGranularity::PerFrame => "per-frame",
        };
        let vcost = OpCost::vertex_op(
            self.embed_channels as u64,
            input.known(2).unwrap_or(1) as u64,
            op_v as u64,
        );
        p.ws_take("mixed", &p.output().clone());
        p.ws_give("embedded");
        p.push_op_costed(
            "topology_vertex_op",
            format!("{mode} k-NN(k={}) + k-means(k={}) hyperedges", self.kn, self.km),
            p.output().clone(),
            vcost,
        );
        p.extend("theta", self.theta.plan(&p.output().clone()));
        p.ws_take("ret", &p.output().clone());
        p.ws_give("mixed");
        p
    }

    /// Bake the branch for serving: the embedding runs as a folded kernel
    /// with fused ReLU and Θ absorbs the block BN affine. The discrete
    /// hypergraph construction stays data-dependent, so it runs per
    /// forward exactly as in training — same seed, same operators.
    pub(crate) fn compile(&self, scale: &[f32], shift: &[f32]) -> TopologyBranchEval {
        TopologyBranchEval {
            embed: EvalConv::from_conv(&self.embed),
            importance: self.importance.data().clone(),
            learned: self.learned.data().clone(),
            theta: EvalConv::fold_affine(&self.theta, scale, shift),
            kn: self.kn,
            km: self.km,
            granularity: self.granularity,
            seed: self.seed,
        }
    }
}

/// Compiled [`TopologyBranch`].
pub(crate) struct TopologyBranchEval {
    embed: EvalConv,
    importance: NdArray,
    learned: NdArray,
    theta: EvalConv,
    kn: usize,
    km: usize,
    granularity: TopologyGranularity,
    seed: u64,
}

impl TopologyBranchEval {
    pub(crate) fn forward(&self, x: &NdArray, ws: &mut Workspace) -> NdArray {
        let embedded = self.embed.forward_relu(x, ws);
        let feats = embedded.permute(&[0, 2, 3, 1]); // [N, T, V, E]
        let config = TopologyConfig::new(self.kn, self.km, self.seed);
        let imp = self.importance.data();
        let learned = self.learned.data();
        // importance mask ∘ operator + learned refinement, fused into the
        // sharded construction sweep (one pass per [V, V] block)
        let weight_block = |blk: &mut [f32]| {
            for ((w, &iv), &lv) in blk.iter_mut().zip(imp).zip(learned) {
                *w = *w * iv + lv;
            }
        };
        let stacked = stacked_operators_with(&feats, self.granularity, &config, weight_block);
        let mixed = match self.granularity {
            TopologyGranularity::PerSample => {
                apply_per_sample_vertex_op_eval(&embedded, &stacked, ws)
            }
            TopologyGranularity::PerFrame => apply_dynamic_vertex_op_eval(&embedded, &stacked, ws),
        };
        ws.recycle(embedded);
        let out = self.theta.forward(&mixed, ws);
        ws.recycle(mixed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhg_skeleton::{static_hypergraph, SkeletonTopology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn static_branch_shapes_and_grads() {
        let mut r = rng();
        let op = static_hypergraph(&SkeletonTopology::ntu25()).operator();
        let b = StaticBranch::new(op, 3, 8, &mut r);
        let x = Tensor::param(NdArray::ones(&[2, 3, 4, 25]));
        let y = b.forward(&x);
        assert_eq!(y.shape(), vec![2, 8, 4, 25]);
        y.square().sum_all().backward();
        assert!(x.grad().is_some());
        assert!(b.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn joint_weight_branch_uses_per_frame_operators() {
        let mut r = rng();
        let b = JointWeightBranch::new(3, 4, 5, &mut r);
        let x = Tensor::constant(NdArray::ones(&[1, 3, 2, 5]));
        // frame 0: identity, frame 1: zero operator
        let id = NdArray::eye(5).reshape(&[1, 1, 5, 5]);
        let zero = NdArray::zeros(&[1, 1, 5, 5]);
        let ops = Tensor::constant(NdArray::concat(&[&id, &zero], 1));
        let y = b.forward(&x, &ops).array();
        // frame 1 saw a zero operator, so only the bias survives there;
        // frame 0 differs from frame 1 unless the conv is degenerate
        let f0 = y.slice_axis(2, 0, 1);
        let f1 = y.slice_axis(2, 1, 1);
        assert!(!f0.allclose(&f1, 1e-5, 1e-5));
    }

    #[test]
    fn topology_branch_per_sample_forward() {
        let mut r = rng();
        let b = TopologyBranch::new(3, 8, 4, 25, 3, 4, TopologyGranularity::PerSample, 7, &mut r);
        let x = Tensor::param(NdArray::from_vec(
            (0..2 * 3 * 4 * 25).map(|i| (i as f32 * 0.13).sin()).collect(),
            &[2, 3, 4, 25],
        ));
        let y = b.forward(&x);
        assert_eq!(y.shape(), vec![2, 8, 4, 25]);
        y.square().sum_all().backward();
        // the FC embedding W_map must receive gradients (end-to-end, §3.4)
        assert!(b.parameters().iter().all(|p| p.grad().is_some()));
        assert!(x.grad().is_some());
    }

    #[test]
    fn topology_branch_per_frame_forward() {
        let mut r = rng();
        let b = TopologyBranch::new(3, 6, 4, 10, 2, 3, TopologyGranularity::PerFrame, 7, &mut r);
        let x = Tensor::constant(NdArray::from_vec(
            (0..3 * 3 * 10).map(|i| (i as f32 * 0.31).cos()).collect(),
            &[1, 3, 3, 10],
        ));
        let y = b.forward(&x);
        assert_eq!(y.shape(), vec![1, 6, 3, 10]);
        assert!(y.array().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn ks_accessor() {
        let mut r = rng();
        let b = TopologyBranch::new(3, 4, 4, 25, 3, 4, TopologyGranularity::PerSample, 0, &mut r);
        assert_eq!(b.ks(), (3, 4));
    }
}
