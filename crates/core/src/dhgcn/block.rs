//! The DHST block: Dynamic Hypergraph Spatial-Temporal convolution
//! (Fig. 5).

use super::branches::{
    JointWeightBranch, JointWeightBranchEval, StaticBranch, StaticBranchEval, TopologyBranch,
    TopologyBranchEval,
};
use super::model::{BranchConfig, TopologyGranularity};
use crate::tcn::TemporalConv;
use dhg_nn::{BatchNorm2d, Buffer, Conv2d, EvalConv, Module};
use dhg_tensor::ops::Conv2dSpec;
use dhg_tensor::{NdArray, Tensor, Workspace};
use rand::Rng;

/// One backbone block: the sum of the active spatial branches, batch
/// normalisation, then a dilated temporal convolution, with a residual
/// connection around the whole block.
pub struct DhstBlock {
    static_branch: Option<StaticBranch>,
    joint_weight_branch: Option<JointWeightBranch>,
    topology_branch: Option<TopologyBranch>,
    bn: BatchNorm2d,
    tcn: TemporalConv,
    residual_proj: Option<Conv2d>,
    stride: usize,
    inference: Option<BlockInference>,
}

/// Serving caches of a [`DhstBlock`]: the post-sum BN is folded into every
/// branch Θ (scale on all, shift on exactly one — exact for a linear sum),
/// the residual projection is baked, and the temporal unit holds its own
/// folded Conv+BN.
struct BlockInference {
    static_branch: Option<StaticBranchEval>,
    joint_weight: Option<JointWeightBranchEval>,
    topology: Option<TopologyBranchEval>,
    residual: Option<EvalConv>,
}

impl DhstBlock {
    /// Build a block.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        static_op: &NdArray,
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        dilation: usize,
        branches: BranchConfig,
        kn: usize,
        km: usize,
        embed_channels: usize,
        granularity: TopologyGranularity,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(branches.n_active() > 0, "a DHST block needs at least one spatial branch");
        let static_branch = branches
            .static_hypergraph
            .then(|| StaticBranch::new(static_op.clone(), in_channels, out_channels, rng));
        let n_joints = static_op.shape()[0];
        let joint_weight_branch = branches
            .dynamic_joint_weight
            .then(|| JointWeightBranch::new(in_channels, out_channels, n_joints, rng));
        let topology_branch = branches.dynamic_topology.then(|| {
            // fixed seed: the k-means init must be a pure function of the
            // data, not of construction order, so checkpoints restore
            // behaviour exactly
            let seed = 0x6B6D_6561_6E73; // "kmeans"
            TopologyBranch::new(
                in_channels,
                out_channels,
                embed_channels,
                n_joints,
                kn,
                km,
                granularity,
                seed,
                rng,
            )
        });
        DhstBlock {
            static_branch,
            joint_weight_branch,
            topology_branch,
            bn: BatchNorm2d::new(out_channels),
            tcn: TemporalConv::new(out_channels, out_channels, stride, dilation, dropout, rng),
            residual_proj: if in_channels != out_channels || stride != 1 {
                let spec = Conv2dSpec {
                    kernel: (1, 1),
                    stride: (stride, 1),
                    padding: (0, 0),
                    dilation: (1, 1),
                };
                Some(Conv2d::new(in_channels, out_channels, spec, rng))
            } else {
                None
            },
            stride,
            inference: None,
        }
    }

    /// Temporal stride of this block.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Whether the block needs per-frame joint-weight operators.
    pub fn needs_dynamic_ops(&self) -> bool {
        self.joint_weight_branch.is_some()
    }

    /// Forward. `dyn_ops` carries the Eq. 9 operators `[N, T, V, V]` at
    /// this block's temporal resolution; required iff the joint-weight
    /// branch is active.
    pub fn forward(&self, x: &Tensor, dyn_ops: Option<&Tensor>) -> Tensor {
        let mut acc: Option<Tensor> = None;
        let mut add = |t: Tensor| {
            acc = Some(match acc.take() {
                Some(a) => a.add(&t),
                None => t,
            });
        };
        if let Some(b) = &self.static_branch {
            add(b.forward(x));
        }
        if let Some(b) = &self.joint_weight_branch {
            let ops = dyn_ops.expect("joint-weight branch requires dynamic operators");
            add(b.forward(x, ops));
        }
        if let Some(b) = &self.topology_branch {
            add(b.forward(x));
        }
        let spatial = self.bn.forward(&acc.expect("at least one branch")).relu();
        let temporal = self.tcn.forward(&spatial);
        let residual = match &self.residual_proj {
            Some(proj) => proj.forward(x),
            None => x.clone(),
        };
        temporal.add(&residual).relu()
    }

    /// All trainable parameters of the block.
    pub fn parameters(&self) -> Vec<Tensor> {
        let mut ps = Vec::new();
        if let Some(b) = &self.static_branch {
            ps.extend(b.parameters());
        }
        if let Some(b) = &self.joint_weight_branch {
            ps.extend(b.parameters());
        }
        if let Some(b) = &self.topology_branch {
            ps.extend(b.parameters());
        }
        ps.extend(self.bn.parameters());
        ps.extend(self.tcn.parameters());
        if let Some(p) = &self.residual_proj {
            ps.extend(p.parameters());
        }
        ps
    }

    /// Train/eval switch for the block's normalisation and dropout.
    /// Returning to training drops the serving caches — the folded
    /// weights would silently go stale as the parameters move.
    pub fn set_training(&mut self, training: bool) {
        self.bn.set_training(training);
        self.tcn.set_training(training);
        if training {
            self.inference = None;
        }
    }

    /// Non-trainable state (BN running statistics) in a stable order.
    pub fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.bn.buffers();
        bs.extend(self.tcn.buffers());
        bs
    }

    /// Compile the block for serving: fold the post-sum BN into every
    /// branch Θ, bake the residual projection and the temporal Conv+BN.
    pub fn prepare_inference(&mut self) {
        self.set_training(false);
        self.tcn.prepare_inference();
        let (scale, shift) = self.bn.eval_affine();
        let zero = vec![0.0; scale.len()];
        // the BN shift enters the sum exactly once, via the first branch
        let mut shift_taken = false;
        let mut next_shift = || -> &[f32] {
            if shift_taken {
                &zero
            } else {
                shift_taken = true;
                &shift
            }
        };
        let static_branch =
            self.static_branch.as_ref().map(|b| b.compile(&scale, next_shift()));
        let joint_weight =
            self.joint_weight_branch.as_ref().map(|b| b.compile(&scale, next_shift()));
        let topology = self.topology_branch.as_ref().map(|b| b.compile(&scale, next_shift()));
        let residual = self.residual_proj.as_ref().map(EvalConv::from_conv);
        self.inference = Some(BlockInference { static_branch, joint_weight, topology, residual });
    }

    /// Static shape plan mirroring [`DhstBlock::forward`]: every active
    /// spatial branch consumes the same input and their outputs must agree
    /// before the sum.
    pub fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, Plan};
        let mut p = Plan::new(input);
        if input.rank() != 4 {
            p.error(
                DiagCode::RankMismatch,
                format!("features must be [N, C, T, V], got rank {} {input}", input.rank()),
            );
            return p;
        }
        // plan each active branch against the block input; the first one
        // anchors the chain, the others must produce the same shape
        let mut branch_plans: Vec<(&'static str, Plan)> = Vec::new();
        if let Some(b) = &self.static_branch {
            branch_plans.push(("static_branch", b.plan(input)));
        }
        if let Some(b) = &self.joint_weight_branch {
            branch_plans.push(("joint_weight_branch", b.plan(input)));
        }
        if let Some(b) = &self.topology_branch {
            branch_plans.push(("topology_branch", b.plan(input)));
        }
        let mut sum_out: Option<dhg_nn::SymShape> = None;
        // workspace events mirror forward_eval: the first branch's `ret`
        // becomes the accumulator; later branches run (and free their
        // buffers) while it is live, then the accumulator feeds the tcn
        let mut anchor_name = "";
        for (i, (name, bp)) in branch_plans.into_iter().enumerate() {
            let errored = bp.has_errors();
            let out = bp.output().clone();
            if i == 0 {
                anchor_name = name;
                p.extend(name, bp);
            } else if let Some(anchor) = &sum_out {
                if errored {
                    p.extend(name, bp);
                } else if &out != anchor {
                    p.error(
                        DiagCode::ShapeMismatch,
                        format!("{name} produces {out} but the branch sum expects {anchor}"),
                    );
                } else {
                    p.adopt(name, &bp);
                    p.ws_give(&format!("{name}.ret"));
                }
            }
            if errored {
                return p;
            }
            if sum_out.is_none() {
                sum_out = Some(out);
            }
        }
        p.extend("bn", self.bn.plan(&p.output().clone()));
        p.push_op("relu", "", p.output().clone());
        p.extend("tcn", self.tcn.plan(&p.output().clone()));
        if p.has_errors() {
            return p;
        }
        let main_out = p.output().clone();
        p.ws_take("ret", &main_out);
        if !anchor_name.is_empty() {
            p.ws_give(&format!("{anchor_name}.ret"));
        }
        let residual_out = match &self.residual_proj {
            Some(proj) => proj.plan(input).output().clone(),
            None => input.clone(),
        };
        if residual_out != main_out {
            p.error(
                DiagCode::ShapeMismatch,
                format!("residual path produces {residual_out} but main path produces {main_out}"),
            );
        }
        if self.residual_proj.is_some() {
            p.ws_take("res", &main_out);
            p.ws_give("res");
        }
        p.push_op("residual_add_relu", "", main_out);
        if !self.bn.training() && self.inference.is_none() {
            p.warn(
                DiagCode::NotPrepared,
                "eval-mode DhstBlock without serving caches; call prepare_inference()",
            );
        }
        p
    }

    /// Grad-free eval forward on raw arrays using the caches built by
    /// [`DhstBlock::prepare_inference`]. `dyn_ops` mirrors
    /// [`DhstBlock::forward`].
    pub fn forward_eval(
        &self,
        x: &NdArray,
        dyn_ops: Option<&NdArray>,
        ws: &mut Workspace,
    ) -> NdArray {
        let inf = self
            .inference
            .as_ref()
            .expect("DhstBlock::forward_eval requires prepare_inference()");
        let mut acc: Option<NdArray> = None;
        let accumulate = |y: NdArray, acc: &mut Option<NdArray>, ws: &mut Workspace| {
            match acc {
                Some(a) => {
                    a.add_assign_scaled(&y, 1.0);
                    ws.recycle(y);
                }
                None => *acc = Some(y),
            }
        };
        if let Some(b) = &inf.static_branch {
            let y = b.forward(x, ws);
            accumulate(y, &mut acc, ws);
        }
        if let Some(b) = &inf.joint_weight {
            let ops = dyn_ops.expect("joint-weight branch requires dynamic operators");
            let y = b.forward(x, ops, ws);
            accumulate(y, &mut acc, ws);
        }
        if let Some(b) = &inf.topology {
            let y = b.forward(x, ws);
            accumulate(y, &mut acc, ws);
        }
        let mut spatial = acc.expect("at least one branch");
        spatial.relu_inplace();
        let mut out = self.tcn.forward_eval(&spatial, ws);
        ws.recycle(spatial);
        match &inf.residual {
            Some(proj) => {
                let r = proj.forward(x, ws);
                out.add_relu_inplace(&r);
                ws.recycle(r);
            }
            None => out.add_relu_inplace(x),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhg_skeleton::{static_hypergraph, SkeletonTopology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn op() -> NdArray {
        static_hypergraph(&SkeletonTopology::ntu25()).operator()
    }

    fn dyn_ops(n: usize, t: usize, v: usize) -> Tensor {
        // identity operators at every frame
        let id = NdArray::eye(v).reshape(&[1, 1, v, v]);
        let mut rows = Vec::new();
        for _ in 0..n * t {
            rows.push(id.clone());
        }
        let refs: Vec<&NdArray> = rows.iter().collect();
        Tensor::constant(NdArray::concat(&refs, 1).reshape(&[n, t, v, v]))
    }

    #[test]
    fn full_block_forward() {
        let mut rng = StdRng::seed_from_u64(0);
        let b = DhstBlock::new(
            &op(),
            3,
            8,
            1,
            1,
            BranchConfig::full(),
            3,
            4,
            4,
            TopologyGranularity::PerSample,
            0.0,
            &mut rng,
        );
        let x = Tensor::constant(NdArray::ones(&[2, 3, 4, 25]));
        let y = b.forward(&x, Some(&dyn_ops(2, 4, 25)));
        assert_eq!(y.shape(), vec![2, 8, 4, 25]);
        assert!(b.needs_dynamic_ops());
    }

    #[test]
    fn stride_two_block_halves_time() {
        let mut rng = StdRng::seed_from_u64(0);
        let b = DhstBlock::new(
            &op(),
            8,
            16,
            2,
            1,
            BranchConfig { static_hypergraph: true, dynamic_joint_weight: false, dynamic_topology: false },
            3,
            4,
            4,
            TopologyGranularity::PerSample,
            0.0,
            &mut rng,
        );
        let x = Tensor::constant(NdArray::ones(&[1, 8, 8, 25]));
        let y = b.forward(&x, None);
        assert_eq!(y.shape(), vec![1, 16, 4, 25]);
        assert!(!b.needs_dynamic_ops());
    }

    #[test]
    #[should_panic(expected = "at least one spatial branch")]
    fn all_branches_off_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        DhstBlock::new(
            &op(),
            3,
            8,
            1,
            1,
            BranchConfig { static_hypergraph: false, dynamic_joint_weight: false, dynamic_topology: false },
            3,
            4,
            4,
            TopologyGranularity::PerSample,
            0.0,
            &mut rng,
        );
    }

    #[test]
    fn compiled_block_matches_unfused_eval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = DhstBlock::new(
            &op(),
            3,
            8,
            1,
            1,
            BranchConfig::full(),
            3,
            4,
            4,
            TopologyGranularity::PerSample,
            0.0,
            &mut rng,
        );
        let x = NdArray::from_vec(
            (0..2 * 3 * 4 * 25).map(|i| (i as f32 * 0.019).sin()).collect(),
            &[2, 3, 4, 25],
        );
        let ops = dyn_ops(2, 4, 25);
        // warm the BNs so folding sees non-trivial statistics
        b.forward(&Tensor::constant(x.clone()), Some(&ops));
        b.set_training(false);
        let reference = {
            let _g = dhg_tensor::no_grad();
            b.forward(&Tensor::constant(x.clone()), Some(&ops)).array()
        };
        b.prepare_inference();
        let mut ws = Workspace::new();
        let got = b.forward_eval(&x, Some(&ops.data()), &mut ws);
        assert!(reference.allclose(&got, 1e-4, 1e-5), "fold diverged");
        // and the caches drop when training resumes
        b.set_training(true);
        assert!(b.inference.is_none());
    }

    #[test]
    fn parameter_count_scales_with_active_branches() {
        let mut rng = StdRng::seed_from_u64(0);
        let full = DhstBlock::new(
            &op(), 3, 8, 1, 1, BranchConfig::full(), 3, 4, 4,
            TopologyGranularity::PerSample, 0.0, &mut rng,
        );
        let only_static = DhstBlock::new(
            &op(), 3, 8, 1, 1,
            BranchConfig { static_hypergraph: true, dynamic_joint_weight: false, dynamic_topology: false },
            3, 4, 4, TopologyGranularity::PerSample, 0.0, &mut rng,
        );
        let count = |b: &DhstBlock| b.parameters().iter().map(|p| p.data().len()).sum::<usize>();
        assert!(count(&full) > count(&only_static));
    }
}
