//! DHGCN-lite — the §5 future-work direction, implemented.
//!
//! The paper's conclusion flags two costs to cut: the ten-layer depth and
//! "complex calculations in the process of obtaining dynamic hypergraph".
//! This variant attacks both while keeping the model's ingredients:
//!
//! 1. **Topology once, not per block**: the dynamic hypergraph (k-NN ∪
//!    k-means over an FC embedding, §3.4) is built a single time from the
//!    input embedding and shared by every block, instead of being rebuilt
//!    per block (10× fewer constructions at paper depth).
//! 2. **Fused operator application**: the static operator, the per-frame
//!    joint-weight operator (time-averaged to per-sample) and the dynamic
//!    topology operator are *summed* into one per-sample operator, so each
//!    block performs one vertex mixing + one Θ instead of three of each.
//! 3. **Low-rank Θ**: wide pointwise mixers factor through a bottleneck
//!    (`C → C/r → C_out`), shrinking the dominant parameter mass.

use crate::common::{
    apply_per_sample_vertex_op, apply_per_sample_vertex_op_eval, linear_eval, DataBn, ModelDims,
    StageSpec,
};
use crate::tcn::TemporalConv;
use dhg_hypergraph::{
    dynamic_operators, from_scratch_operator, normalize_rows, Hypergraph, TopologyConfig,
};
use dhg_nn::{global_avg_pool, BatchNorm2d, Buffer, Conv2d, EvalConv, Linear, Module};
use dhg_skeleton::{static_hypergraph, SkeletonTopology};
use dhg_tensor::ops::Conv2dSpec;
use dhg_tensor::{NdArray, Tensor, Workspace};
use rand::Rng;

/// Configuration of [`DhgcnLite`].
#[derive(Clone, Debug, PartialEq)]
pub struct DhgcnLiteConfig {
    /// Model geometry.
    pub dims: ModelDims,
    /// Backbone stages — default two blocks (vs ten in Fig. 5).
    pub stages: Vec<StageSpec>,
    /// `k_n` for the shared dynamic topology.
    pub kn: usize,
    /// `k_m` for the shared dynamic topology.
    pub km: usize,
    /// Bottleneck divisor for Θ (`r = 1` disables the factorisation).
    pub reduction: usize,
    /// Width of the one-shot topology embedding.
    pub embed_channels: usize,
    /// Dropout inside temporal units.
    pub dropout: f32,
}

impl DhgcnLiteConfig {
    /// A compact two-block default.
    pub fn new(dims: ModelDims) -> Self {
        DhgcnLiteConfig {
            dims,
            stages: vec![StageSpec::new(24, 1), StageSpec::new(48, 2)],
            kn: 3,
            km: 4,
            reduction: 2,
            embed_channels: 8,
            dropout: 0.05,
        }
    }
}

/// A pointwise mixer, optionally factored through a bottleneck.
struct LowRankTheta {
    reduce: Option<Conv2d>,
    expand: Conv2d,
}

impl LowRankTheta {
    fn new(in_channels: usize, out_channels: usize, reduction: usize, rng: &mut impl Rng) -> Self {
        let rank = (in_channels.min(out_channels) / reduction).max(1);
        if reduction <= 1 || rank >= in_channels {
            LowRankTheta { reduce: None, expand: Conv2d::pointwise(in_channels, out_channels, rng) }
        } else {
            LowRankTheta {
                reduce: Some(Conv2d::pointwise(in_channels, rank, rng)),
                expand: Conv2d::pointwise(rank, out_channels, rng),
            }
        }
    }

    fn forward(&self, x: &Tensor) -> Tensor {
        match &self.reduce {
            Some(r) => self.expand.forward(&r.forward(x)),
            None => self.expand.forward(x),
        }
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        let mut p = dhg_nn::Plan::new(input);
        if let Some(r) = &self.reduce {
            p.extend("reduce", r.plan(input));
            if p.has_errors() {
                return p;
            }
        }
        p.extend("expand", self.expand.plan(&p.output().clone()));
        p
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = Vec::new();
        if let Some(r) = &self.reduce {
            ps.extend(r.parameters());
        }
        ps.extend(self.expand.parameters());
        ps
    }
}

struct LiteBlock {
    theta: LowRankTheta,
    bn: BatchNorm2d,
    tcn: TemporalConv,
    residual_proj: Option<Conv2d>,
    inference: Option<LiteBlockInference>,
}

/// Serving caches of a [`LiteBlock`]: the post-Θ BN folds into the
/// expanding half of the low-rank Θ, the residual projection is baked and
/// the temporal unit holds its own folded Conv+BN.
struct LiteBlockInference {
    reduce: Option<EvalConv>,
    expand: EvalConv,
    residual: Option<EvalConv>,
}

impl LiteBlock {
    fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        reduction: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        LiteBlock {
            theta: LowRankTheta::new(in_channels, out_channels, reduction, rng),
            bn: BatchNorm2d::new(out_channels),
            tcn: TemporalConv::new(out_channels, out_channels, stride, 1, dropout, rng),
            residual_proj: if in_channels != out_channels || stride != 1 {
                let spec = Conv2dSpec {
                    kernel: (1, 1),
                    stride: (stride, 1),
                    padding: (0, 0),
                    dilation: (1, 1),
                };
                Some(Conv2d::new(in_channels, out_channels, spec, rng))
            } else {
                None
            },
            inference: None,
        }
    }

    fn prepare_inference(&mut self) {
        self.set_training(false);
        self.tcn.prepare_inference();
        let (scale, shift) = self.bn.eval_affine();
        self.inference = Some(LiteBlockInference {
            reduce: self.theta.reduce.as_ref().map(EvalConv::from_conv),
            expand: EvalConv::fold_affine(&self.theta.expand, &scale, &shift),
            residual: self.residual_proj.as_ref().map(EvalConv::from_conv),
        });
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.bn.buffers();
        bs.extend(self.tcn.buffers());
        bs
    }

    /// Grad-free eval forward on raw arrays (caches from
    /// [`LiteBlock::prepare_inference`]); `op` is the fused per-sample
    /// operator `[N, V, V]`.
    fn forward_eval(&self, x: &NdArray, op: &NdArray, ws: &mut Workspace) -> NdArray {
        let inf = self.inference.as_ref().expect("LiteBlock eval requires prepare_inference()");
        let mixed = apply_per_sample_vertex_op_eval(x, op, ws);
        let h = match &inf.reduce {
            Some(r) => {
                let t = r.forward(&mixed, ws);
                ws.recycle(mixed);
                t
            }
            None => mixed,
        };
        // BN folded into the expansion, ReLU fused into its output pass
        let spatial = inf.expand.forward_relu(&h, ws);
        ws.recycle(h);
        let mut out = self.tcn.forward_eval(&spatial, ws);
        ws.recycle(spatial);
        match &inf.residual {
            Some(proj) => {
                let r = proj.forward(x, ws);
                out.add_relu_inplace(&r);
                ws.recycle(r);
            }
            None => out.add_relu_inplace(x),
        }
        out
    }

    /// `op` is the fused per-sample operator `[N, V, V]`.
    fn forward(&self, x: &Tensor, op: &Tensor) -> Tensor {
        let mixed = apply_per_sample_vertex_op(x, op);
        let spatial = self.bn.forward(&self.theta.forward(&mixed)).relu();
        let temporal = self.tcn.forward(&spatial);
        let residual = match &self.residual_proj {
            Some(proj) => proj.forward(x),
            None => x.clone(),
        };
        temporal.add(&residual).relu()
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.theta.parameters();
        ps.extend(self.bn.parameters());
        ps.extend(self.tcn.parameters());
        if let Some(p) = &self.residual_proj {
            ps.extend(p.parameters());
        }
        ps
    }

    fn set_training(&mut self, training: bool) {
        self.bn.set_training(training);
        self.tcn.set_training(training);
        if training {
            self.inference = None;
        }
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, OpCost, Plan};
        let mut p = Plan::new(input);
        if input.rank() != 4 {
            p.error(
                DiagCode::RankMismatch,
                format!("features must be [N, C, T, V], got rank {} {input}", input.rank()),
            );
            return p;
        }
        // workspace events mirror forward_eval: mixed → spatial → ret,
        // with `ret` owned by the caller
        let vcost = OpCost::vertex_op(
            input.known(1).unwrap_or(1) as u64,
            input.known(2).unwrap_or(1) as u64,
            input.known(3).unwrap_or(1) as u64,
        );
        p.ws_take("mixed", input);
        p.push_op_costed("fused_vertex_op", "per-sample fused operator", input.clone(), vcost);
        p.extend("theta", self.theta.plan(&p.output().clone()));
        if p.has_errors() {
            return p;
        }
        p.ws_take("spatial", &p.output().clone());
        p.ws_give("mixed");
        p.extend("bn", self.bn.plan(&p.output().clone()));
        p.push_op("relu", "", p.output().clone());
        p.extend("tcn", self.tcn.plan(&p.output().clone()));
        if p.has_errors() {
            return p;
        }
        let main_out = p.output().clone();
        p.ws_take("ret", &main_out);
        p.ws_give("spatial");
        let residual_out = match &self.residual_proj {
            Some(proj) => proj.plan(input).output().clone(),
            None => input.clone(),
        };
        if residual_out != main_out {
            p.error(
                DiagCode::ShapeMismatch,
                format!("residual path produces {residual_out} but main path produces {main_out}"),
            );
        }
        if self.residual_proj.is_some() {
            p.ws_take("res", &main_out);
            p.ws_give("res");
        }
        p.push_op("residual_add_relu", "", main_out);
        if !self.bn.training() && self.inference.is_none() {
            p.warn(
                DiagCode::NotPrepared,
                "eval-mode LiteBlock without serving caches; call prepare_inference()",
            );
        }
        p
    }
}

/// The efficiency-oriented DHGCN variant (see module docs).
pub struct DhgcnLite {
    config: DhgcnLiteConfig,
    static_hg: Hypergraph,
    static_op: Tensor,
    learned: Tensor,
    input_bn: DataBn,
    embed: Conv2d,
    blocks: Vec<LiteBlock>,
    fc: Linear,
    inference: Option<LiteInference>,
}

/// Model-level serving caches of [`DhgcnLite`].
struct LiteInference {
    /// Folded topology embedding (a fixed random projection, so plain
    /// weights with fused ReLU).
    embed: EvalConv,
    bn_scale: Vec<f32>,
    bn_shift: Vec<f32>,
}

impl DhgcnLite {
    /// Build over a skeleton topology.
    pub fn new(config: DhgcnLiteConfig, topology: &SkeletonTopology, rng: &mut impl Rng) -> Self {
        assert_eq!(config.dims.n_joints, topology.n_joints(), "dims/topology mismatch");
        assert!(!config.stages.is_empty(), "need at least one stage");
        let static_hg = static_hypergraph(topology);
        let v = config.dims.n_joints;
        let input_bn = DataBn::new(config.dims.in_channels, v);
        let embed = Conv2d::pointwise(config.dims.in_channels, config.embed_channels, rng);
        let mut blocks = Vec::with_capacity(config.stages.len());
        let mut in_ch = config.dims.in_channels;
        for stage in &config.stages {
            blocks.push(LiteBlock::new(
                in_ch,
                stage.channels,
                stage.stride,
                config.reduction,
                config.dropout,
                rng,
            ));
            in_ch = stage.channels;
        }
        let fc = Linear::new(in_ch, config.dims.n_classes, rng);
        DhgcnLite {
            static_op: Tensor::constant(static_hg.operator()),
            learned: Tensor::param(NdArray::zeros(&[v, v])),
            static_hg,
            config,
            input_bn,
            embed,
            blocks,
            fc,
            inference: None,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &DhgcnLiteConfig {
        &self.config
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The one-shot topology construction parameters. The fixed seed makes
    /// the k-means init a pure function of the data, so checkpoints
    /// restore behaviour exactly.
    fn topology_config(&self) -> TopologyConfig {
        TopologyConfig::new(self.config.kn, self.config.km, 0x6C69_7465) // "lite"
    }

    /// Build the fused per-sample operator `[N, V, V]`: static ⊕
    /// time-averaged joint-weight ⊕ shared dynamic topology ⊕ learned.
    fn fused_operator(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        let (n, t, v) = (s[0], s[2], s[3]);
        // time-averaged Eq. 9 operators from the raw coordinates
        let coords = x.data().permute(&[0, 2, 3, 1]); // [N, T, V, 3]
        let mut per_sample = Vec::with_capacity(n);
        for ni in 0..n {
            let sample = coords.slice_axis(0, ni, 1).reshape(&[t, v, 3]);
            let joint_ops = dynamic_operators(&self.static_hg, &sample); // [T, V, V]
            let averaged = joint_ops.mean_axes(&[0], false); // [V, V]
            per_sample.push(averaged.reshape(&[1, v, v]));
        }
        let refs: Vec<&NdArray> = per_sample.iter().collect();
        let joint_weight = NdArray::concat(&refs, 0); // [N, V, V]

        // one-shot dynamic topology from the input embedding
        let embedded = self.embed.forward(x).relu();
        let e = embedded.shape()[1];
        let feats = embedded.data().permute(&[0, 2, 3, 1]).mean_axes(&[1], false); // [N, V, E]
        let cfg = self.topology_config();
        let mut topo = Vec::with_capacity(n);
        for ni in 0..n {
            let c = &feats.data()[ni * v * e..(ni + 1) * v * e];
            topo.push(normalize_rows(&from_scratch_operator(c, v, e, &cfg)).reshape(&[1, v, v]));
        }
        let trefs: Vec<&NdArray> = topo.iter().collect();
        let topology = NdArray::concat(&trefs, 0); // [N, V, V]

        // fuse: constants enter detached, the learned matrix trains
        let fused = joint_weight.add(&topology);
        Tensor::constant(fused)
            .add(&self.static_op.reshape(&[1, v, v]))
            .add(&self.learned.reshape(&[1, v, v]))
    }

    /// Grad-free [`DhgcnLite::fused_operator`] on raw arrays: same
    /// constructions and seed, with the topology embedding run through the
    /// folded kernel and the four summands accumulated in place.
    fn fused_operator_eval(&self, x: &NdArray, inf: &LiteInference, ws: &mut Workspace) -> NdArray {
        let s = x.shape();
        let (n, t, v) = (s[0], s[2], s[3]);
        let coords = x.permute(&[0, 2, 3, 1]); // [N, T, V, 3]
        let mut fused = Vec::with_capacity(n * v * v);
        for ni in 0..n {
            let sample = coords.slice_axis(0, ni, 1).reshape(&[t, v, 3]);
            let joint_ops = dynamic_operators(&self.static_hg, &sample); // [T, V, V]
            fused.extend(joint_ops.mean_axes(&[0], false).data());
        }
        let embedded = inf.embed.forward_relu(x, ws);
        let e = embedded.shape()[1];
        let feats = embedded.permute(&[0, 2, 3, 1]).mean_axes(&[1], false); // [N, V, E]
        ws.recycle(embedded);
        let sod = self.static_op.data();
        let ld = self.learned.data();
        let cfg = self.topology_config();
        for ni in 0..n {
            let c = &feats.data()[ni * v * e..(ni + 1) * v * e];
            let topo = normalize_rows(&from_scratch_operator(c, v, e, &cfg));
            let blk = &mut fused[ni * v * v..(ni + 1) * v * v];
            for (((f, &tv), &sv), &lv) in
                blk.iter_mut().zip(topo.data()).zip(sod.data()).zip(ld.data())
            {
                *f += tv + sv + lv;
            }
        }
        NdArray::from_vec(fused, &[n, v, v])
    }
}

impl Module for DhgcnLite {
    fn forward(&self, x: &Tensor) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "input must be [N, C, T, V]");
        assert_eq!(shape[1], self.config.dims.in_channels, "channel mismatch");
        assert_eq!(shape[3], self.config.dims.n_joints, "joint mismatch");
        let op = self.fused_operator(x);
        let mut h = self.input_bn.forward(x);
        for block in &self.blocks {
            h = block.forward(&h, &op);
        }
        self.fc.forward(&global_avg_pool(&h))
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.input_bn.parameters();
        ps.push(self.learned.clone());
        // NOTE: the topology embedding is deliberately *not* trained in the
        // lite variant — it acts as a fixed random projection. Training it
        // end-to-end would require applying the topology operator to the
        // embedded features per block, which is exactly the per-block cost
        // this variant removes; the learned matrix B carries the adaptive
        // topology instead.
        for b in &self.blocks {
            ps.extend(b.parameters());
        }
        ps.extend(self.fc.parameters());
        ps
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.input_bn.buffers();
        for b in &self.blocks {
            bs.extend(b.buffers());
        }
        bs
    }

    fn set_training(&mut self, training: bool) {
        self.input_bn.set_training(training);
        for b in &mut self.blocks {
            b.set_training(training);
        }
        if training {
            self.inference = None;
        }
    }

    fn prepare_inference(&mut self) {
        self.set_training(false);
        for b in &mut self.blocks {
            b.prepare_inference();
        }
        let (bn_scale, bn_shift) = self.input_bn.eval_affine();
        self.inference = Some(LiteInference {
            embed: EvalConv::from_conv(&self.embed),
            bn_scale,
            bn_shift,
        });
    }

    fn forward_inference(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let Some(inf) = &self.inference else {
            // not compiled: grad-free but otherwise identical to forward
            let _guard = dhg_tensor::no_grad();
            return self.forward(x);
        };
        let _guard = dhg_tensor::no_grad();
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "input must be [N, C, T, V]");
        assert_eq!(shape[1], self.config.dims.in_channels, "channel mismatch");
        assert_eq!(shape[3], self.config.dims.n_joints, "joint mismatch");
        let xnd = x.data();
        let op = self.fused_operator_eval(&xnd, inf, ws);
        let mut h = self.input_bn.forward_affine(&xnd, &inf.bn_scale, &inf.bn_shift, ws);
        for block in &self.blocks {
            let next = block.forward_eval(&h, &op, ws);
            ws.recycle(h);
            h = next;
        }
        ws.recycle(op);
        let pooled = h.mean_axes(&[2, 3], false); // [N, C]
        ws.recycle(h);
        Tensor::constant(linear_eval(&self.fc, &pooled, ws))
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, Plan, Severity, SymShape};
        let mut p = Plan::new(input);
        if !p.expect_nctv(self.config.dims.in_channels, self.config.dims.n_joints)
            || p.has_errors()
        {
            return p;
        }
        for issue in dhg_hypergraph::validate_hypergraph(&self.static_hg) {
            let code = match issue {
                dhg_hypergraph::IncidenceIssue::EmptyEdge { .. } => DiagCode::IncidenceEmptyEdge,
                dhg_hypergraph::IncidenceIssue::UncoveredVertex { .. } => {
                    DiagCode::IncidenceUncoveredVertex
                }
                dhg_hypergraph::IncidenceIssue::NotBinary { .. } => DiagCode::IncidenceNotBinary,
                dhg_hypergraph::IncidenceIssue::ImpNotNormalized { .. }
                | dhg_hypergraph::IncidenceIssue::ImpOutsideSupport { .. } => {
                    DiagCode::ImpNotNormalized
                }
                dhg_hypergraph::IncidenceIssue::SingularVertexDegree { .. }
                | dhg_hypergraph::IncidenceIssue::SingularEdgeDegree { .. } => {
                    DiagCode::DegreeSingular
                }
            };
            p.diag(code, Severity::Error, format!("static hypergraph: {issue}"));
        }
        if p.has_errors() {
            return p;
        }
        let v = self.config.dims.n_joints;
        // The fused operator is built once per forward: embed conv + pairwise
        // distances + incidence fusion, dominated by the t*v^2 distance work
        // over embed_channels. The embedded features are workspace scratch; the
        // [N, V, V] operator itself stays live across every block.
        let c = input.known(1).unwrap_or(1) as u64;
        let t = input.known(2).unwrap_or(1) as u64;
        let e = self.config.embed_channels as u64;
        let op_cost = dhg_nn::OpCost::vertex_op(c.max(e), t, v as u64)
            .with_scratch(4 * e * t * v as u64);
        p.ws_take("op", &SymShape::batched(&[v, v]));
        p.push_op_costed(
            "fused_operator",
            format!(
                "static \u{2295} joint-weight \u{2295} topology k-NN(k={})/k-means(k={}) \u{2295} learned -> [N, {v}, {v}]",
                self.config.kn, self.config.km
            ),
            input.clone(),
            op_cost,
        );
        p.ws_take("h0", input);
        p.extend("input_bn", self.input_bn.plan(&p.output().clone()));
        for (i, block) in self.blocks.iter().enumerate() {
            p.extend(&format!("blocks[{i}]"), block.plan(&p.output().clone()));
            if p.has_errors() {
                return p;
            }
            p.ws_give(&if i == 0 { "h0".to_string() } else { format!("blocks[{}].ret", i - 1) });
        }
        p.ws_give("op");
        let channels = p.output().at(1);
        let pooled = SymShape(vec![input.at(0), channels]);
        p.push_op("global_avg_pool", "mean over (T, V)", pooled);
        if !self.blocks.is_empty() {
            p.ws_give(&format!("blocks[{}].ret", self.blocks.len() - 1));
        }
        p.extend("fc", self.fc.plan(&p.output().clone()));
        p.ws_take("logits", &p.output().clone());
        if !self.input_bn.training() && self.inference.is_none() {
            p.warn(
                DiagCode::NotPrepared,
                "eval-mode DHGCN-lite without folded serving caches; call prepare_inference() before serving",
            );
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dhgcn::{Dhgcn, DhgcnConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dims() -> ModelDims {
        ModelDims { in_channels: 3, n_joints: 25, n_classes: 6 }
    }

    fn lite() -> DhgcnLite {
        DhgcnLite::new(
            DhgcnLiteConfig::new(dims()),
            &SkeletonTopology::ntu25(),
            &mut StdRng::seed_from_u64(0),
        )
    }

    fn input(n: usize, t: usize) -> Tensor {
        Tensor::constant(NdArray::from_vec(
            (0..n * 3 * t * 25).map(|i| (i as f32 * 0.021).sin()).collect(),
            &[n, 3, t, 25],
        ))
    }

    #[test]
    fn grad_and_no_grad_logits_are_bitwise_identical_across_thread_counts() {
        let mut m = lite();
        m.set_training(false);
        let x = input(2, 8);
        let mut ws = Workspace::new();
        let reference = m.forward(&x).array();
        for threads in [1usize, 2, 8] {
            dhg_tensor::parallel::with_threads(threads, || {
                let grad = m.forward(&x).array();
                // unprepared forward_inference = the default no_grad path
                let no_grad = m.forward_inference(&x, &mut ws).array();
                assert_eq!(reference, grad, "grad path diverged at {threads} threads");
                assert_eq!(reference, no_grad, "no_grad path diverged at {threads} threads");
            });
        }
    }

    #[test]
    fn forward_and_gradients() {
        let m = lite();
        let y = m.forward(&input(2, 12));
        assert_eq!(y.shape(), vec![2, 6]);
        y.cross_entropy(&[0, 3]).backward();
        let missing = m.parameters().iter().filter(|p| p.grad().is_none()).count();
        assert_eq!(missing, 0, "every trainable parameter must receive a gradient");
    }

    #[test]
    fn is_smaller_and_shallower_than_full_dhgcn() {
        let full = Dhgcn::for_topology(
            DhgcnConfig::small(dims()),
            &SkeletonTopology::ntu25(),
            &mut StdRng::seed_from_u64(0),
        );
        let m = lite();
        assert!(m.n_blocks() < full.n_blocks());
        assert!(
            m.n_parameters() < full.n_parameters(),
            "lite {} vs full {}",
            m.n_parameters(),
            full.n_parameters()
        );
    }

    #[test]
    fn low_rank_theta_shrinks_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        let full = LowRankTheta::new(64, 64, 1, &mut rng);
        let lite = LowRankTheta::new(64, 64, 4, &mut rng);
        let count = |t: &LowRankTheta| t.parameters().iter().map(|p| p.data().len()).sum::<usize>();
        assert!(
            (count(&lite) as f32) < count(&full) as f32 * 0.6,
            "{} vs {}",
            count(&lite),
            count(&full)
        );
    }

    #[test]
    fn fused_operator_shape_and_finiteness() {
        let m = lite();
        let op = m.fused_operator(&input(3, 8));
        assert_eq!(op.shape(), vec![3, 25, 25]);
        assert!(op.array().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn compiled_inference_matches_eval_within_tolerance() {
        let mut m = lite();
        let x = input(2, 10);
        // warm the BN statistics so folding is non-trivial
        m.forward(&x);
        m.set_training(false);
        let reference = {
            let _g = dhg_tensor::no_grad();
            m.forward(&x).array()
        };
        m.prepare_inference();
        let mut ws = Workspace::new();
        let before = dhg_tensor::graph_nodes_created();
        let got = m.forward_inference(&x, &mut ws).array();
        assert_eq!(
            dhg_tensor::graph_nodes_created(),
            before,
            "compiled inference must not allocate autograd nodes"
        );
        assert!(reference.allclose(&got, 1e-4, 1e-5), "compiled logits diverged");
        // a second call reuses pooled buffers and stays put
        let again = m.forward_inference(&x, &mut ws).array();
        assert_eq!(got, again);
    }

    #[test]
    fn lite_buffers_cover_every_batchnorm() {
        let m = lite();
        // DataBn (2) + per block: BN (2) + TCN BN (2)
        assert_eq!(m.buffers().len(), 2 + m.n_blocks() * 4);
    }

    #[test]
    fn eval_is_deterministic() {
        let mut m = lite();
        m.set_training(false);
        let x = input(1, 10);
        assert_eq!(m.forward(&x).array(), m.forward(&x).array());
    }
}
