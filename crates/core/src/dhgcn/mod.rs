//! DHGCN — the Dynamic Hypergraph Convolutional Network (§3).
//!
//! The backbone is a stack of **DHST blocks** (Dynamic Hypergraph
//! Spatial-Temporal blocks, Fig. 5). Each block's spatial module sums
//! three branches:
//!
//! 1. **Static hypergraph** (§3.2) — the fixed six-hyperedge skeleton
//!    operator of Eq. 5.
//! 2. **Dynamic joint weight** (§3.3) — per-frame operators `Imp·Impᵀ`
//!    (Eq. 9) built from each joint's moving distance (Eq. 6–7).
//! 3. **Dynamic topology** (§3.4) — an FC embedding (Eq. 10) followed by
//!    `k_n`-NN and `k_m`-means hyperedge construction per sample (or per
//!    frame, as in the paper — configurable because per-frame is the
//!    dominant compute cost the paper's §5 laments).
//!
//! The spatial output feeds a dilated `3×1` temporal convolution; ten such
//! blocks, global average pooling and an FC classifier complete the model
//! (§3.5). Branch membership is configurable to reproduce the Tab. 4
//! ablation, and `(k_n, k_m)` to reproduce Tab. 3.

mod block;
mod branches;
mod lite;
mod model;

pub use block::DhstBlock;
pub use branches::{JointWeightBranch, StaticBranch, TopologyBranch};
pub use lite::{DhgcnLite, DhgcnLiteConfig};
pub use model::{BranchConfig, Dhgcn, DhgcnConfig, TopologyGranularity};
