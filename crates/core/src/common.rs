//! Shared machinery of every spatial (hyper)graph convolution.

use dhg_tensor::{parallel, NdArray, Tensor, Workspace};

/// The geometry every model in the zoo is built for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelDims {
    /// Input channels (3 coordinates).
    pub in_channels: usize,
    /// Number of joints `V`.
    pub n_joints: usize,
    /// Number of action classes.
    pub n_classes: usize,
}

/// One backbone stage: output channel width and temporal stride.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSpec {
    /// Output channels of the stage.
    pub channels: usize,
    /// Temporal stride (2 halves the frame count).
    pub stride: usize,
}

impl StageSpec {
    /// Convenience constructor.
    pub fn new(channels: usize, stride: usize) -> Self {
        StageSpec { channels, stride }
    }
}

/// The paper's 10-block backbone widths (Fig. 5, following ST-GCN:
/// 64×4, 128×3 with a stride-2 entry, 256×3 with a stride-2 entry).
pub fn paper_stages() -> Vec<StageSpec> {
    vec![
        StageSpec::new(64, 1),
        StageSpec::new(64, 1),
        StageSpec::new(64, 1),
        StageSpec::new(64, 1),
        StageSpec::new(128, 2),
        StageSpec::new(128, 1),
        StageSpec::new(128, 1),
        StageSpec::new(256, 2),
        StageSpec::new(256, 1),
        StageSpec::new(256, 1),
    ]
}

/// A width/depth-scaled backbone for CPU experiments (see DESIGN.md's
/// scaling substitution). Identical topology, fewer blocks and channels.
pub fn small_stages() -> Vec<StageSpec> {
    vec![StageSpec::new(16, 1), StageSpec::new(16, 1), StageSpec::new(32, 2)]
}

/// Apply a static vertex operator to features:
/// `y[n,c,t,v] = Σ_u op[v,u] · x[n,c,t,u]`.
///
/// `x` is `[N, C, T, V]`, `op` is `[V, V]` (e.g. a normalised adjacency,
/// Eq. 1, or a hypergraph operator, Eq. 5). Implemented as a broadcast
/// batched matmul on the joint axis so the gradient comes from the tested
/// matmul adjoints.
pub fn apply_vertex_op(x: &Tensor, op: &Tensor) -> Tensor {
    let xs = x.shape();
    assert_eq!(xs.len(), 4, "features must be [N, C, T, V]");
    let v = xs[3];
    assert_eq!(op.shape(), vec![v, v], "operator must be [V, V]");
    // y = x @ opᵀ over the trailing joint axis
    x.matmul(&op.transpose_last2())
}

/// Apply a per-sample, per-frame vertex operator:
/// `y[n,c,t,v] = Σ_u op[n,t,v,u] · x[n,c,t,u]`.
///
/// `x` is `[N, C, T, V]`, `op` is `[N, T, V, V]` (the dynamic operators of
/// Eq. 9 or the dynamic topology of §3.4). The feature tensor is permuted
/// so that the batched matmul batches over `(N, T)`.
pub fn apply_dynamic_vertex_op(x: &Tensor, op: &Tensor) -> Tensor {
    let xs = x.shape();
    let os = op.shape();
    assert_eq!(xs.len(), 4, "features must be [N, C, T, V]");
    assert_eq!(os.len(), 4, "operator must be [N, T, V, V]");
    assert_eq!(os[0], xs[0], "batch mismatch");
    assert_eq!(os[1], xs[2], "frame mismatch");
    assert_eq!(os[2], xs[3], "operator must be square in V");
    assert_eq!(os[3], xs[3], "operator must be square in V");
    // [N, C, T, V] → [N, T, V, C]; op [N,T,V,V] @ x' → [N, T, V, C] → back
    let xp = x.permute(&[0, 2, 3, 1]);
    let yp = op.matmul(&xp);
    yp.permute(&[0, 3, 1, 2])
}

/// Shared inner loop of the grad-free vertex-mixing kernels: every output
/// row `y[n,c,t,:]` is a `[V, V]` operator block (selected by
/// `op_offset(n, t)` into `opd`) applied to the matching input row. The
/// output buffer comes from the workspace, so steady-state inference
/// allocates nothing.
fn mix_vertices_eval(
    x: &NdArray,
    opd: &[f32],
    op_offset: impl Fn(usize, usize) -> usize + Sync,
    ws: &mut Workspace,
) -> NdArray {
    let s = x.shape();
    let (n, c, t, v) = (s[0], s[1], s[2], s[3]);
    let mut out = ws.take(n * c * t * v);
    let xd = x.data();
    let work = n * c * t * v * v;
    parallel::for_each_block(&mut out, v, work, |item, row| {
        let ti = item % t;
        let ni = item / (c * t);
        let xrow = &xd[item * v..(item + 1) * v];
        let base = op_offset(ni, ti);
        for (vi, o) in row.iter_mut().enumerate() {
            let oprow = &opd[base + vi * v..base + (vi + 1) * v];
            let mut acc = 0.0;
            for (a, b) in oprow.iter().zip(xrow) {
                acc += a * b;
            }
            *o = acc;
        }
    });
    NdArray::from_vec(out, &[n, c, t, v])
}

/// Grad-free [`apply_vertex_op`]: shared `[V, V]` operator on raw arrays.
pub fn apply_vertex_op_eval(x: &NdArray, op: &NdArray, ws: &mut Workspace) -> NdArray {
    let v = x.shape()[3];
    assert_eq!(op.shape(), &[v, v], "operator must be [V, V]");
    mix_vertices_eval(x, op.data(), |_, _| 0, ws)
}

/// Grad-free [`apply_per_sample_vertex_op`]: `op` is `[N, V, V]`.
pub fn apply_per_sample_vertex_op_eval(x: &NdArray, op: &NdArray, ws: &mut Workspace) -> NdArray {
    let s = x.shape();
    let (n, v) = (s[0], s[3]);
    assert_eq!(op.shape(), &[n, v, v], "operator must be [N, V, V]");
    mix_vertices_eval(x, op.data(), move |ni, _| ni * v * v, ws)
}

/// Grad-free [`apply_dynamic_vertex_op`]: `op` is `[N, T, V, V]`.
pub fn apply_dynamic_vertex_op_eval(x: &NdArray, op: &NdArray, ws: &mut Workspace) -> NdArray {
    let s = x.shape();
    let (n, t, v) = (s[0], s[2], s[3]);
    assert_eq!(op.shape(), &[n, t, v, v], "operator must be [N, T, V, V]");
    mix_vertices_eval(x, op.data(), move |ni, ti| (ni * t + ti) * v * v, ws)
}

/// Grad-free classifier head: `logits = x W (+ b)` on raw arrays, with the
/// matmul output drawn from the workspace.
pub fn linear_eval(fc: &dhg_nn::Linear, x: &NdArray, ws: &mut Workspace) -> NdArray {
    let mut y = x.matmul_ws(&fc.weight().data(), ws);
    if let Some(b) = fc.bias() {
        let bd = b.data();
        let k = bd.data().len();
        for row in y.data_mut().chunks_mut(k) {
            for (l, &bv) in row.iter_mut().zip(bd.data()) {
                *l += bv;
            }
        }
    }
    y
}

/// Input data normalisation as published for the ST-GCN family: batch
/// norm over `C·V` joint-channels, so every joint's coordinate
/// distribution is standardised separately. Normalising only over the 3
/// coordinate channels would leave each joint's large static offset in
/// place and drown the motion signal.
pub struct DataBn {
    bn: dhg_nn::BatchNorm2d,
    channels: usize,
    joints: usize,
}

impl DataBn {
    /// Build for `[N, channels, T, joints]` inputs.
    pub fn new(channels: usize, joints: usize) -> Self {
        DataBn { bn: dhg_nn::BatchNorm2d::new(channels * joints), channels, joints }
    }

    /// Whether the inner BatchNorm is in training mode.
    pub fn training(&self) -> bool {
        self.bn.training()
    }

    /// Whether the inner BatchNorm's running statistics are untouched
    /// (see [`dhg_nn::BatchNorm2d::stats_cold`]).
    pub fn stats_cold(&self) -> bool {
        self.bn.stats_cold()
    }

    /// Eval-mode DataBn as one per-(channel, joint) affine map. The inner
    /// BN runs over `C·V` folded channels where folded channel `c·V + v`
    /// normalises coordinate `c` of joint `v`, so the affine applies to the
    /// native `[N, C, T, V]` layout directly — no permute, no reshape.
    pub fn eval_affine(&self) -> (Vec<f32>, Vec<f32>) {
        self.bn.eval_affine()
    }

    /// Grad-free eval forward using a precomputed [`DataBn::eval_affine`].
    pub fn forward_affine(
        &self,
        x: &NdArray,
        scale: &[f32],
        shift: &[f32],
        ws: &mut Workspace,
    ) -> NdArray {
        let s = x.shape();
        assert_eq!(s.len(), 4, "DataBn expects [N, C, T, V]");
        assert_eq!(s[1], self.channels, "DataBn channel mismatch");
        assert_eq!(s[3], self.joints, "DataBn joint mismatch");
        let (n, c, t, v) = (s[0], s[1], s[2], s[3]);
        let mut out = ws.take(n * c * t * v);
        let xd = x.data();
        parallel::for_each_block(&mut out, v, n * c * t * v, |item, row| {
            let ci = (item / t) % c;
            let xrow = &xd[item * v..(item + 1) * v];
            for (vi, (o, &xv)) in row.iter_mut().zip(xrow).enumerate() {
                let k = ci * v + vi;
                *o = scale[k] * xv + shift[k];
            }
        });
        NdArray::from_vec(out, &[n, c, t, v])
    }
}

impl dhg_nn::Module for DataBn {
    fn forward(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "DataBn expects [N, C, T, V]");
        assert_eq!(s[1], self.channels, "DataBn channel mismatch");
        assert_eq!(s[3], self.joints, "DataBn joint mismatch");
        let (n, c, t, v) = (s[0], s[1], s[2], s[3]);
        // [N, C, T, V] → [N, C·V, T, 1] → BN → back
        let folded = x.permute(&[0, 1, 3, 2]).reshape(&[n, c * v, t, 1]);
        let normed = self.bn.forward(&folded);
        normed.reshape(&[n, c, v, t]).permute(&[0, 1, 3, 2])
    }

    fn parameters(&self) -> Vec<Tensor> {
        self.bn.parameters()
    }

    fn buffers(&self) -> Vec<dhg_nn::Buffer> {
        self.bn.buffers()
    }

    fn set_training(&mut self, training: bool) {
        self.bn.set_training(training);
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, Plan};
        let mut p = Plan::new(input);
        if input.rank() != 4 {
            p.error(
                DiagCode::RankMismatch,
                format!("DataBn expects [N, C, T, V], got rank {} {input}", input.rank()),
            );
            return p;
        }
        if let Some(c) = input.known(1) {
            if c != self.channels {
                p.error(
                    DiagCode::ChannelMismatch,
                    format!("DataBn channel mismatch: expected {}, got {c}", self.channels),
                );
                return p;
            }
        }
        if let Some(v) = input.known(3) {
            if v != self.joints {
                p.error(
                    DiagCode::JointMismatch,
                    format!("DataBn joint mismatch: expected {}, got {v}", self.joints),
                );
                return p;
            }
        }
        p.push_op(
            "databn",
            format!("BN over {}x{} joint-channels", self.channels, self.joints),
            input.clone(),
        );
        if !self.bn.training() && self.bn.stats_cold() {
            p.warn(
                DiagCode::BnStatsCold,
                "eval-mode DataBn with untouched running statistics (mean=0, var=1)",
            );
        }
        p
    }
}

/// Apply a per-sample vertex operator:
/// `y[n,c,t,v] = Σ_u op[n,v,u] · x[n,c,t,u]`.
///
/// `x` is `[N, C, T, V]`, `op` is `[N, V, V]` (e.g. 2s-AGCN's adaptive
/// `A + B + C` operator, which varies per sample but not per frame).
pub fn apply_per_sample_vertex_op(x: &Tensor, op: &Tensor) -> Tensor {
    let xs = x.shape();
    let os = op.shape();
    assert_eq!(xs.len(), 4, "features must be [N, C, T, V]");
    assert_eq!(os.len(), 3, "operator must be [N, V, V]");
    assert_eq!(os[0], xs[0], "batch mismatch");
    assert_eq!(os[1], xs[3], "operator must be square in V");
    assert_eq!(os[2], xs[3], "operator must be square in V");
    let (n, v) = (xs[0], xs[3]);
    let xp = x.permute(&[0, 2, 3, 1]); // [N, T, V, C]
    let opb = op.reshape(&[n, 1, v, v]); // broadcast over T
    opb.matmul(&xp).permute(&[0, 3, 1, 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhg_tensor::NdArray;

    #[test]
    fn static_op_identity_is_noop() {
        let x = Tensor::constant(NdArray::from_vec((0..24).map(|i| i as f32).collect(), &[1, 2, 3, 4]));
        let op = Tensor::constant(NdArray::eye(4));
        let y = apply_vertex_op(&x, &op);
        assert_eq!(y.array(), x.array());
    }

    #[test]
    fn static_op_mixes_joints_not_time() {
        // operator that swaps joints 0 and 1 of a 2-joint skeleton
        let op = Tensor::constant(NdArray::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]));
        let x = Tensor::constant(NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]));
        let y = apply_vertex_op(&x, &op).array();
        // frames keep their place, joints swap within each frame
        assert_eq!(y.data(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn dynamic_op_matches_static_when_constant() {
        let v = 3;
        let opm = NdArray::from_vec(
            vec![0.5, 0.5, 0.0, 0.0, 1.0, 0.0, 0.2, 0.3, 0.5],
            &[v, v],
        );
        let x = Tensor::constant(NdArray::from_vec(
            (0..2 * 2 * 2 * v).map(|i| (i as f32 * 0.3).sin()).collect(),
            &[2, 2, 2, v],
        ));
        // tile the static op over N=2, T=2
        let tiled = {
            let r = opm.reshape(&[1, 1, v, v]);
            let refs = [&r, &r];
            let row = NdArray::concat(&refs, 1);
            let rrefs = [&row, &row];
            NdArray::concat(&rrefs, 0)
        };
        let a = apply_vertex_op(&x, &Tensor::constant(opm)).array();
        let b = apply_dynamic_vertex_op(&x, &Tensor::constant(tiled)).array();
        assert!(a.allclose(&b, 1e-5, 1e-6));
    }

    #[test]
    fn dynamic_op_varies_per_frame() {
        // frame 0: identity; frame 1: all-mass-on-joint-0
        let id = NdArray::eye(2).reshape(&[1, 1, 2, 2]);
        let collapse = NdArray::from_vec(vec![1.0, 1.0, 0.0, 0.0], &[2, 2]).reshape(&[1, 1, 2, 2]);
        let op = NdArray::concat(&[&id, &collapse], 1);
        let x = Tensor::constant(NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]));
        let y = apply_dynamic_vertex_op(&x, &Tensor::constant(op)).array();
        // frame 0 unchanged, frame 1: joint 0 = 3+4, joint 1 = 0
        assert_eq!(y.data(), &[1.0, 2.0, 7.0, 0.0]);
    }

    #[test]
    fn eval_mix_kernels_match_tensor_paths() {
        let mut ws = Workspace::new();
        let (n, c, t, v) = (2, 3, 4, 5);
        let x = NdArray::from_vec(
            (0..n * c * t * v).map(|i| (i as f32 * 0.17).sin()).collect(),
            &[n, c, t, v],
        );
        let xt = Tensor::constant(x.clone());
        let op = NdArray::from_vec((0..v * v).map(|i| (i as f32 * 0.3).cos()).collect(), &[v, v]);
        let a = apply_vertex_op(&xt, &Tensor::constant(op.clone())).array();
        let b = apply_vertex_op_eval(&x, &op, &mut ws);
        assert!(a.allclose(&b, 1e-5, 1e-6));

        let ops = NdArray::from_vec(
            (0..n * v * v).map(|i| (i as f32 * 0.11).sin()).collect(),
            &[n, v, v],
        );
        let a = apply_per_sample_vertex_op(&xt, &Tensor::constant(ops.clone())).array();
        let b = apply_per_sample_vertex_op_eval(&x, &ops, &mut ws);
        assert!(a.allclose(&b, 1e-5, 1e-6));

        let dops = NdArray::from_vec(
            (0..n * t * v * v).map(|i| (i as f32 * 0.07).cos()).collect(),
            &[n, t, v, v],
        );
        let a = apply_dynamic_vertex_op(&xt, &Tensor::constant(dops.clone())).array();
        let b = apply_dynamic_vertex_op_eval(&x, &dops, &mut ws);
        assert!(a.allclose(&b, 1e-5, 1e-6));
    }

    #[test]
    fn databn_affine_matches_eval_forward() {
        use dhg_nn::Module;
        let mut bn = DataBn::new(2, 3);
        // warm the running stats with a few training batches
        for i in 0..4 {
            let x = Tensor::constant(NdArray::from_vec(
                (0..4 * 2 * 5 * 3).map(|j| ((i * 31 + j) as f32 * 0.13).sin() * 2.0).collect(),
                &[4, 2, 5, 3],
            ));
            bn.forward(&x);
        }
        bn.set_training(false);
        let x = NdArray::from_vec(
            (0..2 * 2 * 6 * 3).map(|j| (j as f32 * 0.19).cos()).collect(),
            &[2, 2, 6, 3],
        );
        let reference = {
            let _g = dhg_tensor::no_grad();
            bn.forward(&Tensor::constant(x.clone())).array()
        };
        let (scale, shift) = bn.eval_affine();
        let mut ws = Workspace::new();
        let got = bn.forward_affine(&x, &scale, &shift, &mut ws);
        assert!(reference.allclose(&got, 1e-5, 1e-6));
    }

    #[test]
    fn gradients_flow_through_both_paths() {
        let x = Tensor::param(NdArray::ones(&[1, 2, 2, 3]));
        let op = Tensor::param(NdArray::eye(3));
        apply_vertex_op(&x, &op).square().sum_all().backward();
        assert!(x.grad().is_some() && op.grad().is_some());

        let x2 = Tensor::param(NdArray::ones(&[1, 2, 2, 3]));
        let dop = Tensor::param(NdArray::ones(&[1, 2, 3, 3]));
        apply_dynamic_vertex_op(&x2, &dop).square().sum_all().backward();
        assert!(x2.grad().is_some() && dop.grad().is_some());
    }
}
