//! Shared machinery of every spatial (hyper)graph convolution.

use dhg_tensor::Tensor;

/// The geometry every model in the zoo is built for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelDims {
    /// Input channels (3 coordinates).
    pub in_channels: usize,
    /// Number of joints `V`.
    pub n_joints: usize,
    /// Number of action classes.
    pub n_classes: usize,
}

/// One backbone stage: output channel width and temporal stride.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageSpec {
    /// Output channels of the stage.
    pub channels: usize,
    /// Temporal stride (2 halves the frame count).
    pub stride: usize,
}

impl StageSpec {
    /// Convenience constructor.
    pub fn new(channels: usize, stride: usize) -> Self {
        StageSpec { channels, stride }
    }
}

/// The paper's 10-block backbone widths (Fig. 5, following ST-GCN:
/// 64×4, 128×3 with a stride-2 entry, 256×3 with a stride-2 entry).
pub fn paper_stages() -> Vec<StageSpec> {
    vec![
        StageSpec::new(64, 1),
        StageSpec::new(64, 1),
        StageSpec::new(64, 1),
        StageSpec::new(64, 1),
        StageSpec::new(128, 2),
        StageSpec::new(128, 1),
        StageSpec::new(128, 1),
        StageSpec::new(256, 2),
        StageSpec::new(256, 1),
        StageSpec::new(256, 1),
    ]
}

/// A width/depth-scaled backbone for CPU experiments (see DESIGN.md's
/// scaling substitution). Identical topology, fewer blocks and channels.
pub fn small_stages() -> Vec<StageSpec> {
    vec![StageSpec::new(16, 1), StageSpec::new(16, 1), StageSpec::new(32, 2)]
}

/// Apply a static vertex operator to features:
/// `y[n,c,t,v] = Σ_u op[v,u] · x[n,c,t,u]`.
///
/// `x` is `[N, C, T, V]`, `op` is `[V, V]` (e.g. a normalised adjacency,
/// Eq. 1, or a hypergraph operator, Eq. 5). Implemented as a broadcast
/// batched matmul on the joint axis so the gradient comes from the tested
/// matmul adjoints.
pub fn apply_vertex_op(x: &Tensor, op: &Tensor) -> Tensor {
    let xs = x.shape();
    assert_eq!(xs.len(), 4, "features must be [N, C, T, V]");
    let v = xs[3];
    assert_eq!(op.shape(), vec![v, v], "operator must be [V, V]");
    // y = x @ opᵀ over the trailing joint axis
    x.matmul(&op.transpose_last2())
}

/// Apply a per-sample, per-frame vertex operator:
/// `y[n,c,t,v] = Σ_u op[n,t,v,u] · x[n,c,t,u]`.
///
/// `x` is `[N, C, T, V]`, `op` is `[N, T, V, V]` (the dynamic operators of
/// Eq. 9 or the dynamic topology of §3.4). The feature tensor is permuted
/// so that the batched matmul batches over `(N, T)`.
pub fn apply_dynamic_vertex_op(x: &Tensor, op: &Tensor) -> Tensor {
    let xs = x.shape();
    let os = op.shape();
    assert_eq!(xs.len(), 4, "features must be [N, C, T, V]");
    assert_eq!(os.len(), 4, "operator must be [N, T, V, V]");
    assert_eq!(os[0], xs[0], "batch mismatch");
    assert_eq!(os[1], xs[2], "frame mismatch");
    assert_eq!(os[2], xs[3], "operator must be square in V");
    assert_eq!(os[3], xs[3], "operator must be square in V");
    // [N, C, T, V] → [N, T, V, C]; op [N,T,V,V] @ x' → [N, T, V, C] → back
    let xp = x.permute(&[0, 2, 3, 1]);
    let yp = op.matmul(&xp);
    yp.permute(&[0, 3, 1, 2])
}

/// Input data normalisation as published for the ST-GCN family: batch
/// norm over `C·V` joint-channels, so every joint's coordinate
/// distribution is standardised separately. Normalising only over the 3
/// coordinate channels would leave each joint's large static offset in
/// place and drown the motion signal.
pub struct DataBn {
    bn: dhg_nn::BatchNorm2d,
    channels: usize,
    joints: usize,
}

impl DataBn {
    /// Build for `[N, channels, T, joints]` inputs.
    pub fn new(channels: usize, joints: usize) -> Self {
        DataBn { bn: dhg_nn::BatchNorm2d::new(channels * joints), channels, joints }
    }
}

impl dhg_nn::Module for DataBn {
    fn forward(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 4, "DataBn expects [N, C, T, V]");
        assert_eq!(s[1], self.channels, "DataBn channel mismatch");
        assert_eq!(s[3], self.joints, "DataBn joint mismatch");
        let (n, c, t, v) = (s[0], s[1], s[2], s[3]);
        // [N, C, T, V] → [N, C·V, T, 1] → BN → back
        let folded = x.permute(&[0, 1, 3, 2]).reshape(&[n, c * v, t, 1]);
        let normed = self.bn.forward(&folded);
        normed.reshape(&[n, c, v, t]).permute(&[0, 1, 3, 2])
    }

    fn parameters(&self) -> Vec<Tensor> {
        self.bn.parameters()
    }

    fn set_training(&mut self, training: bool) {
        self.bn.set_training(training);
    }
}

/// Apply a per-sample vertex operator:
/// `y[n,c,t,v] = Σ_u op[n,v,u] · x[n,c,t,u]`.
///
/// `x` is `[N, C, T, V]`, `op` is `[N, V, V]` (e.g. 2s-AGCN's adaptive
/// `A + B + C` operator, which varies per sample but not per frame).
pub fn apply_per_sample_vertex_op(x: &Tensor, op: &Tensor) -> Tensor {
    let xs = x.shape();
    let os = op.shape();
    assert_eq!(xs.len(), 4, "features must be [N, C, T, V]");
    assert_eq!(os.len(), 3, "operator must be [N, V, V]");
    assert_eq!(os[0], xs[0], "batch mismatch");
    assert_eq!(os[1], xs[3], "operator must be square in V");
    assert_eq!(os[2], xs[3], "operator must be square in V");
    let (n, v) = (xs[0], xs[3]);
    let xp = x.permute(&[0, 2, 3, 1]); // [N, T, V, C]
    let opb = op.reshape(&[n, 1, v, v]); // broadcast over T
    opb.matmul(&xp).permute(&[0, 3, 1, 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhg_tensor::NdArray;

    #[test]
    fn static_op_identity_is_noop() {
        let x = Tensor::constant(NdArray::from_vec((0..24).map(|i| i as f32).collect(), &[1, 2, 3, 4]));
        let op = Tensor::constant(NdArray::eye(4));
        let y = apply_vertex_op(&x, &op);
        assert_eq!(y.array(), x.array());
    }

    #[test]
    fn static_op_mixes_joints_not_time() {
        // operator that swaps joints 0 and 1 of a 2-joint skeleton
        let op = Tensor::constant(NdArray::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]));
        let x = Tensor::constant(NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]));
        let y = apply_vertex_op(&x, &op).array();
        // frames keep their place, joints swap within each frame
        assert_eq!(y.data(), &[2.0, 1.0, 4.0, 3.0]);
    }

    #[test]
    fn dynamic_op_matches_static_when_constant() {
        let v = 3;
        let opm = NdArray::from_vec(
            vec![0.5, 0.5, 0.0, 0.0, 1.0, 0.0, 0.2, 0.3, 0.5],
            &[v, v],
        );
        let x = Tensor::constant(NdArray::from_vec(
            (0..2 * 2 * 2 * v).map(|i| (i as f32 * 0.3).sin()).collect(),
            &[2, 2, 2, v],
        ));
        // tile the static op over N=2, T=2
        let tiled = {
            let r = opm.reshape(&[1, 1, v, v]);
            let refs = [&r, &r];
            let row = NdArray::concat(&refs, 1);
            let rrefs = [&row, &row];
            NdArray::concat(&rrefs, 0)
        };
        let a = apply_vertex_op(&x, &Tensor::constant(opm)).array();
        let b = apply_dynamic_vertex_op(&x, &Tensor::constant(tiled)).array();
        assert!(a.allclose(&b, 1e-5, 1e-6));
    }

    #[test]
    fn dynamic_op_varies_per_frame() {
        // frame 0: identity; frame 1: all-mass-on-joint-0
        let id = NdArray::eye(2).reshape(&[1, 1, 2, 2]);
        let collapse = NdArray::from_vec(vec![1.0, 1.0, 0.0, 0.0], &[2, 2]).reshape(&[1, 1, 2, 2]);
        let op = NdArray::concat(&[&id, &collapse], 1);
        let x = Tensor::constant(NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]));
        let y = apply_dynamic_vertex_op(&x, &Tensor::constant(op)).array();
        // frame 0 unchanged, frame 1: joint 0 = 3+4, joint 1 = 0
        assert_eq!(y.data(), &[1.0, 2.0, 7.0, 0.0]);
    }

    #[test]
    fn gradients_flow_through_both_paths() {
        let x = Tensor::param(NdArray::ones(&[1, 2, 2, 3]));
        let op = Tensor::param(NdArray::eye(3));
        apply_vertex_op(&x, &op).square().sum_all().backward();
        assert!(x.grad().is_some() && op.grad().is_some());

        let x2 = Tensor::param(NdArray::ones(&[1, 2, 2, 3]));
        let dop = Tensor::param(NdArray::ones(&[1, 2, 3, 3]));
        apply_dynamic_vertex_op(&x2, &dop).square().sum_all().backward();
        assert!(x2.grad().is_some() && dop.grad().is_some());
    }
}
