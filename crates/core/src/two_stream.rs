//! The two-stream joint–bone fusion framework (§3.5, after 2s-AGCN):
//! identical models are trained on the joint stream and the bone stream,
//! and their prediction scores are summed at test time (Tabs. 1 and 5).

use dhg_nn::{DiagCode, Module, Plan, SymShape};
use dhg_tensor::{NdArray, Tensor, Workspace};

/// Sum two score matrices `[N, K]` (the paper's late fusion).
pub fn fuse_scores(joint_scores: &NdArray, bone_scores: &NdArray) -> NdArray {
    assert_eq!(joint_scores.shape(), bone_scores.shape(), "fusion shape mismatch");
    joint_scores.add(bone_scores)
}

/// A joint-stream model paired with a bone-stream model.
///
/// The harness trains each stream independently (as the paper does); this
/// wrapper evaluates them jointly.
pub struct TwoStream<M: Module> {
    /// Model trained on joint coordinates.
    pub joint: M,
    /// Model trained on bone vectors.
    pub bone: M,
}

impl<M: Module> TwoStream<M> {
    /// Pair two trained stream models.
    pub fn new(joint: M, bone: M) -> Self {
        TwoStream { joint, bone }
    }

    /// Fused scores for pre-built per-stream input batches.
    pub fn predict(&self, joint_batch: &Tensor, bone_batch: &Tensor) -> NdArray {
        let js = self.joint.forward(joint_batch).array();
        let bs = self.bone.forward(bone_batch).array();
        fuse_scores(&js, &bs)
    }

    /// Grad-free fused scores via each stream's compiled inference path.
    pub fn predict_inference(
        &self,
        joint_batch: &Tensor,
        bone_batch: &Tensor,
        ws: &mut Workspace,
    ) -> NdArray {
        let js = self.joint.forward_inference(joint_batch, ws).array();
        let bs = self.bone.forward_inference(bone_batch, ws).array();
        fuse_scores(&js, &bs)
    }

    /// Switch both streams between train and eval mode.
    pub fn set_training(&mut self, training: bool) {
        self.joint.set_training(training);
        self.bone.set_training(training);
    }

    /// Compile both streams for serving (see [`Module::prepare_inference`]).
    pub fn prepare_inference(&mut self) {
        self.joint.prepare_inference();
        self.bone.prepare_inference();
    }

    /// Statically verify the late-fusion contract without running either
    /// stream: each per-stream plan must be clean, and both plans must
    /// produce the same score shape `[N, K]` — the condition
    /// [`fuse_scores`] asserts eagerly at test time.
    pub fn plan_fusion(&self, joint_input: &SymShape, bone_input: &SymShape) -> Plan {
        let mut p = Plan::new(joint_input);
        p.extend("joint", self.joint.plan(joint_input));
        let joint_out = p.output().clone();
        let bone_plan = self.bone.plan(bone_input);
        let bone_out = bone_plan.output().clone();
        p.adopt("bone", &bone_plan);
        if joint_out != bone_out {
            p.error(
                DiagCode::FusionMismatch,
                format!(
                    "fusion shape mismatch: joint stream produces {joint_out}, bone stream produces {bone_out}"
                ),
            );
        } else {
            p.push_op("fuse_scores", "joint + bone late fusion", joint_out);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(NdArray);
    impl Module for Fixed {
        fn forward(&self, _x: &Tensor) -> Tensor {
            Tensor::constant(self.0.clone())
        }
    }

    #[test]
    fn fusion_sums_scores() {
        let a = NdArray::from_vec(vec![1.0, 0.0, 0.0, 2.0], &[2, 2]);
        let b = NdArray::from_vec(vec![0.0, 3.0, 1.0, 1.0], &[2, 2]);
        assert_eq!(fuse_scores(&a, &b).data(), &[1.0, 3.0, 1.0, 3.0]);
    }

    #[test]
    fn fusion_can_fix_a_single_stream_mistake() {
        // joint stream narrowly wrong, bone stream confident and right —
        // the fused prediction is right (the Tab. 5 mechanism)
        let joint = NdArray::from_vec(vec![0.55, 0.45], &[1, 2]); // predicts 0
        let bone = NdArray::from_vec(vec![0.10, 0.90], &[1, 2]); // predicts 1
        let fused = fuse_scores(&joint, &bone);
        assert_eq!(fused.argmax_last(), vec![1]);
    }

    #[test]
    fn two_stream_predicts_with_both_models() {
        let ts = TwoStream::new(
            Fixed(NdArray::from_vec(vec![1.0, 0.0], &[1, 2])),
            Fixed(NdArray::from_vec(vec![0.0, 2.0], &[1, 2])),
        );
        let dummy = Tensor::constant(NdArray::zeros(&[1, 1]));
        let scores = ts.predict(&dummy, &dummy);
        assert_eq!(scores.data(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "fusion shape mismatch")]
    fn mismatched_fusion_panics() {
        fuse_scores(&NdArray::zeros(&[1, 2]), &NdArray::zeros(&[2, 2]));
    }
}
