//! Hand-crafted-feature baseline in the spirit of Lie Group \[34\]: per
//! frame, the relative geometry between bone pairs (pairwise angles and
//! joint distances) is extracted; features are temporally pooled
//! (mean + variance, capturing motion statistics) and classified by a
//! single linear layer. No representation learning — the Tab. 7 row that
//! every deep model comfortably beats.

use crate::common::ModelDims;
use dhg_nn::{Linear, Module};
use dhg_skeleton::SkeletonTopology;
use dhg_tensor::{NdArray, Tensor};
use rand::Rng;

/// Hand-crafted relative-geometry classifier.
pub struct LieFeatureClassifier {
    fc: Linear,
    topology: SkeletonTopology,
    dims: ModelDims,
    feature_width: usize,
}

impl LieFeatureClassifier {
    /// Build for a topology; the feature width is determined by the
    /// number of bones.
    pub fn new(dims: ModelDims, topology: SkeletonTopology, rng: &mut impl Rng) -> Self {
        assert_eq!(dims.n_joints, topology.n_joints(), "dims/topology mismatch");
        let n_bones = topology.bones().len();
        // per frame: bone lengths + consecutive-bone angles + joint heights
        let per_frame = n_bones + n_bones + dims.n_joints;
        let feature_width = per_frame * 2; // mean + variance over time
        LieFeatureClassifier { fc: Linear::new(feature_width, dims.n_classes, rng), topology, dims, feature_width }
    }

    /// Width of the hand-crafted feature vector.
    pub fn feature_width(&self) -> usize {
        self.feature_width
    }

    /// Extract the hand-crafted features of one batch (`[N, 3, T, V]` →
    /// `[N, feature_width]`). Pure array code — nothing here is learned.
    pub fn extract_features(&self, x: &NdArray) -> NdArray {
        let s = x.shape();
        assert_eq!(s.len(), 4, "input must be [N, C, T, V]");
        let (n, t_len, v) = (s[0], s[2], s[3]);
        let bones = self.topology.bones();
        let nb = bones.len();
        let per_frame = nb + nb + v;
        let parents = self.topology.parents();
        let mut features = NdArray::zeros(&[n, self.feature_width]);
        let at = |b: &NdArray, ni: usize, c: usize, t: usize, j: usize| b.at(&[ni, c, t, j]);
        for ni in 0..n {
            // per-frame raw features
            let mut raw = vec![0.0f32; t_len * per_frame];
            for t in 0..t_len {
                let row = &mut raw[t * per_frame..(t + 1) * per_frame];
                // bone lengths
                for (bi, &(child, parent)) in bones.iter().enumerate() {
                    let mut d2 = 0.0;
                    for c in 0..3 {
                        let d = at(x, ni, c, t, child) - at(x, ni, c, t, parent);
                        d2 += d * d;
                    }
                    row[bi] = d2.sqrt();
                }
                // angle between each bone and its parent bone
                for (bi, &(child, parent)) in bones.iter().enumerate() {
                    let grand = parents[parent];
                    let mut dot = 0.0;
                    let (mut na, mut nb2) = (0.0, 0.0);
                    for c in 0..3 {
                        let a = at(x, ni, c, t, child) - at(x, ni, c, t, parent);
                        let b = at(x, ni, c, t, parent) - at(x, ni, c, t, grand);
                        dot += a * b;
                        na += a * a;
                        nb2 += b * b;
                    }
                    let denom = (na.sqrt() * nb2.sqrt()).max(1e-6);
                    row[nb + bi] = (dot / denom).clamp(-1.0, 1.0).acos();
                }
                // joint heights relative to the centre joint
                let cy = at(x, ni, 1, t, self.topology.centre());
                for j in 0..v {
                    row[2 * nb + j] = at(x, ni, 1, t, j) - cy;
                }
            }
            // temporal mean and variance per feature
            for f in 0..per_frame {
                let mut mean = 0.0;
                for t in 0..t_len {
                    mean += raw[t * per_frame + f];
                }
                mean /= t_len as f32;
                let mut var = 0.0;
                for t in 0..t_len {
                    let d = raw[t * per_frame + f] - mean;
                    var += d * d;
                }
                var /= t_len as f32;
                features.set(&[ni, f], mean);
                features.set(&[ni, per_frame + f], var.sqrt());
            }
        }
        features
    }
}

impl Module for LieFeatureClassifier {
    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape()[1], self.dims.in_channels, "channel mismatch");
        // feature extraction is fixed: gradients only flow into the linear
        // classifier, as in the original hand-crafted pipeline
        let feats = Tensor::constant(self.extract_features(&x.data()));
        self.fc.forward(&feats)
    }

    fn parameters(&self) -> Vec<Tensor> {
        self.fc.parameters()
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{Dim, Plan, SymShape};
        let mut p = Plan::new(input);
        if !p.expect_nctv(self.dims.in_channels, self.dims.n_joints) || p.has_errors() {
            return p;
        }
        let feats = SymShape(vec![input.at(0), Dim::Known(self.feature_width)]);
        p.push_op(
            "extract_features",
            format!("hand-crafted geometry, width {}", self.feature_width),
            feats,
        );
        p.extend("fc", self.fc.plan(&p.output().clone()));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhg_skeleton::SkeletonDataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> LieFeatureClassifier {
        let mut rng = StdRng::seed_from_u64(0);
        LieFeatureClassifier::new(
            ModelDims { in_channels: 3, n_joints: 25, n_classes: 4 },
            SkeletonTopology::ntu25(),
            &mut rng,
        )
    }

    #[test]
    fn feature_width_formula() {
        let m = model();
        assert_eq!(m.feature_width(), (24 + 24 + 25) * 2);
    }

    #[test]
    fn features_are_translation_invariant_in_length_terms() {
        let m = model();
        let d = SkeletonDataset::ntu60_like(2, 1, 8, 0);
        let x = d.samples[0].data.reshape(&[1, 3, 8, 25]);
        let shifted = x.add_scalar(2.5);
        let fa = m.extract_features(&x);
        let fb = m.extract_features(&shifted);
        // bone lengths (the first 24 features) are unchanged by translation
        for f in 0..24 {
            assert!((fa.at(&[0, f]) - fb.at(&[0, f])).abs() < 1e-4);
        }
    }

    #[test]
    fn forward_and_gradients() {
        let m = model();
        let d = SkeletonDataset::ntu60_like(4, 1, 8, 1);
        let x = Tensor::constant(d.samples[0].data.reshape(&[1, 3, 8, 25]));
        let y = m.forward(&x);
        assert_eq!(y.shape(), vec![1, 4]);
        y.cross_entropy(&[2]).backward();
        assert!(m.parameters().iter().all(|p| p.grad().is_some()));
        // only the linear layer is trainable
        assert_eq!(m.parameters().len(), 2);
    }

    #[test]
    fn different_motions_give_different_features() {
        let m = model();
        let d = SkeletonDataset::ntu60_like(8, 1, 8, 2);
        let a = m.extract_features(&d.samples[0].data.reshape(&[1, 3, 8, 25]));
        let b = m.extract_features(&d.samples[6].data.reshape(&[1, 3, 8, 25]));
        assert!(!a.allclose(&b, 1e-2, 1e-2));
    }
}
