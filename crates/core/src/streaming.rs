//! The streaming-model contract: sliding-window inference with
//! externally maintained dynamic operators.
//!
//! A streaming session (see `dhg_train::streaming`) feeds a model one
//! window `[N, C, T, V]` per emitted frame. For models whose forward pass
//! derives per-frame operators from the raw coordinates (DHGCN's Eq. 9
//! joint-weight operators), recomputing those from scratch per window
//! wastes exactly the work the session already did maintaining them
//! incrementally — so the contract lets the session *inject* the rolling
//! operators. Models without such state simply ignore the injection and
//! run their ordinary serving path.

use dhg_hypergraph::Hypergraph;
use dhg_nn::Module;
use dhg_tensor::{NdArray, Tensor, Workspace};

/// A model that can score sliding windows of a skeleton stream.
///
/// Every [`Module`] gets a working default (score the window like any
/// other batch); models with window-derived internal state override the
/// methods to accept it from the session instead.
pub trait StreamableModel: Module {
    /// Score one window. `window_ops` carries externally maintained
    /// per-frame operators `[N, T, V, V]` aligned with `x`; models that
    /// report `false` from [`StreamableModel::consumes_window_ops`]
    /// ignore it.
    fn forward_window(
        &self,
        x: &Tensor,
        window_ops: Option<&NdArray>,
        ws: &mut Workspace,
    ) -> Tensor {
        let _ = window_ops;
        self.forward_inference(x, ws)
    }

    /// Whether [`StreamableModel::forward_window`] actually uses injected
    /// operators. Sessions skip rolling maintenance when this is `false`.
    fn consumes_window_ops(&self) -> bool {
        false
    }

    /// The hypergraph the injected operators must be built over (the
    /// model's static skeleton hypergraph for DHGCN's Eq. 9 operators);
    /// `None` when no operators are consumed.
    fn streaming_hypergraph(&self) -> Option<Hypergraph> {
        None
    }

    /// Static plan for one streaming window, so the analyzer can audit the
    /// serving path a `dhg_train` streaming session actually exercises.
    /// `window_ops` is the symbolic shape of the injected operator tensor
    /// (`[N, T, V, V]`), or `None` when the session skips rolling
    /// maintenance. The default delegates to [`Module::plan`], which is
    /// exact for models that ignore the injection.
    fn plan_window(
        &self,
        input: &dhg_nn::SymShape,
        window_ops: Option<&dhg_nn::SymShape>,
    ) -> dhg_nn::Plan {
        let mut p = self.plan(input);
        if window_ops.is_some() && !self.consumes_window_ops() {
            p.warn(
                dhg_nn::DiagCode::FusionMismatch,
                "session maintains rolling operators but the model ignores the injection",
            );
        }
        p
    }
}

impl StreamableModel for crate::Dhgcn {
    fn forward_window(
        &self,
        x: &Tensor,
        window_ops: Option<&NdArray>,
        ws: &mut Workspace,
    ) -> Tensor {
        self.forward_serving(x, window_ops, ws)
    }

    fn consumes_window_ops(&self) -> bool {
        self.config().branches.dynamic_joint_weight
    }

    fn streaming_hypergraph(&self) -> Option<Hypergraph> {
        self.consumes_window_ops().then(|| self.static_hypergraph().clone())
    }

    fn plan_window(
        &self,
        input: &dhg_nn::SymShape,
        window_ops: Option<&dhg_nn::SymShape>,
    ) -> dhg_nn::Plan {
        use dhg_nn::DiagCode;
        let mut p = self.plan(input);
        match window_ops {
            Some(ops) => {
                // injected operators must be [N, T, V, V] aligned with the window
                if ops.rank() != 4 {
                    p.error(
                        DiagCode::RankMismatch,
                        format!("window ops must be [N, T, V, V], got rank {} {ops}", ops.rank()),
                    );
                    return p;
                }
                let v = self.config().dims.n_joints;
                for (axis, want) in [(1, input.known(2)), (2, Some(v)), (3, Some(v))]
                    .into_iter()
                    .filter_map(|(axis, want)| want.map(|w| (axis, w)))
                {
                    if ops.known(axis).is_some_and(|got| got != want) {
                        p.error(
                            DiagCode::ShapeMismatch,
                            format!(
                                "window ops {ops} axis {axis} must be {want} to align with window {input} over {v} joints"
                            ),
                        );
                    }
                }
                if !self.consumes_window_ops() {
                    p.warn(
                        DiagCode::FusionMismatch,
                        "session maintains rolling operators but the joint-weight branch is disabled",
                    );
                }
            }
            None => {
                if self.consumes_window_ops() {
                    p.warn(
                        DiagCode::FusionMismatch,
                        "joint-weight branch active but no rolling operators injected; the model re-derives them per window",
                    );
                }
            }
        }
        p
    }
}

// boxed streamable models delegate wholesale, so registries can hand a
// dynamically chosen model to a StreamingSession (mirrors
// `impl Module for Box<dyn Module>` in dhg_nn)
impl Module for Box<dyn StreamableModel> {
    fn forward(&self, x: &Tensor) -> Tensor {
        (**self).forward(x)
    }

    fn parameters(&self) -> Vec<Tensor> {
        (**self).parameters()
    }

    fn buffers(&self) -> Vec<dhg_nn::Buffer> {
        (**self).buffers()
    }

    fn set_training(&mut self, training: bool) {
        (**self).set_training(training)
    }

    fn forward_inference(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        (**self).forward_inference(x, ws)
    }

    fn prepare_inference(&mut self) {
        (**self).prepare_inference()
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        (**self).plan(input)
    }
}

impl StreamableModel for Box<dyn StreamableModel> {
    fn forward_window(
        &self,
        x: &Tensor,
        window_ops: Option<&NdArray>,
        ws: &mut Workspace,
    ) -> Tensor {
        (**self).forward_window(x, window_ops, ws)
    }

    fn consumes_window_ops(&self) -> bool {
        (**self).consumes_window_ops()
    }

    fn streaming_hypergraph(&self) -> Option<Hypergraph> {
        (**self).streaming_hypergraph()
    }

    fn plan_window(
        &self,
        input: &dhg_nn::SymShape,
        window_ops: Option<&dhg_nn::SymShape>,
    ) -> dhg_nn::Plan {
        (**self).plan_window(input, window_ops)
    }
}

// models whose serving path has no window-derived state: the defaults
// (ordinary batch inference, no operator injection) are exactly right
impl StreamableModel for crate::DhgcnLite {}
impl StreamableModel for crate::StGcn {}
impl StreamableModel for crate::Agcn {}
impl StreamableModel for crate::ShiftGcn {}
impl StreamableModel for crate::TcnClassifier {}
impl StreamableModel for crate::LstmClassifier {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ModelDims;
    use crate::{Dhgcn, DhgcnConfig, DhgcnLite, DhgcnLiteConfig};
    use dhg_skeleton::SkeletonTopology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dims() -> ModelDims {
        ModelDims { in_channels: 3, n_joints: 25, n_classes: 6 }
    }

    #[test]
    fn dhgcn_consumes_ops_iff_joint_weight_branch_active() {
        let mut rng = StdRng::seed_from_u64(0);
        let full = Dhgcn::for_topology(DhgcnConfig::small(dims()), &SkeletonTopology::ntu25(), &mut rng);
        assert!(full.consumes_window_ops());
        assert!(full.streaming_hypergraph().is_some());
        let mut cfg = DhgcnConfig::small(dims());
        cfg.branches = crate::dhgcn::BranchConfig::no_joint_weight();
        let no_jw = Dhgcn::for_topology(cfg, &SkeletonTopology::ntu25(), &mut rng);
        assert!(!no_jw.consumes_window_ops());
        assert!(no_jw.streaming_hypergraph().is_none());
    }

    #[test]
    fn lite_ignores_window_ops() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = DhgcnLite::new(DhgcnLiteConfig::new(dims()), &SkeletonTopology::ntu25(), &mut rng);
        m.prepare_inference();
        assert!(!m.consumes_window_ops());
        let x = Tensor::constant(NdArray::from_vec(
            (0..3 * 8 * 25).map(|i| (i as f32 * 0.03).sin()).collect(),
            &[1, 3, 8, 25],
        ));
        let bogus = NdArray::ones(&[1, 8, 25, 25]);
        let mut ws = Workspace::new();
        let with = m.forward_window(&x, Some(&bogus), &mut ws).array();
        let without = m.forward_window(&x, None, &mut ws).array();
        assert_eq!(with, without, "models without window state must ignore the injection");
    }

    #[test]
    fn plan_window_validates_ops_alignment() {
        use dhg_nn::{DiagCode, SymShape};
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = Dhgcn::for_topology(DhgcnConfig::small(dims()), &SkeletonTopology::ntu25(), &mut rng);
        let x = Tensor::constant(NdArray::from_vec(
            (0..3 * 8 * 25).map(|i| (i as f32 * 0.017).sin()).collect(),
            &[1, 3, 8, 25],
        ));
        m.forward(&x); // warm BN
        m.prepare_inference();
        let win = SymShape::nctv(3, 8, 25);
        // aligned ops: clean plan
        let ok = m.plan_window(&win, Some(&SymShape::batched(&[8, 25, 25])));
        assert!(!ok.has_errors(), "{:?}", ok.diagnostics());
        // wrong joint count: shape-mismatch error
        let bad = m.plan_window(&win, Some(&SymShape::batched(&[8, 24, 24])));
        assert!(bad
            .diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::ShapeMismatch));
        // misaligned window length: shape-mismatch error
        let skewed = m.plan_window(&win, Some(&SymShape::batched(&[9, 25, 25])));
        assert!(skewed
            .diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::ShapeMismatch));
        // operators withheld while the joint-weight branch is live: warning
        let warned = m.plan_window(&win, None);
        assert!(!warned.has_errors());
        assert!(warned
            .diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::FusionMismatch));
        // models without window state warn when a session injects anyway
        let mut lite = DhgcnLite::new(DhgcnLiteConfig::new(dims()), &SkeletonTopology::ntu25(), &mut rng);
        lite.prepare_inference();
        let lw = lite.plan_window(&win, Some(&SymShape::batched(&[8, 25, 25])));
        assert!(lw
            .diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::FusionMismatch));
    }

    #[test]
    fn dhgcn_window_with_its_own_ops_matches_plain_inference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Dhgcn::for_topology(DhgcnConfig::small(dims()), &SkeletonTopology::ntu25(), &mut rng);
        let x = Tensor::constant(NdArray::from_vec(
            (0..3 * 8 * 25).map(|i| (i as f32 * 0.017).sin()).collect(),
            &[1, 3, 8, 25],
        ));
        m.forward(&x); // warm BN
        m.prepare_inference();
        let mut ws = Workspace::new();
        // injecting exactly the operators the model would derive itself
        // must be a no-op
        let ops = m.dynamic_joint_weight_ops(&x.data());
        let injected = m.forward_window(&x, Some(&ops), &mut ws).array();
        let plain = m.forward_inference(&x, &mut ws).array();
        assert_eq!(injected, plain);
    }
}
