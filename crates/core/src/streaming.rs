//! The streaming-model contract: sliding-window inference with
//! externally maintained dynamic operators.
//!
//! A streaming session (see `dhg_train::streaming`) feeds a model one
//! window `[N, C, T, V]` per emitted frame. For models whose forward pass
//! derives per-frame operators from the raw coordinates (DHGCN's Eq. 9
//! joint-weight operators), recomputing those from scratch per window
//! wastes exactly the work the session already did maintaining them
//! incrementally — so the contract lets the session *inject* the rolling
//! operators. Models without such state simply ignore the injection and
//! run their ordinary serving path.

use dhg_hypergraph::Hypergraph;
use dhg_nn::Module;
use dhg_tensor::{NdArray, Tensor, Workspace};

/// A model that can score sliding windows of a skeleton stream.
///
/// Every [`Module`] gets a working default (score the window like any
/// other batch); models with window-derived internal state override the
/// methods to accept it from the session instead.
pub trait StreamableModel: Module {
    /// Score one window. `window_ops` carries externally maintained
    /// per-frame operators `[N, T, V, V]` aligned with `x`; models that
    /// report `false` from [`StreamableModel::consumes_window_ops`]
    /// ignore it.
    fn forward_window(
        &self,
        x: &Tensor,
        window_ops: Option<&NdArray>,
        ws: &mut Workspace,
    ) -> Tensor {
        let _ = window_ops;
        self.forward_inference(x, ws)
    }

    /// Whether [`StreamableModel::forward_window`] actually uses injected
    /// operators. Sessions skip rolling maintenance when this is `false`.
    fn consumes_window_ops(&self) -> bool {
        false
    }

    /// The hypergraph the injected operators must be built over (the
    /// model's static skeleton hypergraph for DHGCN's Eq. 9 operators);
    /// `None` when no operators are consumed.
    fn streaming_hypergraph(&self) -> Option<Hypergraph> {
        None
    }
}

impl StreamableModel for crate::Dhgcn {
    fn forward_window(
        &self,
        x: &Tensor,
        window_ops: Option<&NdArray>,
        ws: &mut Workspace,
    ) -> Tensor {
        self.forward_serving(x, window_ops, ws)
    }

    fn consumes_window_ops(&self) -> bool {
        self.config().branches.dynamic_joint_weight
    }

    fn streaming_hypergraph(&self) -> Option<Hypergraph> {
        self.consumes_window_ops().then(|| self.static_hypergraph().clone())
    }
}

// models whose serving path has no window-derived state: the defaults
// (ordinary batch inference, no operator injection) are exactly right
impl StreamableModel for crate::DhgcnLite {}
impl StreamableModel for crate::StGcn {}
impl StreamableModel for crate::Agcn {}
impl StreamableModel for crate::ShiftGcn {}
impl StreamableModel for crate::TcnClassifier {}
impl StreamableModel for crate::LstmClassifier {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ModelDims;
    use crate::{Dhgcn, DhgcnConfig, DhgcnLite, DhgcnLiteConfig};
    use dhg_skeleton::SkeletonTopology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dims() -> ModelDims {
        ModelDims { in_channels: 3, n_joints: 25, n_classes: 6 }
    }

    #[test]
    fn dhgcn_consumes_ops_iff_joint_weight_branch_active() {
        let mut rng = StdRng::seed_from_u64(0);
        let full = Dhgcn::for_topology(DhgcnConfig::small(dims()), &SkeletonTopology::ntu25(), &mut rng);
        assert!(full.consumes_window_ops());
        assert!(full.streaming_hypergraph().is_some());
        let mut cfg = DhgcnConfig::small(dims());
        cfg.branches = crate::dhgcn::BranchConfig::no_joint_weight();
        let no_jw = Dhgcn::for_topology(cfg, &SkeletonTopology::ntu25(), &mut rng);
        assert!(!no_jw.consumes_window_ops());
        assert!(no_jw.streaming_hypergraph().is_none());
    }

    #[test]
    fn lite_ignores_window_ops() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = DhgcnLite::new(DhgcnLiteConfig::new(dims()), &SkeletonTopology::ntu25(), &mut rng);
        m.prepare_inference();
        assert!(!m.consumes_window_ops());
        let x = Tensor::constant(NdArray::from_vec(
            (0..3 * 8 * 25).map(|i| (i as f32 * 0.03).sin()).collect(),
            &[1, 3, 8, 25],
        ));
        let bogus = NdArray::ones(&[1, 8, 25, 25]);
        let mut ws = Workspace::new();
        let with = m.forward_window(&x, Some(&bogus), &mut ws).array();
        let without = m.forward_window(&x, None, &mut ws).array();
        assert_eq!(with, without, "models without window state must ignore the injection");
    }

    #[test]
    fn dhgcn_window_with_its_own_ops_matches_plain_inference() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Dhgcn::for_topology(DhgcnConfig::small(dims()), &SkeletonTopology::ntu25(), &mut rng);
        let x = Tensor::constant(NdArray::from_vec(
            (0..3 * 8 * 25).map(|i| (i as f32 * 0.017).sin()).collect(),
            &[1, 3, 8, 25],
        ));
        m.forward(&x); // warm BN
        m.prepare_inference();
        let mut ws = Workspace::new();
        // injecting exactly the operators the model would derive itself
        // must be a no-op
        let ops = m.dynamic_joint_weight_ops(&x.data());
        let injected = m.forward_window(&x, Some(&ops), &mut ws).array();
        let plain = m.forward_inference(&x, &mut ws).array();
        assert_eq!(injected, plain);
    }
}
