//! 2s-AGCN \[29\] and its hypergraph variant 2s-AHGCN (Tab. 1).
//!
//! The adaptive operator of each block is `base + B + C`:
//!
//! * `base` — a fixed structural operator: the normalised skeleton
//!   adjacency (Eq. 1) for **2s-AGCN**, or the static hypergraph operator
//!   (Eq. 5) for **2s-AHGCN** — this swap is exactly the Tab. 1 ablation.
//! * `B` — a freely learnable `[V, V]` matrix (initialised to zero).
//! * `C` — a per-sample attention operator from embedded feature
//!   similarity, `softmax(θ₁(x)ᵀ θ₂(x))`.

use crate::common::{apply_per_sample_vertex_op, ModelDims, StageSpec};
use crate::tcn::TemporalConv;
use dhg_nn::{global_avg_pool, BatchNorm2d, Buffer, Conv2d, Linear, Module};
use dhg_tensor::ops::Conv2dSpec;
use dhg_tensor::{NdArray, Tensor};
use rand::Rng;

/// Which structural prior an [`Agcn`] uses as its fixed base operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AgcnVariant {
    /// Normalised skeleton-graph adjacency — the published 2s-AGCN.
    Graph,
    /// Static skeleton-hypergraph operator — the paper's 2s-AHGCN.
    Hypergraph,
}

impl std::fmt::Display for AgcnVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgcnVariant::Graph => write!(f, "2s-AGCN"),
            AgcnVariant::Hypergraph => write!(f, "2s-AHGCN"),
        }
    }
}

/// Embedding width of the attention branch.
const EMBED_CHANNELS: usize = 4;

struct AgcnBlock {
    base: Tensor,
    b: Tensor,
    theta1: Conv2d,
    theta2: Conv2d,
    theta: Conv2d,
    bn: BatchNorm2d,
    tcn: TemporalConv,
    residual_proj: Option<Conv2d>,
}

impl AgcnBlock {
    fn new(
        base: NdArray,
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let v = base.shape()[0];
        AgcnBlock {
            base: Tensor::constant(base),
            b: Tensor::param(NdArray::zeros(&[v, v])),
            theta1: Conv2d::pointwise(in_channels, EMBED_CHANNELS, rng),
            theta2: Conv2d::pointwise(in_channels, EMBED_CHANNELS, rng),
            theta: Conv2d::pointwise(in_channels, out_channels, rng),
            bn: BatchNorm2d::new(out_channels),
            tcn: TemporalConv::new(out_channels, out_channels, stride, 1, dropout, rng),
            residual_proj: if in_channels != out_channels || stride != 1 {
                let spec = Conv2dSpec {
                    kernel: (1, 1),
                    stride: (stride, 1),
                    padding: (0, 0),
                    dilation: (1, 1),
                };
                Some(Conv2d::new(in_channels, out_channels, spec, rng))
            } else {
                None
            },
        }
    }

    /// The data-dependent attention operator `C ∈ [N, V, V]`.
    fn attention(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        let (n, t, v) = (s[0], s[2], s[3]);
        let e1 = self.theta1.forward(x).reshape(&[n, EMBED_CHANNELS * t, v]);
        let e2 = self.theta2.forward(x).reshape(&[n, EMBED_CHANNELS * t, v]);
        let scale = 1.0 / (EMBED_CHANNELS * t) as f32;
        e1.transpose_last2().matmul(&e2).mul_scalar(scale).softmax(2)
    }
}

impl Module for AgcnBlock {
    fn forward(&self, x: &Tensor) -> Tensor {
        let v = x.shape()[3];
        let att = self.attention(x); // [N, V, V]
        // per-sample operator: (base + B) broadcast over the batch, plus C
        let structural = self.base.add(&self.b).reshape(&[1, v, v]);
        let op = att.add(&structural);
        let mixed = apply_per_sample_vertex_op(x, &op);
        let spatial = self.bn.forward(&self.theta.forward(&mixed)).relu();
        let temporal = self.tcn.forward(&spatial);
        let residual = match &self.residual_proj {
            Some(proj) => proj.forward(x),
            None => x.clone(),
        };
        temporal.add(&residual).relu()
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = vec![self.b.clone()];
        ps.extend(self.theta1.parameters());
        ps.extend(self.theta2.parameters());
        ps.extend(self.theta.parameters());
        ps.extend(self.bn.parameters());
        ps.extend(self.tcn.parameters());
        if let Some(p) = &self.residual_proj {
            ps.extend(p.parameters());
        }
        ps
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.bn.buffers();
        bs.extend(self.tcn.buffers());
        bs
    }

    fn set_training(&mut self, training: bool) {
        self.bn.set_training(training);
        self.tcn.set_training(training);
    }

    fn prepare_inference(&mut self) {
        self.set_training(false);
        self.tcn.prepare_inference();
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, Plan};
        let mut p = Plan::new(input);
        if input.rank() != 4 {
            p.error(
                DiagCode::RankMismatch,
                format!("features must be [N, C, T, V], got rank {} {input}", input.rank()),
            );
            return p;
        }
        let op_v = self.base.shape()[0];
        if let Some(v) = input.known(3) {
            if v != op_v {
                p.error(
                    DiagCode::JointMismatch,
                    format!("operator must be square in V: base has {op_v} joints, input has {v}"),
                );
                return p;
            }
        }
        // the attention branch consumes the same input through theta1/theta2
        p.extend("theta1", self.theta1.plan(input));
        if p.has_errors() {
            return p;
        }
        p.push_op("attention", format!("softmax(e1' e2), [N, {op_v}, {op_v}]"), input.clone());
        p.push_op("adaptive_vertex_op", "base + B + C per sample", input.clone());
        p.extend("theta", self.theta.plan(&p.output().clone()));
        if p.has_errors() {
            return p;
        }
        p.extend("bn", self.bn.plan(&p.output().clone()));
        p.push_op("relu", "", p.output().clone());
        p.extend("tcn", self.tcn.plan(&p.output().clone()));
        if p.has_errors() {
            return p;
        }
        let main_out = p.output().clone();
        let residual_out = match &self.residual_proj {
            Some(proj) => proj.plan(input).output().clone(),
            None => input.clone(),
        };
        if residual_out != main_out {
            p.error(
                DiagCode::ShapeMismatch,
                format!("residual path produces {residual_out} but main path produces {main_out}"),
            );
        }
        p.push_op("residual_add_relu", "", main_out);
        p
    }
}

/// The adaptive graph/hypergraph convolutional classifier (one stream of
/// the two-stream framework; see [`crate::two_stream`]).
pub struct Agcn {
    variant: AgcnVariant,
    input_bn: crate::common::DataBn,
    blocks: Vec<AgcnBlock>,
    fc: Linear,
    dims: ModelDims,
}

impl Agcn {
    /// Build a model. `base` is the fixed structural operator matching
    /// `variant` (callers usually produce it from
    /// `Graph::normalized_adjacency` or `Hypergraph::operator`).
    pub fn new(
        dims: ModelDims,
        variant: AgcnVariant,
        base: NdArray,
        stages: &[StageSpec],
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(base.shape(), &[dims.n_joints, dims.n_joints], "operator/joint mismatch");
        let input_bn = crate::common::DataBn::new(dims.in_channels, dims.n_joints);
        let mut blocks = Vec::with_capacity(stages.len());
        let mut in_ch = dims.in_channels;
        for stage in stages {
            blocks.push(AgcnBlock::new(base.clone(), in_ch, stage.channels, stage.stride, dropout, rng));
            in_ch = stage.channels;
        }
        let fc = Linear::new(in_ch, dims.n_classes, rng);
        Agcn { variant, input_bn, blocks, fc, dims }
    }

    /// Graph or hypergraph base.
    pub fn variant(&self) -> AgcnVariant {
        self.variant
    }

    /// The model geometry.
    pub fn dims(&self) -> ModelDims {
        self.dims
    }
}

impl Module for Agcn {
    fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = self.input_bn.forward(x);
        for block in &self.blocks {
            h = block.forward(&h);
        }
        self.fc.forward(&global_avg_pool(&h))
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.input_bn.parameters();
        for b in &self.blocks {
            ps.extend(b.parameters());
        }
        ps.extend(self.fc.parameters());
        ps
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.input_bn.buffers();
        for b in &self.blocks {
            bs.extend(b.buffers());
        }
        bs
    }

    fn set_training(&mut self, training: bool) {
        self.input_bn.set_training(training);
        for b in &mut self.blocks {
            b.set_training(training);
        }
    }

    fn prepare_inference(&mut self) {
        self.input_bn.set_training(false);
        for b in &mut self.blocks {
            b.prepare_inference();
        }
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{Plan, SymShape};
        let mut p = Plan::new(input);
        if !p.expect_nctv(self.dims.in_channels, self.dims.n_joints) || p.has_errors() {
            return p;
        }
        p.extend("input_bn", self.input_bn.plan(input));
        for (i, b) in self.blocks.iter().enumerate() {
            p.extend(&format!("blocks[{i}]"), b.plan(&p.output().clone()));
            if p.has_errors() {
                return p;
            }
        }
        let channels = p.output().at(1);
        p.push_op("global_avg_pool", "mean over (T, V)", SymShape(vec![input.at(0), channels]));
        p.extend("fc", self.fc.plan(&p.output().clone()));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::small_stages;
    use dhg_skeleton::{static_hypergraph, SkeletonTopology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dims() -> ModelDims {
        ModelDims { in_channels: 3, n_joints: 25, n_classes: 5 }
    }

    fn agcn(variant: AgcnVariant) -> Agcn {
        let mut rng = StdRng::seed_from_u64(0);
        let topo = SkeletonTopology::ntu25();
        let base = match variant {
            AgcnVariant::Graph => topo.graph().normalized_adjacency(),
            AgcnVariant::Hypergraph => static_hypergraph(&topo).operator(),
        };
        Agcn::new(dims(), variant, base, &small_stages(), 0.0, &mut rng)
    }

    #[test]
    fn both_variants_produce_logits() {
        for variant in [AgcnVariant::Graph, AgcnVariant::Hypergraph] {
            let m = agcn(variant);
            let x = Tensor::constant(NdArray::ones(&[2, 3, 8, 25]));
            let y = m.forward(&x);
            assert_eq!(y.shape(), vec![2, 5], "{variant}");
            assert!(y.array().data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn learnable_b_receives_gradient() {
        let m = agcn(AgcnVariant::Graph);
        let x = Tensor::constant(NdArray::ones(&[1, 3, 8, 25]));
        m.forward(&x).cross_entropy(&[2]).backward();
        // the B matrices are the first parameter of each block
        let b0 = &m.blocks[0].b;
        assert!(b0.grad().is_some(), "adaptive B must be trained");
    }

    #[test]
    fn attention_rows_are_distributions() {
        let m = agcn(AgcnVariant::Graph);
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::constant(dhg_nn::init::random_uniform(&[2, 3, 8, 25], -1.0, 1.0, &mut rng));
        let att = m.blocks[0].attention(&x).array();
        assert_eq!(att.shape(), &[2, 25, 25]);
        for row in att.data().chunks(25) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "attention row sums to {s}");
        }
    }

    #[test]
    fn variants_differ_only_in_base_operator() {
        let a = agcn(AgcnVariant::Graph);
        let b = agcn(AgcnVariant::Hypergraph);
        assert_eq!(a.n_parameters(), b.n_parameters());
        assert!(!a.blocks[0].base.array().allclose(&b.blocks[0].base.array(), 1e-3, 1e-3));
    }

    #[test]
    fn display_names() {
        assert_eq!(AgcnVariant::Graph.to_string(), "2s-AGCN");
        assert_eq!(AgcnVariant::Hypergraph.to_string(), "2s-AHGCN");
    }
}
