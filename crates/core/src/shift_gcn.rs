//! Shift-GCN \[3\]: the strongest published rival in Tabs. 7–8.
//!
//! Instead of adjacency-matrix convolution, Shift-GCN *shifts* channel
//! groups across the joint axis and mixes with pointwise convolutions —
//! spatial context at pointwise cost. We implement the non-local spatial
//! shift: channel group `g` is cyclically rotated by `g` joints. The roll
//! is expressed with slice + concat, so its gradient falls out of the
//! already-verified shape-op adjoints.

use crate::common::{ModelDims, StageSpec};
use crate::tcn::TemporalConv;
use dhg_nn::{global_avg_pool, BatchNorm2d, Buffer, Conv2d, Linear, Module};
use dhg_tensor::ops::Conv2dSpec;
use dhg_tensor::Tensor;
use rand::Rng;

/// Cyclically roll a `[N, C, T, V]` tensor along the joint axis by
/// `shift` positions (joint `v` reads from joint `(v + shift) mod V`).
pub fn roll_joints(x: &Tensor, shift: usize) -> Tensor {
    let v = x.shape()[3];
    let s = shift % v;
    if s == 0 {
        return x.clone();
    }
    let head = x.slice_axis(3, s, v - s);
    let tail = x.slice_axis(3, 0, s);
    Tensor::concat(&[&head, &tail], 3)
}

/// Partition channels into `groups` contiguous chunks and roll chunk `g`
/// by `g` joints — the non-local spatial shift.
pub fn spatial_shift(x: &Tensor, groups: usize) -> Tensor {
    let c = x.shape()[1];
    assert!(groups >= 1 && groups <= c, "groups must be in 1..=C");
    let base = c / groups;
    let extra = c % groups;
    let mut parts = Vec::with_capacity(groups);
    let mut start = 0;
    for g in 0..groups {
        let len = base + usize::from(g < extra);
        if len == 0 {
            continue;
        }
        let chunk = x.slice_axis(1, start, len);
        parts.push(roll_joints(&chunk, g));
        start += len;
    }
    let refs: Vec<&Tensor> = parts.iter().collect();
    Tensor::concat(&refs, 1)
}

struct ShiftBlock {
    theta: Conv2d,
    bn: BatchNorm2d,
    tcn: TemporalConv,
    residual_proj: Option<Conv2d>,
    groups: usize,
}

impl ShiftBlock {
    fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        groups: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        ShiftBlock {
            theta: Conv2d::pointwise(in_channels, out_channels, rng),
            bn: BatchNorm2d::new(out_channels),
            tcn: TemporalConv::new(out_channels, out_channels, stride, 1, dropout, rng),
            residual_proj: if in_channels != out_channels || stride != 1 {
                let spec = Conv2dSpec {
                    kernel: (1, 1),
                    stride: (stride, 1),
                    padding: (0, 0),
                    dilation: (1, 1),
                };
                Some(Conv2d::new(in_channels, out_channels, spec, rng))
            } else {
                None
            },
            groups,
        }
    }
}

impl Module for ShiftBlock {
    fn forward(&self, x: &Tensor) -> Tensor {
        // shift → pointwise → shift again (shift-conv-shift, as published)
        let shifted = spatial_shift(x, self.groups);
        let mixed = self.theta.forward(&shifted);
        let mixed = spatial_shift(&mixed, self.groups.min(mixed.shape()[1]));
        let spatial = self.bn.forward(&mixed).relu();
        let temporal = self.tcn.forward(&spatial);
        let residual = match &self.residual_proj {
            Some(proj) => proj.forward(x),
            None => x.clone(),
        };
        temporal.add(&residual).relu()
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.theta.parameters();
        ps.extend(self.bn.parameters());
        ps.extend(self.tcn.parameters());
        if let Some(p) = &self.residual_proj {
            ps.extend(p.parameters());
        }
        ps
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.bn.buffers();
        bs.extend(self.tcn.buffers());
        bs
    }

    fn set_training(&mut self, training: bool) {
        self.bn.set_training(training);
        self.tcn.set_training(training);
    }

    fn prepare_inference(&mut self) {
        self.set_training(false);
        self.tcn.prepare_inference();
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, Plan};
        let mut p = Plan::new(input);
        if input.rank() != 4 {
            p.error(
                DiagCode::RankMismatch,
                format!("features must be [N, C, T, V], got rank {} {input}", input.rank()),
            );
            return p;
        }
        p.push_op("spatial_shift", format!("{} groups", self.groups), input.clone());
        p.extend("theta", self.theta.plan(&p.output().clone()));
        if p.has_errors() {
            return p;
        }
        p.push_op("spatial_shift", format!("{} groups", self.groups), p.output().clone());
        p.extend("bn", self.bn.plan(&p.output().clone()));
        p.push_op("relu", "", p.output().clone());
        p.extend("tcn", self.tcn.plan(&p.output().clone()));
        if p.has_errors() {
            return p;
        }
        let main_out = p.output().clone();
        let residual_out = match &self.residual_proj {
            Some(proj) => proj.plan(input).output().clone(),
            None => input.clone(),
        };
        if residual_out != main_out {
            p.error(
                DiagCode::ShapeMismatch,
                format!("residual path produces {residual_out} but main path produces {main_out}"),
            );
        }
        p.push_op("residual_add_relu", "", main_out);
        p
    }
}

/// The Shift-GCN classifier.
pub struct ShiftGcn {
    input_bn: crate::common::DataBn,
    blocks: Vec<ShiftBlock>,
    fc: Linear,
    dims: ModelDims,
}

impl ShiftGcn {
    /// Build with the given backbone stages; `groups` controls how many
    /// distinct shift offsets are used per block.
    pub fn new(
        dims: ModelDims,
        stages: &[StageSpec],
        groups: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let input_bn = crate::common::DataBn::new(dims.in_channels, dims.n_joints);
        let mut blocks = Vec::with_capacity(stages.len());
        let mut in_ch = dims.in_channels;
        for stage in stages {
            blocks.push(ShiftBlock::new(
                in_ch,
                stage.channels,
                stage.stride,
                groups.min(in_ch),
                dropout,
                rng,
            ));
            in_ch = stage.channels;
        }
        let fc = Linear::new(in_ch, dims.n_classes, rng);
        ShiftGcn { input_bn, blocks, fc, dims }
    }

    /// The model geometry.
    pub fn dims(&self) -> ModelDims {
        self.dims
    }
}

impl Module for ShiftGcn {
    fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = self.input_bn.forward(x);
        for block in &self.blocks {
            h = block.forward(&h);
        }
        self.fc.forward(&global_avg_pool(&h))
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.input_bn.parameters();
        for b in &self.blocks {
            ps.extend(b.parameters());
        }
        ps.extend(self.fc.parameters());
        ps
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.input_bn.buffers();
        for b in &self.blocks {
            bs.extend(b.buffers());
        }
        bs
    }

    fn set_training(&mut self, training: bool) {
        self.input_bn.set_training(training);
        for b in &mut self.blocks {
            b.set_training(training);
        }
    }

    fn prepare_inference(&mut self) {
        self.input_bn.set_training(false);
        for b in &mut self.blocks {
            b.prepare_inference();
        }
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{Plan, SymShape};
        let mut p = Plan::new(input);
        if !p.expect_nctv(self.dims.in_channels, self.dims.n_joints) || p.has_errors() {
            return p;
        }
        p.extend("input_bn", self.input_bn.plan(input));
        for (i, b) in self.blocks.iter().enumerate() {
            p.extend(&format!("blocks[{i}]"), b.plan(&p.output().clone()));
            if p.has_errors() {
                return p;
            }
        }
        let channels = p.output().at(1);
        p.push_op("global_avg_pool", "mean over (T, V)", SymShape(vec![input.at(0), channels]));
        p.extend("fc", self.fc.plan(&p.output().clone()));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::small_stages;
    use dhg_tensor::NdArray;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roll_is_cyclic_and_invertible() {
        let x = Tensor::constant(NdArray::from_vec((0..5).map(|i| i as f32).collect(), &[1, 1, 1, 5]));
        let r = roll_joints(&x, 2);
        assert_eq!(r.array().data(), &[2.0, 3.0, 4.0, 0.0, 1.0]);
        let back = roll_joints(&r, 3); // 2 + 3 = 5 ≡ 0
        assert_eq!(back.array(), x.array());
        // shift 0 and shift V are identities
        assert_eq!(roll_joints(&x, 0).array(), x.array());
        assert_eq!(roll_joints(&x, 5).array(), x.array());
    }

    #[test]
    fn spatial_shift_moves_information_across_joints() {
        // group 0 stays, later groups roll — joint 0 of group 1 now holds
        // joint 1's value
        let mut data = NdArray::zeros(&[1, 4, 1, 5]);
        for c in 0..4 {
            for v in 0..5 {
                data.set(&[0, c, 0, v], (c * 10 + v) as f32);
            }
        }
        let y = spatial_shift(&Tensor::constant(data), 4).array();
        assert_eq!(y.at(&[0, 0, 0, 0]), 0.0); // group 0: unshifted
        assert_eq!(y.at(&[0, 1, 0, 0]), 11.0); // group 1: shifted by 1
        assert_eq!(y.at(&[0, 2, 0, 0]), 22.0); // group 2: shifted by 2
        assert_eq!(y.at(&[0, 3, 0, 4]), 32.0); // wraps around
    }

    #[test]
    fn model_forward_and_grads() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = ShiftGcn::new(
            ModelDims { in_channels: 3, n_joints: 25, n_classes: 4 },
            &small_stages(),
            8,
            0.0,
            &mut rng,
        );
        let x = Tensor::constant(NdArray::ones(&[2, 3, 8, 25]));
        let y = m.forward(&x);
        assert_eq!(y.shape(), vec![2, 4]);
        y.cross_entropy(&[0, 1]).backward();
        assert!(m.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn shift_gradient_is_the_inverse_roll() {
        let x = Tensor::param(NdArray::from_vec((0..6).map(|i| i as f32).collect(), &[1, 1, 1, 6]));
        let w = Tensor::constant(NdArray::from_vec(
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            &[1, 1, 1, 6],
        ));
        // pick out joint 0 of the rolled tensor = joint 2 of x
        roll_joints(&x, 2).mul(&w).sum_all().backward();
        let g = x.grad().unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
    }
}
