//! # dhg-core
//!
//! The paper's contribution — **DHGCN**, the Dynamic Hypergraph
//! Convolutional Network for skeleton-based action recognition — together
//! with every baseline model its evaluation compares against.
//!
//! ## The model zoo
//!
//! | Module | Model | Role in the paper |
//! |---|---|---|
//! | [`dhgcn`] | DHGCN (10 DHST blocks, 3 spatial branches) | §3.5, Tabs. 3–8 |
//! | [`stgcn`] | ST-GCN \[37\] | first GCN baseline, Tabs. 6–7 |
//! | [`agcn`] | 2s-AGCN \[29\] and 2s-AHGCN | adaptive-graph baseline + the hypergraph swap of Tab. 1 |
//! | [`pbgcn`] | PB-GCN \[32\] and PB-HGCN | part-based ablation of Tab. 2 |
//! | [`shift_gcn`] | Shift-GCN \[3\] | strongest published rival in Tabs. 7–8 |
//! | [`tcn_baseline`] | TCN \[13\] | CNN-family baseline, Tabs. 6–7 |
//! | [`lstm_baseline`] | LSTM (ST-LSTM-like \[21\]) | RNN-family baseline, Tabs. 7–8 |
//! | [`lie_baseline`] | Lie-group features + linear \[34\] | hand-crafted baseline, Tab. 7 |
//! | [`two_stream`] | joint + bone score fusion | §3.5, Tabs. 1/4/5 |
//!
//! Every model implements [`dhg_nn::Module`] over `[N, 3, T, V]` input
//! batches and produces `[N, n_classes]` logits, so the training harness
//! in `dhg-train` treats them uniformly.

pub mod agcn;
pub mod common;
pub mod dhgcn;
pub mod lie_baseline;
pub mod lstm_baseline;
pub mod pbgcn;
pub mod shift_gcn;
pub mod stgcn;
pub mod streaming;
pub mod tcn;
pub mod tcn_baseline;
pub mod two_stream;

pub use agcn::{Agcn, AgcnVariant};
pub use common::{apply_dynamic_vertex_op, apply_vertex_op, ModelDims};
pub use dhgcn::{BranchConfig, Dhgcn, DhgcnConfig, DhgcnLite, DhgcnLiteConfig, TopologyGranularity};
pub use lie_baseline::LieFeatureClassifier;
pub use lstm_baseline::LstmClassifier;
pub use pbgcn::{PartBasedModel, PartConv};
pub use shift_gcn::ShiftGcn;
pub use stgcn::StGcn;
pub use streaming::StreamableModel;
pub use tcn::TemporalConv;
pub use tcn_baseline::TcnClassifier;
pub use two_stream::{fuse_scores, TwoStream};
