//! PB-GCN \[32\] and the paper's PB-HGCN construction (Tab. 2).
//!
//! PB-GCN splits the skeleton into overlapping body parts, convolves each
//! part's subgraph separately and aggregates the per-part features. The
//! paper's ablation replaces the part subgraphs with part *hyperedges* —
//! one hypergraph whose hyperedges are the parts — "which eliminates the
//! need of aggregation functions" (§4.3).

use crate::common::{apply_vertex_op, ModelDims, StageSpec};
use crate::tcn::TemporalConv;
use dhg_hypergraph::{Graph, Hypergraph};
use dhg_nn::{global_avg_pool, BatchNorm2d, Buffer, Conv2d, Linear, Module};
use dhg_tensor::ops::Conv2dSpec;
use dhg_tensor::{NdArray, Tensor};
use rand::Rng;

/// How parts are turned into convolution operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartConv {
    /// PB-GCN: one subgraph operator and Θ per part, summed (the
    /// aggregation function).
    Graph,
    /// PB-HGCN: parts become hyperedges of a single hypergraph; one
    /// operator, no aggregation.
    Hypergraph,
}

impl std::fmt::Display for PartConv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartConv::Graph => write!(f, "PB-GCN"),
            PartConv::Hypergraph => write!(f, "PB-HGCN"),
        }
    }
}

struct PbBlock {
    /// `(operator, Θ)` pairs — one per part for PB-GCN, exactly one for
    /// PB-HGCN.
    convs: Vec<(Tensor, Conv2d)>,
    bn: BatchNorm2d,
    tcn: TemporalConv,
    residual_proj: Option<Conv2d>,
}

impl PbBlock {
    fn new(
        operators: &[NdArray],
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let convs = operators
            .iter()
            .map(|op| {
                (Tensor::constant(op.clone()), Conv2d::pointwise(in_channels, out_channels, rng))
            })
            .collect();
        PbBlock {
            convs,
            bn: BatchNorm2d::new(out_channels),
            tcn: TemporalConv::new(out_channels, out_channels, stride, 1, dropout, rng),
            residual_proj: if in_channels != out_channels || stride != 1 {
                let spec = Conv2dSpec {
                    kernel: (1, 1),
                    stride: (stride, 1),
                    padding: (0, 0),
                    dilation: (1, 1),
                };
                Some(Conv2d::new(in_channels, out_channels, spec, rng))
            } else {
                None
            },
        }
    }
}

impl Module for PbBlock {
    fn forward(&self, x: &Tensor) -> Tensor {
        // aggregate part convolutions by summation
        let mut acc: Option<Tensor> = None;
        for (op, theta) in &self.convs {
            let part = theta.forward(&apply_vertex_op(x, op));
            acc = Some(match acc {
                Some(a) => a.add(&part),
                None => part,
            });
        }
        let spatial = self.bn.forward(&acc.expect("at least one part")).relu();
        let temporal = self.tcn.forward(&spatial);
        let residual = match &self.residual_proj {
            Some(proj) => proj.forward(x),
            None => x.clone(),
        };
        temporal.add(&residual).relu()
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = Vec::new();
        for (_, theta) in &self.convs {
            ps.extend(theta.parameters());
        }
        ps.extend(self.bn.parameters());
        ps.extend(self.tcn.parameters());
        if let Some(p) = &self.residual_proj {
            ps.extend(p.parameters());
        }
        ps
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.bn.buffers();
        bs.extend(self.tcn.buffers());
        bs
    }

    fn set_training(&mut self, training: bool) {
        self.bn.set_training(training);
        self.tcn.set_training(training);
    }

    fn prepare_inference(&mut self) {
        self.set_training(false);
        self.tcn.prepare_inference();
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{DiagCode, Plan};
        let mut p = Plan::new(input);
        if input.rank() != 4 {
            p.error(
                DiagCode::RankMismatch,
                format!("features must be [N, C, T, V], got rank {} {input}", input.rank()),
            );
            return p;
        }
        // every part operator must be [V, V] over the input's joint axis
        if let Some(v) = input.known(3) {
            for (i, (op, _)) in self.convs.iter().enumerate() {
                if op.shape() != vec![v, v] {
                    p.error(
                        DiagCode::JointMismatch,
                        format!("operator must be [V, V]: part {i} has {:?}, input has {v} joints", op.shape()),
                    );
                    return p;
                }
            }
        }
        // the part convolutions all consume the input and are summed, so
        // their output shapes must agree; plan the first and compare
        let (_, theta0) = &self.convs[0];
        p.push_op("part_vertex_ops", format!("{} part operator(s), summed", self.convs.len()), input.clone());
        p.extend("theta[0]", theta0.plan(&p.output().clone()));
        if p.has_errors() {
            return p;
        }
        let part_out = p.output().clone();
        for (i, (_, theta)) in self.convs.iter().enumerate().skip(1) {
            let other = theta.plan(input);
            if other.has_errors() {
                p.extend(&format!("theta[{i}]"), other);
                return p;
            }
            if other.output() != &part_out {
                p.error(
                    DiagCode::ShapeMismatch,
                    format!("part {i} produces {} but part 0 produces {part_out}", other.output()),
                );
                return p;
            }
        }
        p.extend("bn", self.bn.plan(&part_out));
        p.push_op("relu", "", p.output().clone());
        p.extend("tcn", self.tcn.plan(&p.output().clone()));
        if p.has_errors() {
            return p;
        }
        let main_out = p.output().clone();
        let residual_out = match &self.residual_proj {
            Some(proj) => proj.plan(input).output().clone(),
            None => input.clone(),
        };
        if residual_out != main_out {
            p.error(
                DiagCode::ShapeMismatch,
                format!("residual path produces {residual_out} but main path produces {main_out}"),
            );
        }
        p.push_op("residual_add_relu", "", main_out);
        p
    }
}

/// The part-based classifier of Tab. 2, in PB-GCN or PB-HGCN form.
pub struct PartBasedModel {
    mode: PartConv,
    n_parts: usize,
    input_bn: crate::common::DataBn,
    blocks: Vec<PbBlock>,
    fc: Linear,
    dims: ModelDims,
}

impl PartBasedModel {
    /// Build from explicit part membership lists over the skeleton's bone
    /// graph (normally [`dhg_skeleton::part_subsets`]).
    pub fn new(
        dims: ModelDims,
        graph: &Graph,
        parts: &[Vec<usize>],
        mode: PartConv,
        stages: &[StageSpec],
        dropout: f32,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!parts.is_empty(), "need at least one part");
        assert_eq!(graph.n_vertices(), dims.n_joints, "graph/joint mismatch");
        let operators: Vec<NdArray> = match mode {
            PartConv::Graph => parts
                .iter()
                .map(|p| graph.subgraph(p).normalized_adjacency())
                .collect(),
            PartConv::Hypergraph => {
                vec![Hypergraph::new(dims.n_joints, parts.to_vec()).operator()]
            }
        };
        let input_bn = crate::common::DataBn::new(dims.in_channels, dims.n_joints);
        let mut blocks = Vec::with_capacity(stages.len());
        let mut in_ch = dims.in_channels;
        for stage in stages {
            blocks.push(PbBlock::new(&operators, in_ch, stage.channels, stage.stride, dropout, rng));
            in_ch = stage.channels;
        }
        let fc = Linear::new(in_ch, dims.n_classes, rng);
        PartBasedModel { mode, n_parts: parts.len(), input_bn, blocks, fc, dims }
    }

    /// Graph or hypergraph part handling.
    pub fn mode(&self) -> PartConv {
        self.mode
    }

    /// Number of body parts the model was built from.
    pub fn n_parts(&self) -> usize {
        self.n_parts
    }

    /// The model geometry.
    pub fn dims(&self) -> ModelDims {
        self.dims
    }
}

impl Module for PartBasedModel {
    fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = self.input_bn.forward(x);
        for block in &self.blocks {
            h = block.forward(&h);
        }
        self.fc.forward(&global_avg_pool(&h))
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = self.input_bn.parameters();
        for b in &self.blocks {
            ps.extend(b.parameters());
        }
        ps.extend(self.fc.parameters());
        ps
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut bs = self.input_bn.buffers();
        for b in &self.blocks {
            bs.extend(b.buffers());
        }
        bs
    }

    fn set_training(&mut self, training: bool) {
        self.input_bn.set_training(training);
        for b in &mut self.blocks {
            b.set_training(training);
        }
    }

    fn prepare_inference(&mut self) {
        self.input_bn.set_training(false);
        for b in &mut self.blocks {
            b.prepare_inference();
        }
    }

    fn plan(&self, input: &dhg_nn::SymShape) -> dhg_nn::Plan {
        use dhg_nn::{Plan, SymShape};
        let mut p = Plan::new(input);
        if !p.expect_nctv(self.dims.in_channels, self.dims.n_joints) || p.has_errors() {
            return p;
        }
        p.extend("input_bn", self.input_bn.plan(input));
        for (i, b) in self.blocks.iter().enumerate() {
            p.extend(&format!("blocks[{i}]"), b.plan(&p.output().clone()));
            if p.has_errors() {
                return p;
            }
        }
        let channels = p.output().at(1);
        p.push_op("global_avg_pool", "mean over (T, V)", SymShape(vec![input.at(0), channels]));
        p.extend("fc", self.fc.plan(&p.output().clone()));
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::small_stages;
    use dhg_skeleton::{part_subsets, SkeletonTopology};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(mode: PartConv, n_parts: usize) -> PartBasedModel {
        let mut rng = StdRng::seed_from_u64(0);
        let topo = SkeletonTopology::ntu25();
        let parts = part_subsets(&topo, n_parts);
        PartBasedModel::new(
            ModelDims { in_channels: 3, n_joints: 25, n_classes: 4 },
            &topo.graph(),
            &parts,
            mode,
            &small_stages(),
            0.0,
            &mut rng,
        )
    }

    #[test]
    fn both_modes_produce_logits() {
        for mode in [PartConv::Graph, PartConv::Hypergraph] {
            for n in [2usize, 4, 6] {
                let m = build(mode, n);
                let x = Tensor::constant(NdArray::ones(&[2, 3, 8, 25]));
                assert_eq!(m.forward(&x).shape(), vec![2, 4], "{mode} {n}");
            }
        }
    }

    #[test]
    fn hypergraph_mode_eliminates_per_part_convs() {
        let g = build(PartConv::Graph, 4);
        let h = build(PartConv::Hypergraph, 4);
        // PB-GCN has one Θ per part; PB-HGCN exactly one
        assert_eq!(g.blocks[0].convs.len(), 4);
        assert_eq!(h.blocks[0].convs.len(), 1);
        assert!(h.n_parameters() < g.n_parameters());
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let m = build(PartConv::Graph, 2);
        let x = Tensor::constant(NdArray::ones(&[1, 3, 8, 25]));
        m.forward(&x).cross_entropy(&[1]).backward();
        let n_with = m.parameters().iter().filter(|p| p.grad().is_some()).count();
        assert_eq!(n_with, m.parameters().len());
    }

    #[test]
    fn metadata_accessors() {
        let m = build(PartConv::Hypergraph, 6);
        assert_eq!(m.mode(), PartConv::Hypergraph);
        assert_eq!(m.n_parts(), 6);
        assert_eq!(m.mode().to_string(), "PB-HGCN");
    }
}
