//! Whole-model benchmarks: forward and forward+backward cost of each zoo
//! member at experiment scale (batch 8, T = 24, V = 25).

use criterion::{criterion_group, criterion_main, Criterion};
use dhg_skeleton::{SkeletonDataset, SkeletonTopology};
use dhg_tensor::{NdArray, Tensor};
use dhg_train::zoo::Zoo;
use std::hint::black_box;

fn batch() -> Tensor {
    let dataset = SkeletonDataset::ntu60_like(4, 2, 24, 5);
    let mut flat = Vec::new();
    for s in dataset.samples.iter().take(8) {
        flat.extend_from_slice(s.data.data());
    }
    Tensor::constant(NdArray::from_vec(flat, &[8, 3, 24, 25]))
}

fn bench_forward(c: &mut Criterion) {
    let zoo = Zoo::new(SkeletonTopology::ntu25(), 8, 0);
    let x = batch();
    let mut group = c.benchmark_group("forward_b8_t24");
    for name in ["TCN", "ST-LSTM", "ST-GCN", "Shift-GCN", "2s-AGCN", "2s-AHGCN", "DHGCN", "DHGCN-lite"] {
        let mut model = zoo.by_name(name).expect("zoo model");
        model.set_training(false);
        group.bench_function(name, |b| b.iter(|| black_box(model.forward(&x))));
    }
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let zoo = Zoo::new(SkeletonTopology::ntu25(), 8, 0);
    let x = batch();
    let targets: Vec<usize> = (0..8).map(|i| i % 8).collect();
    let mut group = c.benchmark_group("forward_backward_b8_t24");
    group.sample_size(10);
    for name in ["ST-GCN", "2s-AGCN", "DHGCN", "DHGCN-lite"] {
        let model = zoo.by_name(name).expect("zoo model");
        group.bench_function(name, |b| {
            b.iter(|| {
                let loss = model.forward(&x).cross_entropy(&targets);
                loss.backward();
                for p in model.parameters() {
                    p.zero_grad();
                }
                black_box(())
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_forward, bench_train_step
);
criterion_main!(benches);
