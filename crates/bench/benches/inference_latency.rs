//! Serving-path latency: the same DHGCN-lite batch pushed through the
//! three execution modes — grad-recording eval-mode `forward`, the default
//! `no_grad` fallback, and the compiled inference path (Conv+BN folded,
//! fused hypergraph operator cached, workspace-recycled buffers). All
//! three modes ride the packed cache-blocked GEMM (`dhg_tensor::gemm`)
//! for their dense conv and propagation matmuls, so this bench also
//! tracks end-to-end regressions in the matmul dispatch.
//!
//! The setup asserts the mode contract before measuring anything: the
//! no_grad path is bitwise identical to the grad path, and the folded path
//! agrees within 1e-5 per logit.

use criterion::{criterion_group, criterion_main, Criterion};
use dhg_nn::Module;
use dhg_skeleton::SkeletonTopology;
use dhg_tensor::{NdArray, Tensor, Workspace};
use dhg_train::zoo::Zoo;
use std::hint::black_box;

fn batch() -> Tensor {
    Tensor::constant(NdArray::from_vec(
        (0..8 * 3 * 24 * 25).map(|i| (i as f32 * 0.011).sin()).collect(),
        &[8, 3, 24, 25],
    ))
}

fn bench_inference_latency(c: &mut Criterion) {
    let zoo = Zoo::new(SkeletonTopology::ntu25(), 8, 0);
    let mut model = zoo.dhgcn_lite();
    let x = batch();
    model.forward(&x); // move BN running stats off their init values
    model.set_training(false);

    // the contract the comparison rides on
    let grad_logits = model.forward(&x).array();
    let mut ws = Workspace::new();
    let no_grad_logits = model.forward_inference(&x, &mut ws).array();
    assert_eq!(grad_logits, no_grad_logits, "no_grad fallback must be bitwise identical");
    model.prepare_inference();
    let folded_logits = model.forward_inference(&x, &mut ws).array();
    assert!(
        grad_logits.allclose(&folded_logits, 1e-4, 1e-5),
        "folded logits drifted past tolerance"
    );

    let mut group = c.benchmark_group("inference_latency_b8_t24");
    group.bench_function("grad_eval", |b| b.iter(|| black_box(model.forward(&x))));
    group.bench_function("no_grad", |b| {
        b.iter(|| {
            let _guard = dhg_tensor::no_grad();
            black_box(model.forward(&x))
        })
    });
    group.bench_function("folded", |b| {
        b.iter(|| black_box(model.forward_inference(&x, &mut ws)))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_inference_latency
);
criterion_main!(benches);
