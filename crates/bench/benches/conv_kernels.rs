//! Numeric kernel benchmarks: batched matmul, im2col-based temporal
//! convolution (forward and backward), softmax and batch norm at the
//! shapes skeleton models actually use.

use criterion::{criterion_group, criterion_main, Criterion};
use dhg_nn::{BatchNorm2d, Module};
use dhg_tensor::ops::Conv2dSpec;
use dhg_tensor::{NdArray, Tensor};
use std::hint::black_box;

fn wave(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i as f32 * 0.137).sin()).collect()
}

fn bench_matmul(c: &mut Criterion) {
    // [CT, V] @ [V, V]: the spatial mixing shape
    let a = NdArray::from_vec(wave(64 * 24 * 25), &[64 * 24, 25]);
    let b = NdArray::from_vec(wave(25 * 25), &[25, 25]);
    c.bench_function("matmul_1536x25x25", |bch| bch.iter(|| black_box(a.matmul(&b))));
    // batched with broadcast weight: conv-as-matmul shape
    let w = NdArray::from_vec(wave(48 * 72), &[48, 72]);
    let cols = NdArray::from_vec(wave(8 * 72 * 600), &[8, 72, 600]);
    c.bench_function("matmul_broadcast_8x48x72x600", |bch| bch.iter(|| black_box(w.matmul(&cols))));
}

fn bench_conv(c: &mut Criterion) {
    let x = Tensor::constant(NdArray::from_vec(wave(8 * 24 * 24 * 25), &[8, 24, 24, 25]));
    let w = Tensor::param(NdArray::from_vec(wave(24 * 24 * 3), &[24, 24, 3, 1]));
    let spec = Conv2dSpec::temporal(3, 1, 1);
    c.bench_function("conv_temporal_3x1_forward", |bch| {
        bch.iter(|| black_box(x.conv2d(&w, None, spec)))
    });
    c.bench_function("conv_temporal_3x1_forward_backward", |bch| {
        bch.iter(|| {
            let y = x.conv2d(&w, None, spec).square().sum_all();
            y.backward();
            w.zero_grad();
            black_box(())
        })
    });
    c.bench_function("im2col_only", |bch| {
        let xd = x.array();
        bch.iter(|| black_box(xd.im2col(3, 1, 1, 1, 1, 0, 1, 1)))
    });
    // pointwise mixer (the Θ of every spatial branch)
    let wp = Tensor::param(NdArray::from_vec(wave(48 * 24), &[48, 24, 1, 1]));
    c.bench_function("conv_pointwise_forward", |bch| {
        bch.iter(|| black_box(x.conv2d(&wp, None, Conv2dSpec::pointwise())))
    });
}

fn bench_norm_softmax(c: &mut Criterion) {
    let x = Tensor::constant(NdArray::from_vec(wave(8 * 24 * 24 * 25), &[8, 24, 24, 25]));
    let bn = BatchNorm2d::new(24);
    c.bench_function("batchnorm2d_train_forward", |bch| bch.iter(|| black_box(bn.forward(&x))));
    let logits = Tensor::constant(NdArray::from_vec(wave(256 * 60), &[256, 60]));
    c.bench_function("softmax_256x60", |bch| bch.iter(|| black_box(logits.softmax(1))));
    let targets: Vec<usize> = (0..256).map(|i| i % 60).collect();
    c.bench_function("cross_entropy_256x60", |bch| {
        bch.iter(|| black_box(logits.cross_entropy(&targets)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_matmul, bench_conv, bench_norm_softmax
);
criterion_main!(benches);
