//! Operator application micro-benchmarks: graph vs hypergraph operators
//! at skeleton scale, and the dense-vs-CSR crossover as the vertex count
//! grows (the DESIGN.md ablation for the sparse backend).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhg_hypergraph::{CsrMatrix, Graph, Hypergraph};
use dhg_skeleton::{static_hypergraph, SkeletonTopology};
use dhg_tensor::NdArray;
use std::hint::black_box;

/// A ring-plus-chords graph of `v` vertices (sparse, skeleton-like).
fn synthetic_graph(v: usize) -> Graph {
    let mut edges = Vec::new();
    for i in 0..v {
        edges.push((i, (i + 1) % v));
        if i % 5 == 0 {
            edges.push((i, (i + v / 3) % v));
        }
    }
    edges.retain(|&(a, b)| a != b);
    Graph::new(v, edges)
}

/// Limb-like hyperedges over `v` vertices.
fn synthetic_hypergraph(v: usize) -> Hypergraph {
    let edges: Vec<Vec<usize>> =
        (0..v / 5).map(|g| (0..5).map(|k| (g * 5 + k) % v).collect()).collect();
    Hypergraph::new(v, edges)
}

fn bench_operator_construction(c: &mut Criterion) {
    let topo = SkeletonTopology::ntu25();
    c.bench_function("graph_normalized_adjacency_ntu25", |b| {
        let g = topo.graph();
        b.iter(|| black_box(g.normalized_adjacency()))
    });
    c.bench_function("hypergraph_operator_ntu25", |b| {
        let hg = static_hypergraph(&topo);
        b.iter(|| black_box(hg.operator()))
    });
    c.bench_function("hypergraph_operator_dense_reference_ntu25", |b| {
        let hg = static_hypergraph(&topo);
        b.iter(|| black_box(hg.operator_dense_reference()))
    });
}

fn bench_operator_application(c: &mut Criterion) {
    // features [C·T, V] times the V×V operator: what every spatial conv
    // pays once per block
    let mut group = c.benchmark_group("operator_apply");
    for &v in &[25usize, 100, 400] {
        let op = synthetic_hypergraph(v).operator();
        let csr = CsrMatrix::from_dense(&op);
        let x = NdArray::from_vec((0..v * 64).map(|i| (i as f32 * 0.1).sin()).collect(), &[v, 64]);
        group.bench_with_input(BenchmarkId::new("dense", v), &v, |b, _| {
            b.iter(|| black_box(op.matmul(&x)))
        });
        group.bench_with_input(BenchmarkId::new("csr", v), &v, |b, _| {
            b.iter(|| black_box(csr.matmul_dense(&x)))
        });
        group.bench_with_input(BenchmarkId::new("graph_dense", v), &v, |b, _| {
            let gop = synthetic_graph(v).normalized_adjacency();
            b.iter(|| black_box(gop.matmul(&x)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operator_construction, bench_operator_application);
criterion_main!(benches);
