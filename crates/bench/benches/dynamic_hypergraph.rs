//! Benchmarks of the dynamic-hypergraph construction costs the paper's
//! §5 worries about ("complex calculations in the process of obtaining
//! dynamic hypergraph"): k-NN hyperedges, k-means hyperedges, moving
//! distance, the per-frame Eq. 9 operator stack, and per-frame vs
//! per-sample dynamic topology inside a DHST forward pass.

use criterion::{criterion_group, criterion_main, Criterion};
use dhg_core::common::ModelDims;
use dhg_core::{Dhgcn, DhgcnConfig, TopologyGranularity};
use dhg_hypergraph::{dynamic_operators, kmeans_hyperedges, knn_hyperedges, moving_distance};
use dhg_nn::Module;
use dhg_skeleton::{static_hypergraph, SkeletonDataset, SkeletonTopology};
use dhg_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn coords_25x3() -> Vec<f32> {
    SkeletonTopology::ntu25().rest_pose().into_vec()
}

fn bench_construction(c: &mut Criterion) {
    let coords = coords_25x3();
    c.bench_function("knn_hyperedges_kn3_v25", |b| {
        b.iter(|| black_box(knn_hyperedges(&coords, 25, 3, 3)))
    });
    c.bench_function("kmeans_hyperedges_km4_v25", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(0);
            black_box(kmeans_hyperedges(&coords, 25, 3, 4, &mut rng))
        })
    });
    c.bench_function("union_operator_kn3_km4_v25", |b| {
        b.iter(|| {
            let knn = knn_hyperedges(&coords, 25, 3, 3);
            let mut rng = StdRng::seed_from_u64(0);
            let km = kmeans_hyperedges(&coords, 25, 3, 4, &mut rng);
            black_box(knn.union(&km).operator())
        })
    });
}

fn bench_joint_weights(c: &mut Criterion) {
    let dataset = SkeletonDataset::ntu60_like(4, 1, 32, 0);
    let positions = dataset.samples[0].data.permute(&[1, 2, 0]); // [T, V, 3]
    let hg = static_hypergraph(&dataset.topology);
    c.bench_function("moving_distance_t32_v25", |b| {
        b.iter(|| black_box(moving_distance(&positions)))
    });
    c.bench_function("dynamic_operators_eq9_t32_v25", |b| {
        b.iter(|| black_box(dynamic_operators(&hg, &positions)))
    });
}

fn dhgcn(granularity: TopologyGranularity) -> Dhgcn {
    let dims = ModelDims { in_channels: 3, n_joints: 25, n_classes: 8 };
    let mut config = DhgcnConfig::small(dims);
    config.granularity = granularity;
    Dhgcn::for_topology(config, &SkeletonTopology::ntu25(), &mut StdRng::seed_from_u64(0))
}

fn bench_topology_granularity(c: &mut Criterion) {
    // the DESIGN.md ablation: paper-faithful per-frame topology vs the
    // per-sample approximation, full model forward at batch 4
    let dataset = SkeletonDataset::ntu60_like(4, 1, 16, 1);
    let mut flat = Vec::new();
    for s in dataset.samples.iter().take(4) {
        flat.extend_from_slice(s.data.data());
    }
    let x = Tensor::constant(NdArray::from_vec(flat, &[4, 3, 16, 25]));
    let mut per_sample = dhgcn(TopologyGranularity::PerSample);
    per_sample.set_training(false);
    let mut per_frame = dhgcn(TopologyGranularity::PerFrame);
    per_frame.set_training(false);
    c.bench_function("dhgcn_forward_per_sample_topology", |b| {
        b.iter(|| black_box(per_sample.forward(&x)))
    });
    c.bench_function("dhgcn_forward_per_frame_topology", |b| {
        b.iter(|| black_box(per_frame.forward(&x)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_construction, bench_joint_weights, bench_topology_granularity
);
criterion_main!(benches);
