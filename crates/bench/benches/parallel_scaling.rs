//! Serial-vs-parallel scaling of the two hot paths the ISSUE names:
//! batched matmul (batch ≥ 8) and the per-frame dynamic-hypergraph
//! operator stack (T ≥ 32). Each workload runs once pinned to a single
//! thread and once at every power-of-two count up to the machine width,
//! so `critcmp`-style comparison of the `threads1` vs `threadsN` lines
//! reads off the speedup directly (the acceptance bar is ≥ 2× with ≥ 4
//! threads on the big shapes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhg_hypergraph::dynamic_operators;
use dhg_skeleton::{static_hypergraph, SkeletonTopology};
use dhg_tensor::parallel::with_threads;
use dhg_tensor::NdArray;
use std::hint::black_box;

/// 1, 2, 4, … up to the detected machine width (always at least 4 so the
/// acceptance shape is exercised even when detection fails).
fn thread_counts() -> Vec<usize> {
    let width = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(4);
    let mut counts = vec![1];
    let mut n = 2;
    while n <= width {
        counts.push(n);
        n *= 2;
    }
    counts
}

fn deterministic_array(shape: &[usize], seed: u32) -> NdArray {
    let n: usize = shape.iter().product();
    // cheap LCG so the bench needs no RNG crate in its hot setup
    let mut state = seed as u64 * 2654435761 + 1;
    let data = (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    NdArray::from_vec(data, shape)
}

fn bench_batched_matmul(c: &mut Criterion) {
    // the conv-sized workload from the model: batch 8, [64, 600]·[600, 72]
    let a = deterministic_array(&[8, 64, 600], 1);
    let b = deterministic_array(&[8, 600, 72], 2);
    let mut g = c.benchmark_group("parallel_matmul_b8_64x600x72");
    for threads in thread_counts() {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |bench, &t| {
            bench.iter(|| with_threads(t, || black_box(a.matmul(&b))))
        });
    }
    g.finish();
}

fn bench_dynamic_operators(c: &mut Criterion) {
    let hg = static_hypergraph(&SkeletonTopology::ntu25());
    let positions = deterministic_array(&[64, 25, 3], 3).map(|v| v + 1.0); // T = 64 ≥ 32
    let mut g = c.benchmark_group("parallel_dynamic_operators_t64_v25");
    for threads in thread_counts() {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |bench, &t| {
            bench.iter(|| with_threads(t, || black_box(dynamic_operators(&hg, &positions))))
        });
    }
    g.finish();
}

fn bench_dense_matmul_regression(c: &mut Criterion) {
    // satellite guard: the density probe must not slow the dense path —
    // this single-threaded dense shape tracks the pre-gate baseline
    let a = deterministic_array(&[1, 128, 256], 4);
    let b = deterministic_array(&[1, 256, 128], 5);
    c.bench_function("dense_matmul_gate_regression_128x256x128", |bench| {
        bench.iter(|| with_threads(1, || black_box(a.matmul(&b))))
    });
}

fn bench_gemm_kernels(c: &mut Criterion) {
    // The acceptance shape: a conv-sized [64, 576]·[576, 425] product,
    // packed cache-blocked kernel vs the retained reference `ikj` row
    // kernel, across the thread sweep. The ISSUE bar is ≥ 2× packed over
    // reference at 8 threads.
    let a = deterministic_array(&[64, 576], 6);
    let b = deterministic_array(&[576, 425], 7);
    let mut g = c.benchmark_group("gemm_conv_64x576x425");
    for threads in thread_counts() {
        g.bench_with_input(BenchmarkId::new("packed", threads), &threads, |bench, &t| {
            bench.iter(|| with_threads(t, || black_box(a.matmul_packed(&b))))
        });
        g.bench_with_input(BenchmarkId::new("reference", threads), &threads, |bench, &t| {
            bench.iter(|| with_threads(t, || black_box(a.matmul_reference(&b))))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_batched_matmul,
    bench_dynamic_operators,
    bench_dense_matmul_regression,
    bench_gemm_kernels
);
criterion_main!(benches);
