//! # dhg-bench
//!
//! Experiment reproduction harness: one binary per evaluation table of the
//! paper (`table1` … `table8`), plus Criterion micro-benchmarks of the
//! performance-relevant kernels (`benches/`).
//!
//! Every `tableN` binary:
//! 1. generates the synthetic stand-in corpus (see DESIGN.md),
//! 2. trains the involved models with the shared §4.2-style recipe,
//! 3. prints the paper's rows next to the measured rows, with notes on
//!    whether the *shape* of the comparison held, and
//! 4. writes `target/experiments/tabN.json`.
//!
//! Run everything with `scripts/run_experiments.sh` (≈ 30–45 min on one
//! CPU core) or an individual table with
//! `cargo run --release -p dhg-bench --bin tableN`.

use dhg_nn::Module;
use dhg_skeleton::{Protocol, SkeletonDataset, Stream};
use dhg_train::eval::{evaluate, evaluate_fused, EvalResult};
use dhg_train::trainer::{train, TrainConfig};
use dhg_train::zoo::Zoo;
use std::path::PathBuf;

/// Shared experiment scale (calibrated for a single CPU core; see
/// DESIGN.md's scaling substitution).
pub mod scale {
    /// Action classes per synthetic corpus.
    pub const N_CLASSES: usize = 8;
    /// Samples generated per class.
    pub const PER_CLASS: usize = 20;
    /// Frames per sequence.
    pub const FRAMES: usize = 24;
    /// Corpus generation seed.
    pub const DATA_SEED: u64 = 42;
    /// Model initialisation seed.
    pub const MODEL_SEED: u64 = 7;
    /// Training epochs for every model (the paper's 50–65-epoch schedule
    /// compressed proportionally).
    pub const EPOCHS: usize = 24;
}

/// The NTU RGB+D 60 stand-in corpus at experiment scale.
pub fn ntu60() -> SkeletonDataset {
    SkeletonDataset::ntu60_like(scale::N_CLASSES, scale::PER_CLASS, scale::FRAMES, scale::DATA_SEED)
}

/// The NTU RGB+D 120 stand-in corpus (more subjects, setup axis).
pub fn ntu120() -> SkeletonDataset {
    SkeletonDataset::ntu120_like(scale::N_CLASSES, scale::PER_CLASS, scale::FRAMES, scale::DATA_SEED)
}

/// The Kinetics-Skeleton stand-in corpus (18 OpenPose joints, noisy).
/// Generated larger than the NTU corpora: the in-the-wild corruption
/// (keypoint dropout + occlusion + arbitrary heading) needs more samples
/// before relational models generalise — mirroring the real Kinetics-
/// Skeleton being ~5× NTU's size.
pub fn kinetics() -> SkeletonDataset {
    SkeletonDataset::kinetics_like(
        scale::N_CLASSES,
        scale::PER_CLASS * 2,
        scale::FRAMES,
        scale::DATA_SEED,
    )
}

/// The shared training recipe.
pub fn train_config() -> TrainConfig {
    TrainConfig::fast(scale::EPOCHS)
}

/// Where table JSON artefacts are written.
pub fn experiments_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

/// Train one model on one stream under a protocol and evaluate it.
pub fn run_single(
    model: &mut dyn Module,
    dataset: &SkeletonDataset,
    protocol: Protocol,
    stream: Stream,
) -> EvalResult {
    let split = dataset.split(protocol, 0);
    train(model, dataset, &split.train, stream, &train_config());
    evaluate(model, dataset, &split.test, stream)
}

/// Train a joint-stream and a bone-stream copy of a model and evaluate
/// joint, bone and fused scores (§3.5's two-stream framework).
pub fn run_two_stream(
    mut joint_model: Box<dyn Module>,
    mut bone_model: Box<dyn Module>,
    dataset: &SkeletonDataset,
    protocol: Protocol,
) -> (EvalResult, EvalResult, EvalResult) {
    let split = dataset.split(protocol, 0);
    let cfg = train_config();
    train(joint_model.as_mut(), dataset, &split.train, Stream::Joint, &cfg);
    train(bone_model.as_mut(), dataset, &split.train, Stream::Bone, &cfg);
    let j = evaluate(joint_model.as_ref(), dataset, &split.test, Stream::Joint);
    let b = evaluate(bone_model.as_ref(), dataset, &split.test, Stream::Bone);
    let f = evaluate_fused(joint_model.as_ref(), bone_model.as_ref(), dataset, &split.test);
    (j, b, f)
}

/// The zoo for a dataset at the experiment seed.
pub fn zoo_for(dataset: &SkeletonDataset) -> Zoo {
    Zoo::new(dataset.topology.clone(), dataset.n_classes, scale::MODEL_SEED)
}

/// Format an ordering check for table notes.
pub fn shape_note(label: &str, holds: bool) -> String {
    format!(
        "{}: {}",
        label,
        if holds { "SHAPE HOLDS" } else { "DEVIATION (within seed noise — see EXPERIMENTS.md)" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_have_expected_geometry() {
        // tiny versions to keep the test fast
        let d = SkeletonDataset::ntu60_like(2, 2, 8, 0);
        assert_eq!(d.topology.n_joints(), 25);
        let k = SkeletonDataset::kinetics_like(2, 2, 8, 0);
        assert_eq!(k.topology.n_joints(), 18);
    }

    #[test]
    fn shape_note_formats() {
        assert!(shape_note("x", true).contains("SHAPE HOLDS"));
        assert!(shape_note("x", false).contains("DEVIATION"));
    }
}
