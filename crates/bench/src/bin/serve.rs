//! Offered-load driver for the micro-batching serve engine.
//!
//! Drives a zoo model through [`dhg_train::ServeEngine`] with concurrent
//! closed-loop clients, compares throughput against the one-request-at-a-
//! time [`dhg_train::InferenceSession`] baseline, demonstrates typed load
//! shedding past the queue bound, and prints (or JSON-dumps) the engine's
//! latency/batch-size histograms.
//!
//! ```text
//! cargo run --release -p dhg-bench --bin serve                 # full run
//! cargo run --release -p dhg-bench --bin serve -- --smoke      # CI gate
//! cargo run --release -p dhg-bench --bin serve -- --model DHGCN --json
//! ```
//!
//! Where the speedup comes from: serving one request at a time leaves a
//! multi-core host mostly idle — per-op work at batch 1 is too small to
//! parallelise efficiently inside a single forward (much of it sits near
//! [`dhg_tensor::parallel::MIN_PARALLEL_WORK`]). The engine instead
//! scales *out*: `--workers` (default = hardware parallelism) model
//! replicas each drain micro-batches concurrently, which multiplies
//! throughput by core count rather than by intra-op parallel efficiency.
//! On a single-core host replicas cannot help and batching only amortises
//! per-op fixed costs (~1.0-1.2×); the ≥2× headroom is exactly what the
//! engine exists to unlock on real serving hardware.
//!
//! `--smoke` is the tier-1 gate: at low offered load (in-flight well
//! under the queue bound) *zero* requests may shed; past the bound,
//! shedding must be observed as typed [`dhg_train::ServeError::Rejected`]
//! values — and every accepted request must still be answered.

use dhg_skeleton::SkeletonTopology;
use dhg_tensor::{NdArray, Tensor};
use dhg_train::serve::{Pending, ServeConfig, ServeEngine, ServeError};
use dhg_train::zoo::Zoo;
use dhg_train::InferenceSession;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const C: usize = 3;
const V: usize = 25;

struct Args {
    model: String,
    tiny: bool,
    requests: usize,
    frames: usize,
    max_batch: usize,
    queue_cap: usize,
    workers: usize,
    threads: usize,
    max_wait_us: u64,
    clients: usize,
    json: bool,
    smoke: bool,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            model: "DHGCN-lite".to_string(),
            tiny: false,
            requests: 96,
            frames: 16,
            max_batch: 8,
            queue_cap: 64,
            workers: 0, // 0 = one replica per hardware thread
            threads: 1,
            max_wait_us: 2000,
            clients: 4,
            json: false,
            smoke: false,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let value = |it: &mut dyn Iterator<Item = String>| {
                it.next().ok_or(format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--model" => args.model = value(&mut it)?,
                "--tiny" => args.tiny = true,
                "--requests" => args.requests = num(&value(&mut it)?)?,
                "--frames" => args.frames = num(&value(&mut it)?)?,
                "--max-batch" => args.max_batch = num(&value(&mut it)?)?,
                "--queue-cap" => args.queue_cap = num(&value(&mut it)?)?,
                "--workers" => args.workers = num(&value(&mut it)?)?,
                "--threads" => args.threads = num(&value(&mut it)?)?,
                "--max-wait-us" => args.max_wait_us = num(&value(&mut it)?)? as u64,
                "--clients" => args.clients = num(&value(&mut it)?)?,
                "--json" => args.json = true,
                "--smoke" => args.smoke = true,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }
}

fn num(s: &str) -> Result<usize, String> {
    s.parse::<usize>().map_err(|_| format!("not a number: {s}"))
}

/// Deterministic single-sample input `[C, T, V]`, distinct per seed.
fn sample(seed: usize, t: usize) -> NdArray {
    NdArray::from_vec(
        (0..C * t * V).map(|i| ((i * 7 + seed * 1009) as f32 * 0.0173).sin()).collect(),
        &[C, t, V],
    )
}

fn zoo(tiny: bool) -> Zoo {
    if tiny {
        Zoo::tiny(SkeletonTopology::ntu25(), 4, 0)
    } else {
        Zoo::new(SkeletonTopology::ntu25(), 60, 0)
    }
}

/// One-request-at-a-time baseline: N sequential `logits` calls.
fn sequential_rps(args: &Args) -> f64 {
    let mut session = InferenceSession::new(zoo(args.tiny).by_name(&args.model).unwrap());
    let t = args.frames;
    // warm caches out of the timed region
    session.logits(&Tensor::constant(sample(0, t).reshape(&[1, C, t, V])));
    let start = Instant::now();
    for seed in 0..args.requests {
        let x = Tensor::constant(sample(seed, t).reshape(&[1, C, t, V]));
        session.logits(&x);
    }
    args.requests as f64 / start.elapsed().as_secs_f64()
}

fn engine_config(args: &Args) -> ServeConfig {
    ServeConfig {
        max_batch: args.max_batch,
        max_wait: Duration::from_micros(args.max_wait_us),
        queue_cap: args.queue_cap,
        workers: if args.workers == 0 {
            dhg_tensor::parallel::num_threads()
        } else {
            args.workers
        },
        threads_per_worker: args.threads.max(1),
        ..ServeConfig::default()
    }
}

fn start_engine(args: &Args, config: ServeConfig) -> ServeEngine {
    let zoo = zoo(args.tiny);
    let model = args.model.clone();
    ServeEngine::start(
        move || zoo.by_name(&model).unwrap_or_else(|| panic!("unknown model {model}")),
        &[C, args.frames, V],
        config,
    )
    .unwrap_or_else(|e| panic!("engine start failed: {e}"))
}

/// Closed-loop offered load: `clients` threads each keep a bounded window
/// of requests in flight until `total` requests complete. Returns
/// requests/second over the whole run.
fn drive(engine: &ServeEngine, args: &Args, total: usize) -> f64 {
    let t = args.frames;
    let clients = args.clients.max(1);
    // in-flight window per client: enough to keep batches full, small
    // enough that the bounded queue absorbs it without shedding
    let window = (args.queue_cap / (2 * clients)).max(1);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            scope.spawn(move || {
                let share = total / clients + usize::from(client < total % clients);
                let mut inflight: Vec<Pending> = Vec::with_capacity(window);
                for i in 0..share {
                    let seed = client * 100_003 + i;
                    loop {
                        match engine.submit(sample(seed, t)) {
                            Ok(pending) => {
                                inflight.push(pending);
                                break;
                            }
                            Err(ServeError::Rejected { .. }) => {
                                // backpressure: drain one before retrying
                                if let Some(p) = inflight.pop() {
                                    p.wait().expect("reply");
                                } else {
                                    std::thread::yield_now();
                                }
                            }
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                    if inflight.len() >= window {
                        inflight.remove(0).wait().expect("reply");
                    }
                }
                for p in inflight {
                    p.wait().expect("reply");
                }
            });
        }
    });
    total as f64 / start.elapsed().as_secs_f64()
}

/// Flood the queue faster than it can drain and count typed rejections.
/// Returns (accepted, shed) — every accepted request is also awaited.
fn flood(engine: &ServeEngine, args: &Args, burst: usize) -> (usize, usize) {
    let mut accepted = Vec::new();
    let mut shed = 0usize;
    for seed in 0..burst {
        match engine.submit(sample(seed, args.frames)) {
            Ok(p) => accepted.push(p),
            Err(ServeError::Rejected { queue_depth }) => {
                assert!(queue_depth > 0, "rejection must carry the observed depth");
                shed += 1;
            }
            Err(e) => panic!("flood submit failed: {e}"),
        }
    }
    let n = accepted.len();
    for p in accepted {
        p.wait().expect("accepted requests must still be answered");
    }
    (n, shed)
}

fn report(args: &Args, seq_rps: f64, eng_rps: f64, engine: &ServeEngine) {
    let m = engine.metrics();
    if args.json {
        println!(
            "{{\"model\":\"{}\",\"requests\":{},\"sequential_rps\":{seq_rps:.2},\
             \"engine_rps\":{eng_rps:.2},\"speedup\":{:.3},\"metrics\":{}}}",
            args.model,
            args.requests,
            eng_rps / seq_rps,
            m.registry().to_json()
        );
    } else {
        let cfg = engine_config(args);
        println!("model            {}", args.model);
        println!("sequential       {seq_rps:>10.1} req/s (one-request-at-a-time baseline)");
        println!(
            "micro-batched    {eng_rps:>10.1} req/s ({} worker(s) x {} thread(s), \
             max_batch {}, max_wait {} us)",
            cfg.workers, cfg.threads_per_worker, args.max_batch, args.max_wait_us
        );
        println!("speedup          {:>10.2}x", eng_rps / seq_rps);
        println!("batch size       {}", m.batch_size.snapshot());
        println!("latency (us)     {}", m.latency_us.snapshot());
        println!(
            "counters         accepted={} completed={} batches={} shed={}",
            m.requests.get(),
            m.completed.get(),
            m.batches.get(),
            m.shed.get()
        );
    }
}

/// Full offered-load run: baseline, batched throughput, overload demo.
fn run(args: &Args) -> ExitCode {
    println!("== serve: micro-batched throughput vs sequential baseline ==");
    let seq_rps = sequential_rps(args);
    let engine = start_engine(args, engine_config(args));
    // warm each worker replica once outside the timed window
    engine.infer(sample(0, args.frames)).expect("warmup");
    let eng_rps = drive(&engine, args, args.requests);
    report(args, seq_rps, eng_rps, &engine);

    // overload: hold batches open so the burst overruns the bounded queue
    let overload = start_engine(
        args,
        ServeConfig {
            max_batch: 2,
            max_wait: Duration::from_secs(2),
            queue_cap: 8,
            workers: 1,
            threads_per_worker: 1,
            ..ServeConfig::default()
        },
    );
    let (accepted, shed) = flood(&overload, args, 64);
    println!(
        "overload         {shed}/{} shed as typed Rejected at queue_cap 8 \
         ({accepted} accepted, all answered)",
        64
    );
    overload.shutdown();
    engine.shutdown();
    if shed == 0 {
        println!("== serve: FAIL (no shedding past the queue bound) ==");
        return ExitCode::FAILURE;
    }
    println!("== serve: OK ==");
    ExitCode::SUCCESS
}

/// Tier-1 smoke: shed semantics must hold exactly, fast, on a tiny model.
fn smoke() -> ExitCode {
    let args = Args {
        model: "DHGCN-lite".into(),
        tiny: true,
        requests: 32,
        frames: 8,
        max_batch: 4,
        queue_cap: 32,
        workers: 1,
        threads: 1,
        max_wait_us: 500,
        clients: 2,
        json: false,
        smoke: true,
    };
    println!("== serve --smoke: backpressure semantics on DHGCN-lite (tiny) ==");
    let mut failures = 0usize;

    // 1. low offered load (in-flight << queue_cap): nothing may shed
    let engine = start_engine(&args, engine_config(&args));
    let rps = drive(&engine, &args, args.requests);
    let m = engine.metrics();
    if m.shed.get() != 0 {
        println!("FAIL low load shed {} request(s); queue bound was never reached", m.shed.get());
        failures += 1;
    } else {
        println!("ok   low load: {} requests, zero sheds, {rps:.1} req/s", args.requests);
    }
    if m.completed.get() != args.requests as u64 {
        println!(
            "FAIL completed {} != driven {}",
            m.completed.get(),
            args.requests
        );
        failures += 1;
    }
    println!("     batch size  {}", m.batch_size.snapshot());
    println!("     latency us  {}", m.latency_us.snapshot());
    engine.shutdown();

    // 2. past the queue bound: typed rejections, accepted work still served
    let overload = start_engine(
        &args,
        ServeConfig {
            max_batch: 2,
            max_wait: Duration::from_secs(2),
            queue_cap: 4,
            workers: 1,
            threads_per_worker: 1,
            ..ServeConfig::default()
        },
    );
    let (accepted, shed) = flood(&overload, &args, 64);
    let shed_counter = overload.metrics().shed.get();
    if shed == 0 {
        println!("FAIL flood of 64 past queue_cap 4 shed nothing");
        failures += 1;
    } else if shed_counter != shed as u64 {
        println!("FAIL shed counter {shed_counter} != observed rejections {shed}");
        failures += 1;
    } else {
        println!("ok   overload: {shed}/64 shed as typed Rejected, {accepted} accepted+answered");
    }
    overload.shutdown();

    if failures == 0 {
        println!("== serve --smoke: OK ==");
        ExitCode::SUCCESS
    } else {
        println!("== serve --smoke: {failures} failure(s) ==");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    match Args::parse() {
        Ok(args) if args.smoke => smoke(),
        Ok(args) => run(&args),
        Err(why) => {
            eprintln!("serve: {why}");
            eprintln!(
                "usage: serve [--model NAME] [--tiny] [--requests N] [--frames T] \
                 [--max-batch B] [--queue-cap Q] [--workers W] [--threads P] \
                 [--max-wait-us U] [--clients C] [--json] [--smoke]"
            );
            ExitCode::FAILURE
        }
    }
}
