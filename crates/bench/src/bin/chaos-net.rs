//! Wire-level chaos driver: runs the network serving stack under seeded
//! transport fault injection and fails loudly if any robustness contract
//! is violated.
//!
//! ```text
//! cargo run --release -p dhg-bench --bin chaos-net               # full run
//! cargo run --release -p dhg-bench --bin chaos-net -- --smoke    # CI gate
//! cargo run --release -p dhg-bench --bin chaos-net -- --seed 99
//! ```
//!
//! Faults are deterministic in `(seed, site, call index)` — rerunning
//! with the seed a failing run printed replays the exact same storm.
//!
//! Contracts checked (the binary exits non-zero if any fails):
//!
//! 1. **Wire storm**: under seeded `conn-drop` / `frame-truncate` /
//!    `frame-corrupt` / `reply-delay` / `accept-reject` injection at
//!    1/2/8 serve workers, every client request resolves to logits
//!    bitwise-identical to the sequential
//!    [`dhg_train::InferenceSession`] reference or to a typed
//!    [`NetError`] — no hangs, no silent corruption (CRC32 turns flipped
//!    bytes into typed checksum errors) — and the router's accounting
//!    conserves: `accepted == completed + failed + bad_output +
//!    deadline_exceeded` per model, so client retries never re-execute
//!    server work.
//! 2. **Idempotent swap**: a hot-swap whose reply is lost on the wire is
//!    retried by the self-healing client and executes exactly once — the
//!    version bumps by one, not two.
//! 3. **Canary lifecycle over the wire**: a staged canary auto-promotes
//!    after N clean requests; a poisoned canary (vet-passing weights
//!    that overflow the forward) rolls back on its first typed
//!    quality breach with the stable version still serving.

use dhg_nn::fault::{FaultPlan, FaultSite};
use dhg_skeleton::SkeletonTopology;
use dhg_tensor::{NdArray, Tensor};
use dhg_train::checkpoint;
use dhg_train::json::Value;
use dhg_train::net::{ClientConfig, NetClient, NetConfig, NetError, NetServer};
use dhg_train::proto::Status;
use dhg_train::router::{zoo_specs, Router, RouterConfig};
use dhg_train::zoo::Zoo;
use dhg_train::InferenceSession;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const C: usize = 3;
const T: usize = 8;
const V: usize = 25;
const MODELS: [&str; 2] = ["ST-GCN", "DHGCN-lite"];
const TENANTS: [&str; 2] = ["acme", "globex"];

struct Args {
    seed: u64,
    requests: usize,
    smoke: bool,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args { seed: 0xD15EA5E, requests: 48, smoke: false };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let value = |it: &mut dyn Iterator<Item = String>| {
                it.next().ok_or(format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--seed" => {
                    args.seed = value(&mut it)?.parse().map_err(|_| "bad --seed".to_string())?
                }
                "--requests" => {
                    args.requests =
                        value(&mut it)?.parse().map_err(|_| "bad --requests".to_string())?
                }
                "--smoke" => args.smoke = true,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if args.smoke {
            args.requests = args.requests.min(24);
        }
        Ok(args)
    }
}

fn sample(seed: usize) -> Vec<f32> {
    (0..C * T * V).map(|i| ((i + seed * 131) as f32 * 0.013).sin()).collect()
}

fn reference_logits(name: &str, x: &[f32]) -> Vec<f32> {
    let zoo = Zoo::tiny(SkeletonTopology::ntu25(), 4, 0);
    let mut session = InferenceSession::new(zoo.by_name(name).expect("zoo model"));
    let batch1 = Tensor::constant(NdArray::from_vec(x.to_vec(), &[C, T, V]).reshape(&[1, C, T, V]));
    session.logits(&batch1).data()[..4].to_vec()
}

/// A client tuned for storms: short deadlines bound every wait, a deep
/// deterministic retry budget heals transient wire damage.
fn storm_client(addr: std::net::SocketAddr) -> Result<NetClient, NetError> {
    NetClient::connect_config(
        addr,
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            reply_timeout: Duration::from_secs(5),
            retries: 10,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            ..ClientConfig::default()
        },
    )
}

fn start_stack(
    workers: usize,
    faults: Option<Arc<FaultPlan>>,
    promote_after: u64,
) -> (Arc<Router>, NetServer) {
    let router = Arc::new(
        Router::start(
            zoo_specs(&MODELS, 4, 0),
            RouterConfig {
                total_workers: workers.max(1),
                canary_promote_after: promote_after,
                ..RouterConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("router start failed: {e}")),
    );
    let server = NetServer::start(
        router.clone(),
        NetConfig {
            read_timeout: Duration::from_secs(5),
            idle_tick: Duration::from_millis(10),
            faults,
            ..NetConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("net server start failed: {e}"));
    (router, server)
}

/// The wire storm: every site armed, conn-drop and accept-reject
/// trip-limited so the link heals within the client retry budget.
fn storm_plan(seed: u64) -> Arc<FaultPlan> {
    FaultPlan::builder(seed)
        .rate(FaultSite::ConnDrop, 0.04)
        .rate(FaultSite::FrameCorrupt, 0.06)
        .rate(FaultSite::FrameTruncate, 0.04)
        .rate(FaultSite::ReplyDelay, 0.10)
        .delay(Duration::from_millis(1))
        .rate(FaultSite::AcceptReject, 0.25)
        .limit(FaultSite::AcceptReject, 8)
        .build()
}

/// Contract 1 at one worker count. Returns failed sub-checks.
fn check_storm(args: &Args, workers: usize) -> usize {
    let faults = storm_plan(args.seed ^ workers as u64);
    let (router, server) = start_stack(workers, Some(faults.clone()), 32);
    let addr = server.addr();
    let mut wrong = 0usize;

    // references computed once per model (engine replies are batch-1)
    let per_tenant = args.requests / TENANTS.len();
    let references: Vec<Vec<Vec<f32>>> = MODELS
        .iter()
        .map(|m| (0..per_tenant).map(|s| reference_logits(m, &sample(s))).collect())
        .collect();
    let refs = Arc::new(references);

    let handles: Vec<_> = TENANTS
        .iter()
        .map(|tenant| {
            let tenant = tenant.to_string();
            let refs = refs.clone();
            std::thread::spawn(move || {
                let mut client = storm_client(addr)?;
                let mut served = 0usize;
                let mut typed = 0usize;
                for s in 0..per_tenant {
                    let mi = s % MODELS.len();
                    match client.infer(&tenant, MODELS[mi], &sample(s)) {
                        Ok(got) => {
                            if got != refs[mi][s] {
                                return Err(NetError::UnexpectedPayload);
                            }
                            served += 1;
                        }
                        // any typed error is within contract; silent
                        // corruption or a hang is not
                        Err(_) => typed += 1,
                    }
                }
                Ok((served, typed, client.reconnects(), client.retries_used()))
            })
        })
        .collect();

    let mut served = 0usize;
    let mut typed = 0usize;
    let mut reconnects = 0u64;
    let mut retries = 0u64;
    for handle in handles {
        match handle.join() {
            Ok(Ok((s, t, rc, rt))) => {
                served += s;
                typed += t;
                reconnects += rc;
                retries += rt;
            }
            Ok(Err(e)) => {
                println!("FAIL storm[w={workers}]: reply diverged or client died: {e}");
                wrong += 1;
            }
            Err(_) => {
                println!("FAIL storm[w={workers}]: client thread panicked");
                wrong += 1;
            }
        }
    }
    if served == 0 {
        println!("FAIL storm[w={workers}]: no request survived the storm");
        wrong += 1;
    }

    // conservation, from the router's own labeled accounting: every
    // request the engines accepted resolved exactly once — replayed
    // retries were answered from the reply cache, not re-executed
    let health = Value::parse(&router.health_json()).expect("health json parses");
    let models = health.get("models").expect("models section");
    for model in MODELS {
        let m = models.get(model).expect("model entry");
        let count = |k: &str| m.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
        let accepted = count("accepted");
        let resolved =
            count("completed") + count("failed") + count("bad_output") + count("deadline_exceeded");
        if accepted != resolved {
            println!(
                "FAIL storm[w={workers}]: {model} conservation broken — \
                 accepted {accepted} != resolved {resolved}"
            );
            wrong += 1;
        }
    }

    // the storm must have actually fired to prove anything
    let wire_trips: u64 = FaultSite::WIRE.iter().map(|&s| faults.trips(s)).sum();
    if wire_trips == 0 {
        println!("FAIL storm[w={workers}]: fault plan never tripped a wire site");
        wrong += 1;
    }
    if wrong == 0 {
        println!(
            "ok   storm[w={workers}]: {served} bitwise + {typed} typed over {wire_trips} \
             wire fault(s); {reconnects} reconnect(s), {retries} retry(s), accounting conserved"
        );
    }
    server.shutdown();
    router.shutdown();
    wrong
}

/// Contract 2: a swap whose reply is truncated on the wire executes
/// exactly once — the retried request is answered from the reply cache.
fn check_idempotent_swap(args: &Args) -> usize {
    let faults = FaultPlan::builder(args.seed)
        .rate(FaultSite::FrameTruncate, 1.0)
        .limit(FaultSite::FrameTruncate, 1)
        .build();
    let (router, server) = start_stack(1, Some(faults.clone()), 32);
    let addr = server.addr();
    let model = "DHGCN-lite";
    let zoo_v2 = Zoo::tiny(SkeletonTopology::ntu25(), 4, 7);
    let v2_bytes = checkpoint::save(&zoo_v2.by_name(model).expect("zoo")).to_vec();

    let mut wrong = 0usize;
    let mut client = storm_client(addr).unwrap_or_else(|e| panic!("connect: {e}"));
    match client.swap(model, &v2_bytes) {
        Ok(2) => {}
        Ok(version) => {
            println!("FAIL idempotent-swap: reply says version {version}, want 2");
            wrong += 1;
        }
        Err(e) => {
            println!("FAIL idempotent-swap: swap failed through retries: {e}");
            wrong += 1;
        }
    }
    if faults.trips(FaultSite::FrameTruncate) != 1 {
        println!("FAIL idempotent-swap: the reply was never truncated — nothing was proven");
        wrong += 1;
    }
    if client.retries_used() == 0 {
        println!("FAIL idempotent-swap: client never retried the lost reply");
        wrong += 1;
    }
    // the router agrees: one swap happened, not one per attempt
    if router.version(model) != Some(2) {
        println!(
            "FAIL idempotent-swap: router at version {:?}, want Some(2) — \
             the retry re-executed the swap",
            router.version(model)
        );
        wrong += 1;
    }
    if wrong == 0 {
        println!(
            "ok   idempotent-swap: reply truncated once, {} retry(s), version bumped \
             exactly once (1 -> 2)",
            client.retries_used()
        );
    }
    server.shutdown();
    router.shutdown();
    wrong
}

/// Contract 3: canary promotion and poisoned-canary rollback over the
/// wire, with the health endpoint observing both.
fn check_canary(args: &Args) -> usize {
    let promote_after = 4u64;
    let (router, server) = start_stack(1, None, promote_after);
    let addr = server.addr();
    let model = "ST-GCN";
    let mut wrong = 0usize;
    let mut client = storm_client(addr).unwrap_or_else(|e| panic!("connect: {e}"));

    // v2 reference: v1 constructor + v2 weights
    let zoo_v2 = Zoo::tiny(SkeletonTopology::ntu25(), 4, args.seed ^ 11);
    let v2_bytes = checkpoint::save(&zoo_v2.by_name(model).expect("zoo")).to_vec();
    let v2_loaded = Zoo::tiny(SkeletonTopology::ntu25(), 4, 0).by_name(model).expect("zoo");
    checkpoint::load(&v2_loaded, checkpoint::save(&zoo_v2.by_name(model).expect("zoo")))
        .expect("v2 restores");
    let mut v2_session = InferenceSession::new(v2_loaded);
    let mut v2_ref = |x: &[f32]| {
        let batch1 =
            Tensor::constant(NdArray::from_vec(x.to_vec(), &[C, T, V]).reshape(&[1, C, T, V]));
        v2_session.logits(&batch1).data()[..4].to_vec()
    };

    // 3a. stage at fraction 1.0: every keyed request rides the canary
    // and returns v2 logits bitwise; after `promote_after` clean
    // replies it is the stable version
    match client.swap_canary(model, &v2_bytes, 1.0) {
        Ok(2) => {}
        other => {
            println!("FAIL canary: staging returned {other:?}, want Ok(2)");
            wrong += 1;
        }
    }
    for s in 0..promote_after as usize {
        let x = sample(s);
        match client.infer("acme", model, &x) {
            Ok(got) if got == v2_ref(&x) => {}
            Ok(_) => {
                println!("FAIL canary: request {s} did not serve v2 bitwise at fraction 1.0");
                wrong += 1;
            }
            Err(e) => {
                println!("FAIL canary: clean candidate refused request {s}: {e}");
                wrong += 1;
            }
        }
    }
    if router.version(model) != Some(2) {
        println!("FAIL canary: no auto-promotion after {promote_after} clean replies");
        wrong += 1;
    }

    // 3b. a poisoned canary (finite weights the vet accepts, forward
    // overflows to inf) rolls back on its first typed quality breach
    let poisoned = Zoo::tiny(SkeletonTopology::ntu25(), 4, 0).by_name(model).expect("zoo");
    for p in poisoned.parameters().iter().rev().take(2) {
        p.data_mut().data_mut().fill(f32::MAX);
    }
    let poison_bytes = checkpoint::save(&poisoned).to_vec();
    match client.swap_canary(model, &poison_bytes, 1.0) {
        Ok(3) => {}
        other => {
            println!("FAIL canary: poison staging returned {other:?}, want Ok(3)");
            wrong += 1;
        }
    }
    match client.infer("acme", model, &sample(99)) {
        Err(NetError::Remote { status: Status::BadOutput, .. }) => {}
        other => {
            println!("FAIL canary: poisoned reply was {other:?}, want typed BadOutput");
            wrong += 1;
        }
    }
    if router.version(model) != Some(2) {
        println!("FAIL canary: rollback did not keep the stable version");
        wrong += 1;
    }
    let x = sample(7);
    match client.infer("acme", model, &x) {
        Ok(got) if got == v2_ref(&x) => {}
        other => {
            println!("FAIL canary: stable version not serving after rollback ({other:?})");
            wrong += 1;
        }
    }

    // 3c. both transitions observable through the health endpoint
    let health = Value::parse(&client.health().unwrap_or_else(|e| panic!("health: {e}")))
        .expect("health json parses");
    let m = health.get("models").and_then(|ms| ms.get(model)).expect("model entry");
    let count = |k: &str| m.get(k).and_then(|v| v.as_f64()).unwrap_or(-1.0) as i64;
    if count("canary_promotions") != 1 || count("canary_rollbacks") != 1 {
        println!(
            "FAIL canary: health reports {} promotion(s) / {} rollback(s), want 1 / 1",
            count("canary_promotions"),
            count("canary_rollbacks")
        );
        wrong += 1;
    }
    if !matches!(m.get("canary"), Some(Value::Null)) {
        println!("FAIL canary: health still shows a staged canary after the lifecycle");
        wrong += 1;
    }
    if wrong == 0 {
        println!(
            "ok   canary: staged -> promoted after {promote_after} clean, poisoned \
             candidate rolled back typed, stable version served throughout"
        );
    }
    server.shutdown();
    router.shutdown();
    wrong
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(why) => {
            eprintln!("chaos-net: {why}");
            eprintln!("usage: chaos-net [--seed N] [--requests N] [--smoke]");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "== chaos-net{}: wire fault-injection contracts (seed {}) ==",
        if args.smoke { " --smoke" } else { "" },
        args.seed
    );
    let worker_counts: &[usize] = if args.smoke { &[1, 2] } else { &[1, 2, 8] };
    let mut failures = 0usize;
    for &w in worker_counts {
        failures += check_storm(&args, w);
    }
    failures += check_idempotent_swap(&args);
    failures += check_canary(&args);
    if failures == 0 {
        println!("== chaos-net: OK ==");
        ExitCode::SUCCESS
    } else {
        println!("== chaos-net: {failures} failure(s) — replay with --seed {} ==", args.seed);
        ExitCode::FAILURE
    }
}
