//! Static model-graph analyzer over the whole model zoo.
//!
//! Without a single real forward pass through the plan, the analyzer
//! verifies for every zoo model, on both skeleton topologies:
//!
//! 1. **shape compatibility** end-to-end at representative `[N, C, T, V]`
//!    inputs (joint stream, bone stream and two-stream fusion),
//! 2. **inference readiness** — warmed BatchNorm statistics, serving
//!    caches prepared, and zero autograd nodes built on the compiled path,
//! 3. **hypergraph incidence invariants** — binary `H`, full joint
//!    coverage, normalised `Imp` weights, non-singular degree matrices,
//! 4. **workspace aliasing** — one audited `forward_inference` pass per
//!    model must report zero buffer-alias hazards.
//!
//! Exit status is non-zero if *any* diagnostic (warning or error)
//! survives. `analyze --self-test` instead seeds known-bad inputs and
//! structures and fails if the analyzer misses any of them.
//!
//! ```text
//! cargo run --release -p dhg-bench --bin analyze
//! cargo run --release -p dhg-bench --bin analyze -- --self-test
//! ```

use dhg_core::TwoStream;
use dhg_nn::{analyze, DiagCode, Module, SymShape};
use dhg_skeleton::SkeletonTopology;
use dhg_tensor::{NdArray, Tensor, Workspace};
use dhg_train::zoo::Zoo;
use std::process::ExitCode;

/// Every row of the zoo registry (Tabs. 6–8).
const MODELS: [&str; 9] = [
    "ST-GCN",
    "2s-AGCN",
    "2s-AHGCN",
    "Shift-GCN",
    "TCN",
    "ST-LSTM",
    "Lie Group",
    "DHGCN",
    "DHGCN-lite",
];

/// Deterministic representative batch `[n, 3, t, v]`.
fn batch(n: usize, t: usize, v: usize) -> Tensor {
    Tensor::constant(NdArray::from_vec(
        (0..n * 3 * t * v).map(|i| (i as f32 * 0.017).sin()).collect(),
        &[n, 3, t, v],
    ))
}

/// Warm BN statistics with one training-mode pass, then compile for
/// serving — the state a correctly deployed model is in.
fn warmed(zoo: &Zoo, name: &str, x: &Tensor) -> Box<dyn Module> {
    let mut m = zoo.by_name(name).unwrap_or_else(|| panic!("unknown model {name}"));
    m.forward(x);
    m.prepare_inference();
    m
}

/// Audit one topology's zoo; returns the number of failed checks.
fn audit_topology(label: &str, topology: SkeletonTopology, t: usize) -> usize {
    let v = topology.n_joints();
    let zoo = Zoo::tiny(topology, 4, 0);
    let x = batch(2, t, v);
    let shape = SymShape::nctv(3, t, v);
    let mut failures = 0;

    for name in MODELS {
        let m = warmed(&zoo, name, &x);

        // joint- and bone-stream analysis (both streams are [N, 3, T, V])
        let report = analyze(&m.plan(&shape));
        if report.ok() {
            println!("ok   {label:<12} {name:<12} plan: {report}");
        } else {
            println!("FAIL {label:<12} {name:<12} plan:\n{report}");
            failures += 1;
        }

        // compiled-path execution audit: no autograd nodes, no buffer
        // aliasing hazards
        let mut ws = Workspace::new();
        let nodes_before = dhg_tensor::graph_nodes_created();
        let y = m.forward_inference(&x, &mut ws);
        let nodes_built = dhg_tensor::graph_nodes_created() - nodes_before;
        if nodes_built > 0 {
            println!("FAIL {label:<12} {name:<12} built {nodes_built} autograd node(s) while serving");
            failures += 1;
        }
        if ws.alias_hazards() > 0 {
            println!(
                "FAIL {label:<12} {name:<12} {} workspace alias hazard(s)",
                ws.alias_hazards()
            );
            failures += 1;
        }
        if y.shape() != [2, 4] {
            println!("FAIL {label:<12} {name:<12} serving output shape {:?}", y.shape());
            failures += 1;
        }

        // two-stream late fusion: joint + bone models must agree on [N, K]
        let fused = TwoStream::new(warmed(&zoo, name, &x), warmed(&zoo, name, &x));
        let freport = analyze(&fused.plan_fusion(&shape, &shape));
        if freport.ok() {
            println!("ok   {label:<12} {name:<12} fusion: {freport}");
        } else {
            println!("FAIL {label:<12} {name:<12} fusion:\n{freport}");
            failures += 1;
        }
    }
    failures
}

/// One seeded negative: `what` must hold, else the analyzer missed it.
fn expect(failures: &mut usize, what: &str, caught: bool) {
    if caught {
        println!("ok   self-test: {what}");
    } else {
        println!("MISS self-test: {what}");
        *failures += 1;
    }
}

/// Seed known-bad inputs and structures; every one must be flagged.
fn self_test() -> usize {
    let topology = SkeletonTopology::ntu25();
    let v = topology.n_joints();
    let t = 16;
    let zoo = Zoo::tiny(topology.clone(), 4, 0);
    let x = batch(2, t, v);
    let mut missed = 0;

    for name in MODELS {
        let m = warmed(&zoo, name, &x);
        let wrong_channels = analyze(&m.plan(&SymShape::nctv(4, t, v)));
        expect(&mut missed, &format!("{name} rejects a 4-channel input"), wrong_channels.has_errors());
        let wrong_joints = analyze(&m.plan(&SymShape::nctv(3, t, v + 1)));
        expect(&mut missed, &format!("{name} rejects a {}-joint input", v + 1), wrong_joints.has_errors());
        let wrong_rank = analyze(&m.plan(&SymShape::batched(&[3])));
        expect(&mut missed, &format!("{name} rejects a rank-2 input"), wrong_rank.has_errors());
    }

    // cold, unprepared eval-mode models must at least warn
    for name in ["ST-GCN", "TCN", "DHGCN", "DHGCN-lite"] {
        let mut m = zoo.by_name(name).unwrap();
        m.set_training(false); // never trained, never prepared
        let r = analyze(&m.plan(&SymShape::nctv(3, t, v)));
        expect(
            &mut missed,
            &format!("{name} cold eval mode is flagged"),
            !r.with_code(DiagCode::BnStatsCold).is_empty()
                || !r.with_code(DiagCode::NotPrepared).is_empty(),
        );
    }

    // seeded incidence-invariant violations
    let hg = dhg_skeleton::static_hypergraph(&topology);
    let mut uncovered = hg.incidence();
    for e in 0..uncovered.shape()[1] {
        uncovered.set(&[dhg_skeleton::topology::ntu::HEAD, e], 0.0);
    }
    expect(
        &mut missed,
        "uncovered joint is flagged",
        dhg_hypergraph::validate_incidence(&uncovered)
            .iter()
            .any(|i| i.code() == "incidence-uncovered-vertex"),
    );
    let mut empty = hg.incidence();
    for j in 0..empty.shape()[0] {
        empty.set(&[j, 5], 0.0);
    }
    expect(
        &mut missed,
        "empty hyperedge is flagged",
        dhg_hypergraph::validate_incidence(&empty)
            .iter()
            .any(|i| i.code() == "incidence-empty-edge"),
    );
    let mut fractional = hg.incidence();
    fractional.set(&[0, 0], 0.5);
    expect(
        &mut missed,
        "non-binary incidence entry is flagged",
        dhg_hypergraph::validate_incidence(&fractional)
            .iter()
            .any(|i| i.code() == "incidence-not-binary"),
    );
    let mut imp = dhg_hypergraph::joint_weights(&hg, &vec![1.0; v]);
    imp.set(&[dhg_skeleton::topology::ntu::HEAD, 4], imp.at(&[dhg_skeleton::topology::ntu::HEAD, 4]) + 0.5);
    expect(
        &mut missed,
        "denormalised Imp weights are flagged",
        dhg_hypergraph::validate_imp(&hg.incidence(), &imp)
            .iter()
            .any(|i| i.code() == "imp-not-normalized"),
    );

    // mismatched class counts across fusion streams
    let other = Zoo::tiny(topology, 5, 0);
    let fused = TwoStream::new(warmed(&zoo, "ST-GCN", &x), warmed(&other, "ST-GCN", &x));
    let r = analyze(&fused.plan_fusion(&SymShape::nctv(3, t, v), &SymShape::nctv(3, t, v)));
    expect(
        &mut missed,
        "fusing 4-class and 5-class streams is flagged",
        !r.with_code(DiagCode::FusionMismatch).is_empty(),
    );

    missed
}

fn main() -> ExitCode {
    let self_test_mode = std::env::args().any(|a| a == "--self-test");
    let failures = if self_test_mode {
        println!("== analyze: seeded-negative self-test ==");
        self_test()
    } else {
        println!("== analyze: static audit of the model zoo ==");
        audit_topology("NTU-25", SkeletonTopology::ntu25(), 16)
            + audit_topology("OpenPose-18", SkeletonTopology::openpose18(), 16)
    };
    if failures == 0 {
        println!("== analyze: OK ==");
        ExitCode::SUCCESS
    } else {
        println!("== analyze: {failures} failure(s) ==");
        ExitCode::FAILURE
    }
}
