//! Static model-graph analyzer over the whole model zoo.
//!
//! Without a single real forward pass through the plan, the analyzer
//! verifies for every zoo model, on both skeleton topologies:
//!
//! 1. **shape compatibility** end-to-end at representative `[N, C, T, V]`
//!    inputs (joint stream, bone stream and two-stream fusion),
//! 2. **inference readiness** — warmed BatchNorm statistics, serving
//!    caches prepared, and zero autograd nodes built on the compiled path,
//! 3. **hypergraph incidence invariants** — binary `H`, full joint
//!    coverage, normalised `Imp` weights, non-singular degree matrices,
//! 4. **workspace aliasing** — one audited `forward_inference` pass per
//!    model must report zero buffer-alias hazards.
//!
//! 5. **streaming window paths** — the `StreamableModel::plan_window`
//!    plans (with and without injected rolling operators) must be clean,
//!    and a live `StreamingSession` ring must materialise exactly the
//!    window shape the plan was audited for,
//! 6. **memory budget** (`--budget [BYTES]`) — every model's predicted
//!    peak workspace (from the plan IR's static cost model) must fit the
//!    serve workspace cap (default: `dhg_tensor::DEFAULT_BYTE_BUDGET`),
//! 7. **cost cross-check** (`--bench PATH`) — predicted FLOPs divided by
//!    a measured `BENCH_*.json` serve latency must not imply a rate above
//!    the machine's own measured peak GEMM throughput (a predicted-FLOP
//!    overcount would).
//!
//! Exit status is non-zero if *any* diagnostic (warning or error)
//! survives. `analyze --self-test` instead seeds known-bad inputs and
//! structures and fails if the analyzer misses any of them.
//!
//! ```text
//! cargo run --release -p dhg-bench --bin analyze
//! cargo run --release -p dhg-bench --bin analyze -- --budget
//! cargo run --release -p dhg-bench --bin analyze -- --bench BENCH_9.json
//! cargo run --release -p dhg-bench --bin analyze -- --self-test
//! ```

use dhg_core::streaming::StreamableModel;
use dhg_core::TwoStream;
use dhg_nn::{analyze, DiagCode, Module, Plan, SymShape};
use dhg_skeleton::SkeletonTopology;
use dhg_tensor::{NdArray, Tensor, Workspace};
use dhg_train::streaming::{StreamingConfig, StreamingSession};
use dhg_train::zoo::Zoo;
use std::process::ExitCode;

/// Every row of the zoo registry (Tabs. 6–8).
const MODELS: [&str; 9] = [
    "ST-GCN",
    "2s-AGCN",
    "2s-AHGCN",
    "Shift-GCN",
    "TCN",
    "ST-LSTM",
    "Lie Group",
    "DHGCN",
    "DHGCN-lite",
];

/// Deterministic representative batch `[n, 3, t, v]`.
fn batch(n: usize, t: usize, v: usize) -> Tensor {
    Tensor::constant(NdArray::from_vec(
        (0..n * 3 * t * v).map(|i| (i as f32 * 0.017).sin()).collect(),
        &[n, 3, t, v],
    ))
}

/// Warm BN statistics with one training-mode pass, then compile for
/// serving — the state a correctly deployed model is in.
fn warmed(zoo: &Zoo, name: &str, x: &Tensor) -> Box<dyn Module> {
    let mut m = zoo.by_name(name).unwrap_or_else(|| panic!("unknown model {name}"));
    m.forward(x);
    m.prepare_inference();
    m
}

/// The plan's predicted peak workspace bytes, if it does not fit the cap.
fn over_budget(plan: &Plan, budget: Option<u64>) -> Option<u64> {
    let cap = budget?;
    let peak = analyze(plan).cost_summary().workspace_peak;
    (peak > cap).then_some(peak)
}

/// Check a plan's predicted peak workspace against the byte budget;
/// prints and counts a `budget-exceeded` failure when it does not fit.
fn check_budget(label: &str, name: &str, plan: &Plan, budget: Option<u64>) -> usize {
    match (over_budget(plan, budget), budget) {
        (Some(peak), Some(cap)) => {
            println!(
                "FAIL {label:<12} {name:<12} {}: predicted peak workspace {peak} B exceeds cap {cap} B",
                DiagCode::BudgetExceeded,
            );
            1
        }
        _ => 0,
    }
}

/// Audit one topology's zoo; returns the number of failed checks.
fn audit_topology(label: &str, topology: SkeletonTopology, t: usize, budget: Option<u64>) -> usize {
    let v = topology.n_joints();
    let zoo = Zoo::tiny(topology, 4, 0);
    let x = batch(2, t, v);
    let shape = SymShape::nctv(3, t, v);
    let mut failures = 0;

    for name in MODELS {
        let m = warmed(&zoo, name, &x);

        // joint- and bone-stream analysis (both streams are [N, 3, T, V])
        let plan = m.plan(&shape);
        let report = analyze(&plan);
        if report.ok() {
            println!("ok   {label:<12} {name:<12} plan: {report}");
            println!("     {label:<12} {name:<12} cost: {}", report.cost_summary());
        } else {
            println!("FAIL {label:<12} {name:<12} plan:\n{report}");
            failures += 1;
        }
        failures += check_budget(label, name, &plan, budget);

        // compiled-path execution audit: no autograd nodes, no buffer
        // aliasing hazards
        let mut ws = Workspace::new();
        let nodes_before = dhg_tensor::graph_nodes_created();
        let y = m.forward_inference(&x, &mut ws);
        let nodes_built = dhg_tensor::graph_nodes_created() - nodes_before;
        if nodes_built > 0 {
            println!("FAIL {label:<12} {name:<12} built {nodes_built} autograd node(s) while serving");
            failures += 1;
        }
        if ws.alias_hazards() > 0 {
            println!(
                "FAIL {label:<12} {name:<12} {} workspace alias hazard(s)",
                ws.alias_hazards()
            );
            failures += 1;
        }
        if y.shape() != [2, 4] {
            println!("FAIL {label:<12} {name:<12} serving output shape {:?}", y.shape());
            failures += 1;
        }

        // two-stream late fusion: joint + bone models must agree on [N, K]
        let fused = TwoStream::new(warmed(&zoo, name, &x), warmed(&zoo, name, &x));
        let freport = analyze(&fused.plan_fusion(&shape, &shape));
        if freport.ok() {
            println!("ok   {label:<12} {name:<12} fusion: {freport}");
        } else {
            println!("FAIL {label:<12} {name:<12} fusion:\n{freport}");
            failures += 1;
        }
    }
    failures
}

/// Audit the streaming window paths: every streamable model's
/// `plan_window` must be clean (with injected rolling operators where
/// the model consumes them), fit the budget, and agree with the window
/// shape a live `StreamingSession` ring actually materialises.
fn audit_streaming(label: &str, topology: SkeletonTopology, t: usize, budget: Option<u64>) -> usize {
    let v = topology.n_joints();
    let zoo = Zoo::tiny(topology, 4, 0);
    let x = batch(2, t, v);
    let window = SymShape::nctv(3, t, v);
    let mut failures = 0;

    // typed accessors: plan_window is a StreamableModel method, which the
    // Box<dyn Module> registry erases
    let mut audit = |name: &str, mut m: Box<dyn StreamableModel>| {
        m.forward(&x);
        m.prepare_inference();
        let ops_shape = SymShape::batched(&[t, v, v]);
        let injected = m.consumes_window_ops().then_some(&ops_shape);
        let plan = m.plan_window(&window, injected);
        let report = analyze(&plan);
        if report.ok() {
            println!("ok   {label:<12} {name:<12} window: {report}");
        } else {
            println!("FAIL {label:<12} {name:<12} window:\n{report}");
            failures += 1;
        }
        failures += check_budget(label, name, &plan, budget);

        // ring audit: the session's materialised window must be exactly
        // the [1, C, T, V] shape the plan above was audited for, and a
        // full ring must emit [K] logits
        let mut session = StreamingSession::new(m, 3, v, StreamingConfig::new(t));
        let mut logits = None;
        for ti in 0..t {
            let frame: Vec<f32> =
                (0..3 * v).map(|i| ((ti * 31 + i) as f32 * 0.013).sin()).collect();
            logits = session.push(&frame);
        }
        let ring = session.window_input();
        if ring.shape() != [1, 3, t, v] {
            println!(
                "FAIL {label:<12} {name:<12} ring shape {:?} != audited window [1, 3, {t}, {v}]",
                ring.shape()
            );
            failures += 1;
        }
        match logits {
            Some(y) if y.shape() == [4] => {}
            Some(y) => {
                println!("FAIL {label:<12} {name:<12} stream logits shape {:?}", y.shape());
                failures += 1;
            }
            None => {
                println!("FAIL {label:<12} {name:<12} full ring emitted nothing");
                failures += 1;
            }
        }
    };
    audit("ST-GCN", Box::new(zoo.stgcn()));
    audit("DHGCN", Box::new(zoo.dhgcn()));
    audit("DHGCN-lite", Box::new(zoo.dhgcn_lite()));
    failures
}

/// One seeded negative: `what` must hold, else the analyzer missed it.
fn expect(failures: &mut usize, what: &str, caught: bool) {
    if caught {
        println!("ok   self-test: {what}");
    } else {
        println!("MISS self-test: {what}");
        *failures += 1;
    }
}

/// Seed known-bad inputs and structures; every one must be flagged.
fn self_test() -> usize {
    let topology = SkeletonTopology::ntu25();
    let v = topology.n_joints();
    let t = 16;
    let zoo = Zoo::tiny(topology.clone(), 4, 0);
    let x = batch(2, t, v);
    let mut missed = 0;

    for name in MODELS {
        let m = warmed(&zoo, name, &x);
        let wrong_channels = analyze(&m.plan(&SymShape::nctv(4, t, v)));
        expect(&mut missed, &format!("{name} rejects a 4-channel input"), wrong_channels.has_errors());
        let wrong_joints = analyze(&m.plan(&SymShape::nctv(3, t, v + 1)));
        expect(&mut missed, &format!("{name} rejects a {}-joint input", v + 1), wrong_joints.has_errors());
        let wrong_rank = analyze(&m.plan(&SymShape::batched(&[3])));
        expect(&mut missed, &format!("{name} rejects a rank-2 input"), wrong_rank.has_errors());
    }

    // cold, unprepared eval-mode models must at least warn
    for name in ["ST-GCN", "TCN", "DHGCN", "DHGCN-lite"] {
        let mut m = zoo.by_name(name).unwrap();
        m.set_training(false); // never trained, never prepared
        let r = analyze(&m.plan(&SymShape::nctv(3, t, v)));
        expect(
            &mut missed,
            &format!("{name} cold eval mode is flagged"),
            !r.with_code(DiagCode::BnStatsCold).is_empty()
                || !r.with_code(DiagCode::NotPrepared).is_empty(),
        );
    }

    // seeded incidence-invariant violations
    let hg = dhg_skeleton::static_hypergraph(&topology);
    let mut uncovered = hg.incidence();
    for e in 0..uncovered.shape()[1] {
        uncovered.set(&[dhg_skeleton::topology::ntu::HEAD, e], 0.0);
    }
    expect(
        &mut missed,
        "uncovered joint is flagged",
        dhg_hypergraph::validate_incidence(&uncovered)
            .iter()
            .any(|i| i.code() == "incidence-uncovered-vertex"),
    );
    let mut empty = hg.incidence();
    for j in 0..empty.shape()[0] {
        empty.set(&[j, 5], 0.0);
    }
    expect(
        &mut missed,
        "empty hyperedge is flagged",
        dhg_hypergraph::validate_incidence(&empty)
            .iter()
            .any(|i| i.code() == "incidence-empty-edge"),
    );
    let mut fractional = hg.incidence();
    fractional.set(&[0, 0], 0.5);
    expect(
        &mut missed,
        "non-binary incidence entry is flagged",
        dhg_hypergraph::validate_incidence(&fractional)
            .iter()
            .any(|i| i.code() == "incidence-not-binary"),
    );
    let mut imp = dhg_hypergraph::joint_weights(&hg, &vec![1.0; v]);
    imp.set(&[dhg_skeleton::topology::ntu::HEAD, 4], imp.at(&[dhg_skeleton::topology::ntu::HEAD, 4]) + 0.5);
    expect(
        &mut missed,
        "denormalised Imp weights are flagged",
        dhg_hypergraph::validate_imp(&hg.incidence(), &imp)
            .iter()
            .any(|i| i.code() == "imp-not-normalized"),
    );

    // mismatched class counts across fusion streams
    let other = Zoo::tiny(topology, 5, 0);
    let fused = TwoStream::new(warmed(&zoo, "ST-GCN", &x), warmed(&other, "ST-GCN", &x));
    let r = analyze(&fused.plan_fusion(&SymShape::nctv(3, t, v), &SymShape::nctv(3, t, v)));
    expect(
        &mut missed,
        "fusing 4-class and 5-class streams is flagged",
        !r.with_code(DiagCode::FusionMismatch).is_empty(),
    );

    // budget gate: an absurdly small cap must refuse every real model
    let m = warmed(&zoo, "DHGCN", &x);
    let plan = m.plan(&SymShape::nctv(3, t, v));
    expect(
        &mut missed,
        "budget gate refuses DHGCN under a 1 KiB cap",
        over_budget(&plan, Some(1024)).is_some(),
    );

    // workspace-lifetime verifier: reading a recycled buffer is an error
    let shape = SymShape::nctv(3, t, v);
    let mut p = Plan::new(&shape);
    p.ws_take("buf", &shape);
    p.push_op("producer", "", shape.clone());
    p.ws_give("buf");
    p.push_op("late_consumer", "", shape.clone());
    p.ws_read("buf");
    expect(
        &mut missed,
        "read of a recycled workspace buffer is flagged",
        !analyze(&p).with_code(DiagCode::WorkspaceUseAfterFree).is_empty(),
    );

    // workspace-lifetime verifier: taking a live id again is aliasing
    let mut p = Plan::new(&shape);
    p.ws_take("buf", &shape);
    p.push_op("producer", "", shape.clone());
    p.ws_take("buf", &shape);
    expect(
        &mut missed,
        "double-take of a live workspace id is flagged",
        !analyze(&p).with_code(DiagCode::WorkspaceAlias).is_empty(),
    );

    // streaming path: misaligned rolling operators must be refused
    let mut dh = zoo.dhgcn();
    dh.forward(&x);
    dh.prepare_inference();
    let bad_ops = dh.plan_window(&shape, Some(&SymShape::batched(&[t, v + 1, v + 1])));
    expect(
        &mut missed,
        "misaligned rolling operators are flagged",
        !analyze(&bad_ops).with_code(DiagCode::ShapeMismatch).is_empty(),
    );

    missed
}

/// Cross-check predicted FLOPs against measured wall-clock rates from a
/// `BENCH_*.json` snapshot: the DHGCN-lite serve p50 latency and the
/// snapshot's own peak GEMM throughput bound each other — a predicted
/// rate above the measured peak would mean the static cost model
/// overcounts. Returns the number of failed checks.
fn cross_check_bench(path: &str) -> usize {
    use dhg_train::json::Value;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("FAIL bench cross-check: cannot read {path}: {e}");
            return 1;
        }
    };
    let root = match Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            println!("FAIL bench cross-check: cannot parse {path}: {e}");
            return 1;
        }
    };
    let peak_gflops = root
        .get("gemm")
        .and_then(Value::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| r.get("gflops").and_then(Value::as_f64))
                .fold(0.0f64, f64::max)
        })
        .unwrap_or(0.0);
    let p50_us = root.get("serve").and_then(|s| s.get("p50_us")).and_then(Value::as_f64);
    let (Some(p50_us), true) = (p50_us, peak_gflops > 0.0) else {
        println!("FAIL bench cross-check: {path} lacks gemm/serve sections");
        return 1;
    };

    // the serve section scores DHGCN-lite singles at [3, 16, 25] (8 in
    // smoke runs — use the snapshot's window if recorded)
    let frames = root
        .get("serve")
        .and_then(|s| s.get("frames"))
        .and_then(Value::as_f64)
        .map(|f| f as usize)
        .unwrap_or(16);
    let zoo = Zoo::tiny(SkeletonTopology::ntu25(), 4, 0);
    let mut m = zoo.dhgcn_lite();
    m.forward(&batch(1, frames, 25));
    m.prepare_inference();
    let cost = analyze(&m.plan(&SymShape::nctv(3, frames, 25))).cost_summary();
    let predicted_gflop = cost.flops as f64 / 1e9;
    let achieved = predicted_gflop / (p50_us / 1e6);
    // p50 includes queueing and dispatch, so achieved should be well
    // under peak; 1.0× is a generous one-sided bound on overcounting
    let ratio = achieved / peak_gflops;
    if ratio <= 1.0 {
        println!(
            "ok   bench cross-check: predicted {:.3} MFLOP / p50 {:.0} us => {:.2} GFLOP/s, \
             {:.1}% of measured peak {:.2} GFLOP/s",
            predicted_gflop * 1e3,
            p50_us,
            achieved,
            ratio * 100.0,
            peak_gflops
        );
        0
    } else {
        println!(
            "FAIL bench cross-check: predicted FLOPs imply {achieved:.2} GFLOP/s at p50 \
             {p50_us:.0} us, above the measured peak {peak_gflops:.2} GFLOP/s — the cost \
             model overcounts"
        );
        1
    }
}

fn main() -> ExitCode {
    let mut self_test_mode = false;
    let mut budget: Option<u64> = None;
    let mut bench_path: Option<String> = None;
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--self-test" => self_test_mode = true,
            "--budget" => {
                // optional numeric cap; bare --budget uses the serve
                // workspace default
                budget = Some(match args.peek().and_then(|n| n.parse::<u64>().ok()) {
                    Some(n) => {
                        args.next();
                        n
                    }
                    None => dhg_tensor::DEFAULT_BYTE_BUDGET as u64,
                });
            }
            "--bench" => bench_path = args.next(),
            other => {
                eprintln!("analyze: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let failures = if self_test_mode {
        println!("== analyze: seeded-negative self-test ==");
        self_test()
    } else {
        println!("== analyze: static audit of the model zoo ==");
        let mut n = audit_topology("NTU-25", SkeletonTopology::ntu25(), 16, budget)
            + audit_topology("OpenPose-18", SkeletonTopology::openpose18(), 16, budget)
            + audit_streaming("NTU-25", SkeletonTopology::ntu25(), 16, budget)
            + audit_streaming("OpenPose-18", SkeletonTopology::openpose18(), 16, budget);
        if let Some(path) = &bench_path {
            n += cross_check_bench(path);
        }
        n
    };
    if failures == 0 {
        println!("== analyze: OK ==");
        ExitCode::SUCCESS
    } else {
        println!("== analyze: {failures} failure(s) ==");
        ExitCode::FAILURE
    }
}
