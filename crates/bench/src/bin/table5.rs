//! Tab. 5 — the two-stream framework (§3.5): fusing the joint-stream and
//! bone-stream DHGCN scores beats either stream alone on both datasets.

use dhg_bench::{kinetics, ntu60, run_two_stream, shape_note, zoo_for};
use dhg_skeleton::Protocol;
use dhg_train::{Table, TableRow};

fn main() {
    let mut table = Table::new(
        "Tab. 5",
        "DHGCN with different input data: joint, bone, and the two-stream fusion",
    );
    for (method, t1, t5, xsub, xview) in [
        ("DHGCN(joint)", 35.9, 58.0, 88.6, 94.8),
        ("DHGCN(bone)", 35.5, 58.2, 89.0, 94.5),
        ("DHGCN", 37.7, 60.6, 90.7, 96.0),
    ] {
        table.paper_row(TableRow::new(
            method,
            &[("Top1", Some(t1)), ("Top5", Some(t5)), ("X-Sub", Some(xsub)), ("X-View", Some(xview))],
        ));
    }

    let kin = kinetics();
    let ntu = ntu60();
    eprintln!("training DHGCN two-stream on Kinetics-like…");
    let kz = zoo_for(&kin);
    let (kj, kb, kf) = run_two_stream(
        Box::new(kz.dhgcn()),
        Box::new(kz.dhgcn()),
        &kin,
        Protocol::Random { test_fraction: 0.3 },
    );
    eprintln!("training DHGCN two-stream on NTU60-like (X-Sub)…");
    let nz = zoo_for(&ntu);
    let (sj, sb, sf) =
        run_two_stream(Box::new(nz.dhgcn()), Box::new(nz.dhgcn()), &ntu, Protocol::CrossSubject);
    eprintln!("training DHGCN two-stream on NTU60-like (X-View)…");
    let (vj, vb, vf) =
        run_two_stream(Box::new(nz.dhgcn()), Box::new(nz.dhgcn()), &ntu, Protocol::CrossView);

    for (method, k, s, v) in [
        ("DHGCN(joint)", &kj, &sj, &vj),
        ("DHGCN(bone)", &kb, &sb, &vb),
        ("DHGCN", &kf, &sf, &vf),
    ] {
        table.measured_row(TableRow {
            method: method.to_string(),
            values: vec![
                ("Top1".into(), Some(k.top1_pct())),
                ("Top5".into(), Some(k.top5_pct())),
                ("X-Sub".into(), Some(s.top1_pct())),
                ("X-View".into(), Some(v.top1_pct())),
            ],
        });
    }

    for col in ["Top1", "X-Sub", "X-View"] {
        let fused = table.measured("DHGCN", col);
        let holds = fused >= table.measured("DHGCN(joint)", col)
            && fused >= table.measured("DHGCN(bone)", col);
        table.note(shape_note(&format!("fusion >= both single streams ({col})"), holds));
    }

    println!("{}", table.render());
    let path = table.save_json(&dhg_bench::experiments_dir()).expect("save table json");
    println!("saved {}", path.display());
}
