//! Tab. 3 — the `(k_n, k_m)` sweep of the dynamic topology (§3.4): the
//! model peaks at `k_n = 3, k_m = 4` and declines past either threshold.
//!
//! The sweep trains the joint stream only (the relative comparison is
//! stream-independent; fused rows would double an already 12-training
//! sweep — noted in EXPERIMENTS.md).

use dhg_bench::{kinetics, ntu60, run_single, shape_note, zoo_for};
use dhg_core::BranchConfig;
use dhg_skeleton::{Protocol, Stream};
use dhg_train::{Table, TableRow};

const SETTINGS: [(usize, usize); 6] = [(2, 3), (2, 4), (2, 5), (3, 3), (4, 3), (3, 4)];

fn label(kn: usize, km: usize) -> String {
    format!("DHGCN(kn={kn},km={km})")
}

fn main() {
    let mut table = Table::new(
        "Tab. 3",
        "DHGCN with different (k_n, k_m) settings — best at k_n = 3, k_m = 4",
    );
    for ((kn, km), (t1, t5, xsub, xview)) in SETTINGS.iter().zip([
        (37.0, 59.6, 90.1, 95.1),
        (37.2, 60.1, 90.3, 95.4),
        (36.8, 59.7, 90.1, 95.2),
        (37.2, 60.2, 90.3, 95.6),
        (36.9, 59.7, 90.0, 95.2),
        (37.7, 60.6, 90.7, 96.0),
    ]) {
        table.paper_row(TableRow::new(
            &label(*kn, *km),
            &[
                ("Top1", Some(t1)),
                ("Top5", Some(t5)),
                ("X-Sub", Some(xsub)),
                ("X-View", Some(xview)),
            ],
        ));
    }

    let kin = kinetics();
    let ntu = ntu60();
    let kz = zoo_for(&kin);
    let nz = zoo_for(&ntu);
    for (kn, km) in SETTINGS {
        eprintln!("training DHGCN(kn={kn}, km={km})…");
        let mut k_model = kz.dhgcn_with(kn, km, BranchConfig::full());
        let k = run_single(&mut k_model, &kin, Protocol::Random { test_fraction: 0.3 }, Stream::Joint);
        let mut s_model = nz.dhgcn_with(kn, km, BranchConfig::full());
        let s = run_single(&mut s_model, &ntu, Protocol::CrossSubject, Stream::Joint);
        table.measured_row(TableRow {
            method: label(kn, km),
            values: vec![
                ("Top1".into(), Some(k.top1_pct())),
                ("Top5".into(), Some(k.top5_pct())),
                ("X-Sub".into(), Some(s.top1_pct())),
                ("X-View".into(), None), // joint-stream sweep measures X-Sub; see note
            ],
        });
    }

    let best = table.measured(&label(3, 4), "X-Sub");
    let optimum_holds = SETTINGS
        .iter()
        .filter(|&&s| s != (3, 4))
        .all(|&(kn, km)| best >= table.measured(&label(kn, km), "X-Sub") - 2.0);
    table.note(shape_note(
        "(3, 4) within the top of the sweep on X-Sub (2-point tolerance: seed noise)",
        optimum_holds,
    ));
    table.note("sweep uses the joint stream; X-View column omitted to halve the 12-training budget");

    println!("{}", table.render());
    let path = table.save_json(&dhg_bench::experiments_dir()).expect("save table json");
    println!("saved {}", path.display());
}
