//! Tab. 6 — Kinetics-Skeleton comparison with the state of the art.
//!
//! Implemented rows: TCN, ST-GCN, 2s-AGCN (fused) and DHGCN (fused).
//! Rows for systems that are entire other papers (ST-GR, DGNN, ST-TR,
//! CA-GCN) are shown with the published numbers only — the load-bearing
//! shape (CNN < GCN < adaptive GCN < DHGCN) is covered by the implemented
//! set.

use dhg_bench::{kinetics, run_single, run_two_stream, shape_note, zoo_for};
use dhg_skeleton::{Protocol, Stream};
use dhg_train::{Table, TableRow};

fn main() {
    let mut table = Table::new("Tab. 6", "Comparison on the Kinetics-Skeleton dataset (Top-1/Top-5)");
    for (method, t1, t5) in [
        ("TCN", 20.3, 40.0),
        ("ST-GCN", 30.7, 52.8),
        ("ST-GR", 33.6, 56.1),
        ("2s-AGCN", 36.1, 58.7),
        ("DGNN", 36.9, 59.6),
        ("ST-TR", 37.4, 59.8),
        ("Advanced CA-GCN", 34.1, 56.6),
        ("DHGCN(Ours)", 37.7, 60.6),
    ] {
        table.paper_row(TableRow::new(method, &[("Top1", Some(t1)), ("Top5", Some(t5))]));
    }

    let kin = kinetics();
    let zoo = zoo_for(&kin);
    let protocol = Protocol::Random { test_fraction: 0.3 };

    // single-stream baselines
    for name in ["TCN", "ST-GCN"] {
        eprintln!("training {name}…");
        let mut model = zoo.by_name(name).expect("zoo model");
        let r = run_single(model.as_mut(), &kin, protocol, Stream::Joint);
        table.measured_row(TableRow::new(
            name,
            &[("Top1", Some(r.top1_pct())), ("Top5", Some(r.top5_pct()))],
        ));
    }
    // two-stream models, fused as published
    for (name, row) in [("2s-AGCN", "2s-AGCN"), ("DHGCN", "DHGCN(Ours)")] {
        eprintln!("training {name} (two-stream)…");
        let (_, _, fused) = run_two_stream(
            zoo.by_name(name).expect("zoo model"),
            zoo.by_name(name).expect("zoo model"),
            &kin,
            protocol,
        );
        table.measured_row(TableRow::new(
            row,
            &[("Top1", Some(fused.top1_pct())), ("Top5", Some(fused.top5_pct()))],
        ));
    }

    let tcn = table.measured("TCN", "Top1");
    let stgcn = table.measured("ST-GCN", "Top1");
    let agcn = table.measured("2s-AGCN", "Top1");
    let dhgcn = table.measured("DHGCN(Ours)", "Top1");
    table.note(shape_note("TCN < ST-GCN (graph structure helps)", tcn < stgcn));
    table.note(shape_note("ST-GCN < 2s-AGCN (adaptive topology helps)", stgcn < agcn));
    table.note(shape_note("DHGCN is the best implemented method", dhgcn >= agcn.max(stgcn).max(tcn)));
    table.note("ST-GR / DGNN / ST-TR / Advanced CA-GCN rows are published values (not implemented)");

    println!("{}", table.render());
    let path = table.save_json(&dhg_bench::experiments_dir()).expect("save table json");
    println!("saved {}", path.display());
}
