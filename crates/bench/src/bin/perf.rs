//! Machine-readable performance snapshot — the producer behind
//! `scripts/bench.sh` and the committed `BENCH_6.json`.
//!
//! Two sections:
//!
//! * **gemm** — per-kernel GFLOP/s on the two matmul families the model
//!   actually runs: a conv-shaped dense product (`[64, 576]·[576, 425]`,
//!   the im2col'd feature transform) measured on both the packed
//!   cache-blocked kernel and the retained reference `ikj` kernel, and an
//!   incidence-shaped mostly-zero product (hypergraph propagation)
//!   measured on the zero-skip auto dispatch and forced packed.
//! * **serve** — client-observed p50/p95/p99 latency and throughput of
//!   the micro-batching engine at a fixed closed-loop offered load.
//!
//! ```text
//! cargo run --release -p dhg-bench --bin perf -- --out BENCH_6.json
//! cargo run --release -p dhg-bench --bin perf -- --smoke --out target/BENCH_6.smoke.json
//! ```
//!
//! `--smoke` shrinks repetitions and the request count so the tier-1 gate
//! exercises every code path in seconds; the JSON schema is identical.

use dhg_skeleton::SkeletonTopology;
use dhg_tensor::parallel::with_threads;
use dhg_tensor::NdArray;
use dhg_train::serve::{Pending, ServeConfig, ServeEngine, ServeError};
use dhg_train::zoo::Zoo;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    out: String,
    smoke: bool,
    threads: usize,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args { out: "BENCH_6.json".into(), smoke: false, threads: 8 };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--out" => args.out = it.next().ok_or("--out needs a path")?,
                "--smoke" => args.smoke = true,
                "--threads" => {
                    args.threads = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads needs a number")?
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }
}

fn filled(shape: &[usize], seed: u64) -> NdArray {
    let n: usize = shape.iter().product();
    let mut s = seed | 1;
    let data = (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    NdArray::from_vec(data, shape)
}

/// Incidence-like operand: `nnz_per_row` ones scattered per row, the rest
/// exactly zero — the density profile of a hypergraph `H` product.
fn incidence(rows: usize, cols: usize, nnz_per_row: usize) -> NdArray {
    let mut data = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for j in 0..nnz_per_row {
            data[r * cols + (r * 7 + j * 41) % cols] = 1.0;
        }
    }
    NdArray::from_vec(data, &[rows, cols])
}

struct GemmResult {
    name: &'static str,
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    gflops: f64,
}

/// Median-of-samples GFLOP/s for one kernel on one shape. Each sample
/// iterates long enough to drown scheduling noise.
fn gflops(a: &NdArray, b: &NdArray, threads: usize, smoke: bool, f: impl Fn(&NdArray, &NdArray) -> NdArray) -> f64 {
    let (m, k) = (a.shape()[a.ndim() - 2], a.shape()[a.ndim() - 1]);
    let n = b.shape()[b.ndim() - 1];
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let (samples, min_iters, target) = if smoke { (3, 1, 0.005) } else { (9, 4, 0.10) };
    with_threads(threads, || {
        std::hint::black_box(f(a, b)); // warm packs, pools, page faults
        // size iterations to the per-sample time target
        let t0 = Instant::now();
        std::hint::black_box(f(a, b));
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((target / once).ceil() as usize).max(min_iters);
        let mut rates: Vec<f64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f(a, b));
                }
                flops * iters as f64 / start.elapsed().as_secs_f64() / 1e9
            })
            .collect();
        rates.sort_by(|x, y| x.partial_cmp(y).unwrap());
        rates[rates.len() / 2]
    })
}

fn gemm_section(args: &Args) -> Vec<GemmResult> {
    let mut results = Vec::new();
    // conv-shaped: the im2col'd feature transform of the acceptance bar
    let a = filled(&[64, 576], 42);
    let b = filled(&[576, 425], 43);
    // incidence-shaped: mostly-zero lhs, hypergraph propagation profile
    let hi = incidence(256, 512, 24);
    let hb = filled(&[512, 128], 44);
    for &threads in &[1usize, args.threads] {
        results.push(GemmResult {
            name: "conv_64x576x425",
            kernel: "packed",
            m: 64,
            k: 576,
            n: 425,
            threads,
            gflops: gflops(&a, &b, threads, args.smoke, |a, b| a.matmul_packed(b)),
        });
        results.push(GemmResult {
            name: "conv_64x576x425",
            kernel: "reference",
            m: 64,
            k: 576,
            n: 425,
            threads,
            gflops: gflops(&a, &b, threads, args.smoke, |a, b| a.matmul_reference(b)),
        });
        results.push(GemmResult {
            name: "incidence_256x512x128",
            kernel: "auto_zero_skip",
            m: 256,
            k: 512,
            n: 128,
            threads,
            gflops: gflops(&hi, &hb, threads, args.smoke, |a, b| a.matmul(b)),
        });
        results.push(GemmResult {
            name: "incidence_256x512x128",
            kernel: "packed",
            m: 256,
            k: 512,
            n: 128,
            threads,
            gflops: gflops(&hi, &hb, threads, args.smoke, |a, b| a.matmul_packed(b)),
        });
    }
    results
}

struct ServeResult {
    requests: usize,
    clients: usize,
    window: usize,
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// Deterministic single-sample input `[C, T, V]`, distinct per seed.
fn sample(seed: usize, t: usize) -> NdArray {
    NdArray::from_vec(
        (0..3 * t * 25).map(|i| ((i * 7 + seed * 1009) as f32 * 0.0173).sin()).collect(),
        &[3, t, 25],
    )
}

/// Fixed closed-loop offered load (`clients` threads, `window` in flight
/// each); every request's client-observed latency is recorded and the
/// quantiles are read off the sorted set.
fn serve_section(args: &Args) -> ServeResult {
    let (requests, clients, window, frames) = if args.smoke { (48, 2, 2, 8) } else { (512, 4, 4, 16) };
    let zoo = Zoo::tiny(SkeletonTopology::ntu25(), 4, 0);
    let engine = ServeEngine::start(
        move || zoo.dhgcn_lite(),
        &[3, frames, 25],
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(500),
            queue_cap: 64,
            workers: 1,
            threads_per_worker: 1,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");
    engine.infer(sample(0, frames)).expect("warmup");

    let start = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(requests);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let engine = &engine;
                scope.spawn(move || {
                    let share = requests / clients + usize::from(client < requests % clients);
                    let mut latencies = Vec::with_capacity(share);
                    let mut inflight: Vec<(Instant, Pending)> = Vec::with_capacity(window);
                    for i in 0..share {
                        let seed = client * 100_003 + i;
                        loop {
                            match engine.submit(sample(seed, frames)) {
                                Ok(p) => {
                                    inflight.push((Instant::now(), p));
                                    break;
                                }
                                Err(ServeError::Rejected { .. }) => {
                                    if let Some((t0, p)) = inflight.pop() {
                                        p.wait().expect("reply");
                                        latencies.push(t0.elapsed().as_micros() as u64);
                                    } else {
                                        std::thread::yield_now();
                                    }
                                }
                                Err(e) => panic!("submit failed: {e}"),
                            }
                        }
                        if inflight.len() >= window {
                            let (t0, p) = inflight.remove(0);
                            p.wait().expect("reply");
                            latencies.push(t0.elapsed().as_micros() as u64);
                        }
                    }
                    for (t0, p) in inflight {
                        p.wait().expect("reply");
                        latencies.push(t0.elapsed().as_micros() as u64);
                    }
                    latencies
                })
            })
            .collect();
        for h in handles {
            all_latencies.extend(h.join().expect("client thread"));
        }
    });
    let rps = all_latencies.len() as f64 / start.elapsed().as_secs_f64();
    engine.shutdown();

    all_latencies.sort_unstable();
    let q = |p: f64| -> u64 {
        let idx = ((all_latencies.len() as f64 - 1.0) * p).round() as usize;
        all_latencies[idx]
    };
    ServeResult {
        requests: all_latencies.len(),
        clients,
        window,
        rps,
        p50_us: q(0.50),
        p95_us: q(0.95),
        p99_us: q(0.99),
    }
}

fn write_json(args: &Args, gemm: &[GemmResult], serve: &ServeResult) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"bench\": 6,\n  \"smoke\": {},\n", args.smoke));
    s.push_str("  \"gemm\": [\n");
    for (i, g) in gemm.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"threads\": {}, \"gflops\": {:.3}}}{}\n",
            g.name,
            g.kernel,
            g.m,
            g.k,
            g.n,
            g.threads,
            g.gflops,
            if i + 1 < gemm.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"serve\": {{\"model\": \"DHGCN-lite\", \"requests\": {}, \"clients\": {}, \
         \"window\": {}, \"rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}\n",
        serve.requests, serve.clients, serve.window, serve.rps, serve.p50_us, serve.p95_us, serve.p99_us
    ));
    s.push_str("}\n");
    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&args.out, s)
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(why) => {
            eprintln!("perf: {why}");
            eprintln!("usage: perf [--smoke] [--out PATH] [--threads N]");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "== perf: GEMM GFLOP/s + serve latency quantiles ({}) ==",
        if args.smoke { "smoke" } else { "full" }
    );
    let gemm = gemm_section(&args);
    for g in &gemm {
        println!("gemm  {:<24} {:<15} threads={} {:>8.2} GFLOP/s", g.name, g.kernel, g.threads, g.gflops);
    }
    let serve = serve_section(&args);
    println!(
        "serve DHGCN-lite(tiny)  {} requests  {:.1} req/s  p50={}us p95={}us p99={}us",
        serve.requests, serve.rps, serve.p50_us, serve.p95_us, serve.p99_us
    );
    match write_json(&args, &gemm, &serve) {
        Ok(()) => {
            println!("wrote {}", args.out);
            println!("== perf: OK ==");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("perf: failed to write {}: {e}", args.out);
            ExitCode::FAILURE
        }
    }
}
