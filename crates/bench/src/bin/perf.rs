//! Machine-readable performance snapshot — the producer behind
//! `scripts/bench.sh` and the committed `BENCH_9.json`.
//!
//! Four sections:
//!
//! * **gemm** — per-kernel GFLOP/s on the two matmul families the model
//!   actually runs: a conv-shaped dense product (`[64, 576]·[576, 425]`,
//!   the im2col'd feature transform) measured on both the packed
//!   cache-blocked kernel and the retained reference `ikj` kernel, and an
//!   incidence-shaped mostly-zero product (hypergraph propagation)
//!   measured on the zero-skip auto dispatch and forced packed.
//! * **streaming** — per-frame incremental topology maintenance vs.
//!   per-window from-scratch reconstruction at `T = 64` on NTU-25 shapes,
//!   for both the kNN/k-medoid window topology
//!   ([`dhg_hypergraph::WindowTopology`]) and the Eq. 9 joint-weight
//!   operators ([`dhg_hypergraph::RollingOperators`]). The acceptance
//!   floor — maintenance ≥ 3× cheaper — is asserted, not just recorded.
//! * **serve** — client-observed p50/p95/p99 latency and throughput of
//!   the micro-batching engine at a fixed closed-loop offered load.
//! * **cost_model** — the plan IR's predicted FLOPs for the served model
//!   divided by the measured p50, as a fraction of this run's own peak
//!   GEMM rate. A ratio above 1 would mean the static cost model
//!   overcounts; `analyze --bench BENCH_9.json` re-applies the same
//!   check as a gate.
//!
//! ```text
//! cargo run --release -p dhg-bench --bin perf -- --out BENCH_9.json \
//!     --baseline BENCH_8.json --tolerance 0.5
//! cargo run --release -p dhg-bench --bin perf -- --smoke --out target/BENCH_9.smoke.json
//! ```
//!
//! `--smoke` shrinks repetitions and the request count so the tier-1 gate
//! exercises every code path in seconds; the JSON schema is identical.
//! `--baseline` replays the gemm section against a previous snapshot's
//! numbers and fails the run when any kernel regresses past
//! `--tolerance` (a fraction of the baseline rate) — the regression gate
//! `scripts/bench.sh` applies on full runs.

use dhg_hypergraph::{
    dynamic_operators, from_scratch_operator, RollingOperators, TopologyConfig, WindowTopology,
};
use dhg_skeleton::{static_hypergraph, SkeletonTopology};
use dhg_tensor::parallel::with_threads;
use dhg_tensor::NdArray;
use dhg_train::json::Value;
use dhg_train::serve::{Pending, ServeConfig, ServeEngine, ServeError};
use dhg_train::zoo::Zoo;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    out: String,
    smoke: bool,
    threads: usize,
    baseline: Option<String>,
    tolerance: f64,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            out: "BENCH_9.json".into(),
            smoke: false,
            threads: 8,
            baseline: None,
            tolerance: 0.5,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--out" => args.out = it.next().ok_or("--out needs a path")?,
                "--smoke" => args.smoke = true,
                "--threads" => {
                    args.threads = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads needs a number")?
                }
                "--baseline" => {
                    args.baseline = Some(it.next().ok_or("--baseline needs a path")?)
                }
                "--tolerance" => {
                    args.tolerance = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--tolerance needs a fraction in [0, 1)")?
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if !(0.0..1.0).contains(&args.tolerance) {
            return Err("--tolerance must be a fraction in [0, 1)".into());
        }
        Ok(args)
    }
}

fn filled(shape: &[usize], seed: u64) -> NdArray {
    let n: usize = shape.iter().product();
    let mut s = seed | 1;
    let data = (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    NdArray::from_vec(data, shape)
}

/// Incidence-like operand: `nnz_per_row` ones scattered per row, the rest
/// exactly zero — the density profile of a hypergraph `H` product.
fn incidence(rows: usize, cols: usize, nnz_per_row: usize) -> NdArray {
    let mut data = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for j in 0..nnz_per_row {
            data[r * cols + (r * 7 + j * 41) % cols] = 1.0;
        }
    }
    NdArray::from_vec(data, &[rows, cols])
}

struct GemmResult {
    name: &'static str,
    kernel: &'static str,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    gflops: f64,
}

/// Median-of-samples GFLOP/s for one kernel on one shape. Each sample
/// iterates long enough to drown scheduling noise.
fn gflops(a: &NdArray, b: &NdArray, threads: usize, smoke: bool, f: impl Fn(&NdArray, &NdArray) -> NdArray) -> f64 {
    let (m, k) = (a.shape()[a.ndim() - 2], a.shape()[a.ndim() - 1]);
    let n = b.shape()[b.ndim() - 1];
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    let (samples, min_iters, target) = if smoke { (3, 1, 0.005) } else { (9, 4, 0.10) };
    with_threads(threads, || {
        std::hint::black_box(f(a, b)); // warm packs, pools, page faults
        // size iterations to the per-sample time target
        let t0 = Instant::now();
        std::hint::black_box(f(a, b));
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((target / once).ceil() as usize).max(min_iters);
        let mut rates: Vec<f64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f(a, b));
                }
                flops * iters as f64 / start.elapsed().as_secs_f64() / 1e9
            })
            .collect();
        rates.sort_by(|x, y| x.partial_cmp(y).unwrap());
        rates[rates.len() / 2]
    })
}

fn gemm_section(args: &Args) -> Vec<GemmResult> {
    let mut results = Vec::new();
    // conv-shaped: the im2col'd feature transform of the acceptance bar
    let a = filled(&[64, 576], 42);
    let b = filled(&[576, 425], 43);
    // incidence-shaped: mostly-zero lhs, hypergraph propagation profile
    let hi = incidence(256, 512, 24);
    let hb = filled(&[512, 128], 44);
    for &threads in &[1usize, args.threads] {
        results.push(GemmResult {
            name: "conv_64x576x425",
            kernel: "packed",
            m: 64,
            k: 576,
            n: 425,
            threads,
            gflops: gflops(&a, &b, threads, args.smoke, |a, b| a.matmul_packed(b)),
        });
        results.push(GemmResult {
            name: "conv_64x576x425",
            kernel: "reference",
            m: 64,
            k: 576,
            n: 425,
            threads,
            gflops: gflops(&a, &b, threads, args.smoke, |a, b| a.matmul_reference(b)),
        });
        results.push(GemmResult {
            name: "incidence_256x512x128",
            kernel: "auto_zero_skip",
            m: 256,
            k: 512,
            n: 128,
            threads,
            gflops: gflops(&hi, &hb, threads, args.smoke, |a, b| a.matmul(b)),
        });
        results.push(GemmResult {
            name: "incidence_256x512x128",
            kernel: "packed",
            m: 256,
            k: 512,
            n: 128,
            threads,
            gflops: gflops(&hi, &hb, threads, args.smoke, |a, b| a.matmul_packed(b)),
        });
    }
    results
}

struct StreamingResult {
    name: &'static str,
    window: usize,
    v: usize,
    pushes: usize,
    maintain_us_per_frame: f64,
    rebuild_us_per_window: f64,
    speedup: f64,
}

/// One frame of a drifting synthetic skeleton: a fixed base pose plus
/// slow per-joint sinusoidal motion, `[V, D]` flattened.
fn skeleton_frame(t: usize, v: usize, d: usize) -> Vec<f32> {
    (0..v * d)
        .map(|i| {
            let (vi, ci) = (i / d, i % d);
            let base = ((vi * 37 + ci * 11) as f32 * 0.31).sin();
            base + (t as f32 * 0.08 + vi as f32 * 0.5 + ci as f32).sin() * 0.05
        })
        .collect()
}

/// Per-frame incremental topology maintenance vs. per-window from-scratch
/// reconstruction at `T = 64` on NTU-25 shapes — the structural streaming
/// advantage: a sliding window shares `T − 1` frames with its
/// predecessor, so maintenance builds one topology per frame where the
/// naive path rebuilds all `T`.
fn streaming_section(args: &Args) -> Vec<StreamingResult> {
    let (t, v, d) = (64usize, 25usize, 3usize);
    let (pushes, windows) = if args.smoke { (16, 2) } else { (128, 8) };
    let mut results = Vec::new();

    // kNN + k-medoid window topology (§3.4 dynamic hyperedges)
    let config = TopologyConfig::new(4, 8, 7).with_threshold(0.02);
    let mut ring = WindowTopology::new(t, config);
    for ti in 0..t {
        ring.push(&skeleton_frame(ti, v, d), v, d);
    }
    let start = Instant::now();
    for ti in t..t + pushes {
        ring.push(&skeleton_frame(ti, v, d), v, d);
        std::hint::black_box(ring.is_full());
    }
    let maintain_us = start.elapsed().as_secs_f64() * 1e6 / pushes as f64;
    let start = Instant::now();
    for w in 0..windows {
        for ti in w..w + t {
            std::hint::black_box(from_scratch_operator(
                &skeleton_frame(ti, v, d),
                v,
                d,
                &config,
            ));
        }
    }
    let rebuild_us = start.elapsed().as_secs_f64() * 1e6 / windows as f64;
    results.push(StreamingResult {
        name: "window_topology",
        window: t,
        v,
        pushes,
        maintain_us_per_frame: maintain_us,
        rebuild_us_per_window: rebuild_us,
        speedup: rebuild_us / maintain_us,
    });

    // Eq. 9 moving-distance joint-weight operators (§3.3)
    let hg = static_hypergraph(&SkeletonTopology::ntu25());
    let mut rolling = RollingOperators::new(t, hg.clone(), d);
    for ti in 0..t {
        rolling.push(&skeleton_frame(ti, v, d));
    }
    let start = Instant::now();
    for ti in t..t + pushes {
        rolling.push(&skeleton_frame(ti, v, d));
        std::hint::black_box(rolling.is_full());
    }
    let maintain_us = start.elapsed().as_secs_f64() * 1e6 / pushes as f64;
    let start = Instant::now();
    for w in 0..windows {
        let coords: Vec<f32> =
            (w..w + t).flat_map(|ti| skeleton_frame(ti, v, d)).collect();
        let stream = NdArray::from_vec(coords, &[t, v, d]);
        std::hint::black_box(dynamic_operators(&hg, &stream));
    }
    let rebuild_us = start.elapsed().as_secs_f64() * 1e6 / windows as f64;
    results.push(StreamingResult {
        name: "rolling_joint_weights",
        window: t,
        v,
        pushes,
        maintain_us_per_frame: maintain_us,
        rebuild_us_per_window: rebuild_us,
        speedup: rebuild_us / maintain_us,
    });
    results
}

/// Predicted-vs-measured cross-check: the plan IR's FLOP count for the
/// served model against this run's own wall-clock numbers.
struct CostModelResult {
    predicted_mflop: f64,
    p50_us: u64,
    achieved_gflops: f64,
    peak_gemm_gflops: f64,
    ratio: f64,
}

/// Predicted FLOPs for the serve section's DHGCN-lite at its exact
/// window, turned into an implied GFLOP/s at the measured p50 and
/// expressed as a fraction of the measured peak GEMM rate. p50 includes
/// queueing and operator construction, so honest predictions land well
/// under 1.0.
fn cost_model_section(gemm: &[GemmResult], serve: &ServeResult) -> CostModelResult {
    use dhg_nn::{analyze, Module, SymShape};
    let zoo = Zoo::tiny(SkeletonTopology::ntu25(), 4, 0);
    let mut m = zoo.dhgcn_lite();
    let x = dhg_tensor::Tensor::constant(sample(0, serve.frames).reshape(&[1, 3, serve.frames, 25]));
    m.forward(&x);
    m.prepare_inference();
    let cost = analyze(&m.plan(&SymShape::nctv(3, serve.frames, 25))).cost_summary();
    let predicted_mflop = cost.flops as f64 / 1e6;
    let p50_s = (serve.p50_us.max(1)) as f64 / 1e6;
    let achieved_gflops = predicted_mflop / 1e3 / p50_s;
    let peak_gemm_gflops = gemm.iter().map(|g| g.gflops).fold(0.0f64, f64::max);
    CostModelResult {
        predicted_mflop,
        p50_us: serve.p50_us,
        achieved_gflops,
        peak_gemm_gflops,
        ratio: if peak_gemm_gflops > 0.0 { achieved_gflops / peak_gemm_gflops } else { 0.0 },
    }
}

struct ServeResult {
    requests: usize,
    clients: usize,
    window: usize,
    frames: usize,
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// Deterministic single-sample input `[C, T, V]`, distinct per seed.
fn sample(seed: usize, t: usize) -> NdArray {
    NdArray::from_vec(
        (0..3 * t * 25).map(|i| ((i * 7 + seed * 1009) as f32 * 0.0173).sin()).collect(),
        &[3, t, 25],
    )
}

/// Fixed closed-loop offered load (`clients` threads, `window` in flight
/// each); every request's client-observed latency is recorded and the
/// quantiles are read off the sorted set.
fn serve_section(args: &Args) -> ServeResult {
    let (requests, clients, window, frames) = if args.smoke { (48, 2, 2, 8) } else { (512, 4, 4, 16) };
    let zoo = Zoo::tiny(SkeletonTopology::ntu25(), 4, 0);
    let engine = ServeEngine::start(
        move || zoo.dhgcn_lite(),
        &[3, frames, 25],
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(500),
            queue_cap: 64,
            workers: 1,
            threads_per_worker: 1,
            ..ServeConfig::default()
        },
    )
    .expect("engine start");
    engine.infer(sample(0, frames)).expect("warmup");

    let start = Instant::now();
    let mut all_latencies: Vec<u64> = Vec::with_capacity(requests);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let engine = &engine;
                scope.spawn(move || {
                    let share = requests / clients + usize::from(client < requests % clients);
                    let mut latencies = Vec::with_capacity(share);
                    let mut inflight: Vec<(Instant, Pending)> = Vec::with_capacity(window);
                    for i in 0..share {
                        let seed = client * 100_003 + i;
                        loop {
                            match engine.submit(sample(seed, frames)) {
                                Ok(p) => {
                                    inflight.push((Instant::now(), p));
                                    break;
                                }
                                Err(ServeError::Rejected { .. }) => {
                                    if let Some((t0, p)) = inflight.pop() {
                                        p.wait().expect("reply");
                                        latencies.push(t0.elapsed().as_micros() as u64);
                                    } else {
                                        std::thread::yield_now();
                                    }
                                }
                                Err(e) => panic!("submit failed: {e}"),
                            }
                        }
                        if inflight.len() >= window {
                            let (t0, p) = inflight.remove(0);
                            p.wait().expect("reply");
                            latencies.push(t0.elapsed().as_micros() as u64);
                        }
                    }
                    for (t0, p) in inflight {
                        p.wait().expect("reply");
                        latencies.push(t0.elapsed().as_micros() as u64);
                    }
                    latencies
                })
            })
            .collect();
        for h in handles {
            all_latencies.extend(h.join().expect("client thread"));
        }
    });
    let rps = all_latencies.len() as f64 / start.elapsed().as_secs_f64();
    engine.shutdown();

    all_latencies.sort_unstable();
    let q = |p: f64| -> u64 {
        let idx = ((all_latencies.len() as f64 - 1.0) * p).round() as usize;
        all_latencies[idx]
    };
    ServeResult {
        requests: all_latencies.len(),
        clients,
        window,
        frames,
        rps,
        p50_us: q(0.50),
        p95_us: q(0.95),
        p99_us: q(0.99),
    }
}

fn write_json(
    args: &Args,
    gemm: &[GemmResult],
    streaming: &[StreamingResult],
    serve: &ServeResult,
    cost: &CostModelResult,
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"bench\": 9,\n  \"smoke\": {},\n", args.smoke));
    s.push_str("  \"gemm\": [\n");
    for (i, g) in gemm.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"kernel\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"threads\": {}, \"gflops\": {:.3}}}{}\n",
            g.name,
            g.kernel,
            g.m,
            g.k,
            g.n,
            g.threads,
            g.gflops,
            if i + 1 < gemm.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"streaming\": [\n");
    for (i, r) in streaming.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"window\": {}, \"v\": {}, \"pushes\": {}, \
             \"maintain_us_per_frame\": {:.2}, \"rebuild_us_per_window\": {:.2}, \
             \"speedup\": {:.2}}}{}\n",
            r.name,
            r.window,
            r.v,
            r.pushes,
            r.maintain_us_per_frame,
            r.rebuild_us_per_window,
            r.speedup,
            if i + 1 < streaming.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"serve\": {{\"model\": \"DHGCN-lite\", \"requests\": {}, \"clients\": {}, \
         \"window\": {}, \"frames\": {}, \"rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \
         \"p99_us\": {}}},\n",
        serve.requests, serve.clients, serve.window, serve.frames, serve.rps, serve.p50_us,
        serve.p95_us, serve.p99_us
    ));
    s.push_str(&format!(
        "  \"cost_model\": {{\"model\": \"DHGCN-lite\", \"predicted_mflop\": {:.3}, \
         \"p50_us\": {}, \"achieved_gflops\": {:.3}, \"peak_gemm_gflops\": {:.3}, \
         \"ratio\": {:.4}}}\n",
        cost.predicted_mflop, cost.p50_us, cost.achieved_gflops, cost.peak_gemm_gflops, cost.ratio
    ));
    s.push_str("}\n");
    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&args.out, s)
}

/// Compare the fresh gemm section against a previous snapshot's numbers,
/// keyed by `(name, kernel, threads)`. A kernel more than `tolerance`
/// (fractionally) below its baseline rate is a regression and fails the
/// run. Kernels absent from the baseline are skipped — the gate only
/// tightens on shapes both snapshots measured.
fn check_baseline(args: &Args, gemm: &[GemmResult]) -> Result<(), String> {
    let Some(path) = &args.baseline else { return Ok(()) };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let baseline =
        Value::parse(&text).map_err(|e| format!("cannot parse baseline {path}: {e}"))?;
    let old = baseline
        .get("gemm")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| format!("baseline {path} has no gemm section"))?;
    let mut failures = Vec::new();
    let mut compared = 0usize;
    for g in gemm {
        let matched = old.iter().find(|entry| {
            entry.get("name").and_then(Value::as_str) == Some(g.name)
                && entry.get("kernel").and_then(Value::as_str) == Some(g.kernel)
                && entry.get("threads").and_then(Value::as_f64) == Some(g.threads as f64)
        });
        let Some(was) = matched.and_then(|e| e.get("gflops").and_then(Value::as_f64)) else {
            continue;
        };
        compared += 1;
        let floor = was * (1.0 - args.tolerance);
        if g.gflops < floor {
            failures.push(format!(
                "  {} {} threads={}: {:.2} GFLOP/s < floor {:.2} (baseline {:.2}, tolerance {:.0}%)",
                g.name,
                g.kernel,
                g.threads,
                g.gflops,
                floor,
                was,
                args.tolerance * 100.0
            ));
        }
    }
    println!(
        "baseline {path}: {compared} kernels compared, {} regression(s)",
        failures.len()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("gemm regression past tolerance:\n{}", failures.join("\n")))
    }
}

/// The acceptance floor for streaming maintenance: ≥ 3× cheaper per frame
/// than per-window from-scratch reconstruction.
const STREAMING_SPEEDUP_FLOOR: f64 = 3.0;

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(a) => a,
        Err(why) => {
            eprintln!("perf: {why}");
            eprintln!(
                "usage: perf [--smoke] [--out PATH] [--threads N] [--baseline PATH] [--tolerance F]"
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "== perf: GEMM GFLOP/s + streaming maintenance + serve latency quantiles ({}) ==",
        if args.smoke { "smoke" } else { "full" }
    );
    let gemm = gemm_section(&args);
    for g in &gemm {
        println!("gemm  {:<24} {:<15} threads={} {:>8.2} GFLOP/s", g.name, g.kernel, g.threads, g.gflops);
    }
    let streaming = streaming_section(&args);
    for r in &streaming {
        println!(
            "stream {:<22} T={} V={} maintain={:.1}us/frame rebuild={:.1}us/window speedup={:.1}x",
            r.name, r.window, r.v, r.maintain_us_per_frame, r.rebuild_us_per_window, r.speedup
        );
    }
    let serve = serve_section(&args);
    println!(
        "serve DHGCN-lite(tiny)  {} requests  {:.1} req/s  p50={}us p95={}us p99={}us",
        serve.requests, serve.rps, serve.p50_us, serve.p95_us, serve.p99_us
    );
    let cost = cost_model_section(&gemm, &serve);
    println!(
        "cost  DHGCN-lite(tiny)  predicted {:.3} MFLOP / p50 {}us => {:.2} GFLOP/s ({:.1}% of peak {:.2})",
        cost.predicted_mflop,
        cost.p50_us,
        cost.achieved_gflops,
        cost.ratio * 100.0,
        cost.peak_gemm_gflops
    );
    if let Err(e) = write_json(&args, &gemm, &streaming, &serve, &cost) {
        eprintln!("perf: failed to write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);
    let mut ok = true;
    for r in &streaming {
        if r.speedup < STREAMING_SPEEDUP_FLOOR {
            eprintln!(
                "perf: streaming {} speedup {:.2}x is below the {:.0}x acceptance floor",
                r.name, r.speedup, STREAMING_SPEEDUP_FLOOR
            );
            ok = false;
        }
    }
    if let Err(why) = check_baseline(&args, &gemm) {
        eprintln!("perf: {why}");
        ok = false;
    }
    if ok {
        println!("== perf: OK ==");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
