//! Tab. 8 — NTU RGB+D 120 comparison (X-Sub / X-Set Top-1): DHGCN edges
//! out Shift-GCN on the larger corpus.
//!
//! Implemented rows: ST-LSTM, 2s-AGCN (fused), Shift-GCN and DHGCN
//! (fused); AS-GCN+DH-TCN and ST-TR are published values only.

use dhg_bench::{ntu120, run_single, run_two_stream, shape_note, zoo_for};
use dhg_skeleton::{Protocol, Stream};
use dhg_train::{Table, TableRow};

fn main() {
    let mut table = Table::new("Tab. 8", "Comparison on the NTU RGB+D 120 dataset (Top-1)");
    for (method, xsub, xset) in [
        ("ST-LSTM", 55.7, 57.9),
        ("AS-GCN+DH-TCN", 78.3, 79.8),
        ("2s-AGCN", 82.5, 84.2),
        ("ST-TR", 82.7, 84.7),
        ("Shift-GCN", 85.9, 87.6),
        ("DHGCN(Ours)", 86.0, 87.9),
    ] {
        table.paper_row(TableRow::new(method, &[("X-Sub", Some(xsub)), ("X-Set", Some(xset))]));
    }

    let ntu = ntu120();
    let zoo = zoo_for(&ntu);

    let mut rows: Vec<(String, f32, f32)> = Vec::new();
    for name in ["ST-LSTM", "Shift-GCN"] {
        eprintln!("training {name}…");
        let mut m1 = zoo.by_name(name).expect("zoo model");
        let xsub = run_single(m1.as_mut(), &ntu, Protocol::CrossSubject, Stream::Joint);
        let mut m2 = zoo.by_name(name).expect("zoo model");
        let xset = run_single(m2.as_mut(), &ntu, Protocol::CrossSetup, Stream::Joint);
        rows.push((name.to_string(), xsub.top1_pct(), xset.top1_pct()));
    }
    for (name, row) in [("2s-AGCN", "2s-AGCN"), ("DHGCN", "DHGCN(Ours)")] {
        eprintln!("training {name} (two-stream)…");
        let (_, _, sub) = run_two_stream(
            zoo.by_name(name).expect("zoo model"),
            zoo.by_name(name).expect("zoo model"),
            &ntu,
            Protocol::CrossSubject,
        );
        let (_, _, set) = run_two_stream(
            zoo.by_name(name).expect("zoo model"),
            zoo.by_name(name).expect("zoo model"),
            &ntu,
            Protocol::CrossSetup,
        );
        rows.push((row.to_string(), sub.top1_pct(), set.top1_pct()));
    }
    for (method, xsub, xset) in rows {
        table.measured_row(TableRow {
            method,
            values: vec![("X-Sub".into(), Some(xsub)), ("X-Set".into(), Some(xset))],
        });
    }

    let rnn_below = table.measured("ST-LSTM", "X-Sub") < table.measured("2s-AGCN", "X-Sub");
    let dhgcn_vs_shift =
        table.measured("DHGCN(Ours)", "X-Sub") + 2.0 >= table.measured("Shift-GCN", "X-Sub");
    table.note(shape_note("RNN family far below the GCN family", rnn_below));
    table.note(shape_note(
        "DHGCN within reach of / above Shift-GCN (the paper's 0.1-point margin is noise-level)",
        dhgcn_vs_shift,
    ));
    table.note("AS-GCN+DH-TCN and ST-TR rows are published values only");

    println!("{}", table.render());
    let path = table.save_json(&dhg_bench::experiments_dir()).expect("save table json");
    println!("saved {}", path.display());
}
