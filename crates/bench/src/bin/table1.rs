//! Tab. 1 — "The effectiveness of hypergraph on existing GCN-based
//! method": swapping 2s-AGCN's graph operator for the static hypergraph
//! operator (2s-AHGCN) improves every stream on both datasets.

use dhg_bench::{kinetics, ntu60, run_two_stream, shape_note, zoo_for};
use dhg_skeleton::Protocol;
use dhg_train::{Table, TableRow};

fn main() {
    let mut table = Table::new(
        "Tab. 1",
        "Effectiveness of hypergraph on an existing GCN-based method (2s-AGCN vs 2s-AHGCN)",
    );
    for (method, kin_t1, kin_t5, xsub, xview) in [
        ("2s-AGCN(Joint)", Some(35.1), Some(57.1), None, Some(93.7)),
        ("2s-AHGCN(Joint)", Some(35.5), Some(57.6), Some(87.5), Some(94.2)),
        ("2s-AGCN(Bone)", Some(33.3), Some(55.7), None, Some(93.2)),
        ("2s-AHGCN(Bone)", Some(34.5), Some(56.8), Some(87.6), Some(93.6)),
        ("2s-AGCN", Some(36.1), Some(58.7), Some(88.5), Some(95.1)),
        ("2s-AHGCN", Some(37.0), Some(59.8), Some(89.4), Some(95.4)),
    ] {
        table.paper_row(TableRow::new(
            method,
            &[("Top1", kin_t1), ("Top5", kin_t5), ("X-Sub", xsub), ("X-View", xview)],
        ));
    }

    let kin = kinetics();
    let ntu = ntu60();
    // measured: per variant — Kinetics (random split), NTU X-Sub, NTU X-View
    type VariantRows = Vec<(String, Vec<(String, Option<f32>)>)>;
    let mut measured: VariantRows = Vec::new();
    for variant in ["2s-AGCN", "2s-AHGCN"] {
        eprintln!("training {variant} on Kinetics-like…");
        let kz = zoo_for(&kin);
        let (kj, kb, kf) = run_two_stream(
            kz.by_name(variant).expect("zoo model"),
            kz.by_name(variant).expect("zoo model"),
            &kin,
            Protocol::Random { test_fraction: 0.3 },
        );
        eprintln!("training {variant} on NTU60-like (X-Sub)…");
        let nz = zoo_for(&ntu);
        let (sj, sb, sf) = run_two_stream(
            nz.by_name(variant).expect("zoo model"),
            nz.by_name(variant).expect("zoo model"),
            &ntu,
            Protocol::CrossSubject,
        );
        eprintln!("training {variant} on NTU60-like (X-View)…");
        let (vj, vb, vf) = run_two_stream(
            nz.by_name(variant).expect("zoo model"),
            nz.by_name(variant).expect("zoo model"),
            &ntu,
            Protocol::CrossView,
        );
        for (suffix, k, s, v) in [
            ("(Joint)", &kj, &sj, &vj),
            ("(Bone)", &kb, &sb, &vb),
            ("", &kf, &sf, &vf),
        ] {
            measured.push((
                format!("{variant}{suffix}"),
                vec![
                    ("Top1".into(), Some(k.top1_pct())),
                    ("Top5".into(), Some(k.top5_pct())),
                    ("X-Sub".into(), Some(s.top1_pct())),
                    ("X-View".into(), Some(v.top1_pct())),
                ],
            ));
        }
    }
    for (method, values) in measured {
        table.measured_row(TableRow { method, values });
    }

    let better = |col: &str| {
        table.measured("2s-AHGCN", col) >= table.measured("2s-AGCN", col)
    };
    let note_fused = shape_note(
        "fused 2s-AHGCN >= fused 2s-AGCN on every benchmark",
        better("Top1") && better("X-Sub") && better("X-View"),
    );
    table.note(note_fused);
    table.note(
        "paper claim: replacing the skeleton graph with the static skeleton hypergraph \
         improves 2s-AGCN by ~0.3–1.1 points on every benchmark",
    );

    println!("{}", table.render());
    let path = table.save_json(&dhg_bench::experiments_dir()).expect("save table json");
    println!("saved {}", path.display());
}
