//! Chaos driver: runs the serving and training robustness contracts
//! under seeded fault injection and fails loudly if any is violated.
//!
//! ```text
//! cargo run --release -p dhg-bench --bin chaos                  # full run
//! cargo run --release -p dhg-bench --bin chaos -- --smoke       # CI gate
//! cargo run --release -p dhg-bench --bin chaos -- --seed 99
//! DHGCN_FAULTS='seed=7,worker-death=0.05:4;batch-panic=0.2' \
//!     cargo run --release -p dhg-bench --bin chaos
//! ```
//!
//! Faults are deterministic in `(seed, site, call index)` — rerunning
//! with the seed a failing run printed replays it exactly. The fault mix
//! comes from the `DHGCN_FAULTS` env var when set (the same grammar the
//! library's [`dhg_nn::fault::install_from_env`] consumes), otherwise
//! from a built-in storm derived from `--seed`.
//!
//! Contracts checked (the binary exits non-zero if any fails):
//!
//! 1. **Self-healing**: injected worker deaths are respawned and every
//!    request is still answered with logits bitwise-equal to the
//!    sequential [`dhg_train::InferenceSession`] reference.
//! 2. **Reply-or-typed-error + conservation**: under a mixed fault storm
//!    every accepted request resolves — `completed + failed + bad_output
//!    + deadline_exceeded == accepted` — and every `Ok` is bitwise-exact.
//! 3. **Crash-safe resume**: training interrupted mid-run (with snapshot
//!    writes themselves dying to injected I/O faults) resumes bitwise.

use dhg_nn::fault::{FaultConfig, FaultPlan, FaultSite};
use dhg_nn::SgdConfig;
use dhg_skeleton::{Protocol, SkeletonDataset, SkeletonTopology, Stream};
use dhg_tensor::{NdArray, Tensor};
use dhg_train::serve::{Pending, ServeConfig, ServeEngine, ServeError};
use dhg_train::trainer::{train, ResumableConfig, TrainConfig};
use dhg_train::zoo::Zoo;
use dhg_train::{train_resumable, InferenceSession};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const C: usize = 3;
const T: usize = 8;
const V: usize = 25;

struct Args {
    seed: u64,
    requests: usize,
    workers: usize,
    smoke: bool,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args { seed: 0xD15EA5E, requests: 64, workers: 2, smoke: false };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let value = |it: &mut dyn Iterator<Item = String>| {
                it.next().ok_or(format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--seed" => {
                    args.seed =
                        value(&mut it)?.parse().map_err(|_| "bad --seed".to_string())?
                }
                "--requests" => {
                    args.requests =
                        value(&mut it)?.parse().map_err(|_| "bad --requests".to_string())?
                }
                "--workers" => {
                    args.workers =
                        value(&mut it)?.parse().map_err(|_| "bad --workers".to_string())?
                }
                "--smoke" => args.smoke = true,
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if args.smoke {
            args.requests = args.requests.min(32);
        }
        Ok(args)
    }
}

/// Deterministic single-sample input `[C, T, V]`, distinct per seed.
fn sample(seed: usize) -> NdArray {
    NdArray::from_vec(
        (0..C * T * V).map(|i| ((i * 7 + seed * 1009) as f32 * 0.0173).sin()).collect(),
        &[C, T, V],
    )
}

fn zoo() -> Zoo {
    Zoo::tiny(SkeletonTopology::ntu25(), 4, 0)
}

/// The storm plan: `DHGCN_FAULTS` if set, else a built-in mix off `seed`.
fn storm_plan(seed: u64) -> Result<Arc<FaultPlan>, String> {
    match std::env::var("DHGCN_FAULTS") {
        Ok(spec) => {
            let config = FaultConfig::parse(&spec)?;
            println!("fault plan      DHGCN_FAULTS ({spec})");
            Ok(Arc::new(FaultPlan::new(config)))
        }
        Err(_) => {
            println!("fault plan      built-in storm, seed {seed}");
            Ok(FaultPlan::builder(seed)
                .rate(FaultSite::WorkerDeath, 0.02)
                .limit(FaultSite::WorkerDeath, 3)
                .rate(FaultSite::BatchPanic, 0.15)
                .rate(FaultSite::BatchDelay, 0.3)
                .delay(Duration::from_millis(1))
                .rate(FaultSite::BadLogits, 0.15)
                .build())
        }
    }
}

fn start(config: ServeConfig) -> ServeEngine {
    let zoo = zoo();
    ServeEngine::start(move || zoo.dhgcn_lite(), &[C, T, V], config)
        .unwrap_or_else(|e| panic!("engine start failed: {e}"))
}

/// Contract 1: worker deaths are respawned; nothing is lost, nothing is
/// wrong. Returns the number of failed sub-checks.
fn check_self_healing(args: &Args, reference: &[Vec<f32>]) -> usize {
    let faults = FaultPlan::builder(args.seed)
        .rate(FaultSite::WorkerDeath, 1.0)
        .limit(FaultSite::WorkerDeath, 2)
        .build();
    let engine = start(ServeConfig {
        workers: args.workers,
        max_batch: 3,
        max_wait: Duration::from_millis(2),
        queue_cap: args.requests.max(64),
        faults: Some(faults.clone()),
        ..ServeConfig::default()
    });
    let n = reference.len();
    let mut wrong = 0usize;
    let pendings: Vec<Pending> =
        (0..n).map(|s| engine.submit(sample(s)).expect("queued")).collect();
    for (s, pending) in pendings.into_iter().enumerate() {
        match pending.wait() {
            Ok(got) if got.data() == reference[s].as_slice() => {}
            Ok(_) => {
                println!("FAIL self-heal: request {s} served with wrong logits");
                wrong += 1;
            }
            Err(e) => {
                println!("FAIL self-heal: request {s} lost to {e} despite respawn budget");
                wrong += 1;
            }
        }
    }
    let health = engine.health();
    let deaths = faults.trips(FaultSite::WorkerDeath);
    if deaths == 0 {
        println!("FAIL self-heal: fault plan never killed a worker");
        wrong += 1;
    }
    if !health.is_serving() {
        println!("FAIL self-heal: engine stopped serving ({health:?})");
        wrong += 1;
    }
    if wrong == 0 {
        println!(
            "ok   self-heal: {deaths} worker death(s), {} respawn(s), {n}/{n} answered bitwise",
            health.restarts
        );
    }
    engine.shutdown();
    wrong
}

/// Contract 2: mixed storm — conservation + bitwise survivors.
fn check_storm(args: &Args, reference: &[Vec<f32>]) -> usize {
    let faults = match storm_plan(args.seed) {
        Ok(plan) => plan,
        Err(why) => {
            println!("FAIL storm: bad DHGCN_FAULTS spec: {why}");
            return 1;
        }
    };
    let engine = start(ServeConfig {
        workers: args.workers,
        max_batch: 4,
        max_wait: Duration::from_millis(1),
        queue_cap: 64,
        deadline: Some(Duration::from_secs(5)),
        faults: Some(faults.clone()),
        ..ServeConfig::default()
    });
    let n = reference.len();
    let rounds = (args.requests / n).max(1);
    let mut wrong = 0usize;
    let mut ok = 0u64;
    let mut typed = 0u64;
    for _ in 0..rounds {
        let pendings: Vec<Pending> =
            (0..n).map(|s| engine.submit(sample(s)).expect("queue has room")).collect();
        for (s, pending) in pendings.into_iter().enumerate() {
            match pending.wait() {
                Ok(got) if got.data() == reference[s].as_slice() => ok += 1,
                Ok(_) => {
                    println!("FAIL storm: surviving request {s} returned wrong logits");
                    wrong += 1;
                }
                Err(
                    ServeError::Closed | ServeError::BadOutput | ServeError::DeadlineExceeded,
                ) => typed += 1,
                Err(other) => {
                    println!("FAIL storm: unexpected failure kind {other}");
                    wrong += 1;
                }
            }
        }
    }
    let health = engine.health();
    let accepted = (rounds * n) as u64;
    let resolved =
        health.completed + health.failed + health.bad_output + health.deadline_exceeded;
    if health.accepted != accepted || resolved != accepted {
        println!(
            "FAIL storm: conservation broken — accepted {accepted}, metrics say \
             accepted={} resolved={resolved}",
            health.accepted
        );
        wrong += 1;
    }
    if wrong == 0 {
        println!(
            "ok   storm: {accepted} accepted = {ok} bitwise replies + {typed} typed errors"
        );
        println!("     {}", faults.report());
    }
    engine.shutdown();
    wrong
}

/// Contract 3: interrupt training (snapshot writes also dying), resume,
/// compare the loss trajectory bitwise against an uninterrupted run.
fn check_resume(args: &Args) -> usize {
    let dataset = SkeletonDataset::ntu60_like(3, 8, 8, 1);
    let split = dataset.split(Protocol::Random { test_fraction: 0.2 }, 0);
    let full = TrainConfig {
        epochs: if args.smoke { 3 } else { 5 },
        batch_size: 8,
        sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 1e-4 },
        lr_milestones: vec![2],
        seed: args.seed,
        verbose: false,
    };
    let model = || {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(args.seed ^ 0xA11CE);
        dhg_core::StGcn::new(
            dhg_core::common::ModelDims { in_channels: C, n_joints: V, n_classes: 3 },
            SkeletonTopology::ntu25().graph().normalized_adjacency(),
            &[dhg_core::common::StageSpec::new(8, 1)],
            0.0,
            &mut rng,
        )
    };
    let mut reference = model();
    let want = train(&mut reference, &dataset, &split.train, Stream::Joint, &full);

    let dir = std::env::temp_dir().join(format!("dhg-chaos-bin-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let faults = FaultPlan::builder(args.seed)
        .rate(FaultSite::CheckpointIo, 1.0)
        .limit(FaultSite::CheckpointIo, 1)
        .build();
    let cut = full.epochs - 1;
    let mut first = model();
    let mut leg1 = ResumableConfig::new(TrainConfig { epochs: cut, ..full.clone() }, &dir);
    leg1.faults = Some(faults.clone());
    if let Err(why) =
        train_resumable(&mut first, &dataset, &split.train, Stream::Joint, &leg1)
    {
        println!("FAIL resume: interrupted leg errored: {why}");
        return 1;
    }
    let mut second = model();
    let report = match train_resumable(
        &mut second,
        &dataset,
        &split.train,
        Stream::Joint,
        &ResumableConfig::new(full.clone(), &dir),
    ) {
        Ok(report) => report,
        Err(why) => {
            println!("FAIL resume: resumed leg errored: {why}");
            return 1;
        }
    };
    std::fs::remove_dir_all(&dir).ok();
    if report.epoch_losses != want.epoch_losses {
        println!(
            "FAIL resume: trajectory diverged\n  uninterrupted {:?}\n  resumed       {:?}",
            want.epoch_losses, report.epoch_losses
        );
        return 1;
    }
    println!(
        "ok   resume: killed {} snapshot write(s), cut at epoch {cut}/{}, \
         resumed trajectory bitwise-identical",
        faults.trips(FaultSite::CheckpointIo),
        full.epochs
    );
    0
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(why) => {
            eprintln!("chaos: {why}");
            eprintln!("usage: chaos [--seed N] [--requests N] [--workers W] [--smoke]");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "== chaos{}: fault-injection contracts (seed {}) ==",
        if args.smoke { " --smoke" } else { "" },
        args.seed
    );
    // injected panics are the point of the exercise — keep their
    // backtraces out of the output, let real ones through
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let expected = payload
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected fault"))
            .or_else(|| payload.downcast_ref::<String>().map(|s| s.contains("injected fault")))
            .unwrap_or(false);
        if !expected {
            default_hook(info);
        }
    }));
    // sequential no-engine reference for bitwise comparison
    let mut session = InferenceSession::new(zoo().dhgcn_lite());
    let reference: Vec<Vec<f32>> = (0..8)
        .map(|s| {
            let x = Tensor::constant(sample(s).reshape(&[1, C, T, V]));
            session.logits(&x).data().to_vec()
        })
        .collect();
    drop(session);

    let failures = check_self_healing(&args, &reference)
        + check_storm(&args, &reference)
        + check_resume(&args);
    if failures == 0 {
        println!("== chaos: OK ==");
        ExitCode::SUCCESS
    } else {
        println!("== chaos: {failures} failure(s) — replay with --seed {} ==", args.seed);
        ExitCode::FAILURE
    }
}
