//! Multi-tenant offered-load driver for the TCP serving frontend.
//!
//! Stands up the full network stack on loopback — `Router` over ≥2 zoo
//! models, `NetServer`, and per-tenant `NetClient` threads in a closed
//! loop — then reports **client-side** per-tenant latency quantiles
//! (p50/p95/p99 over the wire, protocol included) and throughput, and
//! exercises versioned hot-swap under load.
//!
//! ```text
//! cargo run --release -p dhg-bench --bin net                # full run
//! cargo run --release -p dhg-bench --bin net -- --smoke     # tier-1 gate
//! cargo run --release -p dhg-bench --bin net -- --merge BENCH_9.json
//! ```
//!
//! `--merge FILE` appends a `"net"` section with the per-tenant
//! quantiles to an existing `BENCH_*.json` written by the `perf` bench.
//!
//! `--smoke` is the tier-1 gate: every reply must be bitwise-identical
//! to in-process [`InferenceSession::logits`], typed errors must
//! survive the wire, and a mid-load hot-swap must lose zero accepted
//! requests.

use dhg_skeleton::SkeletonTopology;
use dhg_tensor::{NdArray, Tensor};
use dhg_train::checkpoint;
use dhg_train::net::{NetClient, NetConfig, NetError, NetServer};
use dhg_train::proto::Status;
use dhg_train::router::{zoo_specs, Router, RouterConfig};
use dhg_train::zoo::Zoo;
use dhg_train::InferenceSession;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const C: usize = 3;
const T: usize = 8;
const V: usize = 25;
const MODELS: [&str; 2] = ["ST-GCN", "DHGCN-lite"];
const TENANTS: [&str; 2] = ["acme", "globex"];

struct Args {
    requests: usize,
    tenants: usize,
    quota: usize,
    workers: usize,
    smoke: bool,
    merge: Option<String>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            requests: 200,
            tenants: TENANTS.len(),
            quota: 0,
            workers: dhg_tensor::parallel::num_threads(),
            smoke: false,
            merge: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let value = |it: &mut dyn Iterator<Item = String>| {
                it.next().ok_or(format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--requests" => args.requests = num(&value(&mut it)?)?,
                "--tenants" => args.tenants = num(&value(&mut it)?)?.clamp(1, TENANTS.len()),
                "--quota" => args.quota = num(&value(&mut it)?)?,
                "--workers" => args.workers = num(&value(&mut it)?)?,
                "--smoke" => args.smoke = true,
                "--merge" => args.merge = Some(value(&mut it)?),
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(args)
    }
}

fn num(s: &str) -> Result<usize, String> {
    s.parse::<usize>().map_err(|_| format!("not a number: {s}"))
}

fn sample(seed: usize) -> Vec<f32> {
    (0..C * T * V).map(|i| ((i + seed * 131) as f32 * 0.013).sin()).collect()
}

fn start_stack(args: &Args) -> (Arc<Router>, NetServer) {
    let config = RouterConfig {
        total_workers: args.workers.max(1),
        tenant_quota: args.quota,
        ..RouterConfig::default()
    };
    let router = Arc::new(
        Router::start(zoo_specs(&MODELS, 4, 0), config)
            .unwrap_or_else(|e| panic!("router start failed: {e}")),
    );
    let server = NetServer::start(router.clone(), NetConfig::default())
        .unwrap_or_else(|e| panic!("net server start failed: {e}"));
    (router, server)
}

/// Sorted-latency quantile in microseconds.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct TenantReport {
    tenant: String,
    requests: usize,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    rps: f64,
}

/// Closed-loop per-tenant clients over the wire; returns per-tenant
/// client-side latency reports (sorted by tenant for stable output).
fn drive(addr: std::net::SocketAddr, args: &Args) -> Vec<TenantReport> {
    let per_tenant = args.requests / args.tenants.max(1);
    let handles: Vec<_> = TENANTS[..args.tenants]
        .iter()
        .map(|tenant| {
            let tenant = tenant.to_string();
            std::thread::spawn(move || {
                let mut client =
                    NetClient::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
                let mut latencies = Vec::with_capacity(per_tenant);
                let started = Instant::now();
                for i in 0..per_tenant {
                    let model = MODELS[i % MODELS.len()];
                    let x = sample(i);
                    let t0 = Instant::now();
                    client
                        .infer(&tenant, model, &x)
                        .unwrap_or_else(|e| panic!("infer({tenant}, {model}): {e}"));
                    latencies.push(t0.elapsed().as_micros() as u64);
                }
                let elapsed = started.elapsed().as_secs_f64();
                latencies.sort_unstable();
                TenantReport {
                    tenant,
                    requests: per_tenant,
                    p50_us: quantile(&latencies, 0.50),
                    p95_us: quantile(&latencies, 0.95),
                    p99_us: quantile(&latencies, 0.99),
                    rps: per_tenant as f64 / elapsed.max(1e-9),
                }
            })
        })
        .collect();
    let mut reports: Vec<TenantReport> =
        handles.into_iter().map(|h| h.join().expect("tenant thread")).collect();
    reports.sort_by(|a, b| a.tenant.cmp(&b.tenant));
    reports
}

fn reference_logits(name: &str, x: &[f32]) -> Vec<f32> {
    let zoo = Zoo::tiny(SkeletonTopology::ntu25(), 4, 0);
    let mut session = InferenceSession::new(zoo.by_name(name).expect("zoo model"));
    let batch1 = Tensor::constant(NdArray::from_vec(x.to_vec(), &[C, T, V]).reshape(&[1, C, T, V]));
    session.logits(&batch1).data()[..4].to_vec()
}

fn net_json(reports: &[TenantReport], swap_served: usize, swap_errors: usize) -> String {
    let mut tenants = String::new();
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            tenants.push(',');
        }
        tenants.push_str(&format!(
            "\"{}\":{{\"requests\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\
             \"rps\":{:.2}}}",
            r.tenant, r.requests, r.p50_us, r.p95_us, r.p99_us, r.rps
        ));
    }
    format!(
        "{{\"models\":{},\"tenants\":{{{tenants}}},\
         \"swap\":{{\"served\":{swap_served},\"typed_errors\":{swap_errors}}}}}",
        MODELS.len()
    )
}

/// Append a `"net"` section to an existing `BENCH_*.json` (written fresh
/// by the `perf` bench each run, so plain string surgery is safe).
fn merge_into(path: &str, section: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trimmed = text.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .ok_or_else(|| format!("{path}: not a JSON object"))?;
    let merged = format!("{body},\n  \"net\": {section}\n}}\n");
    std::fs::write(path, merged).map_err(|e| format!("{path}: {e}"))?;
    Ok(())
}

/// Hot-swap under load: hammer one model from one tenant while swapping
/// it; every reply must be bitwise v1, bitwise v2, or a typed error.
/// Returns (served, typed_errors).
fn swap_under_load(addr: std::net::SocketAddr) -> (usize, usize) {
    let model = "DHGCN-lite";
    let zoo_v2 = Zoo::tiny(SkeletonTopology::ntu25(), 4, 7);
    let v2_bytes = checkpoint::save(&zoo_v2.by_name(model).expect("zoo")).to_vec();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammer = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut client = NetClient::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
            let mut replies = Vec::new();
            let mut seed = 0usize;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                replies.push((seed, client.infer("acme", model, &sample(seed))));
                seed += 1;
            }
            replies
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut admin = NetClient::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
    admin.swap(model, &v2_bytes).unwrap_or_else(|e| panic!("swap: {e}"));
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let replies = hammer.join().expect("hammer thread");

    // v2 reference: v1 constructor + v2 weights, compiled for serving
    let zoo_v1 = Zoo::tiny(SkeletonTopology::ntu25(), 4, 0);
    let loaded = zoo_v1.by_name(model).expect("zoo");
    checkpoint::load(&loaded, checkpoint::save(&zoo_v2.by_name(model).expect("zoo")))
        .expect("v2 restores");
    let mut v2_session = InferenceSession::new(loaded);
    let mut served = 0usize;
    let mut typed_errors = 0usize;
    for (seed, reply) in replies {
        match reply {
            Ok(got) => {
                let x = sample(seed);
                let v1 = reference_logits(model, &x);
                let batch1 = Tensor::constant(
                    NdArray::from_vec(x.clone(), &[C, T, V]).reshape(&[1, C, T, V]),
                );
                let v2 = v2_session.logits(&batch1).data()[..4].to_vec();
                assert!(
                    got == v1 || got == v2,
                    "seed {seed}: swap-window reply matches neither version"
                );
                served += 1;
            }
            Err(NetError::Remote { .. }) => typed_errors += 1,
            Err(other) => panic!("seed {seed}: request lost untyped: {other:?}"),
        }
    }
    assert!(served > 0, "swap window starved all traffic");
    (served, typed_errors)
}

fn run(args: &Args) -> ExitCode {
    println!("== net: multi-tenant offered load over loopback TCP ==");
    let (router, server) = start_stack(args);
    let addr = server.addr();

    // correctness spot-check before the timed run
    let mut probe = NetClient::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
    for model in MODELS {
        let x = sample(42);
        let got = probe.infer("probe", model, &x).unwrap_or_else(|e| panic!("probe: {e}"));
        assert_eq!(got, reference_logits(model, &x), "{model} diverged over TCP");
    }

    let reports = drive(addr, args);
    for r in &reports {
        println!(
            "tenant {:<8} {:>5} req  p50 {:>7} us  p95 {:>7} us  p99 {:>7} us  {:>8.1} req/s",
            r.tenant, r.requests, r.p50_us, r.p95_us, r.p99_us, r.rps
        );
    }

    let (swap_served, swap_errors) = swap_under_load(addr);
    println!(
        "hot-swap         {swap_served} served bitwise + {swap_errors} typed error(s), \
         zero lost"
    );

    // surface the router's own per-tenant accounting
    let health = probe.health().unwrap_or_else(|e| panic!("health: {e}"));
    println!("health           {health}");
    let section = net_json(&reports, swap_served, swap_errors);
    if let Some(path) = &args.merge {
        if let Err(why) = merge_into(path, &section) {
            eprintln!("net: merge failed: {why}");
            return ExitCode::FAILURE;
        }
        println!("merged           \"net\" section into {path}");
    } else {
        println!("json             {section}");
    }
    drop(probe);
    server.shutdown();
    router.shutdown();
    println!("== net: OK ==");
    ExitCode::SUCCESS
}

/// Tier-1 smoke: bitwise round-trip, typed errors over the wire, quota
/// refusal, and a lossless mid-load swap — all on tiny models, fast.
fn smoke() -> ExitCode {
    println!("== net --smoke: loopback round-trip + hot-swap on tiny zoo ==");
    let args = Args {
        requests: 16,
        tenants: 2,
        quota: 0,
        workers: 1,
        smoke: true,
        merge: None,
    };
    let (router, server) = start_stack(&args);
    let addr = server.addr();
    let mut failures = 0usize;

    // 1. both models, both tenants, bitwise over the wire
    let mut client = NetClient::connect(addr).unwrap_or_else(|e| panic!("connect: {e}"));
    let mut checked = 0usize;
    for model in MODELS {
        for tenant in TENANTS {
            let x = sample(checked);
            let got =
                client.infer(tenant, model, &x).unwrap_or_else(|e| panic!("infer: {e}"));
            if got != reference_logits(model, &x) {
                println!("FAIL {model}/{tenant} diverged from in-process logits");
                failures += 1;
            }
            checked += 1;
        }
    }
    if failures == 0 {
        println!("ok   {checked} replies bitwise-identical across {} models x {} tenants",
            MODELS.len(), TENANTS.len());
    }

    // 2. typed errors survive the wire
    match client.infer("acme", "NoSuchModel", &sample(0)) {
        Err(NetError::Remote { status: Status::UnknownModel, .. }) => {
            println!("ok   unknown model refused typed");
        }
        other => {
            println!("FAIL unknown model produced {other:?}");
            failures += 1;
        }
    }
    match client.infer("acme", "ST-GCN", &[0.0; 3]) {
        Err(NetError::Remote { status: Status::BadShape, .. }) => {
            println!("ok   bad shape refused typed");
        }
        other => {
            println!("FAIL bad shape produced {other:?}");
            failures += 1;
        }
    }

    // 3. hot-swap under load loses nothing
    let (served, typed_errors) = swap_under_load(addr);
    println!("ok   hot-swap: {served} served bitwise, {typed_errors} typed error(s), zero lost");

    // 4. health lists every model with a version
    let health = client.health().unwrap_or_else(|e| panic!("health: {e}"));
    for model in MODELS {
        if !health.contains(&format!("\"{model}\"")) {
            println!("FAIL health json is missing {model}");
            failures += 1;
        }
    }
    if failures == 0 {
        println!("ok   health lists all models: {health}");
    }

    server.shutdown();
    router.shutdown();
    if failures == 0 {
        println!("== net --smoke: OK ==");
        ExitCode::SUCCESS
    } else {
        println!("== net --smoke: {failures} failure(s) ==");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    match Args::parse() {
        Ok(args) if args.smoke => smoke(),
        Ok(args) => run(&args),
        Err(why) => {
            eprintln!("net: {why}");
            eprintln!(
                "usage: net [--requests N] [--tenants K] [--quota Q] [--workers W] \
                 [--merge FILE] [--smoke]"
            );
            ExitCode::FAILURE
        }
    }
}
