//! Tab. 2 — part-based ablation: PB-HGCN (parts as hyperedges, no
//! aggregation function) beats PB-GCN (per-part subgraphs + aggregation)
//! at 2, 4 and 6 parts, with 4 parts the best setting for both.

use dhg_bench::{ntu60, run_single, shape_note, zoo_for};
use dhg_core::PartConv;
use dhg_skeleton::{Protocol, Stream};
use dhg_train::{Table, TableRow};

fn main() {
    let mut table = Table::new(
        "Tab. 2",
        "Ablation of part counts: PB-GCN subgraphs vs PB-HGCN part hyperedges (NTU RGB+D 60)",
    );
    for (method, xsub, xview) in [
        ("PB-GCN(two)", 80.2, 88.4),
        ("PB-HGCN(two)", 81.6, 90.2),
        ("PB-GCN(four)", 82.8, 90.3),
        ("PB-HGCN(four)", 84.9, 91.7),
        ("PB-GCN(six)", 81.4, 89.1),
        ("PB-HGCN(six)", 82.5, 90.8),
    ] {
        table.paper_row(TableRow::new(method, &[("X-Sub", Some(xsub)), ("X-View", Some(xview))]));
    }

    let ntu = ntu60();
    let zoo = zoo_for(&ntu);
    let word = |n: usize| match n {
        2 => "two",
        4 => "four",
        _ => "six",
    };
    for n_parts in [2usize, 4, 6] {
        for mode in [PartConv::Graph, PartConv::Hypergraph] {
            let method = format!("{mode}({})", word(n_parts));
            eprintln!("training {method}…");
            let mut xsub_model = zoo.part_based(n_parts, mode);
            let xsub = run_single(&mut xsub_model, &ntu, Protocol::CrossSubject, Stream::Joint);
            let mut xview_model = zoo.part_based(n_parts, mode);
            let xview = run_single(&mut xview_model, &ntu, Protocol::CrossView, Stream::Joint);
            table.measured_row(TableRow {
                method,
                values: vec![
                    ("X-Sub".into(), Some(xsub.top1_pct())),
                    ("X-View".into(), Some(xview.top1_pct())),
                ],
            });
        }
    }

    let hg_wins = [2usize, 4, 6].iter().all(|&n| {
        table.measured(&format!("PB-HGCN({})", word(n)), "X-Sub")
            >= table.measured(&format!("PB-GCN({})", word(n)), "X-Sub")
    });
    table.note(shape_note("PB-HGCN >= PB-GCN at every part count (X-Sub)", hg_wins));
    let four_best = table.measured("PB-HGCN(four)", "X-Sub")
        >= table.measured("PB-HGCN(two)", "X-Sub")
        && table.measured("PB-HGCN(four)", "X-Sub") >= table.measured("PB-HGCN(six)", "X-Sub");
    table.note(shape_note("four parts are the PB-HGCN optimum (X-Sub)", four_best));

    println!("{}", table.render());
    let path = table.save_json(&dhg_bench::experiments_dir()).expect("save table json");
    println!("saved {}", path.display());
}
