//! Tab. 4 — branch ablation (§3.5): removing any of the three spatial
//! branches hurts; removing both dynamic branches ("no/dynamic") hurts the
//! most; the full DHGCN is best.

use dhg_bench::{ntu60, run_single, shape_note, zoo_for};
use dhg_core::BranchConfig;
use dhg_skeleton::{Protocol, Stream};
use dhg_train::{Table, TableRow};

fn main() {
    let mut table = Table::new(
        "Tab. 4",
        "Spatial-branch ablation on NTU RGB+D 60: static / joint-weight / topology",
    );
    for (method, xsub, xview) in [
        ("DHGCN(no/static)", 90.3, 95.6),
        ("DHGCN(no/joint)", 90.0, 95.1),
        ("DHGCN(no/topology)", 89.9, 94.7),
        ("DHGCN(no/dynamic)", 88.7, 94.3),
        ("DHGCN", 90.7, 96.0),
    ] {
        table.paper_row(TableRow::new(method, &[("X-Sub", Some(xsub)), ("X-View", Some(xview))]));
    }

    let ntu = ntu60();
    let zoo = zoo_for(&ntu);
    let variants = [
        BranchConfig::no_static(),
        BranchConfig::no_joint_weight(),
        BranchConfig::no_topology(),
        BranchConfig::no_dynamic(),
        BranchConfig::full(),
    ];
    for branches in variants {
        eprintln!("training {}…", branches.label());
        let mut xsub_model = zoo.dhgcn_with(3, 4, branches);
        let xsub = run_single(&mut xsub_model, &ntu, Protocol::CrossSubject, Stream::Joint);
        let mut xview_model = zoo.dhgcn_with(3, 4, branches);
        let xview = run_single(&mut xview_model, &ntu, Protocol::CrossView, Stream::Joint);
        table.measured_row(TableRow {
            method: branches.label().to_string(),
            values: vec![
                ("X-Sub".into(), Some(xsub.top1_pct())),
                ("X-View".into(), Some(xview.top1_pct())),
            ],
        });
    }

    let full = table.measured("DHGCN", "X-Sub");
    let all_ablations_below = ["DHGCN(no/static)", "DHGCN(no/joint)", "DHGCN(no/topology)", "DHGCN(no/dynamic)"]
        .iter()
        .all(|m| table.measured(m, "X-Sub") <= full + 2.0);
    table.note(shape_note(
        "full DHGCN at or above every ablation (X-Sub, 2-point seed-noise tolerance)",
        all_ablations_below,
    ));
    let no_dynamic_worst = table.measured("DHGCN(no/dynamic)", "X-Sub")
        <= table.measured("DHGCN(no/static)", "X-Sub")
        && table.measured("DHGCN(no/dynamic)", "X-Sub") <= full;
    table.note(shape_note(
        "removing both dynamic branches is the worst ablation (X-Sub)",
        no_dynamic_worst,
    ));

    println!("{}", table.render());
    let path = table.save_json(&dhg_bench::experiments_dir()).expect("save table json");
    println!("saved {}", path.display());
}
