//! Tab. 7 — NTU RGB+D 60 comparison with the state of the art (X-Sub /
//! X-View Top-1).
//!
//! Implemented rows: Lie Group (hand-crafted), ST-LSTM (RNN family), TCN
//! (CNN family), ST-GCN, 2s-AGCN (fused), Shift-GCN and DHGCN (fused).
//! The remaining rows are published values only.

use dhg_bench::{ntu60, run_single, run_two_stream, shape_note, zoo_for};
use dhg_skeleton::{Protocol, Stream};
use dhg_train::{Table, TableRow};

fn main() {
    let mut table = Table::new("Tab. 7", "Comparison on the NTU RGB+D 60 dataset (Top-1)");
    for (method, xsub, xview) in [
        ("Lie Group", 50.1, 82.8),
        ("ST-LSTM", 69.2, 77.7),
        ("ARRN-LSTM", 80.7, 88.8),
        ("Ind-RNN", 81.8, 88.0),
        ("TCN", 74.3, 83.1),
        ("Clips+CNN+MTLN", 79.6, 84.8),
        ("ST-GCN", 81.5, 88.3),
        ("Advanced CA-GCN", 83.5, 91.4),
        ("ST-GR", 86.9, 92.3),
        ("(P+C)net,Traversal", 86.1, 93.5),
        ("2s-AGCN", 88.5, 95.1),
        ("AGC-LSTM", 89.2, 95.0),
        ("DGNN", 89.9, 96.1),
        ("ST-TR", 89.3, 96.1),
        ("C-MANs", 83.7, 93.8),
        ("Shift-GCN", 90.7, 96.5),
        ("DHGCN(Ours)", 90.7, 96.0),
    ] {
        table.paper_row(TableRow::new(method, &[("X-Sub", Some(xsub)), ("X-View", Some(xview))]));
    }

    let ntu = ntu60();
    let zoo = zoo_for(&ntu);
    let single = ["Lie Group", "ST-LSTM", "TCN", "ST-GCN", "Shift-GCN"];
    let fused = [("2s-AGCN", "2s-AGCN"), ("DHGCN", "DHGCN(Ours)")];

    let mut rows: Vec<(String, f32, f32)> = Vec::new();
    for name in single {
        eprintln!("training {name}…");
        let mut m1 = zoo.by_name(name).expect("zoo model");
        let xsub = run_single(m1.as_mut(), &ntu, Protocol::CrossSubject, Stream::Joint);
        let mut m2 = zoo.by_name(name).expect("zoo model");
        let xview = run_single(m2.as_mut(), &ntu, Protocol::CrossView, Stream::Joint);
        rows.push((name.to_string(), xsub.top1_pct(), xview.top1_pct()));
    }
    for (name, row) in fused {
        eprintln!("training {name} (two-stream)…");
        let (_, _, sub) = run_two_stream(
            zoo.by_name(name).expect("zoo model"),
            zoo.by_name(name).expect("zoo model"),
            &ntu,
            Protocol::CrossSubject,
        );
        let (_, _, view) = run_two_stream(
            zoo.by_name(name).expect("zoo model"),
            zoo.by_name(name).expect("zoo model"),
            &ntu,
            Protocol::CrossView,
        );
        rows.push((row.to_string(), sub.top1_pct(), view.top1_pct()));
    }
    for (method, xsub, xview) in rows {
        table.measured_row(TableRow {
            method,
            values: vec![("X-Sub".into(), Some(xsub)), ("X-View".into(), Some(xview))],
        });
    }

    let hand_below_deep = table.measured("Lie Group", "X-Sub") < table.measured("ST-GCN", "X-Sub");
    let cnn_rnn_below = table.measured("TCN", "X-Sub").max(table.measured("ST-LSTM", "X-Sub"))
        < table.measured("2s-AGCN", "X-Sub");
    let rivals_max = ["ST-GCN", "2s-AGCN", "Shift-GCN"]
        .iter()
        .map(|n| table.measured(n, "X-Sub"))
        .fold(0.0f32, f32::max);
    let dhgcn_tops = table.measured("DHGCN(Ours)", "X-Sub") + 2.0 >= rivals_max;
    table.note(shape_note("hand-crafted < deep models", hand_below_deep));
    table.note(shape_note("CNN/RNN family < adaptive GCNs", cnn_rnn_below));
    table.note(shape_note("DHGCN at the top of the implemented field", dhgcn_tops));
    table.note("unimplemented rows (ARRN-LSTM … C-MANs) are published values only");

    println!("{}", table.render());
    let path = table.save_json(&dhg_bench::experiments_dir()).expect("save table json");
    println!("saved {}", path.display());
}
