//! Finite-difference gradient checking.
//!
//! [`check_gradients`] compares the analytic gradient produced by autograd
//! against central finite differences for an arbitrary scalar-valued
//! function of one input tensor. It is the backbone of this crate's
//! property-test suite: every differentiable op is validated through it.

use crate::{NdArray, Tensor};

/// Result of one gradient check: the worst absolute and relative error over
/// all input elements.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest |analytic − numeric| over input elements.
    pub max_abs_err: f32,
    /// Largest |analytic − numeric| / max(1, |numeric|).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// Whether both error measures are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err <= tol || self.max_rel_err <= tol
    }
}

/// Compare autograd to central finite differences.
///
/// `f` must build a scalar tensor from a parameter tensor. It is invoked
/// `2·n + 1` times (once analytically, twice per element numerically), so
/// keep inputs small. `eps` around `3e-3` balances truncation against `f32`
/// rounding for well-scaled functions.
pub fn check_gradients(input: &NdArray, f: impl Fn(&Tensor) -> Tensor, eps: f32) -> GradCheckReport {
    // analytic
    let x = Tensor::param(input.clone());
    let y = f(&x);
    assert_eq!(y.data().len(), 1, "gradcheck requires a scalar-valued function");
    y.backward();
    let analytic = x.grad().expect("function did not propagate gradients to its input");

    // numeric (central differences)
    let mut max_abs: f32 = 0.0;
    let mut max_rel: f32 = 0.0;
    for i in 0..input.len() {
        let mut plus = input.clone();
        plus.data_mut()[i] += eps;
        let mut minus = input.clone();
        minus.data_mut()[i] -= eps;
        let fp = f(&Tensor::param(plus)).item();
        let fm = f(&Tensor::param(minus)).item();
        let numeric = (fp - fm) / (2.0 * eps);
        let a = analytic.data()[i];
        let abs = (a - numeric).abs();
        let rel = abs / numeric.abs().max(1.0);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport { max_abs_err: max_abs, max_rel_err: max_rel }
}

/// Assert that the analytic gradient of `f` at `input` matches finite
/// differences within `tol`. Panics with the report otherwise.
pub fn assert_gradients_close(input: &NdArray, f: impl Fn(&Tensor) -> Tensor, tol: f32) {
    let report = check_gradients(input, &f, 3e-3);
    assert!(
        report.passes(tol),
        "gradient check failed: max_abs_err={}, max_rel_err={} (tol={})",
        report.max_abs_err,
        report.max_rel_err,
        tol
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_for_correct_gradient() {
        let x = NdArray::from_vec(vec![0.5, -1.2, 2.0], &[3]);
        assert_gradients_close(&x, |t| t.mul(t).sum_all(), 1e-2);
    }

    #[test]
    #[should_panic(expected = "gradient check failed")]
    fn catches_wrong_gradient() {
        // detach() severs the true dependence, so analytic grad (via the
        // surviving linear path) disagrees with numeric (which sees x²).
        let x = NdArray::from_vec(vec![1.5], &[1]);
        assert_gradients_close(&x, |t| t.detach().mul(t).sum_all(), 1e-3);
    }
}
