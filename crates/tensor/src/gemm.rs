//! Packed cache-blocked GEMM microkernel — the dense hot path behind
//! [`crate::NdArray::matmul`] and therefore behind every conv (via im2col)
//! and every dense hypergraph propagation.
//!
//! ## Structure (BLIS-style)
//!
//! `B` is packed **once per distinct `[k, n]` operand** with
//! [`pack_b_full`] — NR-column k-major panels grouped by KC block — and
//! shared read-only by every row-block worker. Each row-block then runs
//!
//! ```text
//! for pc in steps of KC:                  // k blocking (L1/L2 for panels)
//!     pack A[rows, pc..pc+kc]  → apack    // MR-row panels, k-major
//!     for each (MR × NR) tile: microkernel → C tile
//! ```
//!
//! Packing B outside the parallel region is what lets the sharding grain
//! shrink with the thread count for free: a per-worker B pack would
//! multiply the packing cost by the number of row-blocks.
//!
//! The microkernel keeps an `MR×NR = 6×16` accumulator in registers (12
//! YMM accumulators + an A broadcast + a B load on AVX2 — inside the 16
//! available) and walks the two packed panels contiguously, so the
//! autovectorizer emits full-width f32 SIMD lanes. On x86-64 with
//! AVX2+FMA, a `#[target_feature]` variant uses `f32::mul_add` to get
//! fused `vfmadd` instructions; the portable fallback uses mul+add. The
//! choice is a one-time CPUID probe — never data- or thread-dependent.
//!
//! ## Determinism contract
//!
//! For every output element `C[i, j]` the accumulation order is: scalar
//! products `p = pc..pc+kc` ascending inside the microkernel accumulator,
//! then one `C[i, j] (+)= acc` per `pc` block, `pc` ascending. That order
//! depends only on `k` and the constant [`KC`] — *not* on the row-block
//! size, the tile splits, or which thread computes the block — so
//! results are bitwise identical at every `DHGCN_THREADS` value even
//! though [`row_block`] adapts the parallel grain to the thread count.
//! The packed kernel is *not* bitwise-equal to the reference `ikj` loop
//! (a different but equally valid rounding), which is why
//! [`crate::NdArray::matmul_reference`] stays available and the property
//! suite pins the two within `allclose(1e-5)`.
//!
//! ## Pack-buffer lifetime
//!
//! Panels live in a thread-local [`Workspace`] arena: drawn with
//! [`Workspace::take`] (they are fully overwritten, including edge-tile
//! zero padding, so the zeroed variant would be a redundant memset) and
//! returned on exit. Long-lived threads — the serving workers, any serial
//! caller — therefore pack with **zero steady-state allocation**; scoped
//! parallel workers pay one arena fill per spawn, amortized by the
//! [`crate::parallel::MIN_PARALLEL_WORK`] threshold.

use crate::workspace::Workspace;
use std::cell::RefCell;

/// Microkernel register-tile rows (A panel width).
pub const MR: usize = 6;
/// Microkernel register-tile columns (B panel width, two AVX2 f32 lanes).
pub const NR: usize = 16;
/// k-dimension cache block: `KC·MR` floats of A panel ≈ 6 KiB, `KC·NR`
/// floats of B panel ≈ 16 KiB — both L1-resident while a tile runs.
pub const KC: usize = 256;
/// Largest row-block a single parallel item computes (multiple of MR).
pub const RB_MAX: usize = 96;

thread_local! {
    /// Per-thread pack arena; see the module docs on lifetime.
    static PACK_ARENA: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Row-block size for sharding `nb` batches of `m`-row matrices over
/// `threads` workers: start at [`RB_MAX`] and halve (staying a multiple of
/// [`MR`]) until there are at least `4·threads` items to balance, or the
/// block is a single register tile. Any value returned here yields
/// bitwise-identical results (see the module determinism contract); only
/// load balance and pack-amortization change.
pub fn row_block(m: usize, nb: usize, threads: usize) -> usize {
    let mut rb = RB_MAX;
    let target_items = threads.max(1) * 4;
    while rb > MR && nb * m.div_ceil(rb) < target_items {
        rb = (rb / 2).div_ceil(MR) * MR;
    }
    rb
}

/// Whether the FMA microkernel is usable on this machine. One-time CPUID
/// probe: stable for the process lifetime, independent of data, shapes,
/// and thread count.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
fn have_avx2_fma() -> bool {
    static PROBE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PROBE.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    })
}

#[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
fn have_avx2_fma() -> bool {
    false
}

/// Floats needed to hold a fully packed `[k, n]` B operand: every column
/// panel is padded to the full [`NR`] width.
pub fn packed_b_len(k: usize, n: usize) -> usize {
    k * n.div_ceil(NR) * NR
}

/// Pack all of `b` (`[k, n]` row-major) into the panel layout the
/// microkernel consumes: KC blocks in `k` order, each holding
/// `n.div_ceil(NR)` NR-column k-major panels. The block starting at depth
/// `pc` sits at float offset `pc * n.div_ceil(NR) * NR`; within it, panel
/// `s` holds `bp[.. + s·NR·kc + p·NR + j]` = `b[pc+p, s·NR+j]`, columns
/// past the matrix edge packed as zeros. Every position is written, so
/// `bp` may come back dirty from a [`Workspace`].
///
/// Packing is done **once per distinct B operand, outside the parallel
/// region** — row-block workers share the result read-only.
pub fn pack_b_full(b: &[f32], bp: &mut [f32], n: usize, k: usize) {
    debug_assert_eq!(b.len(), k * n, "pack_b_full: rhs size");
    debug_assert_eq!(bp.len(), packed_b_len(k, n), "pack_b_full: pack buffer size");
    let n_padded = n.div_ceil(NR) * NR;
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let block = &mut bp[pc * n_padded..(pc + kc) * n_padded];
        for s in 0..n.div_ceil(NR) {
            let j0 = s * NR;
            let nr_eff = NR.min(n - j0);
            let dst_panel = &mut block[s * NR * kc..(s + 1) * NR * kc];
            for p in 0..kc {
                let src = &b[(pc + p) * n + j0..(pc + p) * n + j0 + nr_eff];
                let dst = &mut dst_panel[p * NR..(p + 1) * NR];
                dst[..nr_eff].copy_from_slice(src);
                dst[nr_eff..].fill(0.0);
            }
        }
        pc += kc;
    }
}

/// Compute one row-block `c = a · b_packed` where `a` is `mb×k` row-major
/// and `bp` is the [`pack_b_full`] image of a `[k, n]` B. `c` may be
/// dirty: the first `pc` block *assigns* and later blocks accumulate, so
/// callers can draw it with [`Workspace::take`]. Only the A panels are
/// packed here (into the thread-local arena) — this is the function each
/// parallel row-block worker runs.
pub fn gemm_block_prepacked(a: &[f32], bp: &[f32], c: &mut [f32], mb: usize, n: usize, k: usize) {
    debug_assert_eq!(a.len(), mb * k, "gemm_block: lhs size");
    debug_assert_eq!(bp.len(), packed_b_len(k, n), "gemm_block: packed rhs size");
    debug_assert_eq!(c.len(), mb * n, "gemm_block: out size");
    if mb == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let n_padded = n.div_ceil(NR) * NR;
    let kc_max = k.min(KC);
    let a_panels = mb.div_ceil(MR);
    PACK_ARENA.with(|arena| {
        let mut apack = arena.borrow_mut().take(a_panels * MR * kc_max);
        let fma = have_avx2_fma();
        let mut pc = 0;
        while pc < k {
            let kc = kc_max.min(k - pc);
            pack_a(a, k, pc, kc, mb, &mut apack);
            let first = pc == 0;
            let block = &bp[pc * n_padded..(pc + kc) * n_padded];
            for q in 0..a_panels {
                let i0 = q * MR;
                let mr_eff = MR.min(mb - i0);
                let apanel = &apack[q * MR * kc..(q + 1) * MR * kc];
                for s in 0..n.div_ceil(NR) {
                    let j0 = s * NR;
                    let nr_eff = NR.min(n - j0);
                    let bpanel = &block[s * NR * kc..(s + 1) * NR * kc];
                    let mut acc = [[0.0f32; NR]; MR];
                    if fma {
                        // SAFETY: have_avx2_fma() verified avx2+fma.
                        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
                        unsafe {
                            microkernel_fma(apanel, bpanel, kc, &mut acc);
                        }
                        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
                        microkernel_portable(apanel, bpanel, kc, &mut acc);
                    } else {
                        microkernel_portable(apanel, bpanel, kc, &mut acc);
                    }
                    store_tile(&acc, c, n, i0, j0, mr_eff, nr_eff, first);
                }
            }
            pc += kc;
        }
        arena.borrow_mut().give(apack);
    });
}

/// Convenience wrapper over [`pack_b_full`] + [`gemm_block_prepacked`]
/// for callers computing a one-shot `mb×k · k×n` product: packs B into
/// the thread-local arena and runs the row-block kernel. Hot paths that
/// shard one product over many row-blocks must pre-pack instead, or B is
/// re-packed per block.
pub fn gemm_block(a: &[f32], b: &[f32], c: &mut [f32], mb: usize, n: usize, k: usize) {
    debug_assert_eq!(b.len(), k * n, "gemm_block: rhs size");
    if mb == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let mut bp = PACK_ARENA.with(|arena| arena.borrow_mut().take(packed_b_len(k, n)));
    pack_b_full(b, &mut bp, n, k);
    gemm_block_prepacked(a, &bp, c, mb, n, k);
    PACK_ARENA.with(|arena| arena.borrow_mut().give(bp));
}

/// Pack `a[0..mb, pc..pc+kc]` (row stride `k`) into MR-row panels laid out
/// k-major: `apack[q·MR·kc + p·MR + i]` holds row `q·MR+i`, depth `pc+p`.
/// Rows past `mb` pack as zeros so the microkernel never branches on the
/// row edge. Every position is written — the buffer may be dirty.
fn pack_a(a: &[f32], k: usize, pc: usize, kc: usize, mb: usize, apack: &mut [f32]) {
    for q in 0..mb.div_ceil(MR) {
        let dst = &mut apack[q * MR * kc..(q + 1) * MR * kc];
        for ii in 0..MR {
            let i = q * MR + ii;
            if i < mb {
                let src = &a[i * k + pc..i * k + pc + kc];
                for (p, &v) in src.iter().enumerate() {
                    dst[p * MR + ii] = v;
                }
            } else {
                for p in 0..kc {
                    dst[p * MR + ii] = 0.0;
                }
            }
        }
    }
}

/// The portable register-tile kernel: `acc += apanel · bpanel` over `kc`
/// depths. Fixed-size inner loops over contiguous panels — exactly the
/// shape LLVM's autovectorizer turns into full-width f32 lanes.
#[inline(always)]
fn microkernel_portable(apanel: &[f32], bpanel: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    let arows = apanel.chunks_exact(MR).take(kc);
    let brows = bpanel.chunks_exact(NR).take(kc);
    for (arow, brow) in arows.zip(brows) {
        for i in 0..MR {
            let ai = arow[i];
            for j in 0..NR {
                acc[i][j] += ai * brow[j];
            }
        }
    }
}

/// AVX2+FMA variant, written with explicit 256-bit intrinsics: the
/// 6×16 accumulator lives in twelve ymm registers, each depth step
/// loads one 16-wide B row (two `vmovups`) and broadcasts six A
/// scalars, issuing twelve `vfmadd231ps`. Explicit intrinsics rather
/// than autovectorized `mul_add` because LLVM interchanges the scalar
/// loop into a memory-bound scalar-FMA form (~4× slower). Per element
/// the math is the same fused multiply-add in the same `p`-ascending
/// order as the scalar formulation, so results are unchanged.
///
/// # Safety
///
/// The caller must have verified `avx2` and `fma` are available (see
/// [`have_avx2_fma`]) and must pass panels holding at least `kc·MR`
/// (`apanel`) and `kc·NR` (`bpanel`) floats.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2,fma")]
// SAFETY: contract above — feature-gated entry, panel bounds re-checked
// by the debug assertion in the body before any pointer arithmetic.
unsafe fn microkernel_fma(apanel: &[f32], bpanel: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86")]
    use core::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    debug_assert!(apanel.len() >= kc * MR && bpanel.len() >= kc * NR);
    // SAFETY: panel bounds asserted above; acc rows are NR = 16 floats,
    // read and written as two unaligned 8-lane halves.
    unsafe {
        let mut lo = [_mm256_setzero_ps(); MR];
        let mut hi = [_mm256_setzero_ps(); MR];
        for i in 0..MR {
            lo[i] = _mm256_loadu_ps(acc[i].as_ptr());
            hi[i] = _mm256_loadu_ps(acc[i].as_ptr().add(8));
        }
        let mut ap = apanel.as_ptr();
        let mut bp = bpanel.as_ptr();
        for _ in 0..kc {
            let b0 = _mm256_loadu_ps(bp);
            let b1 = _mm256_loadu_ps(bp.add(8));
            for i in 0..MR {
                let ai = _mm256_broadcast_ss(&*ap.add(i));
                lo[i] = _mm256_fmadd_ps(ai, b0, lo[i]);
                hi[i] = _mm256_fmadd_ps(ai, b1, hi[i]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        for i in 0..MR {
            _mm256_storeu_ps(acc[i].as_mut_ptr(), lo[i]);
            _mm256_storeu_ps(acc[i].as_mut_ptr().add(8), hi[i]);
        }
    }
}

/// Write an accumulator tile into `c` at `(i0, j0)`, clipped to the
/// `mr_eff × nr_eff` valid region. The first `pc` block assigns (so `c`
/// may start dirty), later blocks accumulate.
#[allow(clippy::too_many_arguments)]
#[inline]
fn store_tile(
    acc: &[[f32; NR]; MR],
    c: &mut [f32],
    n: usize,
    i0: usize,
    j0: usize,
    mr_eff: usize,
    nr_eff: usize,
    first: bool,
) {
    for (i, arow) in acc.iter().enumerate().take(mr_eff) {
        let crow = &mut c[(i0 + i) * n + j0..(i0 + i) * n + j0 + nr_eff];
        if first {
            crow.copy_from_slice(&arow[..nr_eff]);
        } else {
            for (cv, &av) in crow.iter_mut().zip(arow.iter()) {
                *cv += av;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], mb: usize, n: usize, k: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; mb * n];
        for i in 0..mb {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j];
                }
            }
        }
        c
    }

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        // deterministic LCG so tests need no external RNG
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u32 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn check_shape(mb: usize, n: usize, k: usize) {
        let a = fill(mb as u64 * 31 + 1, mb * k);
        let b = fill(n as u64 * 17 + 2, k * n);
        // dirty output: the packed kernel must fully overwrite it
        let mut c = vec![f32::NAN; mb * n];
        gemm_block(&a, &b, &mut c, mb, n, k);
        let want = naive(&a, &b, mb, n, k);
        for (i, (got, want)) in c.iter().zip(&want).enumerate() {
            assert!(
                (got - want).abs() <= 1e-4 + 1e-5 * want.abs(),
                "({mb}x{k})·({k}x{n}) element {i}: packed {got} vs naive {want}"
            );
        }
    }

    #[test]
    fn matches_naive_on_register_tile_multiples() {
        check_shape(MR, NR, 8);
        check_shape(2 * MR, 2 * NR, 32);
        check_shape(RB_MAX, NR, 16);
    }

    #[test]
    fn matches_naive_on_edge_tiles() {
        check_shape(1, 1, 1);
        check_shape(1, NR + 3, 5); // m = 1: single partial A panel
        check_shape(MR + 1, NR - 1, 7);
        check_shape(7, 33, 19); // nothing divides anything
        check_shape(5, 2, 1); // k = 1
    }

    #[test]
    fn matches_naive_across_cache_block_boundaries() {
        check_shape(13, 21, KC + 1); // second pc block, edge kc
        check_shape(7, 512 + 9, 33); // wide n: many column panels, ragged edge
        check_shape(MR, NR, 2 * KC); // exact multiple of KC
    }

    #[test]
    fn k_zero_zeroes_a_dirty_output() {
        let mut c = vec![f32::NAN; 12];
        gemm_block(&[], &[], &mut c, 3, 4, 0);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn row_block_balances_items_without_going_below_a_tile() {
        assert_eq!(row_block(1000, 1, 1), RB_MAX);
        // single batch, many threads: shrink for grain
        let rb = row_block(96, 1, 8);
        assert!(rb >= MR && rb.is_multiple_of(MR) && rb < RB_MAX, "rb = {rb}");
        assert!(96usize.div_ceil(rb) >= 16, "enough items for 8 threads: rb = {rb}");
        // plenty of batches: no need to shrink
        assert_eq!(row_block(64, 32, 8), RB_MAX);
        // tiny problem: bottoms out at one register tile
        assert_eq!(row_block(4, 1, 8), MR);
    }

    #[test]
    fn results_do_not_depend_on_row_block_split() {
        // the determinism contract: computing rows in one block or split
        // into several must give bitwise-identical results
        let (m, n, k) = (24, 40, KC + 7);
        let a = fill(3, m * k);
        let b = fill(4, k * n);
        let mut whole = vec![f32::NAN; m * n];
        gemm_block(&a, &b, &mut whole, m, n, k);
        for rb in [MR, 2 * MR, 3 * MR] {
            let mut split = vec![f32::NAN; m * n];
            let mut i0 = 0;
            while i0 < m {
                let i1 = (i0 + rb).min(m);
                gemm_block(
                    &a[i0 * k..i1 * k],
                    &b,
                    &mut split[i0 * n..i1 * n],
                    i1 - i0,
                    n,
                    k,
                );
                i0 = i1;
            }
            for (x, y) in whole.iter().zip(&split) {
                assert_eq!(x.to_bits(), y.to_bits(), "rb = {rb}");
            }
        }
    }
}
