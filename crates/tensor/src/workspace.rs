//! Reusable scratch buffers for grad-free forward passes.
//!
//! Training forwards allocate a fresh buffer per op because every
//! intermediate must outlive the forward pass (the backward pass reads it).
//! Inference has no such constraint: intermediates die as soon as the next
//! op consumes them, so a small pool of recycled `Vec<f32>` buffers brings
//! the steady-state allocation count of a forward pass to (almost) zero.
//!
//! A [`Workspace`] is a plain best-fit free list. Kernels `take` a buffer,
//! build an [`crate::NdArray`] in it, and the caller eventually feeds dead
//! intermediates back with [`Workspace::recycle`]. Buffers are `Vec<f32>`,
//! so a workspace is cheap to create and fully owned — dropping it frees
//! everything.

use crate::NdArray;

/// Upper bound on pooled buffers; beyond this, recycled buffers are simply
/// dropped. A model forward keeps only a handful of buffers alive at once,
/// so a small pool already gives a ~100% hit rate.
const MAX_POOLED: usize = 16;

/// A pool of reusable `f32` buffers for allocation-free inference.
#[derive(Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
    alias_hazards: usize,
}

impl Workspace {
    /// An empty workspace. Buffers are created lazily on first use.
    pub fn new() -> Self {
        Workspace { pool: Vec::new(), alias_hazards: 0 }
    }

    /// Number of buffers currently pooled (diagnostics only).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Number of aliasing hazards caught by [`Workspace::give`]: attempts
    /// to return a buffer whose storage is already pooled. A non-zero
    /// count means some serving path recycled the same storage twice —
    /// the next two `take` calls would hand out aliased buffers and
    /// silently corrupt each other. The static analyzer surfaces this as
    /// a `workspace-alias` diagnostic.
    pub fn alias_hazards(&self) -> usize {
        self.alias_hazards
    }

    /// A buffer of exactly `len` elements, zero-filled. Reuses the pooled
    /// buffer whose capacity fits best, else allocates.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_raw(len);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// A buffer of exactly `len` elements with unspecified contents (the
    /// caller overwrites every element). Element values are whatever the
    /// recycled buffer held — never uninitialised memory.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_raw(len);
        buf.resize(len, 0.0);
        buf
    }

    fn take_raw(&mut self, len: usize) -> Vec<f32> {
        // best fit: smallest pooled capacity >= len, else the largest
        // pooled buffer (its capacity grows once and then sticks)
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        let mut largest: Option<(usize, usize)> = None;
        for (i, b) in self.pool.iter().enumerate() {
            let cap = b.capacity();
            if cap >= len {
                if best.map_or(true, |(_, c)| cap < c) {
                    best = Some((i, cap));
                }
            } else if largest.map_or(true, |(_, c)| cap > c) {
                largest = Some((i, cap));
            }
        }
        match best.or(largest) {
            Some((i, _)) => {
                let mut buf = self.pool.swap_remove(i);
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Return a dead buffer to the pool.
    ///
    /// If the buffer's storage is already pooled (a double-recycle — only
    /// possible through unsafe aliasing, but catastrophic when it
    /// happens), the buffer is *leaked* instead of pooled or dropped:
    /// pooling it would hand the same storage to two `take` calls, and
    /// dropping it would double-free. The event is counted in
    /// [`Workspace::alias_hazards`].
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let ptr = buf.as_ptr();
        if self.pool.iter().any(|b| b.as_ptr() == ptr) {
            self.alias_hazards += 1;
            std::mem::forget(buf);
            return;
        }
        if self.pool.len() < MAX_POOLED {
            self.pool.push(buf);
        }
    }

    /// Return a dead intermediate array's storage to the pool.
    pub fn recycle(&mut self, array: NdArray) {
        self.give(array.into_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_is_zero_after_recycling_dirty_buffer() {
        let mut ws = Workspace::new();
        ws.give(vec![7.0; 64]);
        let buf = ws.take_zeroed(32);
        assert_eq!(buf.len(), 32);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn buffers_are_reused_not_reallocated() {
        let mut ws = Workspace::new();
        ws.give(Vec::with_capacity(100));
        let buf = ws.take(80);
        assert!(buf.capacity() >= 100, "expected the pooled buffer back");
        assert_eq!(ws.pooled(), 0);
        ws.give(buf);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        ws.give(Vec::with_capacity(1000));
        ws.give(Vec::with_capacity(10));
        let buf = ws.take(8);
        assert!(buf.capacity() < 1000, "should have picked the small buffer");
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for _ in 0..100 {
            ws.give(vec![0.0; 8]);
        }
        assert!(ws.pooled() <= MAX_POOLED);
    }

    #[test]
    fn double_give_of_aliased_storage_is_counted_not_pooled() {
        let mut ws = Workspace::new();
        let buf = vec![1.0f32; 8];
        let (ptr, len, cap) = (buf.as_ptr() as *mut f32, buf.len(), buf.capacity());
        ws.give(buf);
        assert_eq!(ws.alias_hazards(), 0);
        // forge an alias of the pooled storage; `give` must refuse to pool
        // it (two pooled copies would alias future `take`s) and must not
        // drop it (that would double-free) — it leaks it and counts
        let alias = unsafe { Vec::from_raw_parts(ptr, len, cap) };
        ws.give(alias);
        assert_eq!(ws.alias_hazards(), 1);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn recycle_accepts_arrays() {
        let mut ws = Workspace::new();
        ws.recycle(NdArray::zeros(&[4, 4]));
        assert_eq!(ws.pooled(), 1);
        assert_eq!(ws.take(16).len(), 16);
    }
}
