//! Reusable scratch buffers for grad-free forward passes.
//!
//! Training forwards allocate a fresh buffer per op because every
//! intermediate must outlive the forward pass (the backward pass reads it).
//! Inference has no such constraint: intermediates die as soon as the next
//! op consumes them, so a small pool of recycled `Vec<f32>` buffers brings
//! the steady-state allocation count of a forward pass to (almost) zero.
//!
//! A [`Workspace`] is a plain best-fit free list. Kernels `take` a buffer,
//! build an [`crate::NdArray`] in it, and the caller eventually feeds dead
//! intermediates back with [`Workspace::recycle`]. Buffers are `Vec<f32>`,
//! so a workspace is cheap to create and fully owned — dropping it frees
//! everything.
//!
//! ## Residency bounds
//!
//! The pool is bounded two ways, because a long-running server must not
//! ratchet its memory upward forever:
//!
//! * **count** — at most `MAX_POOLED` buffers are retained; excess
//!   recycles are dropped on the floor.
//! * **bytes** — total pooled capacity is capped at a high-water byte
//!   budget ([`DEFAULT_BYTE_BUDGET`] unless overridden with
//!   [`Workspace::with_byte_budget`]). When a recycle pushes the pool past
//!   the budget, the *oldest* pooled buffers are evicted until it fits
//!   again. Without this cap, one oversized request permanently pins
//!   `MAX_POOLED` oversized buffers: `take` hands out the largest buffer
//!   when nothing fits, `resize` grows it, and the grown capacity comes
//!   back on recycle — a slow ratchet toward `MAX_POOLED × largest
//!   request ever seen`.

use crate::NdArray;
use std::collections::VecDeque;

/// Upper bound on pooled buffers; beyond this, recycled buffers are simply
/// dropped. A model forward keeps only a handful of buffers alive at once,
/// so a small pool already gives a ~100% hit rate.
const MAX_POOLED: usize = 16;

/// Default high-water byte budget for pooled capacity (64 MiB). Far above
/// any steady-state forward of the CPU-scale zoo, low enough that a burst
/// of oversized requests cannot pin gigabytes in a serving process.
pub const DEFAULT_BYTE_BUDGET: usize = 64 << 20;

/// A pool of reusable `f32` buffers for allocation-free inference.
pub struct Workspace {
    /// Front = oldest (first evicted), back = most recently recycled.
    pool: VecDeque<Vec<f32>>,
    pooled_bytes: usize,
    byte_budget: usize,
    alias_hazards: usize,
    /// Bytes of buffers currently out on loan (taken, not yet returned).
    live_bytes: usize,
    /// Highest `live_bytes` ever observed — the measured peak the static
    /// cost model's predicted `workspace_peak` must dominate.
    high_water_bytes: usize,
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

impl Workspace {
    /// An empty workspace with the [`DEFAULT_BYTE_BUDGET`]. Buffers are
    /// created lazily on first use.
    pub fn new() -> Self {
        Self::with_byte_budget(DEFAULT_BYTE_BUDGET)
    }

    /// An empty workspace whose pooled capacity never exceeds `budget`
    /// bytes (recycles past the high-water mark evict the oldest buffers,
    /// and a buffer larger than the whole budget is never pooled at all).
    pub fn with_byte_budget(budget: usize) -> Self {
        Workspace {
            pool: VecDeque::new(),
            pooled_bytes: 0,
            byte_budget: budget,
            alias_hazards: 0,
            live_bytes: 0,
            high_water_bytes: 0,
        }
    }

    /// Number of buffers currently pooled (diagnostics only).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total capacity currently pooled, in bytes (diagnostics only).
    /// Invariant: never exceeds [`Workspace::byte_budget`].
    pub fn pooled_bytes(&self) -> usize {
        self.pooled_bytes
    }

    /// The high-water byte budget this pool enforces.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Number of aliasing hazards caught by [`Workspace::give`]: attempts
    /// to return a buffer whose storage is already pooled. A non-zero
    /// count means some serving path recycled the same storage twice —
    /// the next two `take` calls would hand out aliased buffers and
    /// silently corrupt each other. The static analyzer surfaces this as
    /// a `workspace-alias` diagnostic.
    pub fn alias_hazards(&self) -> usize {
        self.alias_hazards
    }

    /// Bytes currently out on loan: taken via [`Workspace::take`] /
    /// [`Workspace::take_zeroed`] and not yet given back. Buffers that
    /// enter the pool from outside (a `give` of storage this workspace
    /// never handed out) don't contribute.
    pub fn live_bytes(&self) -> usize {
        self.live_bytes
    }

    /// The highest [`Workspace::live_bytes`] ever observed — the runtime
    /// high-water mark the analyzer's predicted peak is validated against.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water_bytes
    }

    /// A buffer of exactly `len` elements, zero-filled. Reuses the pooled
    /// buffer whose capacity fits best, else allocates. Costs one memset of
    /// `len` elements — callers that overwrite every element (GEMM pack
    /// panels, matmul outputs) should use [`Workspace::take`] instead.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_raw(len);
        buf.truncate(len);
        buf.iter_mut().for_each(|v| *v = 0.0);
        buf.resize(len, 0.0);
        self.loan(len);
        buf
    }

    /// A buffer of exactly `len` elements with unspecified contents (the
    /// caller overwrites every element). Element values are whatever the
    /// recycled buffer held — never uninitialised memory — and, unlike
    /// [`Workspace::take_zeroed`], no memset is paid on reuse: only growth
    /// beyond the recycled length is zero-filled.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_raw(len);
        buf.truncate(len);
        buf.resize(len, 0.0);
        self.loan(len);
        buf
    }

    fn loan(&mut self, len: usize) {
        self.live_bytes += len * std::mem::size_of::<f32>();
        self.high_water_bytes = self.high_water_bytes.max(self.live_bytes);
    }

    fn take_raw(&mut self, len: usize) -> Vec<f32> {
        // best fit: smallest pooled capacity >= len, else the largest
        // pooled buffer (its capacity grows once and then sticks)
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        let mut largest: Option<(usize, usize)> = None;
        for (i, b) in self.pool.iter().enumerate() {
            let cap = b.capacity();
            if cap >= len {
                if best.is_none_or(|(_, c)| cap < c) {
                    best = Some((i, cap));
                }
            } else if largest.is_none_or(|(_, c)| cap > c) {
                largest = Some((i, cap));
            }
        }
        match best.or(largest) {
            Some((i, _)) => {
                let buf = self.pool.remove(i).expect("index from enumerate");
                self.pooled_bytes -= buf.capacity() * std::mem::size_of::<f32>();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Return a dead buffer to the pool.
    ///
    /// If the buffer's storage is already pooled (a double-recycle — only
    /// possible through unsafe aliasing, but catastrophic when it
    /// happens), the buffer is *leaked* instead of pooled or dropped:
    /// pooling it would hand the same storage to two `take` calls, and
    /// dropping it would double-free. The event is counted in
    /// [`Workspace::alias_hazards`].
    ///
    /// Pooling past `MAX_POOLED` drops the incoming buffer; pooling past
    /// the byte budget evicts the oldest pooled buffers until the total
    /// fits again (the incoming buffer itself is evicted last, so a buffer
    /// larger than the whole budget is never retained).
    pub fn give(&mut self, buf: Vec<f32>) {
        // saturating: storage that was never taken from this workspace
        // (fresh Vecs, another pool's buffers) can legitimately be given
        self.live_bytes = self.live_bytes.saturating_sub(buf.len() * std::mem::size_of::<f32>());
        if buf.capacity() == 0 {
            return;
        }
        let ptr = buf.as_ptr();
        if self.pool.iter().any(|b| b.as_ptr() == ptr) {
            self.alias_hazards += 1;
            std::mem::forget(buf);
            return;
        }
        if self.pool.len() >= MAX_POOLED {
            return;
        }
        self.pooled_bytes += buf.capacity() * std::mem::size_of::<f32>();
        self.pool.push_back(buf);
        while self.pooled_bytes > self.byte_budget {
            match self.pool.pop_front() {
                Some(old) => {
                    self.pooled_bytes -= old.capacity() * std::mem::size_of::<f32>();
                }
                None => break,
            }
        }
    }

    /// Return a dead intermediate array's storage to the pool.
    pub fn recycle(&mut self, array: NdArray) {
        self.give(array.into_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_is_zero_after_recycling_dirty_buffer() {
        let mut ws = Workspace::new();
        ws.give(vec![7.0; 64]);
        let buf = ws.take_zeroed(32);
        assert_eq!(buf.len(), 32);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn take_skips_the_memset_and_keeps_recycled_contents() {
        // pins the dirty-reuse contract the GEMM pack buffers rely on:
        // `take` must not pay a zeroing pass over reused storage (only
        // growth past the recycled length may be zero-filled)
        let mut ws = Workspace::new();
        ws.give(vec![7.0; 64]);
        let buf = ws.take(32);
        assert_eq!(buf.len(), 32);
        assert!(buf.iter().all(|&v| v == 7.0), "recycled contents must survive take");
        ws.give(buf);
        let grown = ws.take(96);
        assert!(grown[..32].iter().all(|&v| v == 7.0));
        assert!(grown[32..].iter().all(|&v| v == 0.0), "growth is zero-filled");
    }

    #[test]
    fn buffers_are_reused_not_reallocated() {
        let mut ws = Workspace::new();
        ws.give(Vec::with_capacity(100));
        let buf = ws.take(80);
        assert!(buf.capacity() >= 100, "expected the pooled buffer back");
        assert_eq!(ws.pooled(), 0);
        assert_eq!(ws.pooled_bytes(), 0);
        ws.give(buf);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        ws.give(Vec::with_capacity(1000));
        ws.give(Vec::with_capacity(10));
        let buf = ws.take(8);
        assert!(buf.capacity() < 1000, "should have picked the small buffer");
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for _ in 0..100 {
            ws.give(vec![0.0; 8]);
        }
        assert!(ws.pooled() <= MAX_POOLED);
    }

    #[test]
    fn pooled_bytes_tracks_capacity() {
        let mut ws = Workspace::new();
        ws.give(Vec::with_capacity(10));
        ws.give(Vec::with_capacity(6));
        assert_eq!(ws.pooled_bytes(), 16 * std::mem::size_of::<f32>());
        let _ = ws.take(10);
        assert_eq!(ws.pooled_bytes(), 6 * std::mem::size_of::<f32>());
    }

    #[test]
    fn byte_budget_evicts_oldest_first() {
        // budget fits exactly one of the two buffers
        let mut ws = Workspace::with_byte_budget(120 * std::mem::size_of::<f32>());
        ws.give(Vec::with_capacity(100)); // oldest
        ws.give(Vec::with_capacity(80)); // pushes total to 180 floats
        assert_eq!(ws.pooled(), 1, "oldest buffer must have been evicted");
        assert_eq!(ws.pooled_bytes(), 80 * std::mem::size_of::<f32>());
        // the survivor is the newer 80-capacity buffer
        let buf = ws.take(1);
        assert_eq!(buf.capacity(), 80);
    }

    #[test]
    fn buffer_larger_than_budget_is_never_retained() {
        let mut ws = Workspace::with_byte_budget(64);
        ws.give(Vec::with_capacity(1000));
        assert_eq!(ws.pooled(), 0);
        assert_eq!(ws.pooled_bytes(), 0);
    }

    /// The long-running-server regression: hammer the pool with
    /// mixed-size takes and recycles (the ratcheting pattern where `take`
    /// grows the largest buffer when nothing fits) and assert residency
    /// stays under the high-water budget at every step.
    #[test]
    fn byte_budget_bounds_residency_under_mixed_load() {
        let budget = 4096; // 1024 floats
        let mut ws = Workspace::with_byte_budget(budget);
        let mut held: Vec<Vec<f32>> = Vec::new();
        for i in 0..2000usize {
            // deterministic mixed sizes, including occasional oversized
            // requests that exceed the whole budget on their own
            let len = match i % 7 {
                0 => 1500, // bigger than the budget
                k => 1 + (i * 37 + k * 113) % 900,
            };
            held.push(ws.take(len));
            if i % 3 == 0 {
                for b in held.drain(..) {
                    ws.give(b);
                }
            }
            assert!(
                ws.pooled_bytes() <= budget,
                "residency {} exceeded budget {budget} at step {i}",
                ws.pooled_bytes()
            );
            assert!(ws.pooled() <= MAX_POOLED);
        }
        for b in held.drain(..) {
            ws.give(b);
        }
        assert!(ws.pooled_bytes() <= budget);
        assert_eq!(ws.alias_hazards(), 0);
    }

    #[test]
    fn double_give_of_aliased_storage_is_counted_not_pooled() {
        let mut ws = Workspace::new();
        let buf = vec![1.0f32; 8];
        let (ptr, len, cap) = (buf.as_ptr() as *mut f32, buf.len(), buf.capacity());
        ws.give(buf);
        assert_eq!(ws.alias_hazards(), 0);
        // forge an alias of the pooled storage; `give` must refuse to pool
        // it (two pooled copies would alias future `take`s) and must not
        // drop it (that would double-free) — it leaks it and counts
        // SAFETY: (ptr, len, cap) were captured from a live Vec whose
        // ownership moved into the pool; the forged alias is immediately
        // handed to `give`, which leaks it (never drops), so the storage
        // is freed exactly once, by the pooled original.
        let alias = unsafe { Vec::from_raw_parts(ptr, len, cap) };
        ws.give(alias);
        assert_eq!(ws.alias_hazards(), 1);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn high_water_tracks_peak_live_bytes() {
        let sz = std::mem::size_of::<f32>();
        let mut ws = Workspace::new();
        let a = ws.take(100);
        let b = ws.take_zeroed(50);
        assert_eq!(ws.live_bytes(), 150 * sz);
        assert_eq!(ws.high_water_bytes(), 150 * sz);
        ws.give(a);
        assert_eq!(ws.live_bytes(), 50 * sz);
        let c = ws.take(20);
        assert_eq!(ws.high_water_bytes(), 150 * sz, "peak must not decay");
        ws.give(b);
        ws.give(c);
        assert_eq!(ws.live_bytes(), 0);
        // foreign storage given without a take must not underflow
        ws.give(vec![0.0; 1000]);
        assert_eq!(ws.live_bytes(), 0);
        assert_eq!(ws.high_water_bytes(), 150 * sz);
    }

    #[test]
    fn recycle_accepts_arrays() {
        let mut ws = Workspace::new();
        ws.recycle(NdArray::zeros(&[4, 4]));
        assert_eq!(ws.pooled(), 1);
        assert_eq!(ws.take(16).len(), 16);
    }
}
