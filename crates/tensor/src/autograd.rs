//! Reverse-mode automatic differentiation.
//!
//! A [`Tensor`] is a reference-counted node in a dynamically built
//! computation graph. Operations (defined in [`crate::ops`]) eagerly compute
//! their forward value and attach a [`Backward`] implementation that maps the
//! output gradient to parent gradients. [`Tensor::backward`] topologically
//! sorts the graph and accumulates gradients into every node that requires
//! them.
//!
//! Graphs are single-use: each forward pass builds a fresh graph that is
//! dropped (freeing all intermediates) once the loss tensor goes out of
//! scope. Leaf parameters (created with [`Tensor::param`]) persist across
//! iterations; their accumulated gradients are read by the optimiser and
//! cleared with [`Tensor::zero_grad`].

use std::cell::{Cell, Ref, RefCell, RefMut};
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::NdArray;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Count of autograd op nodes (nodes carrying a backward function) created
/// since process start. The inference tests assert this stays constant
/// across a [`no_grad`] forward pass.
static GRAPH_NODES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Whether [`Tensor::from_op`] records graph edges on this thread.
    static GRAD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// Whether operations on the current thread record autograd graph nodes.
pub fn is_grad_enabled() -> bool {
    GRAD_ENABLED.with(|g| g.get())
}

/// Total autograd op nodes created so far (process-wide). Take a reading
/// before and after a forward pass to measure how many graph nodes it
/// allocated; under [`no_grad`] the difference must be zero.
pub fn graph_nodes_created() -> u64 {
    GRAPH_NODES.load(Ordering::Relaxed)
}

/// RAII guard returned by [`no_grad`]; restores the previous grad mode
/// (panic-safe) when dropped.
pub struct NoGradGuard {
    prev: bool,
}

impl Drop for NoGradGuard {
    fn drop(&mut self) {
        GRAD_ENABLED.with(|g| g.set(self.prev));
    }
}

/// Disable gradient recording on the current thread until the returned
/// guard is dropped. Inside the guard every op returns a plain
/// [`Tensor::constant`]: no parents are retained and no backward closures
/// are allocated, so a forward pass holds at most one live intermediate at
/// a time. Guards nest; the innermost scope wins.
pub fn no_grad() -> NoGradGuard {
    NoGradGuard { prev: GRAD_ENABLED.with(|g| g.replace(false)) }
}

/// Context handed to [`Backward::backward`]: the node's parents and its
/// forward output (some gradients, e.g. sigmoid's, are cheapest in terms of
/// the output).
pub struct BackwardCtx<'a> {
    /// Parent tensors of the node, in the order the op recorded them.
    pub parents: &'a [Tensor],
    /// The node's forward value.
    pub output: &'a NdArray,
}

/// The gradient rule of one operation.
///
/// Implementations return one `Option<NdArray>` per parent — `None` for
/// parents that are non-differentiable inputs (index lists, dropout masks,
/// detached operators).
pub trait Backward {
    /// Map the output gradient to parent gradients.
    fn backward(&self, grad_out: &NdArray, ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>>;
    /// Operation name for error messages.
    fn name(&self) -> &'static str;
}

struct Inner {
    id: u64,
    data: RefCell<NdArray>,
    grad: RefCell<Option<NdArray>>,
    requires_grad: bool,
    parents: Vec<Tensor>,
    backward_fn: Option<Box<dyn Backward>>,
}

/// A node in the autograd graph holding an [`NdArray`] value.
///
/// Cloning a `Tensor` is cheap (reference count bump); both clones refer to
/// the same node.
#[derive(Clone)]
pub struct Tensor {
    inner: Rc<Inner>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tensor(id={}, shape={:?}, requires_grad={}, op={})",
            self.inner.id,
            self.inner.data.borrow().shape(),
            self.inner.requires_grad,
            self.inner.backward_fn.as_ref().map_or("leaf", |b| b.name()),
        )
    }
}

impl Tensor {
    /// A leaf that does not participate in differentiation.
    pub fn constant(data: NdArray) -> Self {
        Tensor {
            inner: Rc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad: false,
                parents: Vec::new(),
                backward_fn: None,
            }),
        }
    }

    /// A trainable leaf: gradients will accumulate here during backward.
    pub fn param(data: NdArray) -> Self {
        Tensor {
            inner: Rc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad: true,
                parents: Vec::new(),
                backward_fn: None,
            }),
        }
    }

    /// Record an op node. If no parent requires gradients — or gradient
    /// recording is disabled on this thread via [`no_grad`] — the graph
    /// edge is dropped and a plain constant is returned, so inference
    /// builds no graph at all.
    pub fn from_op(data: NdArray, parents: Vec<Tensor>, op: Box<dyn Backward>) -> Self {
        let requires_grad = is_grad_enabled() && parents.iter().any(|p| p.requires_grad());
        if !requires_grad {
            return Tensor::constant(data);
        }
        GRAPH_NODES.fetch_add(1, Ordering::Relaxed);
        Tensor {
            inner: Rc::new(Inner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                data: RefCell::new(data),
                grad: RefCell::new(None),
                requires_grad: true,
                parents,
                backward_fn: Some(op),
            }),
        }
    }

    /// Unique node id.
    #[inline]
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Whether gradients flow to or through this node.
    #[inline]
    pub fn requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// Borrow the forward value.
    pub fn data(&self) -> Ref<'_, NdArray> {
        self.inner.data.borrow()
    }

    /// Mutably borrow the value. Intended for optimisers updating leaf
    /// parameters in place; mutating an interior node invalidates the
    /// recorded graph.
    pub fn data_mut(&self) -> RefMut<'_, NdArray> {
        self.inner.data.borrow_mut()
    }

    /// Clone the forward value out of the node.
    pub fn array(&self) -> NdArray {
        self.inner.data.borrow().clone()
    }

    /// The shape of the value.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.data.borrow().shape().to_vec()
    }

    /// The accumulated gradient, if any.
    pub fn grad(&self) -> Option<NdArray> {
        self.inner.grad.borrow().clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Overwrite the accumulated gradient (used by gradient clipping and
    /// other gradient-surgery utilities). The shape must match the value.
    pub fn replace_grad(&self, grad: NdArray) {
        assert_eq!(
            grad.shape(),
            self.inner.data.borrow().shape(),
            "replace_grad shape mismatch"
        );
        *self.inner.grad.borrow_mut() = Some(grad);
    }

    /// A constant view of this tensor's current value — gradients do not
    /// flow through the result.
    pub fn detach(&self) -> Tensor {
        Tensor::constant(self.array())
    }

    /// Scalar value of a single-element tensor.
    pub fn item(&self) -> f32 {
        self.inner.data.borrow().item()
    }

    fn accumulate_grad(&self, g: NdArray) {
        debug_assert_eq!(
            g.shape(),
            self.inner.data.borrow().shape(),
            "gradient shape mismatch on node {:?}",
            self
        );
        let mut slot = self.inner.grad.borrow_mut();
        match slot.as_mut() {
            Some(existing) => existing.add_assign_scaled(&g, 1.0),
            None => *slot = Some(g),
        }
    }

    /// Run reverse-mode differentiation from this node, seeding with a
    /// gradient of ones (the usual case is a scalar loss).
    ///
    /// Gradients accumulate into every reachable node with
    /// `requires_grad = true`; call [`Tensor::zero_grad`] on parameters
    /// between iterations.
    pub fn backward(&self) {
        let seed = NdArray::ones(self.inner.data.borrow().shape());
        self.backward_with(seed);
    }

    /// Run backward with an explicit seed gradient (must match this node's
    /// shape).
    pub fn backward_with(&self, seed: NdArray) {
        assert!(
            self.inner.requires_grad,
            "backward() on a tensor that does not require gradients"
        );
        assert_eq!(
            seed.shape(),
            self.inner.data.borrow().shape(),
            "backward seed shape mismatch"
        );

        // Post-order DFS: a node appears after all of its parents, so the
        // reversed order processes children before parents.
        let mut topo: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        // (node, next_parent_index) explicit stack to avoid recursion depth
        // limits on deep (10-block) models.
        let mut stack: Vec<(Tensor, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.id());
        while let Some((node, pi)) = stack.pop() {
            if pi < node.inner.parents.len() {
                stack.push((node.clone(), pi + 1));
                let parent = node.inner.parents[pi].clone();
                if parent.requires_grad() && visited.insert(parent.id()) {
                    stack.push((parent, 0));
                }
            } else {
                topo.push(node);
            }
        }

        self.accumulate_grad(seed);
        for node in topo.iter().rev() {
            let Some(op) = node.inner.backward_fn.as_ref() else { continue };
            let grad_out = match node.inner.grad.borrow().clone() {
                Some(g) => g,
                None => continue, // not reachable from the seed
            };
            let output = node.inner.data.borrow();
            let ctx = BackwardCtx { parents: &node.inner.parents, output: &output };
            let parent_grads = op.backward(&grad_out, &ctx);
            drop(output);
            assert_eq!(
                parent_grads.len(),
                node.inner.parents.len(),
                "op {} returned {} gradients for {} parents",
                op.name(),
                parent_grads.len(),
                node.inner.parents.len()
            );
            for (parent, g) in node.inner.parents.iter().zip(parent_grads) {
                if let Some(g) = g {
                    if parent.requires_grad() {
                        parent.accumulate_grad(g);
                    }
                }
            }
            // Free the intermediate gradient: only leaves keep theirs.
            if node.inner.backward_fn.is_some() {
                *node.inner.grad.borrow_mut() = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_does_not_build_graph() {
        let a = Tensor::constant(NdArray::ones(&[2]));
        let b = Tensor::constant(NdArray::ones(&[2]));
        let c = a.add(&b);
        assert!(!c.requires_grad());
    }

    #[test]
    fn param_square_gradient() {
        let x = Tensor::param(NdArray::from_vec(vec![3.0], &[1]));
        let y = x.mul(&x).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[6.0]);
    }

    #[test]
    fn gradient_accumulates_across_backwards() {
        let x = Tensor::param(NdArray::from_vec(vec![2.0], &[1]));
        for _ in 0..3 {
            let y = x.mul_scalar(5.0).sum_all();
            y.backward();
        }
        assert_eq!(x.grad().unwrap().data(), &[15.0]);
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn shared_subexpression_accumulates_once_per_use() {
        // y = x + x uses x twice: dy/dx = 2
        let x = Tensor::param(NdArray::from_vec(vec![1.0], &[1]));
        let y = x.add(&x).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[2.0]);
    }

    #[test]
    fn detach_blocks_gradient() {
        let x = Tensor::param(NdArray::from_vec(vec![4.0], &[1]));
        let d = x.detach();
        let y = d.mul(&x).sum_all(); // y = const(4) * x
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[4.0]); // only the live path
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let x = Tensor::param(NdArray::from_vec(vec![1.0], &[1]));
        let mut y = x.clone();
        for _ in 0..5000 {
            y = y.add_scalar(1.0);
        }
        let loss = y.sum_all();
        loss.backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "does not require gradients")]
    fn backward_on_constant_panics() {
        let a = Tensor::constant(NdArray::ones(&[1]));
        a.backward();
    }

    #[test]
    fn no_grad_skips_graph_construction() {
        let x = Tensor::param(NdArray::from_vec(vec![1.0, 2.0], &[2]));
        // grad mode: ops on a param create graph nodes
        let before = graph_nodes_created();
        let y = x.mul(&x).sum_all();
        assert!(y.requires_grad());
        assert!(graph_nodes_created() > before);
        // no_grad: the same expression allocates zero graph nodes
        let guard = no_grad();
        let before = graph_nodes_created();
        let z = x.mul(&x).sum_all();
        assert!(!z.requires_grad());
        assert_eq!(graph_nodes_created(), before);
        // values are bitwise identical either way
        assert_eq!(y.array(), z.array());
        drop(guard);
        assert!(is_grad_enabled());
    }

    #[test]
    fn no_grad_guards_nest_and_restore() {
        assert!(is_grad_enabled());
        {
            let _g1 = no_grad();
            assert!(!is_grad_enabled());
            {
                let _g2 = no_grad();
                assert!(!is_grad_enabled());
            }
            assert!(!is_grad_enabled());
        }
        assert!(is_grad_enabled());
    }

    #[test]
    fn params_created_under_no_grad_still_require_grad() {
        // no_grad silences op recording, not leaf declarations
        let _g = no_grad();
        let p = Tensor::param(NdArray::ones(&[1]));
        assert!(p.requires_grad());
        // but an op on it is cut from the graph
        assert!(!p.add_scalar(1.0).requires_grad());
    }
}
