//! Reductions: sums and means over axes or over everything.

use crate::autograd::{Backward, BackwardCtx};
use crate::{NdArray, Tensor};

struct SumAxesOp {
    axes: Vec<usize>,
    keepdim: bool,
    /// Per-element scale (1 for sum, 1/count for mean).
    scale: f32,
}

impl Backward for SumAxesOp {
    fn backward(&self, g: &NdArray, ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        let in_shape = ctx.parents[0].data().shape().to_vec();
        // Re-insert reduced dims as 1 (if they were squeezed), then broadcast.
        let g_keep = if self.keepdim {
            g.clone()
        } else {
            let mut shape = in_shape.clone();
            for &a in &self.axes {
                shape[a] = 1;
            }
            g.reshape(&shape)
        };
        vec![Some(g_keep.broadcast_to(&in_shape).mul_scalar(self.scale))]
    }

    fn name(&self) -> &'static str {
        "sum_axes"
    }
}

struct SumAllOp {
    scale: f32,
}

impl Backward for SumAllOp {
    fn backward(&self, g: &NdArray, ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        let shape = ctx.parents[0].data().shape().to_vec();
        vec![Some(NdArray::full(&shape, g.item() * self.scale))]
    }

    fn name(&self) -> &'static str {
        "sum_all"
    }
}

impl Tensor {
    /// Sum over the given axes; with `keepdim` the reduced axes remain as
    /// size-1 dimensions.
    pub fn sum_axes(&self, axes: &[usize], keepdim: bool) -> Tensor {
        let out = self.data().sum_axes(axes, keepdim);
        Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(SumAxesOp { axes: axes.to_vec(), keepdim, scale: 1.0 }),
        )
    }

    /// Mean over the given axes.
    pub fn mean_axes(&self, axes: &[usize], keepdim: bool) -> Tensor {
        let count: usize = {
            let d = self.data();
            axes.iter().map(|&a| d.shape()[a]).product()
        };
        let out = self.data().mean_axes(axes, keepdim);
        Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(SumAxesOp { axes: axes.to_vec(), keepdim, scale: 1.0 / count as f32 }),
        )
    }

    /// Sum of all elements as a rank-0 tensor.
    pub fn sum_all(&self) -> Tensor {
        let out = NdArray::scalar(self.data().sum_all());
        Tensor::from_op(out, vec![self.clone()], Box::new(SumAllOp { scale: 1.0 }))
    }

    /// Mean of all elements as a rank-0 tensor.
    pub fn mean_all(&self) -> Tensor {
        let n = self.data().len();
        let out = NdArray::scalar(self.data().mean_all());
        Tensor::from_op(out, vec![self.clone()], Box::new(SumAllOp { scale: 1.0 / n as f32 }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_axes_grad_broadcasts_back() {
        let x = Tensor::param(NdArray::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]));
        let y = x.sum_axes(&[0], false); // shape [3]
        assert_eq!(y.shape(), vec![3]);
        let loss = y.mul(&y).sum_all();
        loss.backward();
        // d/dx (Σ_col)² = 2 * colsum, broadcast over rows
        let g = x.grad().unwrap();
        assert_eq!(g.data(), &[6.0, 10.0, 14.0, 6.0, 10.0, 14.0]);
    }

    #[test]
    fn mean_axes_scales_gradient() {
        let x = Tensor::param(NdArray::ones(&[4, 5]));
        let y = x.mean_axes(&[0, 1], true);
        assert_eq!(y.shape(), vec![1, 1]);
        y.sum_all().backward();
        assert!(x.grad().unwrap().allclose(&NdArray::full(&[4, 5], 1.0 / 20.0), 1e-6, 1e-7));
    }

    #[test]
    fn mean_all_grad() {
        let x = Tensor::param(NdArray::ones(&[10]));
        x.mean_all().backward();
        assert!(x.grad().unwrap().allclose(&NdArray::full(&[10], 0.1), 1e-6, 1e-7));
    }

    #[test]
    fn keepdim_grad_shapes() {
        let x = Tensor::param(NdArray::ones(&[2, 3, 4]));
        let y = x.sum_axes(&[1], true);
        assert_eq!(y.shape(), vec![2, 1, 4]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().shape(), &[2, 3, 4]);
    }
}
