//! Elementwise arithmetic with broadcasting, and scalar maps.

use crate::autograd::{Backward, BackwardCtx};
use crate::{NdArray, Tensor};

/// Binary elementwise ops. The gradient of a broadcast input is the output
/// gradient summed back down to the input's shape.
enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
}

struct BinOp {
    kind: BinKind,
}

impl Backward for BinOp {
    fn backward(&self, g: &NdArray, ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        let a = ctx.parents[0].data();
        let b = ctx.parents[1].data();
        let (ga, gb) = match self.kind {
            BinKind::Add => (g.clone(), g.clone()),
            BinKind::Sub => (g.clone(), g.mul_scalar(-1.0)),
            BinKind::Mul => (g.mul(&b), g.mul(&a)),
            BinKind::Div => {
                let ga = g.div(&b);
                // d/db (a/b) = -a / b²
                let gb = g.mul(&a).mul_scalar(-1.0).div(&b).div(&b);
                (ga, gb)
            }
        };
        vec![Some(ga.reduce_to_shape(a.shape())), Some(gb.reduce_to_shape(b.shape()))]
    }

    fn name(&self) -> &'static str {
        match self.kind {
            BinKind::Add => "add",
            BinKind::Sub => "sub",
            BinKind::Mul => "mul",
            BinKind::Div => "div",
        }
    }
}

/// Unary elementwise maps whose derivative is a simple function of the
/// input and/or output.
enum UnaryKind {
    Neg,
    AddScalar,
    MulScalar(f32),
    Sqrt,
    Exp,
    Ln,
    PowScalar(f32),
}

struct UnaryOp {
    kind: UnaryKind,
}

impl Backward for UnaryOp {
    fn backward(&self, g: &NdArray, ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        let x = ctx.parents[0].data();
        let gx = match self.kind {
            UnaryKind::Neg => g.mul_scalar(-1.0),
            UnaryKind::AddScalar => g.clone(),
            UnaryKind::MulScalar(s) => g.mul_scalar(s),
            // d sqrt(x) = 1 / (2 sqrt(x)) = 1 / (2 out)
            UnaryKind::Sqrt => g.zip_map(ctx.output, |gv, ov| gv * 0.5 / ov),
            UnaryKind::Exp => g.mul(ctx.output),
            UnaryKind::Ln => g.div(&x),
            UnaryKind::PowScalar(p) => g.zip_map(&x, |gv, xv| gv * p * xv.powf(p - 1.0)),
        };
        vec![Some(gx)]
    }

    fn name(&self) -> &'static str {
        match self.kind {
            UnaryKind::Neg => "neg",
            UnaryKind::AddScalar => "add_scalar",
            UnaryKind::MulScalar(_) => "mul_scalar",
            UnaryKind::Sqrt => "sqrt",
            UnaryKind::Exp => "exp",
            UnaryKind::Ln => "ln",
            UnaryKind::PowScalar(_) => "pow_scalar",
        }
    }
}

impl Tensor {
    /// Elementwise `self + other` with broadcasting.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let out = self.data().add(&other.data());
        Tensor::from_op(out, vec![self.clone(), other.clone()], Box::new(BinOp { kind: BinKind::Add }))
    }

    /// Elementwise `self - other` with broadcasting.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        let out = self.data().sub(&other.data());
        Tensor::from_op(out, vec![self.clone(), other.clone()], Box::new(BinOp { kind: BinKind::Sub }))
    }

    /// Elementwise `self * other` with broadcasting.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        let out = self.data().mul(&other.data());
        Tensor::from_op(out, vec![self.clone(), other.clone()], Box::new(BinOp { kind: BinKind::Mul }))
    }

    /// Elementwise `self / other` with broadcasting.
    pub fn div(&self, other: &Tensor) -> Tensor {
        let out = self.data().div(&other.data());
        Tensor::from_op(out, vec![self.clone(), other.clone()], Box::new(BinOp { kind: BinKind::Div }))
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        let out = self.data().mul_scalar(-1.0);
        Tensor::from_op(out, vec![self.clone()], Box::new(UnaryOp { kind: UnaryKind::Neg }))
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        let out = self.data().add_scalar(s);
        Tensor::from_op(out, vec![self.clone()], Box::new(UnaryOp { kind: UnaryKind::AddScalar }))
    }

    /// Multiply every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        let out = self.data().mul_scalar(s);
        Tensor::from_op(out, vec![self.clone()], Box::new(UnaryOp { kind: UnaryKind::MulScalar(s) }))
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        let out = self.data().map(f32::sqrt);
        Tensor::from_op(out, vec![self.clone()], Box::new(UnaryOp { kind: UnaryKind::Sqrt }))
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        let out = self.data().map(f32::exp);
        Tensor::from_op(out, vec![self.clone()], Box::new(UnaryOp { kind: UnaryKind::Exp }))
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        let out = self.data().map(f32::ln);
        Tensor::from_op(out, vec![self.clone()], Box::new(UnaryOp { kind: UnaryKind::Ln }))
    }

    /// Elementwise power with a scalar exponent.
    pub fn pow_scalar(&self, p: f32) -> Tensor {
        let out = self.data().map(|v| v.powf(p));
        Tensor::from_op(out, vec![self.clone()], Box::new(UnaryOp { kind: UnaryKind::PowScalar(p) }))
    }

    /// Elementwise square (`x * x` without a second graph edge).
    pub fn square(&self) -> Tensor {
        self.pow_scalar(2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::param(NdArray::from_vec(v, s))
    }

    #[test]
    fn add_broadcast_grad_reduces() {
        let a = p(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = p(vec![10.0, 20.0, 30.0], &[3]);
        let y = a.add(&b).sum_all();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0; 6]);
        assert_eq!(b.grad().unwrap().data(), &[2.0, 2.0, 2.0]); // summed over rows
    }

    #[test]
    fn div_grads() {
        let a = p(vec![6.0], &[1]);
        let b = p(vec![2.0], &[1]);
        let y = a.div(&b).sum_all();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[0.5]); // 1/b
        assert_eq!(b.grad().unwrap().data(), &[-1.5]); // -a/b²
    }

    #[test]
    fn chain_of_unary_ops() {
        // y = ln(exp(x)) = x → dy/dx = 1
        let x = p(vec![0.3, 1.7], &[2]);
        let y = x.exp().ln().sum_all();
        y.backward();
        let g = x.grad().unwrap();
        assert!(g.allclose(&NdArray::ones(&[2]), 1e-4, 1e-5), "{g:?}");
    }

    #[test]
    fn sqrt_grad() {
        let x = p(vec![4.0], &[1]);
        let y = x.sqrt().sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.25]);
    }

    #[test]
    fn pow_scalar_grad() {
        let x = p(vec![2.0], &[1]);
        let y = x.pow_scalar(3.0).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[12.0]); // 3x²
    }
}
