//! 2-D convolution via `im2col` + batched matmul.
//!
//! The skeleton models use `[N, C, T, V]` tensors where `T` is time and `V`
//! is the joint dimension; temporal convolutions are `k×1` kernels over `T`
//! with optional stride and dilation, which this general implementation
//! covers.

use crate::autograd::{Backward, BackwardCtx};
use crate::{NdArray, Tensor};

/// Geometry of a 2-D convolution: kernel, stride, padding, dilation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Kernel height and width.
    pub kernel: (usize, usize),
    /// Stride along height and width.
    pub stride: (usize, usize),
    /// Zero padding along height and width.
    pub padding: (usize, usize),
    /// Dilation along height and width.
    pub dilation: (usize, usize),
}

impl Conv2dSpec {
    /// A `k × 1` temporal convolution over `[N, C, T, V]` with "same"
    /// padding at stride 1 (the DHST temporal module; paper fixes `k = 3`).
    ///
    /// Panics on even `kernel_t`: the "same" padding `dilation·(k−1)/2` is
    /// only exact for odd kernels — an even kernel would silently shrink
    /// `T` by `dilation` every block, corrupting the temporal stream.
    pub fn temporal(kernel_t: usize, stride_t: usize, dilation_t: usize) -> Self {
        assert!(
            kernel_t % 2 == 1,
            "Conv2dSpec::temporal requires an odd kernel_t (got {kernel_t}): \
             'same' padding dilation*(k-1)/2 cannot preserve T for even kernels \
             (the paper fixes k = 3)"
        );
        let pad_t = dilation_t * (kernel_t - 1) / 2;
        Conv2dSpec {
            kernel: (kernel_t, 1),
            stride: (stride_t, 1),
            padding: (pad_t, 0),
            dilation: (dilation_t, 1),
        }
    }

    /// A pointwise `1 × 1` convolution.
    pub fn pointwise() -> Self {
        Conv2dSpec { kernel: (1, 1), stride: (1, 1), padding: (0, 0), dilation: (1, 1) }
    }

    /// Output spatial size for an input of height `h` and width `w`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        crate::array::conv_out_size(
            h,
            w,
            self.kernel.0,
            self.kernel.1,
            self.stride.0,
            self.stride.1,
            self.padding.0,
            self.padding.1,
            self.dilation.0,
            self.dilation.1,
        )
    }
}

struct Im2ColOp {
    spec: Conv2dSpec,
    in_shape: Vec<usize>,
}

impl Backward for Im2ColOp {
    fn backward(&self, g: &NdArray, _ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        let s = &self.spec;
        let (c, h, w) = (self.in_shape[1], self.in_shape[2], self.in_shape[3]);
        vec![Some(g.col2im(
            c, h, w, s.kernel.0, s.kernel.1, s.stride.0, s.stride.1, s.padding.0, s.padding.1,
            s.dilation.0, s.dilation.1,
        ))]
    }

    fn name(&self) -> &'static str {
        "im2col"
    }
}

impl Tensor {
    /// Unfold `[N, C, H, W]` into `[N, C·kh·kw, Ho·Wo]` columns. The
    /// gradient is the adjoint scatter-add (`col2im`).
    pub fn im2col(&self, spec: Conv2dSpec) -> Tensor {
        let in_shape = self.shape();
        assert_eq!(in_shape.len(), 4, "im2col expects [N, C, H, W]");
        let out = self.data().im2col(
            spec.kernel.0,
            spec.kernel.1,
            spec.stride.0,
            spec.stride.1,
            spec.padding.0,
            spec.padding.1,
            spec.dilation.0,
            spec.dilation.1,
        );
        Tensor::from_op(out, vec![self.clone()], Box::new(Im2ColOp { spec, in_shape }))
    }

    /// 2-D convolution: `self` is `[N, Cin, H, W]`, `weight` is
    /// `[Cout, Cin, kh, kw]`, optional `bias` is `[Cout]`. Returns
    /// `[N, Cout, Ho, Wo]`.
    ///
    /// Implemented as `im2col` + batched matmul so the gradient reuses the
    /// (independently verified) matmul and `col2im` adjoints.
    pub fn conv2d(&self, weight: &Tensor, bias: Option<&Tensor>, spec: Conv2dSpec) -> Tensor {
        let in_shape = self.shape();
        let w_shape = weight.shape();
        assert_eq!(in_shape.len(), 4, "conv2d input must be [N, Cin, H, W]");
        assert_eq!(w_shape.len(), 4, "conv2d weight must be [Cout, Cin, kh, kw]");
        assert_eq!(in_shape[1], w_shape[1], "conv2d channel mismatch");
        assert_eq!((w_shape[2], w_shape[3]), spec.kernel, "conv2d kernel/spec mismatch");
        let (n, cout) = (in_shape[0], w_shape[0]);
        let (ho, wo) = spec.out_size(in_shape[2], in_shape[3]);
        let ckk = w_shape[1] * w_shape[2] * w_shape[3];

        let cols = self.im2col(spec); // [N, CKK, L]
        let w2d = weight.reshape(&[cout, ckk]); // broadcast over batch
        let out = w2d.matmul(&cols); // [N, Cout, L]
        let out = out.reshape(&[n, cout, ho, wo]);
        match bias {
            Some(b) => {
                assert_eq!(b.shape(), vec![cout], "conv2d bias must be [Cout]");
                out.add(&b.reshape(&[1, cout, 1, 1]))
            }
            None => out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointwise_conv_is_channel_mixing() {
        // 1x1 conv with weight [[1,1]] sums the two input channels
        let x = Tensor::constant(NdArray::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        ));
        let w = Tensor::constant(NdArray::ones(&[1, 2, 1, 1]));
        let y = x.conv2d(&w, None, Conv2dSpec::pointwise());
        assert_eq!(y.shape(), vec![1, 1, 2, 2]);
        assert_eq!(y.array().data(), &[11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn temporal_conv_same_padding_keeps_length() {
        let x = Tensor::constant(NdArray::ones(&[2, 3, 8, 25]));
        let w = Tensor::constant(NdArray::zeros(&[4, 3, 3, 1]));
        let y = x.conv2d(&w, None, Conv2dSpec::temporal(3, 1, 1));
        assert_eq!(y.shape(), vec![2, 4, 8, 25]);
        // dilation 2 also preserves length with "same" padding
        let y2 = x.conv2d(&w, None, Conv2dSpec::temporal(3, 1, 2));
        assert_eq!(y2.shape(), vec![2, 4, 8, 25]);
        // stride 2 halves it
        let y3 = x.conv2d(&w, None, Conv2dSpec::temporal(3, 2, 1));
        assert_eq!(y3.shape(), vec![2, 4, 4, 25]);
    }

    #[test]
    #[should_panic(expected = "odd kernel_t")]
    fn temporal_even_kernel_panics() {
        Conv2dSpec::temporal(4, 1, 1);
    }

    #[test]
    fn temporal_same_padding_preserves_t_across_dilations() {
        // the regression the padding bug would break: stride-1 "same"
        // temporal convs must keep T exactly, whatever the dilation
        let x = Tensor::constant(NdArray::ones(&[1, 2, 16, 5]));
        let w = Tensor::constant(NdArray::zeros(&[2, 2, 3, 1]));
        for dilation in 1..=4 {
            let spec = Conv2dSpec::temporal(3, 1, dilation);
            let y = x.conv2d(&w, None, spec);
            assert_eq!(y.shape(), vec![1, 2, 16, 5], "dilation {dilation} changed T");
        }
    }

    #[test]
    fn conv_known_values_3x1() {
        // single channel, T=4, V=1, kernel [1, 2, 3] along T, no padding
        let x = Tensor::constant(NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4, 1]));
        let w = Tensor::constant(NdArray::from_vec(vec![1.0, 2.0, 3.0], &[1, 1, 3, 1]));
        let spec = Conv2dSpec { kernel: (3, 1), stride: (1, 1), padding: (0, 0), dilation: (1, 1) };
        let y = x.conv2d(&w, None, spec);
        assert_eq!(y.shape(), vec![1, 1, 2, 1]);
        // y0 = 1*1+2*2+3*3 = 14; y1 = 1*2+2*3+3*4 = 20
        assert_eq!(y.array().data(), &[14.0, 20.0]);
    }

    #[test]
    fn conv_bias_broadcasts_per_channel() {
        let x = Tensor::constant(NdArray::zeros(&[1, 1, 2, 2]));
        let w = Tensor::constant(NdArray::zeros(&[3, 1, 1, 1]));
        let b = Tensor::constant(NdArray::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let y = x.conv2d(&w, Some(&b), Conv2dSpec::pointwise()).array();
        assert_eq!(y.shape(), &[1, 3, 2, 2]);
        assert_eq!(&y.data()[0..4], &[1.0; 4]);
        assert_eq!(&y.data()[4..8], &[2.0; 4]);
        assert_eq!(&y.data()[8..12], &[3.0; 4]);
    }

    #[test]
    fn conv_weight_gradient_known_case() {
        // x all ones, so d loss/d w = count of output positions per tap
        let x = Tensor::constant(NdArray::ones(&[1, 1, 4, 4]));
        let w = Tensor::param(NdArray::zeros(&[1, 1, 3, 3]));
        let spec = Conv2dSpec { kernel: (3, 3), stride: (1, 1), padding: (0, 0), dilation: (1, 1) };
        let y = x.conv2d(&w, None, spec); // output 2x2
        y.sum_all().backward();
        let g = w.grad().unwrap();
        assert_eq!(g.shape(), &[1, 1, 3, 3]);
        assert_eq!(g.data(), &[4.0; 9]); // each tap sees 4 output positions
    }

    #[test]
    fn conv_input_gradient_known_case() {
        let x = Tensor::param(NdArray::zeros(&[1, 1, 3, 1]));
        let w = Tensor::constant(NdArray::from_vec(vec![1.0, 10.0, 100.0], &[1, 1, 3, 1]));
        let spec = Conv2dSpec::temporal(3, 1, 1); // same padding
        let y = x.conv2d(&w, None, spec);
        y.sum_all().backward();
        // dL/dx[i] = Σ_{t+k-1=i} w[k]; the middle position sees all taps
        let g = x.grad().unwrap();
        assert_eq!(g.data(), &[11.0, 111.0, 110.0]);
    }
}
