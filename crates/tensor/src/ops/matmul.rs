//! Batched matrix multiplication with broadcast-aware gradients.

use crate::autograd::{Backward, BackwardCtx};
use crate::{NdArray, Tensor};

struct MatmulOp;

impl Backward for MatmulOp {
    fn backward(&self, g: &NdArray, ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        let a = ctx.parents[0].data();
        let b = ctx.parents[1].data();
        // dA = g @ Bᵀ, dB = Aᵀ @ g — then sum away broadcast batch dims.
        let ga = g.matmul(&b.transpose_last2()).reduce_to_shape(a.shape());
        let gb = a.transpose_last2().matmul(g).reduce_to_shape(b.shape());
        vec![Some(ga), Some(gb)]
    }

    fn name(&self) -> &'static str {
        "matmul"
    }
}

impl Tensor {
    /// Batched matrix product `self @ other`. Leading (batch) dimensions
    /// broadcast; the last two dimensions contract as `[m, k] × [k, n]`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let out = self.data().matmul(&other.data());
        Tensor::from_op(out, vec![self.clone(), other.clone()], Box::new(MatmulOp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_grads_match_hand_computation() {
        // y = sum(A @ B): dA = 1s @ Bᵀ, dB = Aᵀ @ 1s
        let a = Tensor::param(NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let b = Tensor::param(NdArray::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]));
        let y = a.matmul(&b).sum_all();
        y.backward();
        // dA[i][p] = Σ_j B[p][j]
        assert_eq!(a.grad().unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        // dB[p][j] = Σ_i A[i][p]
        assert_eq!(b.grad().unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn broadcast_weight_grad_sums_over_batch() {
        // w [2,2] applied to batch x [3,2,2] — dw accumulates over batch
        let w = Tensor::param(NdArray::eye(2));
        let x = Tensor::constant(NdArray::ones(&[3, 2, 2]));
        let y = w.matmul(&x).sum_all();
        y.backward();
        let g = w.grad().unwrap();
        assert_eq!(g.shape(), &[2, 2]);
        assert_eq!(g.data(), &[6.0, 6.0, 6.0, 6.0]);
    }
}
