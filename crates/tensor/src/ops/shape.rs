//! Shape manipulation: reshape, permute, concat, slice.

use crate::autograd::{Backward, BackwardCtx};
use crate::{NdArray, Tensor};

struct ReshapeOp {
    in_shape: Vec<usize>,
}

impl Backward for ReshapeOp {
    fn backward(&self, g: &NdArray, _ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        vec![Some(g.reshape(&self.in_shape))]
    }

    fn name(&self) -> &'static str {
        "reshape"
    }
}

struct PermuteOp {
    inverse: Vec<usize>,
}

impl Backward for PermuteOp {
    fn backward(&self, g: &NdArray, _ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        vec![Some(g.permute(&self.inverse))]
    }

    fn name(&self) -> &'static str {
        "permute"
    }
}

struct ConcatOp {
    axis: usize,
    sizes: Vec<usize>,
}

impl Backward for ConcatOp {
    fn backward(&self, g: &NdArray, _ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        let mut out = Vec::with_capacity(self.sizes.len());
        let mut start = 0;
        for &len in &self.sizes {
            out.push(Some(g.slice_axis(self.axis, start, len)));
            start += len;
        }
        out
    }

    fn name(&self) -> &'static str {
        "concat"
    }
}

struct SliceOp {
    axis: usize,
    start: usize,
    full_shape: Vec<usize>,
}

impl Backward for SliceOp {
    fn backward(&self, g: &NdArray, _ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        vec![Some(NdArray::unslice_axis(g, &self.full_shape, self.axis, self.start))]
    }

    fn name(&self) -> &'static str {
        "slice_axis"
    }
}

impl Tensor {
    /// Reinterpret the value with a new shape (one `usize::MAX` dimension may
    /// be inferred).
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let in_shape = self.shape();
        let out = self.data().reshape(shape);
        Tensor::from_op(out, vec![self.clone()], Box::new(ReshapeOp { in_shape }))
    }

    /// Permute the axes; the gradient applies the inverse permutation.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        let out = self.data().permute(perm);
        Tensor::from_op(out, vec![self.clone()], Box::new(PermuteOp { inverse }))
    }

    /// Swap the last two axes.
    pub fn transpose_last2(&self) -> Tensor {
        let nd = self.data().ndim();
        let mut perm: Vec<usize> = (0..nd).collect();
        perm.swap(nd - 1, nd - 2);
        self.permute(&perm)
    }

    /// Concatenate tensors along `axis`.
    pub fn concat(parts: &[&Tensor], axis: usize) -> Tensor {
        assert!(!parts.is_empty(), "concat of zero tensors");
        let datas: Vec<NdArray> = parts.iter().map(|t| t.array()).collect();
        let refs: Vec<&NdArray> = datas.iter().collect();
        let out = NdArray::concat(&refs, axis);
        let sizes = datas.iter().map(|d| d.shape()[axis]).collect();
        let parents = parts.iter().map(|&t| t.clone()).collect();
        Tensor::from_op(out, parents, Box::new(ConcatOp { axis, sizes }))
    }

    /// Take `len` consecutive indices starting at `start` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, len: usize) -> Tensor {
        let full_shape = self.shape();
        let out = self.data().slice_axis(axis, start, len);
        Tensor::from_op(out, vec![self.clone()], Box::new(SliceOp { axis, start, full_shape }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_grad_restores_shape() {
        let x = Tensor::param(NdArray::ones(&[2, 6]));
        let y = x.reshape(&[3, 4]).mul_scalar(2.0).sum_all();
        y.backward();
        let g = x.grad().unwrap();
        assert_eq!(g.shape(), &[2, 6]);
        assert_eq!(g.data(), &[2.0; 12]);
    }

    #[test]
    fn permute_grad_is_inverse_permutation() {
        let x = Tensor::param(NdArray::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]));
        // weight the permuted output by its own values so the gradient is
        // position-dependent and any permutation error is visible
        let p = x.permute(&[2, 0, 1]);
        let w = Tensor::constant(p.array());
        let y = p.mul(&w).sum_all();
        y.backward();
        let g = x.grad().unwrap();
        // dy/dx = x (since after inverse permutation, weight == x)
        assert_eq!(g, x.array());
    }

    #[test]
    fn concat_routes_gradients_to_sources() {
        let a = Tensor::param(NdArray::ones(&[2, 2]));
        let b = Tensor::param(NdArray::ones(&[2, 3]));
        let c = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c.shape(), vec![2, 5]);
        c.mul_scalar(3.0).sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[3.0; 4]);
        assert_eq!(b.grad().unwrap().data(), &[3.0; 6]);
    }

    #[test]
    fn slice_grad_is_zero_padded() {
        let x = Tensor::param(NdArray::ones(&[4, 2]));
        let s = x.slice_axis(0, 1, 2);
        s.sum_all().backward();
        let g = x.grad().unwrap();
        assert_eq!(g.data(), &[0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn slice_concat_roundtrip_gradient() {
        let x = Tensor::param(NdArray::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]));
        let top = x.slice_axis(0, 0, 1);
        let rest = x.slice_axis(0, 1, 2);
        let y = Tensor::concat(&[&top, &rest], 0).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0; 12]);
    }
}
