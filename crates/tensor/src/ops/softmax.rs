//! Softmax, log-softmax and the fused cross-entropy loss.

use crate::autograd::{Backward, BackwardCtx};
use crate::{NdArray, Tensor};

struct SoftmaxOp {
    axis: usize,
}

impl Backward for SoftmaxOp {
    fn backward(&self, g: &NdArray, ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        // dx = s ⊙ (g - Σ_axis(g ⊙ s))
        let s = ctx.output;
        let dot = g.mul(s).sum_axes(&[self.axis], true);
        vec![Some(s.mul(&g.sub(&dot)))]
    }

    fn name(&self) -> &'static str {
        "softmax"
    }
}

struct LogSoftmaxOp {
    axis: usize,
}

impl Backward for LogSoftmaxOp {
    fn backward(&self, g: &NdArray, ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        // dx = g - softmax(x) ⊙ Σ_axis g, where softmax = exp(output)
        let gsum = g.sum_axes(&[self.axis], true);
        let soft = ctx.output.map(f32::exp);
        vec![Some(g.sub(&soft.mul(&gsum)))]
    }

    fn name(&self) -> &'static str {
        "log_softmax"
    }
}

struct CrossEntropyOp {
    targets: Vec<usize>,
}

impl Backward for CrossEntropyOp {
    fn backward(&self, g: &NdArray, ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        // d loss / d logits = (softmax(logits) - onehot(target)) / N
        let logits = ctx.parents[0].data();
        let mut grad = softmax_array(&logits, 1);
        let k = grad.shape()[1];
        let n = self.targets.len();
        let scale = g.item() / n as f32;
        {
            let gd = grad.data_mut();
            for (row, &t) in self.targets.iter().enumerate() {
                gd[row * k + t] -= 1.0;
            }
            for v in gd.iter_mut() {
                *v *= scale;
            }
        }
        vec![Some(grad)]
    }

    fn name(&self) -> &'static str {
        "cross_entropy"
    }
}

/// Numerically stable softmax of an array along `axis` (no autograd).
pub fn softmax_array(x: &NdArray, axis: usize) -> NdArray {
    let max = x.max_axis_keepdim(axis);
    let e = x.sub(&max).map(f32::exp);
    let sum = e.sum_axes(&[axis], true);
    e.div(&sum)
}

/// Numerically stable log-softmax of an array along `axis` (no autograd).
pub fn log_softmax_array(x: &NdArray, axis: usize) -> NdArray {
    let max = x.max_axis_keepdim(axis);
    let shifted = x.sub(&max);
    let lse = shifted.map(f32::exp).sum_axes(&[axis], true).map(f32::ln);
    shifted.sub(&lse)
}

impl Tensor {
    /// Softmax along `axis` (stable: shifts by the per-slice maximum).
    pub fn softmax(&self, axis: usize) -> Tensor {
        let out = softmax_array(&self.data(), axis);
        Tensor::from_op(out, vec![self.clone()], Box::new(SoftmaxOp { axis }))
    }

    /// Log-softmax along `axis`.
    pub fn log_softmax(&self, axis: usize) -> Tensor {
        let out = log_softmax_array(&self.data(), axis);
        Tensor::from_op(out, vec![self.clone()], Box::new(LogSoftmaxOp { axis }))
    }

    /// Mean cross-entropy between logits `[N, K]` and integer class targets.
    ///
    /// Forward and backward are fused for numerical stability: the gradient
    /// is `(softmax(logits) - onehot) / N`.
    pub fn cross_entropy(&self, targets: &[usize]) -> Tensor {
        let logits = self.data();
        assert_eq!(logits.ndim(), 2, "cross_entropy expects [N, K] logits");
        let (n, k) = (logits.shape()[0], logits.shape()[1]);
        assert_eq!(n, targets.len(), "cross_entropy batch mismatch");
        let logp = log_softmax_array(&logits, 1);
        let mut loss = 0.0f32;
        for (row, &t) in targets.iter().enumerate() {
            assert!(t < k, "target {t} out of range for {k} classes");
            loss -= logp.data()[row * k + t];
        }
        drop(logits);
        let out = NdArray::scalar(loss / n as f32);
        Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(CrossEntropyOp { targets: targets.to_vec() }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::constant(NdArray::from_vec(vec![1.0, 2.0, 3.0, 10.0, 10.0, 10.0], &[2, 3]));
        let s = x.softmax(1).array();
        for row in s.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // uniform row stays uniform
        assert!((s.data()[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = NdArray::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = a.add_scalar(1000.0);
        let sa = softmax_array(&a, 1);
        let sb = softmax_array(&b, 1);
        assert!(sa.allclose(&sb, 1e-5, 1e-6));
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let x = NdArray::from_vec(vec![0.5, -1.0, 2.0, 0.0], &[2, 2]);
        let ls = log_softmax_array(&x, 1);
        let s = softmax_array(&x, 1).map(f32::ln);
        assert!(ls.allclose(&s, 1e-5, 1e-6));
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::param(NdArray::from_vec(vec![20.0, 0.0, 0.0, 0.0, 20.0, 0.0], &[2, 3]));
        let loss = logits.cross_entropy(&[0, 1]);
        assert!(loss.item() < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_ln_k() {
        let logits = Tensor::param(NdArray::zeros(&[4, 5]));
        let loss = logits.cross_entropy(&[0, 1, 2, 3]);
        assert!((loss.item() - (5.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let logits = Tensor::param(NdArray::zeros(&[1, 4]));
        let loss = logits.cross_entropy(&[2]);
        loss.backward();
        let g = logits.grad().unwrap();
        assert!(g.allclose(
            &NdArray::from_vec(vec![0.25, 0.25, -0.75, 0.25], &[1, 4]),
            1e-5,
            1e-6
        ));
    }

    #[test]
    fn softmax_grad_sums_to_zero() {
        // Softmax outputs sum to 1 ⇒ gradient w.r.t. any input sums to 0
        // when seeded with a one-hot output gradient.
        let x = Tensor::param(NdArray::from_vec(vec![0.3, -0.7, 1.2], &[1, 3]));
        let s = x.softmax(1);
        let pick = s.slice_axis(1, 1, 1).sum_all();
        pick.backward();
        let g = x.grad().unwrap();
        assert!(g.data().iter().sum::<f32>().abs() < 1e-6);
    }
}
