//! Nonlinear activations.

use crate::autograd::{Backward, BackwardCtx};
use crate::{NdArray, Tensor};

enum ActKind {
    Relu,
    LeakyRelu(f32),
    Sigmoid,
    Tanh,
}

struct ActOp {
    kind: ActKind,
}

impl Backward for ActOp {
    fn backward(&self, g: &NdArray, ctx: &BackwardCtx<'_>) -> Vec<Option<NdArray>> {
        let gx = match self.kind {
            ActKind::Relu => {
                let x = ctx.parents[0].data();
                g.zip_map(&x, |gv, xv| if xv > 0.0 { gv } else { 0.0 })
            }
            ActKind::LeakyRelu(slope) => {
                let x = ctx.parents[0].data();
                g.zip_map(&x, |gv, xv| if xv > 0.0 { gv } else { gv * slope })
            }
            // σ'(x) = σ(x)(1-σ(x)) — use the saved output.
            ActKind::Sigmoid => g.zip_map(ctx.output, |gv, ov| gv * ov * (1.0 - ov)),
            // tanh'(x) = 1 - tanh²(x)
            ActKind::Tanh => g.zip_map(ctx.output, |gv, ov| gv * (1.0 - ov * ov)),
        };
        vec![Some(gx)]
    }

    fn name(&self) -> &'static str {
        match self.kind {
            ActKind::Relu => "relu",
            ActKind::LeakyRelu(_) => "leaky_relu",
            ActKind::Sigmoid => "sigmoid",
            ActKind::Tanh => "tanh",
        }
    }
}

impl Tensor {
    /// Rectified linear unit: `max(x, 0)`.
    pub fn relu(&self) -> Tensor {
        let out = self.data().map(|v| v.max(0.0));
        Tensor::from_op(out, vec![self.clone()], Box::new(ActOp { kind: ActKind::Relu }))
    }

    /// Leaky ReLU with the given negative-side slope.
    pub fn leaky_relu(&self, slope: f32) -> Tensor {
        let out = self.data().map(|v| if v > 0.0 { v } else { v * slope });
        Tensor::from_op(out, vec![self.clone()], Box::new(ActOp { kind: ActKind::LeakyRelu(slope) }))
    }

    /// Logistic sigmoid `1 / (1 + e^{-x})`, computed stably.
    pub fn sigmoid(&self) -> Tensor {
        let out = self.data().map(|v| {
            if v >= 0.0 {
                1.0 / (1.0 + (-v).exp())
            } else {
                let e = v.exp();
                e / (1.0 + e)
            }
        });
        Tensor::from_op(out, vec![self.clone()], Box::new(ActOp { kind: ActKind::Sigmoid }))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        let out = self.data().map(f32::tanh);
        Tensor::from_op(out, vec![self.clone()], Box::new(ActOp { kind: ActKind::Tanh }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_masks_gradient() {
        let x = Tensor::param(NdArray::from_vec(vec![-1.0, 0.0, 2.0], &[3]));
        let y = x.relu().sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let x = Tensor::param(NdArray::from_vec(vec![-2.0, 3.0], &[2]));
        let y = x.leaky_relu(0.1).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[0.1, 1.0]);
        assert_eq!(x.leaky_relu(0.1).data().data(), &[-0.2, 3.0]);
    }

    #[test]
    fn sigmoid_extremes_are_stable() {
        let x = Tensor::constant(NdArray::from_vec(vec![-100.0, 0.0, 100.0], &[3]));
        let y = x.sigmoid();
        let d = y.array();
        assert!(d.data()[0] >= 0.0 && d.data()[0] < 1e-20);
        assert!((d.data()[1] - 0.5).abs() < 1e-6);
        assert!((d.data()[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_grad_at_zero_is_one() {
        let x = Tensor::param(NdArray::zeros(&[1]));
        let y = x.tanh().sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0]);
    }
}
