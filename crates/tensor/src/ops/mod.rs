//! Differentiable operations on [`crate::Tensor`].
//!
//! Each submodule defines forward computation + a [`crate::autograd::Backward`]
//! implementation. All gradients are covered by finite-difference property
//! tests (`tests/gradcheck_props.rs`).

mod activation;
mod arith;
mod conv;
mod matmul;
mod reduce;
mod shape;
mod softmax;

pub use conv::Conv2dSpec;
