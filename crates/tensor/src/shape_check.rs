//! Typed shape validation for the matmul/im2col entry points.
//!
//! The checks here are pure shape arithmetic — no data access — so the
//! same functions serve two callers: the runtime entry points
//! ([`NdArray::try_matmul`](crate::NdArray::try_matmul),
//! [`NdArray::try_im2col`](crate::NdArray::try_im2col)) and the static
//! plan analyzer in `dhg-nn`, which validates whole models without
//! running a forward pass. Because both go through one [`ShapeError`]
//! `Display`, a plan rejected statically and an eager call that panics
//! report the *same* diagnostic text.

use crate::array::broadcast_shape;
use std::fmt;

/// A shape-level precondition violation of a tensor entry point.
///
/// `Display` reproduces the historical panic messages verbatim, so code
/// (and tests) matching on panic text keep working while `try_*` callers
/// get a typed value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShapeError {
    /// A matmul operand of rank below 2.
    MatmulRank {
        /// Left operand shape.
        lhs: Vec<usize>,
        /// Right operand shape.
        rhs: Vec<usize>,
    },
    /// Matmul inner dimensions (`k`) disagree.
    MatmulInnerDim {
        /// Left operand shape.
        lhs: Vec<usize>,
        /// Right operand shape.
        rhs: Vec<usize>,
    },
    /// Matmul leading (batch) dimensions do not broadcast.
    MatmulBroadcast {
        /// Left operand shape.
        lhs: Vec<usize>,
        /// Right operand shape.
        rhs: Vec<usize>,
    },
    /// im2col input is not rank-4 `[N, C, H, W]`.
    Im2colRank {
        /// The offending input shape.
        found: Vec<usize>,
    },
    /// The padded input height is smaller than the effective kernel.
    ConvHeightTooSmall {
        /// Input height.
        h: usize,
        /// Effective (dilated) kernel height.
        effective_kernel: usize,
    },
    /// The padded input width is smaller than the effective kernel.
    ConvWidthTooSmall {
        /// Input width.
        w: usize,
        /// Effective (dilated) kernel width.
        effective_kernel: usize,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::MatmulRank { .. } => write!(f, "matmul needs rank >= 2"),
            ShapeError::MatmulInnerDim { lhs, rhs } => {
                write!(f, "matmul inner-dim mismatch: {lhs:?} x {rhs:?}")
            }
            ShapeError::MatmulBroadcast { lhs, rhs } => {
                write!(f, "matmul batch broadcast mismatch: {lhs:?} x {rhs:?}")
            }
            ShapeError::Im2colRank { .. } => write!(f, "im2col expects [N, C, H, W]"),
            ShapeError::ConvHeightTooSmall { h, .. } => {
                write!(f, "conv input height {h} too small for kernel")
            }
            ShapeError::ConvWidthTooSmall { w, .. } => {
                write!(f, "conv input width {w} too small for kernel")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// Validate a batched matmul `lhs × rhs` and return the output shape.
pub fn check_matmul(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>, ShapeError> {
    if lhs.len() < 2 || rhs.len() < 2 {
        return Err(ShapeError::MatmulRank { lhs: lhs.to_vec(), rhs: rhs.to_vec() });
    }
    let (m, k1) = (lhs[lhs.len() - 2], lhs[lhs.len() - 1]);
    let (k2, n) = (rhs[rhs.len() - 2], rhs[rhs.len() - 1]);
    if k1 != k2 {
        return Err(ShapeError::MatmulInnerDim { lhs: lhs.to_vec(), rhs: rhs.to_vec() });
    }
    let batch = broadcast_shape(&lhs[..lhs.len() - 2], &rhs[..rhs.len() - 2])
        .ok_or(ShapeError::MatmulBroadcast { lhs: lhs.to_vec(), rhs: rhs.to_vec() })?;
    let mut out = batch;
    out.push(m);
    out.push(n);
    Ok(out)
}

/// Validate a convolution's spatial geometry and return `(h_out, w_out)`.
#[allow(clippy::too_many_arguments)]
pub fn check_conv_out_size(
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    sh: usize,
    sw: usize,
    ph: usize,
    pw: usize,
    dh: usize,
    dw: usize,
) -> Result<(usize, usize), ShapeError> {
    let eff_kh = dh * (kh - 1) + 1;
    let eff_kw = dw * (kw - 1) + 1;
    if h + 2 * ph < eff_kh {
        return Err(ShapeError::ConvHeightTooSmall { h, effective_kernel: eff_kh });
    }
    if w + 2 * pw < eff_kw {
        return Err(ShapeError::ConvWidthTooSmall { w, effective_kernel: eff_kw });
    }
    Ok(((h + 2 * ph - eff_kh) / sh + 1, (w + 2 * pw - eff_kw) / sw + 1))
}

/// Validate an im2col unfold of `shape` and return the column shape
/// `[N, C·kh·kw, Ho·Wo]`.
#[allow(clippy::too_many_arguments)]
pub fn check_im2col(
    shape: &[usize],
    kh: usize,
    kw: usize,
    sh: usize,
    sw: usize,
    ph: usize,
    pw: usize,
    dh: usize,
    dw: usize,
) -> Result<Vec<usize>, ShapeError> {
    if shape.len() != 4 {
        return Err(ShapeError::Im2colRank { found: shape.to_vec() });
    }
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    let (ho, wo) = check_conv_out_size(h, w, kh, kw, sh, sw, ph, pw, dh, dw)?;
    Ok(vec![n, c * kh * kw, ho * wo])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_shapes() {
        assert_eq!(check_matmul(&[2, 3], &[3, 4]), Ok(vec![2, 4]));
        assert_eq!(check_matmul(&[5, 2, 3], &[3, 4]), Ok(vec![5, 2, 4]));
        assert_eq!(check_matmul(&[1, 2, 3], &[5, 3, 4]), Ok(vec![5, 2, 4]));
        assert!(matches!(check_matmul(&[3], &[3, 4]), Err(ShapeError::MatmulRank { .. })));
        assert!(matches!(
            check_matmul(&[2, 3], &[4, 5]),
            Err(ShapeError::MatmulInnerDim { .. })
        ));
        assert!(matches!(
            check_matmul(&[2, 2, 3], &[3, 3, 4]),
            Err(ShapeError::MatmulBroadcast { .. })
        ));
    }

    #[test]
    fn conv_geometry() {
        // 3x1 temporal kernel, same padding
        assert_eq!(check_conv_out_size(8, 25, 3, 1, 1, 1, 1, 0, 1, 1), Ok((8, 25)));
        // stride-2 halves the temporal axis
        assert_eq!(check_conv_out_size(8, 25, 3, 1, 2, 1, 1, 0, 1, 1), Ok((4, 25)));
        // dilation-2 widens the effective kernel to 5
        assert!(matches!(
            check_conv_out_size(2, 25, 3, 1, 1, 1, 0, 0, 2, 1),
            Err(ShapeError::ConvHeightTooSmall { effective_kernel: 5, .. })
        ));
        assert!(matches!(
            check_conv_out_size(8, 0, 1, 3, 1, 1, 0, 0, 1, 1),
            Err(ShapeError::ConvWidthTooSmall { .. })
        ));
    }

    #[test]
    fn im2col_shapes() {
        assert_eq!(check_im2col(&[2, 3, 8, 25], 3, 1, 1, 1, 1, 0, 1, 1), Ok(vec![2, 9, 8 * 25]));
        assert!(matches!(
            check_im2col(&[3, 8, 25], 3, 1, 1, 1, 1, 0, 1, 1),
            Err(ShapeError::Im2colRank { .. })
        ));
    }

    #[test]
    fn display_matches_runtime_panics() {
        assert_eq!(
            ShapeError::MatmulInnerDim { lhs: vec![2, 3], rhs: vec![4, 5] }.to_string(),
            "matmul inner-dim mismatch: [2, 3] x [4, 5]"
        );
        assert_eq!(
            ShapeError::ConvHeightTooSmall { h: 2, effective_kernel: 5 }.to_string(),
            "conv input height 2 too small for kernel"
        );
        assert_eq!(
            ShapeError::Im2colRank { found: vec![1] }.to_string(),
            "im2col expects [N, C, H, W]"
        );
    }
}
