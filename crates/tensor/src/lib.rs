//! # dhg-tensor
//!
//! Dense `f32` n-dimensional arrays with reverse-mode automatic
//! differentiation, built for the DHGCN reproduction.
//!
//! The crate has two layers:
//!
//! * [`NdArray`] — a contiguous, row-major, `f32` n-d array with numpy-style
//!   broadcasting, batched matrix multiplication, reductions, shape
//!   manipulation and the `im2col`/`col2im` pair used by convolutions.
//! * [`Tensor`] — a reference-counted autograd node wrapping an [`NdArray`].
//!   Every differentiable operation eagerly computes its forward value and
//!   records a backward function; [`Tensor::backward`] runs reverse-mode
//!   differentiation over the recorded graph.
//!
//! Gradients of every op are validated against central finite differences by
//! the property tests in this crate (see [`gradcheck`]).
//!
//! ```
//! use dhg_tensor::{NdArray, Tensor};
//! let x = Tensor::param(NdArray::from_vec(vec![1.0, 2.0, 3.0], &[3]));
//! let y = x.mul(&x).sum_all(); // y = Σ x²
//! y.backward();
//! assert_eq!(x.grad().unwrap().data(), &[2.0, 4.0, 6.0]); // dy/dx = 2x
//! ```

pub mod array;
pub mod autograd;
pub mod gemm;
pub mod gradcheck;
pub mod ops;
pub mod parallel;
pub mod shape_check;
pub mod workspace;

pub use array::NdArray;
pub use autograd::{graph_nodes_created, is_grad_enabled, no_grad, NoGradGuard, Tensor};
pub use shape_check::{check_conv_out_size, check_im2col, check_matmul, ShapeError};
pub use workspace::{Workspace, DEFAULT_BYTE_BUDGET};
