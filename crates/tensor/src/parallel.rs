//! Scoped-thread data-parallel execution (std-only).
//!
//! Every hot kernel in the workspace — batched [`crate::NdArray::matmul`],
//! `im2col`/`col2im`, the per-frame dynamic-hypergraph construction in
//! `dhg-hypergraph`, batch assembly in `dhg-train` — funnels through the
//! two primitives in this module:
//!
//! * [`for_each_block`] — split a flat output buffer into equally sized
//!   blocks and fill each block independently (matmul rows, `im2col` rows,
//!   per-frame operators, per-sample batch slots).
//! * [`for_each_span`] — the ragged-span variant of [`for_each_block`]:
//!   consecutive spans of caller-chosen lengths (the packed GEMM's
//!   row-blocks, whose last block per batch is shorter).
//! * [`parallel_map`] — compute `n` independent values and return them in
//!   index order (hyperedge lists, per-sample topology operators,
//!   pre-assembled minibatches).
//!
//! ## Determinism guarantee
//!
//! Both primitives are *bitwise deterministic*: every output element is
//! produced by exactly one invocation of the caller's closure with exactly
//! the same arguments regardless of the thread count. Threads only decide
//! *who* computes a block, never *how* — there are no shared accumulators,
//! no atomics-order-dependent reductions, and no per-thread scratch that
//! could reassociate floating-point sums. `threads = 1` (or a problem below
//! [`MIN_PARALLEL_WORK`]) degenerates to the plain serial loop.
//!
//! ## Thread-count resolution
//!
//! 1. a [`with_threads`] override active on the calling thread, else
//! 2. the `DHGCN_THREADS` environment variable (a positive integer no
//!    larger than [`MAX_ENV_THREADS`]), else
//! 3. [`std::thread::available_parallelism`].
//!
//! A malformed `DHGCN_THREADS` — `0`, non-numeric garbage, or an absurdly
//! large value that would fork-bomb the process — never panics and never
//! produces a zero-thread pool: it falls back to
//! [`std::thread::available_parallelism`] and prints a one-time warning to
//! stderr (once per process, not once per kernel launch — a long-running
//! server must not spam its log from every forward pass).
//!
//! Worker threads run with parallelism suppressed, so closures may freely
//! call back into parallel kernels (e.g. the per-frame operator build calls
//! `matmul`) without spawning nested pools.

use std::cell::Cell;
use std::ops::Range;
use std::sync::Once;
use std::thread;

/// Problems whose estimated scalar-op count falls below this run serially:
/// spawning OS threads costs tens of microseconds, which only amortises
/// once there is real work to split.
pub const MIN_PARALLEL_WORK: usize = 1 << 18;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Restores the previous thread-count override when dropped (panic-safe).
struct OverrideGuard(Option<usize>);

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|o| o.set(self.0));
    }
}

fn set_override(n: Option<usize>) -> OverrideGuard {
    OverrideGuard(THREAD_OVERRIDE.with(|o| o.replace(n)))
}

/// The worker-thread guard: nested parallel regions inside a worker run
/// serially instead of spawning a second generation of threads.
fn suppress_nested() -> OverrideGuard {
    set_override(Some(1))
}

/// Largest thread count accepted from the `DHGCN_THREADS` environment
/// variable. Anything above this is treated as a configuration mistake
/// (e.g. a byte count pasted into the wrong variable) rather than a real
/// request to spawn thousands of OS threads per kernel launch.
pub const MAX_ENV_THREADS: usize = 512;

/// The hardware fallback: [`std::thread::available_parallelism`], or 1
/// when even that cannot be determined.
fn default_threads() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Validate a raw `DHGCN_THREADS` value. `Ok(n)` for `1..=MAX_ENV_THREADS`;
/// `Err(reason)` for everything a long-running process must survive:
/// zero, negative, non-numeric, empty, and absurdly large values.
fn parse_env_threads(raw: &str) -> Result<usize, &'static str> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err("zero threads is meaningless"),
        Ok(n) if n > MAX_ENV_THREADS => Err("absurdly large"),
        Ok(n) => Ok(n),
        Err(_) => Err("not a positive integer"),
    }
}

/// The number of worker threads a parallel region started on this thread
/// would use: a [`with_threads`] override if active, else a *valid*
/// `DHGCN_THREADS` (see [`MAX_ENV_THREADS`]), else
/// [`std::thread::available_parallelism`]. Always at least 1. An invalid
/// environment value warns once per process and falls back.
pub fn num_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(|o| o.get()) {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("DHGCN_THREADS") {
        match parse_env_threads(&s) {
            Ok(n) => return n,
            Err(why) => {
                static WARN_ONCE: Once = Once::new();
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "dhg-tensor: ignoring DHGCN_THREADS={s:?} ({why}); \
                         falling back to {} thread(s)",
                        default_threads()
                    );
                });
            }
        }
    }
    default_threads()
}

/// Run `f` with the thread count pinned to `n` (at least 1) on the current
/// thread, restoring the previous setting afterwards. This is how the
/// determinism suite compares `threads ∈ {1, 2, 8}` without racing on the
/// process-global environment.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = set_override(Some(n.max(1)));
    f()
}

/// End of shard `i` when `n` items are split over `parts` shards: shards
/// are contiguous, cover `0..n`, and differ in size by at most one.
#[inline]
fn shard_end(n: usize, parts: usize, i: usize) -> usize {
    // parts and i are small (thread counts), so n * i cannot overflow for
    // any buffer that fits in memory
    n * i / parts
}

/// How many threads to actually use for `n_items` items of `work` total
/// estimated scalar operations.
fn plan(n_items: usize, work: usize) -> usize {
    if n_items <= 1 || work < MIN_PARALLEL_WORK {
        return 1;
    }
    num_threads().min(n_items)
}

/// Split `out` into consecutive blocks of `block` elements and call
/// `f(block_index, block)` for each, sharding blocks over the worker pool.
///
/// `work` is the caller's estimate of the total scalar-op count; problems
/// below [`MIN_PARALLEL_WORK`] (or with one thread) run the plain serial
/// loop. Each block is written by exactly one closure invocation, so the
/// result is bitwise identical at every thread count.
///
/// Panics if `out` is non-empty and its length is not a multiple of
/// `block`.
pub fn for_each_block<F>(out: &mut [f32], block: usize, work: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() {
        return;
    }
    assert!(block > 0, "for_each_block: zero block size");
    assert_eq!(out.len() % block, 0, "for_each_block: buffer not a multiple of block");
    let n_items = out.len() / block;
    let nt = plan(n_items, work);
    if nt <= 1 {
        for (i, blk) in out.chunks_mut(block).enumerate() {
            f(i, blk);
        }
        return;
    }
    thread::scope(|s| {
        let first_end = shard_end(n_items, nt, 1);
        let (mine, mut rest) = out.split_at_mut(first_end * block);
        let mut start = first_end;
        for t in 1..nt {
            let end = shard_end(n_items, nt, t + 1);
            let (shard, tail) = rest.split_at_mut((end - start) * block);
            rest = tail;
            let f = &f;
            let item0 = start;
            s.spawn(move || {
                let _guard = suppress_nested();
                for (k, blk) in shard.chunks_mut(block).enumerate() {
                    f(item0 + k, blk);
                }
            });
            start = end;
        }
        // shard 0 runs on the calling thread while the workers run theirs
        let _guard = suppress_nested();
        for (k, blk) in mine.chunks_mut(block).enumerate() {
            f(k, blk);
        }
    });
}

/// Split `out` into consecutive *ragged* spans and call `f(span_index,
/// span)` for each, sharding spans over the worker pool. `ends[i]` is the
/// exclusive element offset where span `i` stops; spans therefore cover
/// `0..out.len()` contiguously and may differ in length (the packed GEMM
/// shards row-blocks whose last block per batch is shorter).
///
/// Same `work` threshold and bitwise-determinism contract as
/// [`for_each_block`]: each span is written by exactly one closure
/// invocation with the same arguments at every thread count.
///
/// Panics unless `ends` is non-decreasing and its last entry equals
/// `out.len()`.
pub fn for_each_span<F>(out: &mut [f32], ends: &[usize], work: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if out.is_empty() && ends.is_empty() {
        return;
    }
    assert_eq!(
        ends.last().copied(),
        Some(out.len()),
        "for_each_span: ends must finish at the buffer length"
    );
    assert!(ends.windows(2).all(|w| w[0] <= w[1]), "for_each_span: ends must be non-decreasing");
    let n_items = ends.len();
    let nt = plan(n_items, work);
    if nt <= 1 {
        let mut start = 0;
        for (i, &end) in ends.iter().enumerate() {
            f(i, &mut out[start..end]);
            start = end;
        }
        return;
    }
    thread::scope(|s| {
        let item_end = |t: usize| shard_end(n_items, nt, t);
        let offset = |item: usize| if item == 0 { 0 } else { ends[item - 1] };
        let (mine, mut rest) = out.split_at_mut(offset(item_end(1)));
        for t in 1..nt {
            let (i0, i1) = (item_end(t), item_end(t + 1));
            let (shard, tail) = rest.split_at_mut(offset(i1) - offset(i0));
            rest = tail;
            let f = &f;
            s.spawn(move || {
                let _guard = suppress_nested();
                let base = offset(i0);
                let mut start = 0;
                for (i, &e) in ends.iter().enumerate().take(i1).skip(i0) {
                    let end = e - base;
                    f(i, &mut shard[start..end]);
                    start = end;
                }
            });
        }
        // shard 0 runs on the calling thread while the workers run theirs
        let _guard = suppress_nested();
        let mut start = 0;
        for (i, &end) in ends[..item_end(1)].iter().enumerate() {
            f(i, &mut mine[start..end]);
            start = end;
        }
    });
}

/// Compute `f(0), f(1), …, f(n-1)` sharded over the worker pool and return
/// the results in index order. Same `work` threshold and determinism
/// contract as [`for_each_block`].
pub fn parallel_map<T, F>(n: usize, work: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let nt = plan(n, work);
    if nt <= 1 {
        return (0..n).map(f).collect();
    }
    thread::scope(|s| {
        let mut handles = Vec::with_capacity(nt - 1);
        for t in 1..nt {
            let range: Range<usize> = shard_end(n, nt, t)..shard_end(n, nt, t + 1);
            let f = &f;
            handles.push(s.spawn(move || {
                let _guard = suppress_nested();
                range.map(f).collect::<Vec<T>>()
            }));
        }
        let mut out = Vec::with_capacity(n);
        {
            let _guard = suppress_nested();
            for i in 0..shard_end(n, nt, 1) {
                out.push(f(i));
            }
        }
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Large enough to clear MIN_PARALLEL_WORK regardless of item count.
    const BIG: usize = MIN_PARALLEL_WORK * 4;

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = num_threads();
        with_threads(3, || {
            assert_eq!(num_threads(), 3);
            with_threads(5, || assert_eq!(num_threads(), 5));
            assert_eq!(num_threads(), 3);
        });
        assert_eq!(num_threads(), outer);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        with_threads(0, || assert_eq!(num_threads(), 1));
    }

    #[test]
    fn env_thread_parsing_accepts_sane_values() {
        assert_eq!(parse_env_threads("1"), Ok(1));
        assert_eq!(parse_env_threads("8"), Ok(8));
        assert_eq!(parse_env_threads("  16 "), Ok(16)); // whitespace tolerated
        assert_eq!(parse_env_threads("512"), Ok(512)); // boundary
    }

    #[test]
    fn env_thread_parsing_rejects_hazards() {
        // every historical long-running-process hazard: zero-thread pools,
        // garbage, negatives, empties, and fork-bomb-sized requests
        assert!(parse_env_threads("0").is_err());
        assert!(parse_env_threads("-4").is_err());
        assert!(parse_env_threads("").is_err());
        assert!(parse_env_threads("eight").is_err());
        assert!(parse_env_threads("8.0").is_err());
        assert!(parse_env_threads("513").is_err());
        assert!(parse_env_threads("1000000").is_err());
        assert!(parse_env_threads("18446744073709551616").is_err()); // > u64
    }

    #[test]
    fn shards_are_contiguous_and_cover() {
        for n in [1usize, 7, 16, 1000] {
            for parts in [1usize, 2, 3, 8, 16] {
                assert_eq!(shard_end(n, parts, 0), 0);
                assert_eq!(shard_end(n, parts, parts), n);
                for i in 0..parts {
                    assert!(shard_end(n, parts, i) <= shard_end(n, parts, i + 1));
                }
            }
        }
    }

    #[test]
    fn for_each_block_matches_serial_loop() {
        let n_items = 103; // not a multiple of any thread count
        let block = 7;
        let fill = |i: usize, blk: &mut [f32]| {
            for (k, v) in blk.iter_mut().enumerate() {
                *v = (i * 31 + k) as f32 * 0.25 - 3.0;
            }
        };
        let mut serial = vec![0.0f32; n_items * block];
        for (i, blk) in serial.chunks_mut(block).enumerate() {
            fill(i, blk);
        }
        for threads in [1usize, 2, 5, 8] {
            let mut par = vec![0.0f32; n_items * block];
            with_threads(threads, || for_each_block(&mut par, block, BIG, fill));
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn for_each_block_small_work_stays_serial_and_correct() {
        let mut out = vec![0.0f32; 8];
        // work far below the threshold: must still fill every block
        for_each_block(&mut out, 2, 4, |i, blk| blk.fill(i as f32));
        assert_eq!(out, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn for_each_block_empty_buffer_is_a_no_op() {
        let mut out: Vec<f32> = Vec::new();
        for_each_block(&mut out, 5, BIG, |_, _| panic!("must not be called"));
    }

    #[test]
    #[should_panic(expected = "multiple of block")]
    fn for_each_block_misaligned_buffer_panics() {
        let mut out = vec![0.0f32; 7];
        for_each_block(&mut out, 2, BIG, |_, _| {});
    }

    #[test]
    fn for_each_span_matches_serial_loop() {
        // ragged spans: lengths cycle 1..=9, mimicking GEMM edge row-blocks
        let lens: Vec<usize> = (0..97).map(|i| i % 9 + 1).collect();
        let ends: Vec<usize> = lens
            .iter()
            .scan(0usize, |acc, &l| {
                *acc += l;
                Some(*acc)
            })
            .collect();
        let total = *ends.last().unwrap();
        let fill = |i: usize, span: &mut [f32]| {
            for (k, v) in span.iter_mut().enumerate() {
                *v = (i * 131 + k) as f32 * 0.5 - 7.0;
            }
        };
        let mut serial = vec![0.0f32; total];
        {
            let mut start = 0;
            for (i, &end) in ends.iter().enumerate() {
                fill(i, &mut serial[start..end]);
                start = end;
            }
        }
        for threads in [1usize, 2, 5, 8] {
            let mut par = vec![0.0f32; total];
            with_threads(threads, || for_each_span(&mut par, &ends, BIG, fill));
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn for_each_span_allows_empty_spans() {
        let ends = [0usize, 2, 2, 5];
        let mut out = vec![0.0f32; 5];
        for_each_span(&mut out, &ends, 4, |i, span| {
            assert_eq!(span.len(), [0, 2, 0, 3][i]);
            span.fill(i as f32);
        });
        assert_eq!(out, vec![1.0, 1.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn for_each_span_empty_everything_is_a_no_op() {
        let mut out: Vec<f32> = Vec::new();
        for_each_span(&mut out, &[], BIG, |_, _| panic!("must not be called"));
    }

    #[test]
    #[should_panic(expected = "finish at the buffer length")]
    fn for_each_span_bad_ends_panic() {
        let mut out = vec![0.0f32; 4];
        for_each_span(&mut out, &[1, 3], BIG, |_, _| {});
    }

    #[test]
    fn parallel_map_preserves_index_order() {
        let expected: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [1usize, 2, 4, 9] {
            let got = with_threads(threads, || parallel_map(257, BIG, |i| i * i));
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_map_of_zero_items_is_empty() {
        let got: Vec<usize> = with_threads(4, || parallel_map(0, BIG, |i| i));
        assert!(got.is_empty());
    }

    #[test]
    fn nested_regions_inside_workers_run_serially() {
        // each worker observes num_threads() == 1, proving nested calls
        // cannot spawn a second generation of threads
        let inner: Vec<usize> = with_threads(4, || parallel_map(8, BIG, |_| num_threads()));
        assert!(inner.iter().all(|&n| n == 1), "{inner:?}");
    }

    #[test]
    fn worker_panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                parallel_map(16, BIG, |i| {
                    if i == 13 {
                        panic!("boom at 13");
                    }
                    i
                })
            })
        });
        assert!(caught.is_err());
    }
}
