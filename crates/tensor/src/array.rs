//! Contiguous row-major `f32` n-dimensional arrays.
//!
//! [`NdArray`] is the numeric workhorse underneath the autograd layer: it
//! implements numpy-style broadcasting, batched matrix multiplication (the
//! `ikj` loop order so the inner loop vectorises), axis reductions, shape
//! manipulation, and the `im2col`/`col2im` pair that turns convolution into
//! matrix multiplication.
//!
//! Arrays are always contiguous after every operation; at the sizes used by
//! skeleton models (`V = 25`, `T ≤ 64`, `C ≤ 256`) this is both simpler and
//! faster than maintaining strided views.

use std::fmt;

use crate::shape_check::ShapeError;
use crate::workspace::Workspace;

/// A dense, contiguous, row-major `f32` n-dimensional array.
///
/// The empty shape `[]` denotes a scalar holding exactly one element.
#[derive(Clone, PartialEq)]
pub struct NdArray {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for NdArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NdArray(shape={:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{} elements])", self.data.len())
        }
    }
}

/// Number of elements implied by a shape (product of dimensions; 1 for `[]`).
#[inline]
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a contiguous array of the given shape.
pub fn contiguous_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for d in (0..shape.len()).rev() {
        strides[d] = acc;
        acc *= shape[d];
    }
    strides
}

/// Broadcast two shapes following numpy rules (align trailing dimensions;
/// a dimension of 1 stretches). Returns `None` if the shapes are
/// incompatible.
pub fn broadcast_shape(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let nd = a.len().max(b.len());
    let mut out = vec![0; nd];
    for d in 0..nd {
        let da = if d < nd - a.len() { 1 } else { a[d - (nd - a.len())] };
        let db = if d < nd - b.len() { 1 } else { b[d - (nd - b.len())] };
        out[d] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

/// Strides for iterating an array of shape `src` as if broadcast to `dst`
/// (stride 0 on stretched dimensions). `src` must be broadcast-compatible
/// with `dst` and `dst.len() >= src.len()`.
fn broadcast_strides(src: &[usize], dst: &[usize]) -> Vec<usize> {
    let nd = dst.len();
    let base = contiguous_strides(src);
    let offset = nd - src.len();
    let mut out = vec![0usize; nd];
    for d in 0..src.len() {
        out[offset + d] = if src[d] == 1 && dst[offset + d] != 1 { 0 } else { base[d] };
    }
    out
}

impl NdArray {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// An array of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        NdArray { shape: shape.to_vec(), data: vec![0.0; numel(shape)] }
    }

    /// An array of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// An array filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        NdArray { shape: shape.to_vec(), data: vec![value; numel(shape)] }
    }

    /// Wrap an existing buffer. Panics if `data.len()` does not match the
    /// shape.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "from_vec: data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        NdArray { shape: shape.to_vec(), data }
    }

    /// A rank-0 scalar.
    pub fn scalar(value: f32) -> Self {
        NdArray { shape: vec![], data: vec![value] }
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut a = Self::zeros(&[n, n]);
        for i in 0..n {
            a.data[i * n + i] = 1.0;
        }
        a
    }

    /// Evenly spaced values `[0, 1, ..., n-1]` as a rank-1 array.
    pub fn arange(n: usize) -> Self {
        NdArray { shape: vec![n], data: (0..n).map(|i| i as f32).collect() }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape of the array.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array holds no elements (some dimension is zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat, row-major data buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat data buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the array and return its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value of a rank-0 or single-element array.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on array with {} elements", self.data.len());
        self.data[0]
    }

    /// Element at a multi-index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Set the element at a multi-index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let strides = contiguous_strides(&self.shape);
        index
            .iter()
            .zip(&self.shape)
            .zip(&strides)
            .map(|((&i, &d), &s)| {
                assert!(i < d, "index {i} out of bounds for dim of size {d}");
                i * s
            })
            .sum()
    }

    // ------------------------------------------------------------------
    // Elementwise
    // ------------------------------------------------------------------

    /// Apply `f` to every element, producing a new array.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        NdArray { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combine two same-shaped arrays elementwise (no broadcasting).
    pub fn zip_map(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        NdArray {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Elementwise binary operation with numpy broadcasting.
    pub fn binop(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> Self {
        if self.shape == other.shape {
            return self.zip_map(other, f);
        }
        let out_shape = broadcast_shape(&self.shape, &other.shape).unwrap_or_else(|| {
            panic!("broadcast mismatch: {:?} vs {:?}", self.shape, other.shape)
        });
        let n = numel(&out_shape);
        let sa = broadcast_strides(&self.shape, &out_shape);
        let sb = broadcast_strides(&other.shape, &out_shape);
        let nd = out_shape.len();
        let mut data = Vec::with_capacity(n);
        let mut idx = vec![0usize; nd];
        let (mut oa, mut ob) = (0usize, 0usize);
        for _ in 0..n {
            data.push(f(self.data[oa], other.data[ob]));
            // odometer increment from the last dimension
            for d in (0..nd).rev() {
                idx[d] += 1;
                oa += sa[d];
                ob += sb[d];
                if idx[d] < out_shape[d] {
                    break;
                }
                idx[d] = 0;
                oa -= sa[d] * out_shape[d];
                ob -= sb[d] * out_shape[d];
            }
        }
        NdArray { shape: out_shape, data }
    }

    /// Elementwise sum with broadcasting.
    pub fn add(&self, other: &Self) -> Self {
        self.binop(other, |a, b| a + b)
    }

    /// Elementwise difference with broadcasting.
    pub fn sub(&self, other: &Self) -> Self {
        self.binop(other, |a, b| a - b)
    }

    /// Elementwise product with broadcasting.
    pub fn mul(&self, other: &Self) -> Self {
        self.binop(other, |a, b| a * b)
    }

    /// Elementwise quotient with broadcasting.
    pub fn div(&self, other: &Self) -> Self {
        self.binop(other, |a, b| a / b)
    }

    /// Add `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|v| v + s)
    }

    /// Multiply every element by `s`.
    pub fn mul_scalar(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Accumulate `other * scale` into `self` (same shape, no broadcast).
    pub fn add_assign_scaled(&mut self, other: &Self, scale: f32) {
        assert_eq!(self.shape, other.shape, "add_assign_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// `max(x, 0)` applied in place — the inference-path ReLU, which reuses
    /// the input buffer instead of allocating a fresh array.
    pub fn relu_inplace(&mut self) {
        for v in &mut self.data {
            *v = v.max(0.0);
        }
    }

    /// `self += other` followed by an in-place ReLU, fused into one pass
    /// (the residual-join epilogue of every block's inference path).
    pub fn add_relu_inplace(&mut self, other: &Self) {
        assert_eq!(self.shape, other.shape, "add_relu_inplace shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a = (*a + b).max(0.0);
        }
    }

    /// Per-channel affine `x[n, c, ...] = x[n, c, ...] * scale[c] + shift[c]`
    /// over axis 1, in place. This is exactly an eval-mode BatchNorm once
    /// the running statistics are folded into `(scale, shift)`.
    pub fn channel_affine_inplace(&mut self, scale: &[f32], shift: &[f32]) {
        assert!(self.ndim() >= 2, "channel_affine_inplace needs rank >= 2");
        let c = self.shape[1];
        assert_eq!(scale.len(), c, "channel_affine_inplace scale length mismatch");
        assert_eq!(shift.len(), c, "channel_affine_inplace shift length mismatch");
        let inner: usize = self.shape[2..].iter().product();
        for plane in self.data.chunks_mut(c * inner) {
            for (ci, chan) in plane.chunks_mut(inner).enumerate() {
                let (s, b) = (scale[ci], shift[ci]);
                for v in chan {
                    *v = *v * s + b;
                }
            }
        }
    }

    /// Add `bias[c]` to every element of channel `c` (axis 1), optionally
    /// fusing a ReLU into the same pass — the epilogue of a folded
    /// convolution, replacing the separate broadcast-add and ReLU ops of
    /// the training path.
    pub fn bias_relu_inplace(&mut self, bias: &[f32], relu: bool) {
        assert!(self.ndim() >= 2, "bias_relu_inplace needs rank >= 2");
        let c = self.shape[1];
        assert_eq!(bias.len(), c, "bias_relu_inplace bias length mismatch");
        let inner: usize = self.shape[2..].iter().product();
        for plane in self.data.chunks_mut(c * inner) {
            for (ci, chan) in plane.chunks_mut(inner).enumerate() {
                let b = bias[ci];
                if relu {
                    for v in chan {
                        *v = (*v + b).max(0.0);
                    }
                } else {
                    for v in chan {
                        *v += b;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterpret the buffer with a new shape of the same element count.
    /// A single `usize::MAX` ("infer") dimension is allowed.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let shape = resolve_reshape(self.len(), shape);
        assert_eq!(numel(&shape), self.len(), "reshape to {shape:?} from {:?}", self.shape);
        NdArray { shape, data: self.data.clone() }
    }

    /// [`NdArray::reshape`] by value: reinterpret the shape without copying
    /// the buffer. The zero-cost reshape for owned intermediates on the
    /// inference path (`reshape` on a borrowed array must clone).
    pub fn into_shape(self, shape: &[usize]) -> Self {
        let shape = resolve_reshape(self.len(), shape);
        assert_eq!(numel(&shape), self.len(), "into_shape to {shape:?} from {:?}", self.shape);
        NdArray { shape, data: self.data }
    }

    /// Materialise a permutation of the axes. `perm` must be a permutation of
    /// `0..ndim`.
    pub fn permute(&self, perm: &[usize]) -> Self {
        let nd = self.ndim();
        assert_eq!(perm.len(), nd, "permute rank mismatch");
        let mut seen = vec![false; nd];
        for &p in perm {
            assert!(p < nd && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let in_strides = contiguous_strides(&self.shape);
        // stride of output dim d in the *input* buffer
        let strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        let n = self.len();
        let mut data = Vec::with_capacity(n);
        let mut idx = vec![0usize; nd];
        let mut off = 0usize;
        for _ in 0..n {
            data.push(self.data[off]);
            for d in (0..nd).rev() {
                idx[d] += 1;
                off += strides[d];
                if idx[d] < out_shape[d] {
                    break;
                }
                idx[d] = 0;
                off -= strides[d] * out_shape[d];
            }
        }
        NdArray { shape: out_shape, data }
    }

    /// Swap the last two axes (matrix transpose for the batched case).
    pub fn transpose_last2(&self) -> Self {
        let nd = self.ndim();
        assert!(nd >= 2, "transpose_last2 needs rank >= 2");
        let mut perm: Vec<usize> = (0..nd).collect();
        perm.swap(nd - 1, nd - 2);
        self.permute(&perm)
    }

    /// Materialise this array broadcast to `shape`.
    pub fn broadcast_to(&self, shape: &[usize]) -> Self {
        if self.shape == shape {
            return self.clone();
        }
        let bs = broadcast_shape(&self.shape, shape)
            .unwrap_or_else(|| panic!("cannot broadcast {:?} to {:?}", self.shape, shape));
        assert_eq!(bs, shape, "cannot broadcast {:?} to {:?}", self.shape, shape);
        NdArray::zeros(shape).binop(self, |_, b| b)
    }

    /// Sum a gradient-like array down to `target` shape, undoing broadcasting
    /// (sums over prepended dims and dims that were stretched from 1).
    pub fn reduce_to_shape(&self, target: &[usize]) -> Self {
        if self.shape == target {
            return self.clone();
        }
        let nd = self.ndim();
        let offset = nd - target.len();
        // sum over the leading extra dims and over stretched dims
        let mut axes: Vec<usize> = (0..offset).collect();
        for (d, &t) in target.iter().enumerate() {
            if t == 1 && self.shape[offset + d] != 1 {
                axes.push(offset + d);
            }
        }
        let summed = self.sum_axes(&axes, true);
        summed.reshape(target)
    }

    /// Concatenate arrays along `axis`. All other dimensions must match.
    pub fn concat(parts: &[&NdArray], axis: usize) -> Self {
        assert!(!parts.is_empty(), "concat of zero arrays");
        let nd = parts[0].ndim();
        assert!(axis < nd, "concat axis out of range");
        let mut out_shape = parts[0].shape.clone();
        out_shape[axis] = parts.iter().map(|p| p.shape[axis]).sum();
        for p in parts {
            assert_eq!(p.ndim(), nd, "concat rank mismatch");
            for (d, &want) in out_shape.iter().enumerate() {
                if d != axis {
                    assert_eq!(p.shape[d], want, "concat dim {d} mismatch");
                }
            }
        }
        let outer: usize = parts[0].shape[..axis].iter().product();
        let inner: usize = parts[0].shape[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(numel(&out_shape));
        for o in 0..outer {
            for p in parts {
                let block = p.shape[axis] * inner;
                let start = o * block;
                data.extend_from_slice(&p.data[start..start + block]);
            }
        }
        NdArray { shape: out_shape, data }
    }

    /// Extract `len` consecutive indices starting at `start` along `axis`.
    pub fn slice_axis(&self, axis: usize, start: usize, len: usize) -> Self {
        assert!(axis < self.ndim(), "slice axis out of range");
        assert!(start + len <= self.shape[axis], "slice out of bounds");
        let outer: usize = self.shape[..axis].iter().product();
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out_shape = self.shape.clone();
        out_shape[axis] = len;
        let mut data = Vec::with_capacity(outer * len * inner);
        let src_block = self.shape[axis] * inner;
        for o in 0..outer {
            let base = o * src_block + start * inner;
            data.extend_from_slice(&self.data[base..base + len * inner]);
        }
        NdArray { shape: out_shape, data }
    }

    /// Scatter-add `src` (shaped like the slice) back into a zero array of
    /// `full_shape` at the given position along `axis`. Inverse of
    /// [`NdArray::slice_axis`] for gradients.
    pub fn unslice_axis(src: &NdArray, full_shape: &[usize], axis: usize, start: usize) -> Self {
        let mut out = NdArray::zeros(full_shape);
        let outer: usize = full_shape[..axis].iter().product();
        let inner: usize = full_shape[axis + 1..].iter().product();
        let len = src.shape[axis];
        let dst_block = full_shape[axis] * inner;
        let src_block = len * inner;
        for o in 0..outer {
            let dst = o * dst_block + start * inner;
            let s = o * src_block;
            out.data[dst..dst + src_block].copy_from_slice(&src.data[s..s + src_block]);
        }
        out
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum over the given axes. With `keepdim` the reduced dimensions stay
    /// as size 1; otherwise they are removed.
    pub fn sum_axes(&self, axes: &[usize], keepdim: bool) -> Self {
        if axes.is_empty() {
            return self.clone();
        }
        let nd = self.ndim();
        let mut reduce = vec![false; nd];
        for &a in axes {
            assert!(a < nd, "sum axis {a} out of range for rank {nd}");
            reduce[a] = true;
        }
        let kept_shape: Vec<usize> =
            (0..nd).map(|d| if reduce[d] { 1 } else { self.shape[d] }).collect();
        let out_strides_full = contiguous_strides(&kept_shape);
        let out_strides: Vec<usize> =
            (0..nd).map(|d| if reduce[d] { 0 } else { out_strides_full[d] }).collect();
        let mut out = NdArray::zeros(&kept_shape);
        let n = self.len();
        let mut idx = vec![0usize; nd];
        let mut off_out = 0usize;
        for i in 0..n {
            out.data[off_out] += self.data[i];
            for d in (0..nd).rev() {
                idx[d] += 1;
                off_out += out_strides[d];
                if idx[d] < self.shape[d] {
                    break;
                }
                idx[d] = 0;
                off_out -= out_strides[d] * self.shape[d];
            }
        }
        if keepdim {
            out
        } else {
            let squeezed: Vec<usize> =
                (0..nd).filter(|&d| !reduce[d]).map(|d| self.shape[d]).collect();
            out.reshape(&squeezed)
        }
    }

    /// Mean over the given axes.
    pub fn mean_axes(&self, axes: &[usize], keepdim: bool) -> Self {
        let count: usize = axes.iter().map(|&a| self.shape[a]).product();
        self.sum_axes(axes, keepdim).mul_scalar(1.0 / count as f32)
    }

    /// Sum of all elements as an `f32`.
    pub fn sum_all(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean_all(&self) -> f32 {
        self.sum_all() / self.len() as f32
    }

    /// Maximum element (NaN-ignoring; `-inf` for empty arrays).
    pub fn max_all(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Maximum along `axis` (keepdim). Used internally by stable softmax.
    pub fn max_axis_keepdim(&self, axis: usize) -> Self {
        let nd = self.ndim();
        assert!(axis < nd);
        let outer: usize = self.shape[..axis].iter().product();
        let k = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out_shape = self.shape.clone();
        out_shape[axis] = 1;
        let mut out = NdArray::full(&out_shape, f32::NEG_INFINITY);
        for o in 0..outer {
            for j in 0..k {
                let base = (o * k + j) * inner;
                for i in 0..inner {
                    let v = self.data[base + i];
                    let dst = o * inner + i;
                    if v > out.data[dst] {
                        out.data[dst] = v;
                    }
                }
            }
        }
        out
    }

    /// Index of the maximum element along the last axis, one per row.
    pub fn argmax_last(&self) -> Vec<usize> {
        let k = *self.shape.last().expect("argmax on scalar");
        self.data
            .chunks_exact(k)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |acc, (i, &v)| {
                        if v > acc.1 {
                            (i, v)
                        } else {
                            acc
                        }
                    })
                    .0
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// Batched matrix multiplication with broadcasting over leading
    /// dimensions. `self: [..., m, k]`, `other: [..., k, n]` →
    /// `[broadcast(...), m, n]`. Rank-2 inputs are ordinary matmul.
    ///
    /// Dense operands with at least two output rows run the packed
    /// cache-blocked microkernel (see [`crate::gemm`]): row-blocks are
    /// sharded over the worker pool with [`crate::parallel::for_each_span`]
    /// and each block packs A/B panels and runs the register-tiled inner
    /// kernel. A bounded density probe on `self` keeps the zero-skip `ikj`
    /// fast path for sparse operators (hypergraph incidence products are
    /// mostly zeros). Dense products of every shape — `m = 1` included —
    /// take the packed kernel, because serving relies on each output row
    /// being bitwise identical whether computed alone or inside a larger
    /// batch, which forbids dispatching on `m`.
    ///
    /// Every dispatch decision depends only on shapes and operand data —
    /// never on the thread count — and both kernels fix each output
    /// element's accumulation order independently of the sharding, so the
    /// result is bitwise identical at every `DHGCN_THREADS` value. The
    /// packed and reference kernels round differently; they agree within
    /// `allclose(1e-5)` (pinned by the property suite) but not bit-for-bit,
    /// which is why [`NdArray::matmul_reference`] stays available.
    pub fn matmul(&self, other: &Self) -> Self {
        self.try_matmul_impl(other, None).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`NdArray::matmul`] forced onto the retained reference `ikj` row
    /// kernel (with its zero-skip density branch). This is the numerical
    /// baseline the packed kernel is pinned against in the property suite
    /// and the "before" side of the GEMM benchmarks.
    pub fn matmul_reference(&self, other: &Self) -> Self {
        crate::shape_check::check_matmul(&self.shape, &other.shape)
            .unwrap_or_else(|e| panic!("{e}"));
        self.matmul_impl(other, None, MatmulKernel::Reference)
    }

    /// [`NdArray::matmul`] forced onto the packed cache-blocked kernel,
    /// bypassing the density/shape dispatch — degenerate shapes (`m = 1`,
    /// `k = 1`, ragged edge tiles) and sparse operands included. Property
    /// tests use this to exercise the packed kernel on shapes the automatic
    /// dispatch would route elsewhere.
    pub fn matmul_packed(&self, other: &Self) -> Self {
        crate::shape_check::check_matmul(&self.shape, &other.shape)
            .unwrap_or_else(|e| panic!("{e}"));
        self.matmul_impl(other, None, MatmulKernel::Packed)
    }

    /// [`NdArray::matmul`] with the output buffer drawn from (and other
    /// temporaries avoided via) a [`Workspace`], so repeated grad-free
    /// forwards reuse storage instead of allocating per call. Bitwise
    /// identical to `matmul`.
    pub fn matmul_ws(&self, other: &Self, ws: &mut Workspace) -> Self {
        self.try_matmul_impl(other, Some(ws)).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`NdArray::matmul`] returning a typed [`ShapeError`] instead of
    /// panicking on incompatible operands. The error `Display` is the same
    /// text the panicking entry point raises, so the static analyzer and
    /// the runtime report one diagnostic.
    pub fn try_matmul(&self, other: &Self) -> Result<Self, ShapeError> {
        self.try_matmul_impl(other, None)
    }

    fn try_matmul_impl(&self, other: &Self, ws: Option<&mut Workspace>) -> Result<Self, ShapeError> {
        crate::shape_check::check_matmul(&self.shape, &other.shape)?;
        Ok(self.matmul_impl(other, ws, MatmulKernel::Auto))
    }

    fn matmul_impl(&self, other: &Self, ws: Option<&mut Workspace>, kernel: MatmulKernel) -> Self {
        debug_assert!(self.ndim() >= 2 && other.ndim() >= 2, "matmul needs rank >= 2");
        let (m, k1) = (self.shape[self.ndim() - 2], self.shape[self.ndim() - 1]);
        let n = other.shape[other.ndim() - 1];
        debug_assert_eq!(
            k1,
            other.shape[other.ndim() - 2],
            "matmul inner-dim mismatch: {:?} x {:?}",
            self.shape,
            other.shape
        );
        let batch_a = &self.shape[..self.ndim() - 2];
        let batch_b = &other.shape[..other.ndim() - 2];
        let batch = broadcast_shape(batch_a, batch_b).unwrap_or_else(|| {
            panic!("matmul batch broadcast mismatch: {:?} x {:?}", self.shape, other.shape)
        });
        let nb = numel(&batch);
        let sa = broadcast_strides(batch_a, &batch);
        let sb = broadcast_strides(batch_b, &batch);
        // per-batch element counts
        let ea = m * k1;
        let eb = k1 * n;
        let mut out_shape = batch.clone();
        out_shape.push(m);
        out_shape.push(n);
        // both kernels fully overwrite their output span (matmul_row zeroes
        // the row, gemm assigns on the first k-block), so the buffer may
        // come back dirty from the workspace — no memset needed
        let mut ws = ws;
        let mut out = match ws.as_mut() {
            Some(ws) => ws.take(nb * m * n),
            None => vec![0.0f32; nb * m * n],
        };
        // walk the broadcast odometer once to precompute each batch's
        // operand offsets; workers then index instead of iterating
        let nd = batch.len();
        let mut abases = Vec::with_capacity(nb);
        let mut bbases = Vec::with_capacity(nb);
        let mut idx = vec![0usize; nd];
        let (mut oa, mut ob) = (0usize, 0usize);
        for _ in 0..nb {
            abases.push(oa * ea);
            bbases.push(ob * eb);
            for d in (0..nd).rev() {
                idx[d] += 1;
                oa += sa[d];
                ob += sb[d];
                if idx[d] < batch[d] {
                    break;
                }
                idx[d] = 0;
                oa -= sa[d] * batch[d];
                ob -= sb[d] * batch[d];
            }
        }
        let work = nb
            .saturating_mul(m)
            .saturating_mul(n)
            .saturating_mul(k1.max(1));
        // Dispatch. The packed kernel takes every dense product — including
        // m = 1, where packing B costs more than it saves, because serving
        // depends on batch-size invariance: a request's logits must be
        // bitwise identical whether it runs alone (an [1, F] FC product) or
        // inside a micro-batch ([B, F]). Both kernels fix each output row's
        // bits as a function of that row and B alone, so invariance holds
        // exactly when the *kernel choice* cannot differ between those two
        // calls — no shape test on m is allowed. The zero-skipping row
        // kernel keeps sparse incidence products (constant operands, stable
        // density) off the packed path. Nothing here reads the thread
        // count, so dispatch never breaks thread-count determinism either.
        let skip_zeros = kernel != MatmulKernel::Packed && m > 0 && mostly_zero(&self.data);
        let packed = match kernel {
            MatmulKernel::Packed => true,
            MatmulKernel::Reference => false,
            MatmulKernel::Auto => !skip_zeros && k1 > 0,
        };
        if packed {
            // Pack each *distinct* rhs matrix once, before sharding: a
            // broadcast B (the common conv/FC case) packs a single time no
            // matter how many batches or row-blocks consume it. Workers
            // share the packed image read-only and pack only their own A
            // row-block, so the sharding grain can shrink with the thread
            // count without multiplying pack work.
            let mut uniq = bbases.clone();
            uniq.sort_unstable();
            uniq.dedup();
            let bp_len = crate::gemm::packed_b_len(k1, n);
            let mut bpack = match ws.as_mut() {
                Some(ws) => ws.take(uniq.len() * bp_len),
                None => vec![0.0f32; uniq.len() * bp_len],
            };
            for (u, &bb) in uniq.iter().enumerate() {
                crate::gemm::pack_b_full(
                    &other.data[bb..bb + eb],
                    &mut bpack[u * bp_len..(u + 1) * bp_len],
                    n,
                    k1,
                );
            }
            // Shard (batch, row-block) spans; each span multiplies up to
            // `rb` rows of A against its batch's packed B.
            let rb = crate::gemm::row_block(m, nb, crate::parallel::num_threads());
            let nbk = m.div_ceil(rb);
            let mut ends = Vec::with_capacity(nb * nbk);
            for b in 0..nb {
                for ib in 0..nbk {
                    let i1 = ((ib + 1) * rb).min(m);
                    ends.push(b * m * n + i1 * n);
                }
            }
            crate::parallel::for_each_span(&mut out, &ends, work, |item, cspan| {
                let (b, ib) = (item / nbk, item % nbk);
                let i0 = ib * rb;
                let i1 = (i0 + rb).min(m);
                let abase = abases[b];
                let ablock = &self.data[abase + i0 * k1..abase + i1 * k1];
                let u = uniq.binary_search(&bbases[b]).unwrap();
                let bp = &bpack[u * bp_len..(u + 1) * bp_len];
                crate::gemm::gemm_block_prepacked(ablock, bp, cspan, i1 - i0, n, k1);
            });
            if let Some(ws) = ws.as_mut() {
                ws.give(bpack);
            }
        } else {
            crate::parallel::for_each_block(&mut out, n.max(1), work, |item, orow| {
                let (b, i) = (item / m, item % m);
                let abase = abases[b];
                let arow = &self.data[abase + i * k1..abase + (i + 1) * k1];
                let bm = &other.data[bbases[b]..bbases[b] + eb];
                matmul_row(arow, bm, orow, n, skip_zeros);
            });
        }
        NdArray { shape: out_shape, data: out }
    }

    // ------------------------------------------------------------------
    // Convolution support
    // ------------------------------------------------------------------

    /// Unfold `[N, C, H, W]` into column form `[N, C*kh*kw, Ho*Wo]` so that
    /// convolution becomes a batched matmul with the `[Cout, C*kh*kw]`
    /// weight matrix. Out-of-bounds (padding) positions read as zero.
    ///
    /// The `[Ho*Wo]`-long output rows (one per `(batch, channel, kernel
    /// tap)`) are independent, so they are sharded over the worker pool;
    /// see [`crate::parallel`] for the determinism contract.
    #[allow(clippy::too_many_arguments)]
    pub fn im2col(&self, kh: usize, kw: usize, sh: usize, sw: usize, ph: usize, pw: usize, dh: usize, dw: usize) -> Self {
        self.try_im2col_impl(kh, kw, sh, sw, ph, pw, dh, dw, None).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`NdArray::im2col`] with the column buffer drawn from a
    /// [`Workspace`]. Bitwise identical to `im2col`.
    #[allow(clippy::too_many_arguments)]
    pub fn im2col_ws(&self, kh: usize, kw: usize, sh: usize, sw: usize, ph: usize, pw: usize, dh: usize, dw: usize, ws: &mut Workspace) -> Self {
        self.try_im2col_impl(kh, kw, sh, sw, ph, pw, dh, dw, Some(ws)).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`NdArray::im2col`] returning a typed [`ShapeError`] instead of
    /// panicking on a bad rank or an input smaller than the effective
    /// kernel — same `Display` text as the panicking entry point.
    #[allow(clippy::too_many_arguments)]
    pub fn try_im2col(&self, kh: usize, kw: usize, sh: usize, sw: usize, ph: usize, pw: usize, dh: usize, dw: usize) -> Result<Self, ShapeError> {
        self.try_im2col_impl(kh, kw, sh, sw, ph, pw, dh, dw, None)
    }

    #[allow(clippy::too_many_arguments)]
    fn try_im2col_impl(&self, kh: usize, kw: usize, sh: usize, sw: usize, ph: usize, pw: usize, dh: usize, dw: usize, ws: Option<&mut Workspace>) -> Result<Self, ShapeError> {
        crate::shape_check::check_im2col(&self.shape, kh, kw, sh, sw, ph, pw, dh, dw)?;
        Ok(self.im2col_impl(kh, kw, sh, sw, ph, pw, dh, dw, ws))
    }

    #[allow(clippy::too_many_arguments)]
    fn im2col_impl(&self, kh: usize, kw: usize, sh: usize, sw: usize, ph: usize, pw: usize, dh: usize, dw: usize, ws: Option<&mut Workspace>) -> Self {
        debug_assert_eq!(self.ndim(), 4, "im2col expects [N, C, H, W]");
        let (n, c, h, w) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        let (ho, wo) = conv_out_size(h, w, kh, kw, sh, sw, ph, pw, dh, dw);
        let l = ho * wo;
        let ckk = c * kh * kw;
        let kk = kh * kw;
        // padding positions are skipped by the copy loop below, so the
        // buffer must start zeroed either way
        let mut out = match ws {
            Some(ws) => ws.take_zeroed(n * ckk * l),
            None => vec![0.0f32; n * ckk * l],
        };
        let work = n * ckk * l;
        crate::parallel::for_each_block(&mut out, l.max(1), work, |item, row_out| {
            // item indexes the (batch, channel, kernel-tap) row
            let (b, row) = (item / ckk, item % ckk);
            let (ci, tap) = (row / kk, row % kk);
            let (ki, kj) = (tap / kw, tap % kw);
            let src_c = (b * c + ci) * h * w;
            for y in 0..ho {
                let iy = (y * sh + ki * dh) as isize - ph as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                let src_y = src_c + iy as usize * w;
                let dst_y = y * wo;
                for x in 0..wo {
                    let ix = (x * sw + kj * dw) as isize - pw as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    row_out[dst_y + x] = self.data[src_y + ix as usize];
                }
            }
        });
        NdArray { shape: vec![n, ckk, l], data: out }
    }

    /// Fold column form `[N, C*kh*kw, Ho*Wo]` back to `[N, C, H, W]`,
    /// accumulating overlapping contributions. This is the adjoint of
    /// [`NdArray::im2col`] and therefore its gradient.
    ///
    /// Kernel taps of the *same* `(batch, channel)` overlap in the output,
    /// so the shard unit is one `[H, W]` channel plane: each plane is
    /// accumulated by one thread in the serial tap order, keeping the
    /// result bitwise identical to the serial path.
    #[allow(clippy::too_many_arguments)]
    pub fn col2im(&self, c: usize, h: usize, w: usize, kh: usize, kw: usize, sh: usize, sw: usize, ph: usize, pw: usize, dh: usize, dw: usize) -> Self {
        assert_eq!(self.ndim(), 3, "col2im expects [N, C*kh*kw, L]");
        let n = self.shape[0];
        let (ho, wo) = conv_out_size(h, w, kh, kw, sh, sw, ph, pw, dh, dw);
        let l = ho * wo;
        assert_eq!(self.shape[1], c * kh * kw, "col2im channel-kernel mismatch");
        assert_eq!(self.shape[2], l, "col2im spatial mismatch");
        let ckk = c * kh * kw;
        let mut out = vec![0.0f32; n * c * h * w];
        let work = n * ckk * l;
        crate::parallel::for_each_block(&mut out, (h * w).max(1), work, |item, plane| {
            // item indexes the (batch, channel) output plane
            let (b, ci) = (item / c, item % c);
            let src_b = b * ckk * l;
            for ki in 0..kh {
                for kj in 0..kw {
                    let row = (ci * kh + ki) * kw + kj;
                    let src_row = src_b + row * l;
                    for y in 0..ho {
                        let iy = (y * sh + ki * dh) as isize - ph as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let dst_y = iy as usize * w;
                        let src_y = src_row + y * wo;
                        for x in 0..wo {
                            let ix = (x * sw + kj * dw) as isize - pw as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            plane[dst_y + ix as usize] += self.data[src_y + x];
                        }
                    }
                }
            }
        });
        NdArray { shape: vec![n, c, h, w], data: out }
    }

    // ------------------------------------------------------------------
    // Comparisons
    // ------------------------------------------------------------------

    /// Whether every element differs from `other`'s by at most
    /// `atol + rtol * |other|`.
    ///
    /// The tolerance is **asymmetric** — `other` is the reference operand
    /// and scales the relative term (numpy's `allclose` convention), so
    /// `a.allclose(b, ..)` and `b.allclose(a, ..)` can disagree when the
    /// magnitudes differ near the tolerance boundary.
    ///
    /// Bitwise-equal elements short-circuit before any arithmetic: equal
    /// infinities compare close (where `inf - inf = NaN` would fail the
    /// tolerance test), as do identical NaN bit patterns, and the common
    /// exactly-equal case skips the float ops entirely. Non-finite
    /// elements are *only* close when bitwise equal — otherwise
    /// `rtol * |±inf|` would make the threshold infinite and declare
    /// opposite infinities close.
    pub fn allclose(&self, other: &Self, rtol: f32, atol: f32) -> bool {
        self.shape == other.shape
            && self.data.iter().zip(&other.data).all(|(&a, &b)| {
                if a.to_bits() == b.to_bits() {
                    return true;
                }
                a.is_finite() && b.is_finite() && (a - b).abs() <= atol + rtol * b.abs()
            })
    }
}

/// Which matmul inner kernel [`NdArray::matmul_impl`] runs. `Auto` is the
/// production dispatch; the forced variants back the public
/// [`NdArray::matmul_reference`] / [`NdArray::matmul_packed`] entry points
/// so tests and benches can pin a kernel regardless of operand shape or
/// density.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MatmulKernel {
    Auto,
    Reference,
    Packed,
}

/// Most elements the density probe is willing to look at. Above this the
/// probe strides instead of scanning, keeping the cost of the dispatch
/// decision bounded no matter how large the operand is.
const DENSITY_PROBE_MAX: usize = 4096;

/// Whether more than half of the probed elements of `data` are exactly
/// zero — the density probe that decides between the dense packed kernel
/// and the zero-skipping row kernel in [`NdArray::matmul`]. Hypergraph
/// operators (`H`-products, `Imp·Impᵀ` factors) are mostly zeros and win
/// with the skip; im2col'd conv inputs and weights are dense.
///
/// Small operands are scanned in full. Larger ones are probed at a fixed
/// deterministic stride chosen odd and not divisible by 3, so the sample
/// cannot alias the period-2/3/4/6 zero patterns that interleaved or
/// padded operands produce. The probe reads only operand data and length,
/// never the thread count, so the dispatch decision — and therefore the
/// result bits — are identical at every `DHGCN_THREADS` value. A wrong
/// density guess on an adversarial pattern costs only speed, never
/// correctness: both kernels compute the same product.
fn mostly_zero(data: &[f32]) -> bool {
    if data.len() <= DENSITY_PROBE_MAX {
        let zeros = data.iter().filter(|&&v| v == 0.0).count();
        return zeros * 2 > data.len();
    }
    let mut stride = data.len() / DENSITY_PROBE_MAX;
    stride |= 1;
    if stride.is_multiple_of(3) {
        stride += 2;
    }
    let (mut zeros, mut probed) = (0usize, 0usize);
    let mut i = 0;
    while i < data.len() {
        if data[i] == 0.0 {
            zeros += 1;
        }
        probed += 1;
        i += stride;
    }
    zeros * 2 > probed
}

/// One output row of the `ikj` matmul kernel: `orow = arow · bm` where
/// `bm` is the `[k, n]` right-hand matrix. Zeroes `orow` first — the
/// output buffer may be recycled dirty from a [`Workspace`]. Shared by the
/// serial and parallel paths so both make identical per-element
/// decisions — this is what makes the parallel result bitwise equal to
/// the serial one.
#[inline]
fn matmul_row(arow: &[f32], bm: &[f32], orow: &mut [f32], n: usize, skip_zeros: bool) {
    orow.fill(0.0);
    if skip_zeros {
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bm[p * n..(p + 1) * n];
            for (ov, &bv) in orow.iter_mut().zip(brow) {
                *ov += av * bv;
            }
        }
    } else {
        for (p, &av) in arow.iter().enumerate() {
            let brow = &bm[p * n..(p + 1) * n];
            for (ov, &bv) in orow.iter_mut().zip(brow) {
                *ov += av * bv;
            }
        }
    }
}

/// Output spatial size of a 2-D convolution. Panics when the padded input
/// is smaller than the effective kernel; [`crate::check_conv_out_size`] is
/// the non-panicking equivalent with the same diagnostic text.
#[allow(clippy::too_many_arguments)]
pub fn conv_out_size(h: usize, w: usize, kh: usize, kw: usize, sh: usize, sw: usize, ph: usize, pw: usize, dh: usize, dw: usize) -> (usize, usize) {
    crate::shape_check::check_conv_out_size(h, w, kh, kw, sh, sw, ph, pw, dh, dw)
        .unwrap_or_else(|e| panic!("{e}"))
}

fn resolve_reshape(len: usize, shape: &[usize]) -> Vec<usize> {
    let infer = shape.iter().filter(|&&d| d == usize::MAX).count();
    assert!(infer <= 1, "reshape allows at most one inferred dim");
    if infer == 0 {
        return shape.to_vec();
    }
    let known: usize = shape.iter().filter(|&&d| d != usize::MAX).product();
    assert!(known > 0 && len.is_multiple_of(known), "cannot infer reshape dim");
    shape.iter().map(|&d| if d == usize::MAX { len / known } else { d }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let a = NdArray::zeros(&[2, 3]);
        assert_eq!(a.shape(), &[2, 3]);
        assert_eq!(a.len(), 6);
        let b = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(b.at(&[1, 0]), 3.0);
        let s = NdArray::scalar(5.0);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.item(), 5.0);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_len_mismatch_panics() {
        NdArray::from_vec(vec![1.0], &[2, 2]);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = NdArray::from_vec((0..9).map(|i| i as f32).collect(), &[3, 3]);
        let i = NdArray::eye(3);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn broadcast_shapes() {
        assert_eq!(broadcast_shape(&[2, 1, 3], &[4, 3]), Some(vec![2, 4, 3]));
        assert_eq!(broadcast_shape(&[2, 3], &[2, 3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shape(&[], &[5]), Some(vec![5]));
        assert_eq!(broadcast_shape(&[2, 3], &[3, 3]), None);
    }

    #[test]
    fn broadcast_add() {
        let a = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = NdArray::from_vec(vec![10.0, 20.0, 30.0], &[3]);
        let c = a.add(&b);
        assert_eq!(c.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        let col = NdArray::from_vec(vec![100.0, 200.0], &[2, 1]);
        let d = a.add(&col);
        assert_eq!(d.data(), &[101.0, 102.0, 103.0, 204.0, 205.0, 206.0]);
    }

    #[test]
    fn matmul_2d() {
        let a = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = NdArray::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_batched_broadcast() {
        // a: [2, 2, 2] batched, b: [2, 2] broadcast over batch
        let a = NdArray::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]);
        let b = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 2.0, 4.0, 6.0, 8.0]);
        // and the mirrored broadcast
        let d = b.matmul(&a);
        assert_eq!(d.shape(), &[2, 2, 2]);
        assert_eq!(d.data(), &[1.0, 2.0, 3.0, 4.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn permute_and_transpose() {
        let a = NdArray::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let p = a.permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.at(&[1, 0, 2]), a.at(&[0, 2, 1]));
        let t = a.transpose_last2();
        assert_eq!(t.shape(), &[2, 4, 3]);
        assert_eq!(t.at(&[1, 3, 2]), a.at(&[1, 2, 3]));
        // permute twice with inverse perm is identity
        let back = p.permute(&[1, 2, 0]);
        assert_eq!(back, a);
    }

    #[test]
    fn sum_axes_keepdim_and_squeeze() {
        let a = NdArray::from_vec((1..=24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let s = a.sum_axes(&[1], true);
        assert_eq!(s.shape(), &[2, 1, 4]);
        assert_eq!(s.at(&[0, 0, 0]), 1.0 + 5.0 + 9.0);
        let s2 = a.sum_axes(&[0, 2], false);
        assert_eq!(s2.shape(), &[3]);
        assert_eq!(s2.data()[0], (1..=4).sum::<i32>() as f32 + (13..=16).sum::<i32>() as f32);
    }

    #[test]
    fn mean_and_reduce_to_shape() {
        let a = NdArray::ones(&[2, 3]);
        assert_eq!(a.mean_axes(&[0, 1], false).item(), 1.0);
        let g = NdArray::ones(&[4, 2, 3]);
        let r = g.reduce_to_shape(&[2, 3]);
        assert_eq!(r.shape(), &[2, 3]);
        assert_eq!(r.data()[0], 4.0);
        let r2 = g.reduce_to_shape(&[2, 1]);
        assert_eq!(r2.shape(), &[2, 1]);
        assert_eq!(r2.data()[0], 12.0);
    }

    #[test]
    fn max_axis_and_argmax() {
        let a = NdArray::from_vec(vec![1.0, 5.0, 3.0, 9.0, 2.0, 4.0], &[2, 3]);
        let m = a.max_axis_keepdim(1);
        assert_eq!(m.shape(), &[2, 1]);
        assert_eq!(m.data(), &[5.0, 9.0]);
        assert_eq!(a.argmax_last(), vec![1, 0]);
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let a = NdArray::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let b = NdArray::from_vec((6..12).map(|i| i as f32).collect(), &[2, 3]);
        let c = NdArray::concat(&[&a, &b], 1);
        assert_eq!(c.shape(), &[2, 6]);
        assert_eq!(c.slice_axis(1, 0, 3), a);
        assert_eq!(c.slice_axis(1, 3, 3), b);
        let c0 = NdArray::concat(&[&a, &b], 0);
        assert_eq!(c0.shape(), &[4, 3]);
        assert_eq!(c0.slice_axis(0, 2, 2), b);
    }

    #[test]
    fn unslice_is_adjoint_of_slice() {
        let full = NdArray::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        let s = full.slice_axis(0, 1, 2);
        let u = NdArray::unslice_axis(&s, &[3, 4], 0, 1);
        assert_eq!(u.slice_axis(0, 1, 2), s);
        assert_eq!(u.slice_axis(0, 0, 1).sum_all(), 0.0);
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: im2col is a reshape
        let a = NdArray::from_vec((0..16).map(|i| i as f32).collect(), &[1, 2, 2, 4]);
        let c = a.im2col(1, 1, 1, 1, 0, 0, 1, 1);
        assert_eq!(c.shape(), &[1, 2, 8]);
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn im2col_known_values() {
        // input 1x1x3x3 with values 1..9, 2x2 kernel, stride 1, no pad
        let a = NdArray::from_vec((1..=9).map(|i| i as f32).collect(), &[1, 1, 3, 3]);
        let c = a.im2col(2, 2, 1, 1, 0, 0, 1, 1);
        assert_eq!(c.shape(), &[1, 4, 4]);
        // rows are kernel positions, columns are output positions
        assert_eq!(&c.data()[0..4], &[1.0, 2.0, 4.0, 5.0]); // k=(0,0)
        assert_eq!(&c.data()[4..8], &[2.0, 3.0, 5.0, 6.0]); // k=(0,1)
        assert_eq!(&c.data()[8..12], &[4.0, 5.0, 7.0, 8.0]); // k=(1,0)
        assert_eq!(&c.data()[12..16], &[5.0, 6.0, 8.0, 9.0]); // k=(1,1)
    }

    #[test]
    fn im2col_padding_reads_zero() {
        let a = NdArray::ones(&[1, 1, 2, 2]);
        let c = a.im2col(3, 3, 1, 1, 1, 1, 1, 1);
        assert_eq!(c.shape(), &[1, 9, 4]);
        // centre kernel tap sees all four ones
        let centre_row = &c.data()[4 * 4..5 * 4];
        assert_eq!(centre_row, &[1.0, 1.0, 1.0, 1.0]);
        // corner tap (0,0) only sees input at output (1,1)
        let corner = &c.data()[0..4];
        assert_eq!(corner, &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y
        let x = NdArray::from_vec((0..36).map(|i| (i as f32).sin()).collect(), &[1, 1, 6, 6]);
        let xc = x.im2col(3, 1, 1, 1, 1, 0, 2, 1);
        let y = NdArray::from_vec((0..xc.len()).map(|i| (i as f32 * 0.7).cos()).collect(), xc.shape());
        let yi = y.col2im(1, 6, 6, 3, 1, 1, 1, 1, 0, 2, 1);
        let lhs: f32 = xc.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(yi.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_out_sizes() {
        assert_eq!(conv_out_size(5, 5, 3, 3, 1, 1, 1, 1, 1, 1), (5, 5));
        assert_eq!(conv_out_size(8, 25, 3, 1, 2, 1, 1, 0, 1, 1), (4, 25));
        // dilation 2: effective kernel 5
        assert_eq!(conv_out_size(10, 1, 3, 1, 1, 1, 2, 0, 2, 1), (10, 1));
    }

    #[test]
    fn reshape_with_inferred_dim() {
        let a = NdArray::zeros(&[2, 3, 4]);
        let r = a.reshape(&[usize::MAX, 4]);
        assert_eq!(r.shape(), &[6, 4]);
    }

    #[test]
    fn broadcast_to_materialises() {
        let a = NdArray::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = a.broadcast_to(&[2, 3]);
        assert_eq!(b.data(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn allclose_tolerances() {
        let a = NdArray::from_vec(vec![1.0, 2.0], &[2]);
        let b = NdArray::from_vec(vec![1.0 + 1e-6, 2.0 - 1e-6], &[2]);
        assert!(a.allclose(&b, 1e-4, 1e-5));
        let c = NdArray::from_vec(vec![1.1, 2.0], &[2]);
        assert!(!a.allclose(&c, 1e-4, 1e-5));
    }

    #[test]
    fn allclose_handles_infinities_and_bitwise_equality() {
        // equal infinities must compare close: inf - inf = NaN would fail
        // the tolerance check without the bitwise short-circuit
        let inf = NdArray::from_vec(vec![f32::INFINITY, f32::NEG_INFINITY, 1.0], &[3]);
        assert!(inf.allclose(&inf.clone(), 1e-5, 1e-8));
        // opposite infinities are not close
        let flipped = NdArray::from_vec(vec![f32::NEG_INFINITY, f32::INFINITY, 1.0], &[3]);
        assert!(!inf.allclose(&flipped, 1e-5, 1e-8));
        // identical NaN payloads are bitwise equal and therefore close
        let nan = NdArray::from_vec(vec![f32::NAN], &[1]);
        assert!(nan.allclose(&nan.clone(), 0.0, 0.0));
        // NaN vs a number is never close
        assert!(!nan.allclose(&NdArray::from_vec(vec![0.0], &[1]), 1.0, 1.0));
    }

    #[test]
    fn allclose_relative_tolerance_is_asymmetric() {
        // rtol scales |b| (the receiver's argument), numpy-style: with
        // a = 100, b = 104, |a-b| = 4 <= rtol*104 but not rtol*100 once
        // rtol sits between the two thresholds
        let a = NdArray::from_vec(vec![100.0], &[1]);
        let b = NdArray::from_vec(vec![104.0], &[1]);
        let rtol = 4.0 / 102.0;
        assert!(a.allclose(&b, rtol, 0.0));
        assert!(!b.allclose(&a, rtol, 0.0));
    }

    #[test]
    fn density_probe_decision_is_unchanged_by_sampling() {
        // Small operands: exact scan. An incidence-like pattern (2 of 3
        // zero) reads sparse; a dense weight block reads dense.
        assert!(mostly_zero(&[0.0, 0.0, 1.0, 0.0, 0.0, 2.0]));
        assert!(!mostly_zero(&[1.0; 100]));

        // Large operands go through the strided probe; the decision on
        // realistic workloads must match the full scan. Incidence-shaped:
        // each row of H has ~k nonzeros out of many columns.
        let (rows, cols, nnz_per_row) = (512, 400, 10);
        let mut incidence = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for j in 0..nnz_per_row {
                incidence[r * cols + (r * 7 + j * 41) % cols] = 1.0;
            }
        }
        assert!(incidence.len() > DENSITY_PROBE_MAX);
        assert!(mostly_zero(&incidence));

        // Conv-shaped dense operand (im2col output with some zero padding
        // positions, still majority nonzero).
        let mut dense: Vec<f32> = (0..64 * 576).map(|i| (i % 13) as f32 + 1.0).collect();
        for v in dense.iter_mut().step_by(10) {
            *v = 0.0; // 10% padding zeros
        }
        assert!(dense.len() > DENSITY_PROBE_MAX);
        assert!(!mostly_zero(&dense));

        // Period-2 and period-3 alternating patterns: exactly half /
        // one-third zero. The stride (odd, not divisible by 3) cannot
        // alias onto only-zeros or only-nonzeros.
        let alt2: Vec<f32> = (0..20000).map(|i| (i % 2) as f32).collect();
        assert!(!mostly_zero(&alt2)); // exactly half zero -> not "mostly"
        let alt3: Vec<f32> = (0..20000).map(|i| ((i % 3) != 0) as i32 as f32).collect();
        assert!(!mostly_zero(&alt3)); // one third zero
        let alt3_sparse: Vec<f32> = (0..20000).map(|i| ((i % 3) == 0) as i32 as f32).collect();
        assert!(mostly_zero(&alt3_sparse)); // two thirds zero
    }

    #[test]
    fn forced_kernels_agree_with_auto_dispatch() {
        // One shape the auto path sends to the packed kernel and one it
        // sends to the row kernel; both forced entry points must agree
        // within tolerance everywhere.
        let mut s = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let a = NdArray::from_vec((0..23 * 17).map(|_| next()).collect(), &[23, 17]);
        let b = NdArray::from_vec((0..17 * 29).map(|_| next()).collect(), &[17, 29]);
        let auto = a.matmul(&b);
        let reference = a.matmul_reference(&b);
        let packed = a.matmul_packed(&b);
        assert!(auto.allclose(&reference, 1e-5, 1e-6));
        assert!(auto.allclose(&packed, 1e-5, 1e-6));
        // dense multi-row auto dispatch IS the packed kernel, bit for bit
        assert_eq!(
            auto.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            packed.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        // a dense single-row product also dispatches packed: its row must
        // be bitwise identical to the same row inside a larger batch
        // (serving batch-size invariance), so dispatch cannot test m
        let row = NdArray::from_vec(a.data()[..17].to_vec(), &[1, 17]);
        let auto_row = row.matmul(&b);
        assert_eq!(
            auto_row.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            row.matmul_packed(&b).data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            auto_row.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            packed.data()[..auto_row.len()].iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn matmul_ws_reuses_dirty_buffers_correctly() {
        // Recycle a workspace buffer through products of both kernels and
        // a smaller follow-up product; stale garbage from the larger
        // buffer must never leak into results.
        let mut ws = Workspace::new();
        let a = NdArray::from_vec((0..12 * 7).map(|i| (i as f32).sin()).collect(), &[12, 7]);
        let b = NdArray::from_vec((0..7 * 9).map(|i| (i as f32).cos()).collect(), &[7, 9]);
        let expect = a.matmul(&b);
        for _ in 0..3 {
            let got = a.matmul_ws(&b, &mut ws);
            assert_eq!(got, expect);
            ws.give(got.into_vec());
        }
        // sparse operand -> row kernel, same recycled buffer
        let mut sp = vec![0.0f32; 12 * 7];
        sp[3] = 2.0;
        sp[40] = -1.0;
        let sparse = NdArray::from_vec(sp, &[12, 7]);
        let expect_sp = sparse.matmul(&b);
        let got_sp = sparse.matmul_ws(&b, &mut ws);
        assert_eq!(got_sp, expect_sp);
    }
}
