//! Property-based gradient checks: every differentiable op in `dhg-tensor`
//! is validated against central finite differences on randomly generated
//! inputs.

use dhg_tensor::gradcheck::assert_gradients_close;
use dhg_tensor::ops::Conv2dSpec;
use dhg_tensor::{NdArray, Tensor};
use proptest::prelude::*;

const TOL: f32 = 2e-2;

/// Input values bounded away from op singularities (div/ln/sqrt).
fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.2f32..2.0f32, n)
}

/// Signed values for ops defined on all of ℝ.
fn signed_values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0f32, n)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn grad_add_broadcast(a in signed_values(6), b in signed_values(3)) {
        let xb = NdArray::from_vec(b, &[3]);
        let x = NdArray::from_vec(a, &[2, 3]);
        assert_gradients_close(&x, |t| t.add(&Tensor::param(xb.clone())).sum_all(), TOL);
        // and gradient w.r.t. the broadcast side
        let xa = x.clone();
        assert_gradients_close(&xb, |t| Tensor::param(xa.clone()).add(t).square().sum_all(), TOL);
    }

    #[test]
    fn grad_mul_div(a in values(4), b in values(4)) {
        let x = NdArray::from_vec(a, &[2, 2]);
        let y = NdArray::from_vec(b, &[2, 2]);
        assert_gradients_close(&x, |t| t.mul(&Tensor::param(y.clone())).sum_all(), TOL);
        assert_gradients_close(&x, |t| Tensor::param(y.clone()).div(t).sum_all(), TOL);
        assert_gradients_close(&x, |t| t.div(&Tensor::param(y.clone())).sum_all(), TOL);
    }

    #[test]
    fn grad_unary_chain(a in values(5)) {
        let x = NdArray::from_vec(a, &[5]);
        assert_gradients_close(&x, |t| t.sqrt().sum_all(), TOL);
        assert_gradients_close(&x, |t| t.ln().sum_all(), TOL);
        assert_gradients_close(&x, |t| t.exp().mul_scalar(0.1).sum_all(), TOL);
        assert_gradients_close(&x, |t| t.neg().add_scalar(3.0).sum_all(), TOL);
        assert_gradients_close(&x, |t| t.pow_scalar(1.7).sum_all(), TOL);
    }

    #[test]
    fn grad_activations(a in signed_values(6)) {
        let x = NdArray::from_vec(a.clone(), &[6]);
        // relu's kink at 0 breaks finite differences; nudge values away
        let mut nudged = x.clone();
        nudged.map_inplace(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
        assert_gradients_close(&nudged, |t| t.relu().sum_all(), TOL);
        assert_gradients_close(&nudged, |t| t.leaky_relu(0.2).sum_all(), TOL);
        assert_gradients_close(&x, |t| t.sigmoid().sum_all(), TOL);
        assert_gradients_close(&x, |t| t.tanh().sum_all(), TOL);
    }

    #[test]
    fn grad_matmul(a in signed_values(6), b in signed_values(8)) {
        let x = NdArray::from_vec(a, &[3, 2]);
        let y = NdArray::from_vec(b, &[2, 4]);
        assert_gradients_close(&x, |t| t.matmul(&Tensor::param(y.clone())).square().sum_all(), TOL);
        let x2 = x.clone();
        assert_gradients_close(&y, |t| Tensor::param(x2.clone()).matmul(t).square().sum_all(), TOL);
    }

    #[test]
    fn grad_batched_matmul_broadcast(a in signed_values(4), b in signed_values(16)) {
        // w [2,2] broadcast against batch [4,2,2]
        let w = NdArray::from_vec(a, &[2, 2]);
        let x = NdArray::from_vec(b, &[4, 2, 2]);
        let xc = x.clone();
        assert_gradients_close(&w, |t| t.matmul(&Tensor::param(xc.clone())).square().sum_all(), TOL);
        let wc = w.clone();
        assert_gradients_close(&x, |t| Tensor::param(wc.clone()).matmul(t).square().sum_all(), TOL);
    }

    #[test]
    fn grad_reductions(a in signed_values(12)) {
        let x = NdArray::from_vec(a, &[2, 3, 2]);
        assert_gradients_close(&x, |t| t.sum_axes(&[1], true).square().sum_all(), TOL);
        assert_gradients_close(&x, |t| t.sum_axes(&[0, 2], false).square().sum_all(), TOL);
        assert_gradients_close(&x, |t| t.mean_axes(&[2], false).square().sum_all(), TOL);
        assert_gradients_close(&x, |t| t.mean_all(), TOL);
    }

    #[test]
    fn grad_shape_ops(a in signed_values(12)) {
        let x = NdArray::from_vec(a, &[2, 3, 2]);
        assert_gradients_close(&x, |t| t.reshape(&[6, 2]).square().sum_all(), TOL);
        assert_gradients_close(&x, |t| t.permute(&[2, 0, 1]).square().sum_all(), TOL);
        assert_gradients_close(&x, |t| t.transpose_last2().square().sum_all(), TOL);
        assert_gradients_close(&x, |t| t.slice_axis(1, 1, 2).square().sum_all(), TOL);
        assert_gradients_close(&x, |t| {
            let a = t.slice_axis(0, 0, 1);
            let b = t.slice_axis(0, 1, 1);
            Tensor::concat(&[&b, &a], 0).square().sum_all()
        }, TOL);
    }

    #[test]
    fn grad_softmax_family(a in signed_values(8)) {
        let x = NdArray::from_vec(a, &[2, 4]);
        // weight the outputs so gradients are non-degenerate
        let w = NdArray::from_vec((0..8).map(|i| (i as f32 * 0.37).sin()).collect(), &[2, 4]);
        let wc = w.clone();
        assert_gradients_close(&x, move |t| t.softmax(1).mul(&Tensor::constant(wc.clone())).sum_all(), TOL);
        let wc2 = w.clone();
        assert_gradients_close(&x, move |t| t.log_softmax(1).mul(&Tensor::constant(wc2.clone())).sum_all(), TOL);
        assert_gradients_close(&x, |t| t.cross_entropy(&[1, 3]), TOL);
    }

    #[test]
    fn grad_conv2d(a in signed_values(24), w in signed_values(12)) {
        // x [1, 2, 6, 2], w [2, 2, 3, 1] — temporal conv with dilation
        let x = NdArray::from_vec(a, &[1, 2, 6, 2]);
        let wt = NdArray::from_vec(w, &[2, 2, 3, 1]);
        let spec = Conv2dSpec::temporal(3, 1, 2);
        let wc = wt.clone();
        assert_gradients_close(&x, move |t| t.conv2d(&Tensor::param(wc.clone()), None, spec).square().sum_all(), TOL);
        let xc = x.clone();
        assert_gradients_close(&wt, move |t| Tensor::param(xc.clone()).conv2d(t, None, spec).square().sum_all(), TOL);
    }

    #[test]
    fn grad_conv2d_bias_and_stride(a in signed_values(32)) {
        let x = NdArray::from_vec(a, &[2, 1, 8, 2]);
        let w = NdArray::from_vec((0..6).map(|i| (i as f32 * 0.3).cos()).collect(), &[2, 1, 3, 1]);
        let b = NdArray::from_vec(vec![0.5, -0.5], &[2]);
        let spec = Conv2dSpec::temporal(3, 2, 1);
        let (wc, bc) = (w.clone(), b.clone());
        assert_gradients_close(&x, move |t| {
            t.conv2d(&Tensor::param(wc.clone()), Some(&Tensor::param(bc.clone())), spec).square().sum_all()
        }, TOL);
        let xc = x.clone();
        let wc2 = w.clone();
        assert_gradients_close(&b, move |t| {
            Tensor::param(xc.clone()).conv2d(&Tensor::param(wc2.clone()), Some(t), spec).square().sum_all()
        }, TOL);
    }

    #[test]
    fn grad_composite_mlp(a in signed_values(6)) {
        // an end-to-end two-layer network gradient against FD
        let x = NdArray::from_vec(a, &[2, 3]);
        assert_gradients_close(&x, |t| {
            let w1 = Tensor::constant(NdArray::from_vec(
                (0..12).map(|i| ((i * 7 % 5) as f32 - 2.0) * 0.3).collect(), &[3, 4]));
            let w2 = Tensor::constant(NdArray::from_vec(
                (0..8).map(|i| ((i * 3 % 7) as f32 - 3.0) * 0.2).collect(), &[4, 2]));
            t.matmul(&w1).tanh().matmul(&w2).cross_entropy(&[0, 1])
        }, TOL);
    }
}
