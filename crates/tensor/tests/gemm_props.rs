//! Property suite pinning the packed cache-blocked GEMM kernel to the
//! retained reference `ikj` kernel.
//!
//! Two contracts are exercised on randomly generated shapes:
//!
//! 1. **Accuracy** — `matmul_packed` agrees with `matmul_reference` within
//!    `allclose(rtol = RTOL, atol = ATOL)`. The kernels round differently
//!    (the packed kernel accumulates per KC-block with FMA where
//!    available), so bitwise equality across kernels is *not* expected.
//! 2. **Determinism** — `matmul_packed` at 1, 2 and 8 worker threads is
//!    bitwise identical: per-element accumulation order depends only on
//!    `k` and the constant KC block size, never on the row-block split or
//!    thread assignment.
//!
//! Shapes cover rectangular, degenerate (`m = 1`, `k = 1`, `n` not a
//! multiple of the register tile) and broadcast-batched products.

use dhg_tensor::parallel::with_threads;
use dhg_tensor::NdArray;
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

/// Relative tolerance pinning packed against reference.
const RTOL: f32 = 1e-5;
/// Absolute floor: output elements near zero arise from cancellation of
/// O(k) same-magnitude products, where the two kernels' different
/// accumulation orders legitimately differ by a few ulps of the *partial
/// sums* (measured max ≈ 6e-6 at k = 576), not of the tiny result.
const ATOL: f32 = 1e-4;

/// Deterministic pseudo-random fill so every case is reproducible from
/// the proptest seed alone.
fn filled(shape: &[usize], seed: u64) -> NdArray {
    let n: usize = shape.iter().product();
    let mut s = seed | 1;
    let data = (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect();
    NdArray::from_vec(data, shape)
}

fn bits(a: &NdArray) -> Vec<u32> {
    a.data().iter().map(|v| v.to_bits()).collect()
}

/// Packed result at every thread count: allclose to the reference kernel,
/// bitwise-identical to itself across thread counts.
fn check_pinned(a: &NdArray, b: &NdArray) -> Result<(), String> {
    let reference = a.matmul_reference(b);
    let baseline = with_threads(THREADS[0], || a.matmul_packed(b));
    if !baseline.allclose(&reference, RTOL, ATOL) {
        return Err(format!(
            "packed diverged from reference on {:?} x {:?}",
            a.shape(),
            b.shape()
        ));
    }
    let want = bits(&baseline);
    for &t in &THREADS[1..] {
        let got = with_threads(t, || a.matmul_packed(b));
        if bits(&got) != want {
            return Err(format!(
                "packed kernel not bitwise deterministic at {t} threads on {:?} x {:?}",
                a.shape(),
                b.shape()
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn rectangular_shapes(m in 1usize..40, k in 1usize..48, n in 1usize..40, seed in 0u64..1000) {
        let a = filled(&[m, k], seed);
        let b = filled(&[k, n], seed ^ 0xABCD);
        prop_assert!(check_pinned(&a, &b).is_ok(), "{:?}", check_pinned(&a, &b));
    }

    #[test]
    fn degenerate_shapes(k in 1usize..32, n in 1usize..64, seed in 0u64..1000) {
        // m = 1: single output row (auto dispatch avoids packing; forced
        // packed must still be right)
        let a1 = filled(&[1, k], seed);
        let b1 = filled(&[k, n], seed ^ 0x1111);
        prop_assert!(check_pinned(&a1, &b1).is_ok(), "{:?}", check_pinned(&a1, &b1));
        // k = 1: outer product
        let a2 = filled(&[n.max(2), 1], seed ^ 0x2222);
        let b2 = filled(&[1, k], seed ^ 0x3333);
        prop_assert!(check_pinned(&a2, &b2).is_ok(), "{:?}", check_pinned(&a2, &b2));
        // n not a multiple of the register tile: NR=16, force ragged edge
        let ragged_n = (n | 1).max(3); // odd, never a multiple of 16
        let a3 = filled(&[7, k], seed ^ 0x4444);
        let b3 = filled(&[k, ragged_n], seed ^ 0x5555);
        prop_assert!(check_pinned(&a3, &b3).is_ok(), "{:?}", check_pinned(&a3, &b3));
    }

    #[test]
    fn broadcast_batched_shapes(
        nb in 1usize..5,
        m in 1usize..16,
        k in 1usize..24,
        n in 1usize..16,
        seed in 0u64..1000,
    ) {
        // batched LHS against broadcast rank-2 RHS
        let a = filled(&[nb, m, k], seed);
        let b = filled(&[k, n], seed ^ 0x6666);
        prop_assert!(check_pinned(&a, &b).is_ok(), "{:?}", check_pinned(&a, &b));
        // rank-2 LHS against batched RHS
        let a2 = filled(&[m, k], seed ^ 0x7777);
        let b2 = filled(&[nb, k, n], seed ^ 0x8888);
        prop_assert!(check_pinned(&a2, &b2).is_ok(), "{:?}", check_pinned(&a2, &b2));
        // size-1 batch dim broadcast against nb
        let a3 = filled(&[1, m, k], seed ^ 0x9999);
        let b3 = filled(&[nb, k, n], seed ^ 0xAAAA);
        prop_assert!(check_pinned(&a3, &b3).is_ok(), "{:?}", check_pinned(&a3, &b3));
    }

    #[test]
    fn sparse_operands_keep_both_kernels_honest(m in 2usize..24, k in 2usize..32, n in 1usize..24, seed in 0u64..1000) {
        // mostly-zero LHS: auto dispatch takes the zero-skip row kernel,
        // forced packed must agree with it
        let dense = filled(&[m, k], seed);
        let keep = seed as usize % (m * k);
        let mut za = vec![0.0f32; m * k];
        za[keep] = dense.data()[keep];
        let a = NdArray::from_vec(za, &[m, k]);
        let b = filled(&[k, n], seed ^ 0xBBBB);
        let auto = a.matmul(&b);
        let packed = a.matmul_packed(&b);
        prop_assert!(auto.allclose(&packed, RTOL, ATOL));
    }
}

/// Conv-shaped product at the exact size the benches use, pinned outside
/// the proptest loop so it always runs even with a filtered seed.
#[test]
fn conv_shaped_product_is_pinned() {
    let a = filled(&[64, 576], 42);
    let b = filled(&[576, 425], 43);
    check_pinned(&a, &b).unwrap();
}

/// KC-block boundary: k just above the 256-element block forces the
/// two-pass accumulate path (assign on the first block, += on the rest).
#[test]
fn kc_block_boundary_is_pinned() {
    for k in [255, 256, 257, 513] {
        let a = filled(&[13, k], k as u64);
        let b = filled(&[k, 21], (k as u64) ^ 0xF0F0);
        check_pinned(&a, &b).unwrap();
    }
}
