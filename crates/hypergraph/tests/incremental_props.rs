//! Property suite for the incremental topology builder: the
//! [`Incremental`] builder at `rebuild_threshold = 0` must be
//! **bitwise-identical** to [`FromScratch`] on every build — across
//! coordinate drift histories, kNN/k-medoid configurations, seeds and
//! `DHGCN_THREADS ∈ {1, 2, 8}` — and at small positive thresholds its
//! divergence must stay bounded and collapse back to zero the moment
//! every anchor trips the threshold (full resync).

use dhg_hypergraph::{
    from_scratch_operator, FromScratch, Incremental, TopologyBuilder, TopologyConfig,
};
use dhg_tensor::parallel::with_threads;
use dhg_tensor::NdArray;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Thread counts the suite sweeps (the builder's determinism contract).
const THREADS: [usize; 3] = [1, 2, 8];

/// Random joint cloud `[V, D]` in `[-1, 1]`.
fn cloud(v: usize, d: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..v * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Perturb every coordinate by at most `scale`.
fn drift(points: &mut [f32], rng: &mut StdRng, scale: f32) {
    for p in points.iter_mut() {
        *p += rng.gen_range(-1.0f32..1.0) * scale;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The acceptance criterion: threshold 0 ⇒ every incremental build is
    /// bitwise the from-scratch operator, whatever drifts came before and
    /// whatever the thread count.
    #[test]
    fn threshold_zero_is_bitwise_from_scratch(
        seed in 0u64..1000,
        v in 6usize..14,
        kn in 1usize..5,
        km in 1usize..5,
        steps in 1usize..5,
    ) {
        let d = 3;
        let config = TopologyConfig::new(kn, km, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut coords = cloud(v, d, &mut rng);
        let mut inc = Incremental::new(config);
        let mut scratch = FromScratch::new(config);
        for step in 0..steps {
            let want = scratch.build(&coords, v, d);
            let got = inc.build(&coords, v, d);
            prop_assert_eq!(
                got.data(), want.data(),
                "step {} diverged from from-scratch at threshold 0", step
            );
            // the same history replayed under every thread count must
            // reproduce the same bits
            for &threads in &THREADS {
                let mut pinned = Incremental::new(config);
                let replayed = with_threads(threads, || {
                    let mut rng2 = StdRng::seed_from_u64(seed ^ 0x5EED);
                    let mut c = cloud(v, d, &mut rng2);
                    let mut last = pinned.build(&c, v, d);
                    for _ in 0..step {
                        drift(&mut c, &mut rng2, 0.1);
                        last = pinned.build(&c, v, d);
                    }
                    last
                });
                prop_assert_eq!(
                    replayed.data(), want.data(),
                    "step {} diverged under {} threads", step, threads
                );
            }
            drift(&mut coords, &mut rng, 0.1);
        }
    }

    /// Bitwise-unchanged coordinates never trigger a rebuild: the cached
    /// operator comes back identical, and the builder reports full reuse.
    #[test]
    fn unchanged_coords_reuse_the_cached_operator(
        seed in 0u64..1000,
        v in 6usize..14,
        tau in 0.0f32..0.5,
    ) {
        let d = 3;
        let config = TopologyConfig::new(2, 3, seed).with_threshold(tau);
        let mut rng = StdRng::seed_from_u64(seed);
        let coords = cloud(v, d, &mut rng);
        let mut inc = Incremental::new(config);
        let first = inc.build(&coords, v, d);
        let second = inc.build(&coords, v, d);
        prop_assert_eq!(first.data(), second.data());
        prop_assert!(inc.stats().reused_everything, "identical coords must be a cache hit");
    }

    /// A movement that trips the threshold for *every* anchor resyncs the
    /// incremental builder to the exact from-scratch operator: divergence
    /// cannot accumulate across resyncs.
    #[test]
    fn global_movement_resyncs_exactly(
        seed in 0u64..1000,
        v in 6usize..12,
    ) {
        let d = 3;
        let tau = 0.05;
        let config = TopologyConfig::new(2, 3, seed).with_threshold(tau);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut coords = cloud(v, d, &mut rng);
        let mut inc = Incremental::new(config);
        inc.build(&coords, v, d);
        // a few sub-threshold drifts: stale edges allowed
        for _ in 0..3 {
            drift(&mut coords, &mut rng, 0.003);
            inc.build(&coords, v, d);
        }
        // now shove everything well past tau: full resync
        for p in coords.iter_mut() {
            *p += 1.0;
        }
        let got = inc.build(&coords, v, d);
        let want = from_scratch_operator(&coords, v, d, &config);
        prop_assert_eq!(got.data(), want.data(), "full-dirty rebuild must resync exactly");
        prop_assert!(inc.stats().full_rebuild);
    }
}

/// L∞ distance between two operators.
fn linf(a: &NdArray, b: &NdArray) -> f32 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// At a small positive threshold the incremental operator may serve stale
/// kNN edges, but the divergence from from-scratch stays bounded: the
/// operator remains finite and symmetric, and its entrywise gap stays
/// well under the operator's own scale across a long sub-threshold drift.
/// Deterministic seed sweep (no generated cases) so the empirical bound
/// is stable run to run.
#[test]
fn small_threshold_divergence_is_bounded() {
    let (v, d) = (12, 3);
    for seed in 0..6u64 {
        let config = TopologyConfig::new(2, 3, seed).with_threshold(0.05);
        let mut rng = StdRng::seed_from_u64(seed * 7 + 1);
        let mut coords = cloud(v, d, &mut rng);
        let mut inc = Incremental::new(config);
        let mut worst = 0.0f32;
        inc.build(&coords, v, d);
        for _ in 0..24 {
            drift(&mut coords, &mut rng, 0.01);
            let got = inc.build(&coords, v, d);
            let want = from_scratch_operator(&coords, v, d, &config);
            assert!(got.data().iter().all(|x| x.is_finite()), "seed {seed}: non-finite entry");
            for i in 0..v {
                for j in 0..v {
                    let (a, b) = (got.data()[i * v + j], got.data()[j * v + i]);
                    assert!(
                        (a - b).abs() <= 1e-5,
                        "seed {seed}: operator asymmetric at ({i},{j}): {a} vs {b}"
                    );
                }
            }
            worst = worst.max(linf(&got, &want));
        }
        let scale =
            from_scratch_operator(&coords, v, d, &config).data().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        assert!(
            worst <= scale,
            "seed {seed}: sub-threshold divergence {worst} exceeds operator scale {scale}"
        );
    }
}

/// The same drift history replayed at threshold 0 under different thread
/// counts stays bitwise-identical — partial rebuilds (τ > 0) too.
#[test]
fn thread_count_never_changes_the_bits() {
    let (v, d) = (10, 3);
    for &tau in &[0.0f32, 0.05] {
        let config = TopologyConfig::new(3, 3, 42).with_threshold(tau);
        let runs: Vec<Vec<NdArray>> = THREADS
            .iter()
            .map(|&threads| {
                with_threads(threads, || {
                    let mut rng = StdRng::seed_from_u64(9);
                    let mut coords = cloud(v, d, &mut rng);
                    let mut inc = Incremental::new(config);
                    let mut ops = Vec::new();
                    for _ in 0..10 {
                        ops.push(inc.build(&coords, v, d));
                        drift(&mut coords, &mut rng, 0.02);
                    }
                    ops
                })
            })
            .collect();
        for run in &runs[1..] {
            for (step, (a, b)) in runs[0].iter().zip(run).enumerate() {
                assert_eq!(
                    a.data(),
                    b.data(),
                    "tau={tau}: step {step} diverged across thread counts"
                );
            }
        }
    }
}
