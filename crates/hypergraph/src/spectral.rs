//! Spectral utilities for propagation operators.
//!
//! Feature propagation is only stable when the operator's spectral radius
//! is bounded; the symmetric normalisations of Eq. 1 and Eq. 5 guarantee
//! a radius of at most 1. [`spectral_radius`] (power iteration) lets
//! callers verify that property for any operator they construct — it is
//! used by this crate's tests and exposed for downstream hypergraphs.

use dhg_tensor::NdArray;

/// Estimate the spectral radius (largest |eigenvalue|) of a symmetric
/// `[V, V]` matrix by power iteration. Returns 0 for the zero matrix.
///
/// `iters` around 100 gives ~3 significant digits on well-separated
/// spectra; convergence slows when the top eigenvalues are nearly tied.
pub fn spectral_radius(op: &NdArray, iters: usize) -> f32 {
    assert_eq!(op.ndim(), 2, "spectral_radius expects a square matrix");
    let v = op.shape()[0];
    assert_eq!(op.shape()[1], v, "spectral_radius expects a square matrix");
    if v == 0 {
        return 0.0;
    }
    // deterministic start vector with energy in every coordinate
    let mut x: Vec<f32> = (0..v).map(|i| 1.0 + (i as f32 * 0.7).sin() * 0.5).collect();
    let norm_of = |u: &[f32]| u.iter().map(|&a| a * a).sum::<f32>().sqrt();
    let start = norm_of(&x);
    for xi in &mut x {
        *xi /= start;
    }
    let mut lambda = 0.0f32;
    for _ in 0..iters {
        // y = A x; with ‖x‖ = 1, the estimate is |λ| ≈ ‖A x‖
        let mut y = vec![0.0f32; v];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &op.data()[r * v..(r + 1) * v];
            *yr = row.iter().zip(&x).map(|(&a, &b)| a * b).sum();
        }
        let norm = norm_of(&y);
        if norm < 1e-12 {
            return 0.0;
        }
        lambda = norm;
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
    }
    lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, Hypergraph};

    #[test]
    fn diagonal_matrix_radius_is_max_entry() {
        let mut d = NdArray::zeros(&[3, 3]);
        d.set(&[0, 0], 0.5);
        d.set(&[1, 1], -2.0);
        d.set(&[2, 2], 1.0);
        let r = spectral_radius(&d, 200);
        assert!((r - 2.0).abs() < 1e-3, "got {r}");
    }

    #[test]
    fn zero_matrix_radius_is_zero() {
        assert_eq!(spectral_radius(&NdArray::zeros(&[4, 4]), 50), 0.0);
    }

    #[test]
    fn normalized_graph_operator_radius_is_one() {
        let g = Graph::new(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]);
        let r = spectral_radius(&g.normalized_adjacency(), 300);
        assert!((r - 1.0).abs() < 1e-2, "D^-1/2 Ã D^-1/2 has λ_max = 1, got {r}");
    }

    #[test]
    fn hypergraph_operator_radius_at_most_one() {
        let hg = Hypergraph::new(6, vec![vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 0], vec![1, 3, 5]]);
        let r = spectral_radius(&hg.operator(), 300);
        assert!(r <= 1.0 + 1e-3, "Eq. 5 normalisation bounds the radius by 1, got {r}");
        assert!(r > 0.5, "a connected hypergraph should have a substantial radius, got {r}");
    }

    #[test]
    fn static_skeleton_operators_are_stable() {
        // the property that makes 10-block stacking safe (Fig. 5)
        let hg = Hypergraph::new(
            25,
            vec![
                vec![20, 4, 5, 6, 7, 21, 22],
                vec![20, 8, 9, 10, 11, 23, 24],
                vec![0, 12, 13, 14, 15],
                vec![0, 16, 17, 18, 19],
                vec![0, 1, 20, 2, 3],
                vec![7, 11, 15, 19],
            ],
        );
        let r = spectral_radius(&hg.operator(), 300);
        assert!(r <= 1.0 + 1e-3 && r > 0.8, "got {r}");
    }
}
