//! The plain skeleton graph used by GCN baselines (§3.1).

use dhg_tensor::NdArray;

/// An undirected graph over vertices `0..n_vertices`, stored as an edge
/// list. Used by the ST-GCN / 2s-AGCN / PB-GCN baselines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n_vertices: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Build from an undirected edge list. Self-loops are rejected (the
    /// normalised adjacency adds the identity itself, Eq. 1's `Ã = A + I`).
    pub fn new(n_vertices: usize, edges: Vec<(usize, usize)>) -> Self {
        for &(a, b) in &edges {
            assert!(a < n_vertices && b < n_vertices, "edge ({a},{b}) out of range");
            assert_ne!(a, b, "self-loops are implicit in Ã = A + I");
        }
        Graph { n_vertices, edges }
    }

    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// The undirected edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Binary adjacency matrix `A` (symmetric, zero diagonal).
    pub fn adjacency(&self) -> NdArray {
        let v = self.n_vertices;
        let mut a = NdArray::zeros(&[v, v]);
        for &(i, j) in &self.edges {
            a.set(&[i, j], 1.0);
            a.set(&[j, i], 1.0);
        }
        a
    }

    /// The normalised operator of Eq. 1: `D̃^{-1/2} (A + I) D̃^{-1/2}`.
    pub fn normalized_adjacency(&self) -> NdArray {
        let v = self.n_vertices;
        let mut a = self.adjacency();
        for i in 0..v {
            a.set(&[i, i], 1.0); // Ã = A + I
        }
        let deg: Vec<f32> =
            (0..v).map(|i| (0..v).map(|j| a.at(&[i, j])).sum::<f32>()).collect();
        let dis: Vec<f32> = deg.iter().map(|&d| if d > 0.0 { d.powf(-0.5) } else { 0.0 }).collect();
        let mut out = NdArray::zeros(&[v, v]);
        for i in 0..v {
            for j in 0..v {
                let val = a.at(&[i, j]);
                if val != 0.0 {
                    out.set(&[i, j], val * dis[i] * dis[j]);
                }
            }
        }
        out
    }

    /// Restrict the graph to a vertex subset, keeping original vertex ids
    /// (non-members become isolated). Used by PB-GCN's part subgraphs.
    pub fn subgraph(&self, members: &[usize]) -> Graph {
        let set: std::collections::HashSet<usize> = members.iter().copied().collect();
        let edges = self
            .edges
            .iter()
            .copied()
            .filter(|&(a, b)| set.contains(&a) && set.contains(&b))
            .collect();
        Graph { n_vertices: self.n_vertices, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::new(3, vec![(0, 1), (1, 2)])
    }

    #[test]
    fn adjacency_is_symmetric_with_zero_diagonal() {
        let a = path3().adjacency();
        assert!(a.allclose(&a.transpose_last2(), 1e-7, 1e-8));
        for i in 0..3 {
            assert_eq!(a.at(&[i, i]), 0.0);
        }
        assert_eq!(a.at(&[0, 1]), 1.0);
        assert_eq!(a.at(&[0, 2]), 0.0);
    }

    #[test]
    fn normalized_adjacency_known_values() {
        // path 0-1-2 with self-loops: deg = [2, 3, 2]
        let n = path3().normalized_adjacency();
        assert!((n.at(&[0, 0]) - 0.5).abs() < 1e-6);
        assert!((n.at(&[1, 1]) - 1.0 / 3.0).abs() < 1e-6);
        assert!((n.at(&[0, 1]) - 1.0 / (2.0f32 * 3.0).sqrt()).abs() < 1e-6);
        assert_eq!(n.at(&[0, 2]), 0.0);
        assert!(n.allclose(&n.transpose_last2(), 1e-6, 1e-7));
    }

    #[test]
    fn normalized_adjacency_fixes_sqrt_degree_vector() {
        // D̃^{-1/2} Ã D̃^{-1/2} has eigenvector d̃^{1/2} with eigenvalue 1.
        let g = Graph::new(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let n = g.normalized_adjacency();
        let mut a = g.adjacency();
        for i in 0..5 {
            a.set(&[i, i], 1.0);
        }
        let deg: Vec<f32> = (0..5).map(|i| (0..5).map(|j| a.at(&[i, j])).sum()).collect();
        let sqrt_d = NdArray::from_vec(deg.iter().map(|d| d.sqrt()).collect(), &[5, 1]);
        let y = n.matmul(&sqrt_d);
        assert!(y.allclose(&sqrt_d, 1e-5, 1e-6), "{y:?} vs {sqrt_d:?}");
    }

    #[test]
    fn subgraph_keeps_only_internal_edges() {
        let g = Graph::new(4, vec![(0, 1), (1, 2), (2, 3)]);
        let s = g.subgraph(&[0, 1, 3]);
        assert_eq!(s.edges(), &[(0, 1)]);
        assert_eq!(s.n_vertices(), 4); // ids preserved
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        Graph::new(2, vec![(1, 1)]);
    }
}
