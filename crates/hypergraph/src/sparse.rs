//! Compressed sparse row matrices.
//!
//! Skeleton hypergraphs are small (`V = 25`), where dense `[V, V]`
//! operators win outright; CSR exists to (a) prove that claim in the
//! `operator` benchmark as `V` grows, and (b) support users applying DHGCN
//! machinery to larger hypergraphs (meshes, point clouds).

use dhg_tensor::NdArray;

/// A compressed sparse row `f32` matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Build from a dense matrix, dropping exact zeros.
    pub fn from_dense(dense: &NdArray) -> Self {
        assert_eq!(dense.ndim(), 2, "CsrMatrix::from_dense expects a matrix");
        let (rows, cols) = (dense.shape()[0], dense.shape()[1]);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = dense.data()[r * cols + c];
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Build from coordinate triplets `(row, col, value)`. Duplicate
    /// coordinates are summed.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f32)]) -> Self {
        let mut sorted: Vec<(usize, usize, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // merge duplicates into (row, col, value) runs
        let mut merged: Vec<(usize, usize, f32)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of range");
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for r in 0..rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let col_idx = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix { rows, cols, row_ptr, col_idx, values }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are stored.
    pub fn density(&self) -> f32 {
        self.nnz() as f32 / (self.rows * self.cols) as f32
    }

    /// Sparse × dense-vector product `y = A x`.
    pub fn matvec(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0f32; self.rows];
        for (r, slot) in y.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[i] * x[self.col_idx[i]];
            }
            *slot = acc;
        }
        y
    }

    /// Sparse × dense-matrix product `Y = A X` where `X` is `[cols, n]`.
    pub fn matmul_dense(&self, x: &NdArray) -> NdArray {
        assert_eq!(x.ndim(), 2, "matmul_dense expects a matrix");
        assert_eq!(x.shape()[0], self.cols, "matmul_dense dimension mismatch");
        let n = x.shape()[1];
        let xd = x.data();
        let mut out = NdArray::zeros(&[self.rows, n]);
        let od = out.data_mut();
        for r in 0..self.rows {
            let orow = &mut od[r * n..(r + 1) * n];
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                let v = self.values[i];
                let xrow = &xd[self.col_idx[i] * n..(self.col_idx[i] + 1) * n];
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Materialise back to a dense matrix.
    pub fn to_dense(&self) -> NdArray {
        let mut out = NdArray::zeros(&[self.rows, self.cols]);
        let od = out.data_mut();
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                od[r * self.cols + self.col_idx[i]] += self.values[i];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> NdArray {
        NdArray::from_vec(vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 4.0, 0.0, 0.0], &[3, 3])
    }

    #[test]
    fn dense_roundtrip() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn matvec_matches_dense() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        let x = vec![1.0, 2.0, 3.0];
        let y = s.matvec(&x);
        let expected = d.matmul(&NdArray::from_vec(x, &[3, 1]));
        assert_eq!(y, expected.data());
    }

    #[test]
    fn matmul_dense_matches_dense() {
        let d = sample_dense();
        let s = CsrMatrix::from_dense(&d);
        let x = NdArray::from_vec((0..6).map(|i| i as f32).collect(), &[3, 2]);
        let y = s.matmul_dense(&x);
        assert!(y.allclose(&d.matmul(&x), 1e-6, 1e-7));
    }

    #[test]
    fn triplets_with_duplicates_sum() {
        let s = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0)]);
        let d = s.to_dense();
        assert_eq!(d.at(&[0, 0]), 3.0);
        assert_eq!(d.at(&[1, 1]), 5.0);
        assert_eq!(d.at(&[0, 1]), 0.0);
    }

    #[test]
    fn empty_rows_are_fine() {
        let s = CsrMatrix::from_triplets(4, 3, &[(0, 1, 1.0), (3, 2, 2.0)]);
        assert_eq!(s.nnz(), 2);
        let y = s.matvec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn density_reported() {
        let s = CsrMatrix::from_dense(&sample_dense());
        assert!((s.density() - 4.0 / 9.0).abs() < 1e-6);
    }
}
