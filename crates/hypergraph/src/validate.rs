//! Static validation of hypergraph incidence invariants.
//!
//! The propagation machinery of §3.2–§3.3 rests on a handful of
//! structural invariants: the incidence matrix is binary (`H ∈
//! {0,1}^{V×E}`, Eq. 2), every hyperedge has members and every joint is
//! covered by at least one hyperedge (else its degree matrix entry is
//! singular and Eq. 5 silently zeroes the joint out), and the dynamic
//! per-hyperedge `Imp` weights of Eq. 7–8 are normalised to sum to 1
//! within each hyperedge. The functions here check those invariants on
//! raw matrices — so corrupted structures that the [`Hypergraph`]
//! constructor would reject can still be diagnosed — and return typed
//! [`IncidenceIssue`]s whose [`IncidenceIssue::code`] strings match the
//! diagnostic codes of the model-plan analyzer in `dhg-nn`.

use crate::Hypergraph;
use dhg_tensor::NdArray;
use std::fmt;

/// Tolerance for the per-hyperedge `Imp` normalisation check.
const NORM_TOL: f32 = 1e-4;

/// One violated incidence invariant.
#[derive(Clone, Debug, PartialEq)]
pub enum IncidenceIssue {
    /// Hyperedge `edge` has no member vertices (edge degree 0).
    EmptyEdge {
        /// Column index of the offending hyperedge.
        edge: usize,
    },
    /// Vertex `vertex` belongs to no hyperedge — Eq. 5 zeroes it out.
    UncoveredVertex {
        /// The offending vertex.
        vertex: usize,
    },
    /// An incidence entry outside `{0, 1}`.
    NotBinary {
        /// Vertex (row) of the entry.
        vertex: usize,
        /// Hyperedge (column) of the entry.
        edge: usize,
        /// The offending value.
        value: f32,
    },
    /// A weighted vertex degree of zero: `D_v^{-1/2}` is singular there.
    SingularVertexDegree {
        /// The offending vertex.
        vertex: usize,
    },
    /// A hyperedge degree of zero: `D_e^{-1}` is singular there.
    SingularEdgeDegree {
        /// The offending hyperedge.
        edge: usize,
    },
    /// A hyperedge whose `Imp` weights do not sum to 1 over its members.
    ImpNotNormalized {
        /// The offending hyperedge.
        edge: usize,
        /// The actual member-weight sum.
        sum: f32,
    },
    /// A non-zero `Imp` weight outside the incidence support
    /// (`Imp = W_all ∘ H` must vanish wherever `H` does).
    ImpOutsideSupport {
        /// Vertex (row) of the entry.
        vertex: usize,
        /// Hyperedge (column) of the entry.
        edge: usize,
        /// The offending value.
        value: f32,
    },
}

impl IncidenceIssue {
    /// Stable kebab-case diagnostic code, matching the plan analyzer's
    /// `DiagCode` names in `dhg-nn`.
    pub fn code(&self) -> &'static str {
        match self {
            IncidenceIssue::EmptyEdge { .. } => "incidence-empty-edge",
            IncidenceIssue::UncoveredVertex { .. } => "incidence-uncovered-vertex",
            IncidenceIssue::NotBinary { .. } => "incidence-not-binary",
            IncidenceIssue::SingularVertexDegree { .. } | IncidenceIssue::SingularEdgeDegree { .. } => {
                "degree-singular"
            }
            IncidenceIssue::ImpNotNormalized { .. } | IncidenceIssue::ImpOutsideSupport { .. } => {
                "imp-not-normalized"
            }
        }
    }
}

impl fmt::Display for IncidenceIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncidenceIssue::EmptyEdge { edge } => write!(f, "hyperedge {edge} has no members"),
            IncidenceIssue::UncoveredVertex { vertex } => {
                write!(f, "vertex {vertex} is covered by no hyperedge")
            }
            IncidenceIssue::NotBinary { vertex, edge, value } => {
                write!(f, "incidence entry ({vertex}, {edge}) = {value} is not in {{0, 1}}")
            }
            IncidenceIssue::SingularVertexDegree { vertex } => {
                write!(f, "vertex degree d({vertex}) = 0 makes D_v^(-1/2) singular")
            }
            IncidenceIssue::SingularEdgeDegree { edge } => {
                write!(f, "edge degree delta({edge}) = 0 makes D_e^(-1) singular")
            }
            IncidenceIssue::ImpNotNormalized { edge, sum } => {
                write!(f, "Imp weights of hyperedge {edge} sum to {sum}, expected 1")
            }
            IncidenceIssue::ImpOutsideSupport { vertex, edge, value } => {
                write!(f, "Imp entry ({vertex}, {edge}) = {value} lies outside the incidence support")
            }
        }
    }
}

/// Validate a raw incidence matrix `h ∈ R^{V×E}`: entries must be binary,
/// every column (hyperedge) must have at least one member, and every row
/// (vertex) must be covered by at least one hyperedge. Returns all
/// violations, in row-major discovery order.
pub fn validate_incidence(h: &NdArray) -> Vec<IncidenceIssue> {
    assert_eq!(h.ndim(), 2, "incidence must be [V, E]");
    let (v, e) = (h.shape()[0], h.shape()[1]);
    let data = h.data();
    let mut issues = Vec::new();
    for (i, row) in data.chunks(e).enumerate() {
        for (j, &x) in row.iter().enumerate() {
            if x != 0.0 && x != 1.0 {
                issues.push(IncidenceIssue::NotBinary { vertex: i, edge: j, value: x });
            }
        }
    }
    for j in 0..e {
        if (0..v).all(|i| data[i * e + j] == 0.0) {
            issues.push(IncidenceIssue::EmptyEdge { edge: j });
        }
    }
    for (i, row) in data.chunks(e).enumerate() {
        if row.iter().all(|&x| x == 0.0) {
            issues.push(IncidenceIssue::UncoveredVertex { vertex: i });
        }
    }
    issues
}

/// Validate a constructed [`Hypergraph`]: its incidence invariants plus
/// non-singular weighted degree matrices (a zero hyperedge weight can
/// zero a vertex degree even when the vertex is covered).
pub fn validate_hypergraph(hg: &Hypergraph) -> Vec<IncidenceIssue> {
    let mut issues = validate_incidence(&hg.incidence());
    for (i, &d) in hg.vertex_degrees().iter().enumerate() {
        if d == 0.0 && !issues.iter().any(|x| matches!(x, IncidenceIssue::UncoveredVertex { vertex } if *vertex == i)) {
            issues.push(IncidenceIssue::SingularVertexDegree { vertex: i });
        }
    }
    for (j, &d) in hg.edge_degrees().iter().enumerate() {
        if d == 0.0 && !issues.iter().any(|x| matches!(x, IncidenceIssue::EmptyEdge { edge } if *edge == j)) {
            issues.push(IncidenceIssue::SingularEdgeDegree { edge: j });
        }
    }
    issues
}

/// Validate a dynamic weight matrix `imp ∈ R^{V×E}` against the incidence
/// `h` it was derived from (Eq. 7–8): weights must vanish outside the
/// incidence support and each hyperedge's member weights must sum to 1.
pub fn validate_imp(h: &NdArray, imp: &NdArray) -> Vec<IncidenceIssue> {
    assert_eq!(h.shape(), imp.shape(), "Imp must match the incidence shape");
    let (v, e) = (h.shape()[0], h.shape()[1]);
    let (hd, wd) = (h.data(), imp.data());
    let mut issues = Vec::new();
    for j in 0..e {
        let mut sum = 0.0f32;
        let mut members = 0usize;
        for i in 0..v {
            let (hx, wx) = (hd[i * e + j], wd[i * e + j]);
            if hx == 0.0 {
                if wx != 0.0 {
                    issues.push(IncidenceIssue::ImpOutsideSupport { vertex: i, edge: j, value: wx });
                }
            } else {
                sum += wx;
                members += 1;
            }
        }
        if members > 0 && (sum - 1.0).abs() > NORM_TOL {
            issues.push(IncidenceIssue::ImpNotNormalized { edge: j, sum });
        }
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint_weights;

    fn sample() -> Hypergraph {
        Hypergraph::new(5, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 0]])
    }

    #[test]
    fn well_formed_hypergraph_is_clean() {
        assert!(validate_hypergraph(&sample()).is_empty());
    }

    #[test]
    fn uncovered_vertex_is_reported() {
        let hg = Hypergraph::new(4, vec![vec![0, 1]]);
        let issues = validate_hypergraph(&hg);
        assert!(issues.contains(&IncidenceIssue::UncoveredVertex { vertex: 2 }));
        assert!(issues.contains(&IncidenceIssue::UncoveredVertex { vertex: 3 }));
        assert!(issues.iter().all(|i| i.code() == "incidence-uncovered-vertex"));
    }

    #[test]
    fn empty_edge_column_is_reported() {
        // the Hypergraph constructor rejects empty edges, so corrupt the
        // raw matrix instead — exactly what the validator is for
        let mut h = sample().incidence();
        for i in 0..5 {
            h.set(&[i, 1], 0.0);
        }
        let issues = validate_incidence(&h);
        assert!(issues.contains(&IncidenceIssue::EmptyEdge { edge: 1 }));
    }

    #[test]
    fn non_binary_entry_is_reported() {
        let mut h = sample().incidence();
        h.set(&[0, 0], 0.5);
        let issues = validate_incidence(&h);
        assert!(matches!(issues[0], IncidenceIssue::NotBinary { vertex: 0, edge: 0, .. }));
        assert_eq!(issues[0].code(), "incidence-not-binary");
    }

    #[test]
    fn zero_weight_edge_gives_singular_vertex_degree() {
        // vertex 3 is only covered by the zero-weight edge: covered in the
        // binary incidence, but its weighted degree is 0
        let hg = Hypergraph::with_weights(4, vec![vec![0, 1, 2], vec![3]], vec![1.0, 0.0]);
        let issues = validate_hypergraph(&hg);
        assert!(issues.contains(&IncidenceIssue::SingularVertexDegree { vertex: 3 }));
        assert!(issues.iter().all(|i| i.code() == "degree-singular"));
    }

    #[test]
    fn generated_joint_weights_validate() {
        let hg = sample();
        let w = joint_weights(&hg, &[0.3, 0.0, 2.0, 1.5, 0.7]);
        assert!(validate_imp(&hg.incidence(), &w).is_empty());
    }

    #[test]
    fn denormalised_imp_column_is_reported() {
        let hg = sample();
        let mut w = joint_weights(&hg, &[1.0, 1.0, 1.0, 1.0, 1.0]);
        w.set(&[0, 0], w.at(&[0, 0]) + 0.5);
        let issues = validate_imp(&hg.incidence(), &w);
        assert!(matches!(issues[0], IncidenceIssue::ImpNotNormalized { edge: 0, .. }));
        assert_eq!(issues[0].code(), "imp-not-normalized");
    }

    #[test]
    fn imp_weight_outside_support_is_reported() {
        let hg = Hypergraph::new(3, vec![vec![0, 1]]);
        let mut w = joint_weights(&hg, &[1.0, 1.0, 1.0]);
        w.set(&[2, 0], 0.25); // vertex 2 is not a member of edge 0
        let issues = validate_imp(&hg.incidence(), &w);
        assert!(matches!(issues[0], IncidenceIssue::ImpOutsideSupport { vertex: 2, edge: 0, .. }));
    }

    #[test]
    fn issue_display_is_informative() {
        assert_eq!(
            IncidenceIssue::EmptyEdge { edge: 3 }.to_string(),
            "hyperedge 3 has no members"
        );
        assert!(IncidenceIssue::ImpNotNormalized { edge: 1, sum: 1.5 }
            .to_string()
            .contains("sum to 1.5"));
    }
}
