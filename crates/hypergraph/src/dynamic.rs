//! Dynamic joint weights (§3.3, Eq. 6–9).
//!
//! Each joint's importance at time `t` is its moving distance between
//! consecutive frames (Eq. 6), normalised over the members of each
//! hyperedge (Eq. 7 — the paper labels this a softmax but writes a plain
//! distance-proportional normalisation; we follow the written equation).
//! The weighted incidence `Imp = W_all ∘ H` (Eq. 8) then yields the
//! propagation operator `Imp · Impᵀ` (Eq. 9).

use crate::Hypergraph;
use dhg_tensor::NdArray;

/// Per-frame, per-joint moving distance (Eq. 6).
///
/// `positions` is `[T, V, D]`; the result is `[T, V]` where entry `(t, v)`
/// is `‖p_v^t − p_v^{t−1}‖₂`. The first frame has no predecessor; it
/// copies frame 1's distance so it carries the same motion signal instead
/// of a dead zero (for `T == 1` everything is zero).
pub fn moving_distance(positions: &NdArray) -> NdArray {
    assert_eq!(positions.ndim(), 3, "positions must be [T, V, D]");
    let (t, v, d) = (positions.shape()[0], positions.shape()[1], positions.shape()[2]);
    let mut out = NdArray::zeros(&[t, v]);
    let p = positions.data();
    for ti in 1..t {
        for vi in 0..v {
            let cur = &p[(ti * v + vi) * d..(ti * v + vi) * d + d];
            let prev = &p[((ti - 1) * v + vi) * d..((ti - 1) * v + vi) * d + d];
            // missing detections (all-zero joints, the OpenPose
            // convention) would otherwise register as huge teleports
            if cur.iter().all(|&c| c == 0.0) || prev.iter().all(|&c| c == 0.0) {
                continue;
            }
            let dist: f32 =
                cur.iter().zip(prev).map(|(&a, &b)| (a - b) * (a - b)).sum::<f32>().sqrt();
            out.set(&[ti, vi], dist);
        }
    }
    if t > 1 {
        for vi in 0..v {
            let second = out.at(&[1, vi]);
            out.set(&[0, vi], second);
        }
    }
    out
}

/// The per-(vertex, hyperedge) weight matrix `W_all ∈ [0,1]^{V×E}`
/// (Eq. 7): within each hyperedge, member weights are the members' moving
/// distances normalised to sum to 1. A motionless hyperedge (all distances
/// zero) falls back to uniform weights, matching the static-hypergraph
/// behaviour.
pub fn joint_weights(hg: &Hypergraph, distances: &[f32]) -> NdArray {
    assert_eq!(distances.len(), hg.n_vertices(), "one distance per vertex required");
    let (v, e) = (hg.n_vertices(), hg.n_edges());
    let mut w = NdArray::zeros(&[v, e]);
    for (j, edge) in hg.edges().iter().enumerate() {
        let total: f32 = edge.iter().map(|&i| distances[i]).sum();
        if total > 1e-8 {
            for &i in edge {
                w.set(&[i, j], distances[i] / total);
            }
        } else {
            let uniform = 1.0 / edge.len() as f32;
            for &i in edge {
                w.set(&[i, j], uniform);
            }
        }
    }
    w
}

/// The propagation operator `Imp · Impᵀ` of Eq. 9 for one frame, where
/// `Imp = W_all ∘ H` (Eq. 8). Returns a `[V, V]` matrix.
pub fn weighted_incidence_operator(hg: &Hypergraph, distances: &[f32]) -> NdArray {
    let imp = joint_weights(hg, distances); // already zero off-edge, so ∘H is free
    imp.matmul(&imp.transpose_last2())
}

/// Stack [`weighted_incidence_operator`] over every frame of a sequence:
/// `positions` is `[T, V, D]`, the result is `[T, V, V]`.
/// Normalise each row of a `[V, V]` operator to sum to 1 (rows of zeros
/// stay zero). `Imp·Impᵀ` entries scale like `1/|e|²`, which would make
/// the joint-weight branch orders of magnitude weaker than the
/// row-stochastic static operator it is summed with; row normalisation
/// restores comparable feature magnitude while preserving Eq. 9\'s
/// motion-driven mixing *pattern*.
pub fn normalize_rows(op: &NdArray) -> NdArray {
    assert_eq!(op.ndim(), 2, "normalize_rows expects [V, V]");
    let v = op.shape()[0];
    let mut out = op.clone();
    let data = out.data_mut();
    for r in 0..v {
        let row = &mut data[r * v..(r + 1) * v];
        let sum: f32 = row.iter().sum();
        if sum.abs() > 1e-8 {
            for x in row {
                *x /= sum;
            }
        }
    }
    out
}

/// Stack the (row-normalised) [`weighted_incidence_operator`] over every
/// frame of a sequence: `positions` is `[T, V, D]`, the result is
/// `[T, V, V]`.
pub fn dynamic_operators(hg: &Hypergraph, positions: &NdArray) -> NdArray {
    let dis = moving_distance(positions);
    let (t, v) = (dis.shape()[0], dis.shape()[1]);
    let mut out = NdArray::zeros(&[t, v, v]);
    // frames are independent, so shard them over the worker pool; each
    // frame's [V, V] block is written by exactly one closure call, keeping
    // the result bitwise identical to the serial loop at any thread count
    let work = t * v * v * hg.n_edges().max(1);
    dhg_tensor::parallel::for_each_block(out.data_mut(), v * v, work, |ti, blk| {
        let row = &dis.data()[ti * v..(ti + 1) * v];
        let op = normalize_rows(&weighted_incidence_operator(hg, row));
        blk.copy_from_slice(op.data());
    });
    out
}

/// Rolling per-frame moving distances over a sliding window — Eq. 6
/// maintained one frame at a time instead of recomputed per window.
///
/// Pushing frame `t` computes a single `[V]` distance row against the true
/// predecessor frame (with the same all-zero missing-detection skip as
/// [`moving_distance`]); a window starting at stream position `s` then
/// holds exactly `moving_distance(full stream)[s..s + T]`. At stream
/// start, once frame 1 arrives, row 0 is backfilled with row 1 — the same
/// no-predecessor convention [`moving_distance`] uses — so for `s = 0` the
/// window is bitwise-identical to the offline computation. Later windows
/// are *better* than offline recomputation: their first row carries the
/// true predecessor distance instead of a copied one.
pub struct RollingDistance {
    window: usize,
    v: usize,
    d: usize,
    /// Per-frame `[V]` distance rows, oldest first.
    rows: std::collections::VecDeque<Vec<f32>>,
    /// The previous frame's raw coordinates `[V, D]`.
    prev: Option<Vec<f32>>,
    frames_seen: usize,
}

impl RollingDistance {
    /// A ring holding the distances of the last `window` frames of a
    /// `[V, D]`-jointed stream.
    pub fn new(window: usize, n_joints: usize, dim: usize) -> Self {
        assert!(window >= 1, "window must be at least one frame");
        RollingDistance {
            window,
            v: n_joints,
            d: dim,
            rows: std::collections::VecDeque::with_capacity(window),
            prev: None,
            frames_seen: 0,
        }
    }

    /// Append one frame `[V, D]` and update the ring.
    pub fn push(&mut self, frame: &[f32]) {
        assert_eq!(frame.len(), self.v * self.d, "frame must be [V, D]");
        let row = match &self.prev {
            None => vec![0.0; self.v], // stream frame 0: no predecessor yet
            Some(prev) => {
                let mut row = vec![0.0; self.v];
                for vi in 0..self.v {
                    let cur = &frame[vi * self.d..(vi + 1) * self.d];
                    let pre = &prev[vi * self.d..(vi + 1) * self.d];
                    // missing detections (all-zero joints) would
                    // otherwise register as huge teleports
                    if cur.iter().all(|&c| c == 0.0) || pre.iter().all(|&c| c == 0.0) {
                        continue;
                    }
                    row[vi] =
                        cur.iter().zip(pre).map(|(&a, &b)| (a - b) * (a - b)).sum::<f32>().sqrt();
                }
                row
            }
        };
        self.frames_seen += 1;
        if self.rows.len() == self.window {
            self.rows.pop_front();
        }
        self.rows.push_back(row);
        // offline convention: the very first stream frame copies frame 1's
        // distance instead of carrying a dead zero
        if self.frames_seen == 2 && self.rows.len() == 2 {
            let second = self.rows[1].clone();
            self.rows[0] = second;
        }
        self.prev = Some(frame.to_vec());
    }

    /// Frames currently held.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no frames have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether a full window of rows is available.
    pub fn is_full(&self) -> bool {
        self.rows.len() == self.window
    }

    /// The distance row of the most recently pushed frame.
    pub fn latest(&self) -> &[f32] {
        self.rows.back().expect("no frames pushed yet")
    }

    /// Stack the held rows into `[len, V]`, oldest first.
    pub fn distances(&self) -> NdArray {
        assert!(!self.rows.is_empty(), "no frames pushed yet");
        let t = self.rows.len();
        let mut out = NdArray::zeros(&[t, self.v]);
        for (ti, row) in self.rows.iter().enumerate() {
            out.data_mut()[ti * self.v..(ti + 1) * self.v].copy_from_slice(row);
        }
        out
    }
}

/// Rolling Eq. 9 operators over a sliding window: a [`RollingDistance`]
/// ring plus one cached row-normalised `[V, V]` operator per frame, so
/// each pushed frame costs a single [`weighted_incidence_operator`] build
/// instead of a full [`dynamic_operators`] sweep. [`RollingOperators::stacked`]
/// matches `dynamic_operators` slices of the full stream the same way
/// [`RollingDistance::distances`] matches [`moving_distance`].
pub struct RollingOperators {
    hg: Hypergraph,
    dist: RollingDistance,
    /// Cached `[V * V]` operators, oldest first, aligned with `dist.rows`.
    ops: std::collections::VecDeque<Vec<f32>>,
}

impl RollingOperators {
    /// A ring over the given (static) hypergraph.
    pub fn new(window: usize, hg: Hypergraph, dim: usize) -> Self {
        let v = hg.n_vertices();
        RollingOperators {
            hg,
            dist: RollingDistance::new(window, v, dim),
            ops: std::collections::VecDeque::with_capacity(window),
        }
    }

    fn op_row(&self, row: &[f32]) -> Vec<f32> {
        normalize_rows(&weighted_incidence_operator(&self.hg, row)).data().to_vec()
    }

    /// Append one frame `[V, D]`: one distance row + one operator build.
    pub fn push(&mut self, frame: &[f32]) {
        let had = self.dist.frames_seen;
        self.dist.push(frame);
        if self.ops.len() == self.dist.window {
            self.ops.pop_front();
        }
        self.ops.push_back(self.op_row(self.dist.latest()));
        // frame 0's row was backfilled from frame 1: refresh its operator
        if had == 1 && self.ops.len() == 2 {
            let first = self.op_row(&self.dist.rows[0]);
            self.ops[0] = first;
        }
    }

    /// Frames currently held.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no frames have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether a full window of operators is available.
    pub fn is_full(&self) -> bool {
        self.ops.len() == self.dist.window
    }

    /// Stack the cached operators into `[len, V, V]`, oldest first.
    pub fn stacked(&self) -> NdArray {
        assert!(!self.ops.is_empty(), "no frames pushed yet");
        let v = self.hg.n_vertices();
        let t = self.ops.len();
        let mut out = NdArray::zeros(&[t, v, v]);
        for (ti, op) in self.ops.iter().enumerate() {
            out.data_mut()[ti * v * v..(ti + 1) * v * v].copy_from_slice(op);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_distance_matches_hand_computation() {
        // one joint moving 3-4-5 style, one static (offset by 1 so no
        // joint hits the all-zero "missing detection" sentinel)
        let p = NdArray::from_vec(
            vec![
                1.0, 1.0, 1.0, /* v1 */ 2.0, 2.0, 2.0, // t = 0
                4.0, 5.0, 1.0, /* v1 */ 2.0, 2.0, 2.0, // t = 1
            ],
            &[2, 2, 3],
        );
        let d = moving_distance(&p);
        assert_eq!(d.shape(), &[2, 2]);
        assert!((d.at(&[1, 0]) - 5.0).abs() < 1e-6);
        assert_eq!(d.at(&[1, 1]), 0.0);
        // first frame copies the second
        assert!((d.at(&[0, 0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn missing_detections_do_not_register_as_teleports() {
        // a joint that drops to (0,0,0) for one frame (OpenPose missing
        // detection) must not spike the moving distance
        let p = NdArray::from_vec(
            vec![
                1.0, 1.0, 1.0, // t = 0: present
                0.0, 0.0, 0.0, // t = 1: missing
                1.0, 1.0, 1.0, // t = 2: present again
            ],
            &[3, 1, 3],
        );
        let d = moving_distance(&p);
        assert_eq!(d.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn single_frame_distances_are_zero() {
        let p = NdArray::ones(&[1, 3, 3]);
        let d = moving_distance(&p);
        assert_eq!(d.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn weights_normalise_within_each_hyperedge() {
        let hg = Hypergraph::new(4, vec![vec![0, 1, 2], vec![2, 3]]);
        let w = joint_weights(&hg, &[1.0, 2.0, 3.0, 1.0]);
        // edge 0: 1/6, 2/6, 3/6
        assert!((w.at(&[0, 0]) - 1.0 / 6.0).abs() < 1e-6);
        assert!((w.at(&[1, 0]) - 2.0 / 6.0).abs() < 1e-6);
        assert!((w.at(&[2, 0]) - 3.0 / 6.0).abs() < 1e-6);
        // edge 1: 3/4, 1/4
        assert!((w.at(&[2, 1]) - 0.75).abs() < 1e-6);
        assert!((w.at(&[3, 1]) - 0.25).abs() < 1e-6);
        // non-members are zero
        assert_eq!(w.at(&[3, 0]), 0.0);
        assert_eq!(w.at(&[0, 1]), 0.0);
    }

    #[test]
    fn weights_columns_sum_to_one() {
        let hg = Hypergraph::new(5, vec![vec![0, 1, 4], vec![1, 2, 3], vec![0, 3]]);
        let w = joint_weights(&hg, &[0.3, 0.0, 2.0, 1.5, 0.7]);
        for j in 0..3 {
            let col: f32 = (0..5).map(|i| w.at(&[i, j])).sum();
            assert!((col - 1.0).abs() < 1e-5, "column {j} sums to {col}");
        }
    }

    #[test]
    fn motionless_hyperedge_falls_back_to_uniform() {
        let hg = Hypergraph::new(3, vec![vec![0, 1, 2]]);
        let w = joint_weights(&hg, &[0.0, 0.0, 0.0]);
        for i in 0..3 {
            assert!((w.at(&[i, 0]) - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn operator_is_symmetric_psd_diagonal() {
        let hg = Hypergraph::new(4, vec![vec![0, 1, 2], vec![2, 3]]);
        let op = weighted_incidence_operator(&hg, &[1.0, 0.5, 2.0, 1.0]);
        assert_eq!(op.shape(), &[4, 4]);
        assert!(op.allclose(&op.transpose_last2(), 1e-6, 1e-7));
        // Gram matrices have non-negative diagonals
        for i in 0..4 {
            assert!(op.at(&[i, i]) >= 0.0);
        }
    }

    #[test]
    fn moving_joints_dominate_the_operator() {
        let hg = Hypergraph::new(3, vec![vec![0, 1, 2]]);
        // joint 2 moves 10x more than the others
        let op = weighted_incidence_operator(&hg, &[0.1, 0.1, 1.0]);
        assert!(op.at(&[2, 2]) > op.at(&[0, 0]) * 9.0);
    }

    #[test]
    fn normalize_rows_makes_rows_stochastic() {
        let op = NdArray::from_vec(vec![2.0, 2.0, 0.0, 0.0, 0.5, 1.5, 0.0, 0.0, 0.0], &[3, 3]);
        let n = normalize_rows(&op);
        assert!((n.at(&[0, 0]) - 0.5).abs() < 1e-6);
        assert!((n.at(&[1, 1]) - 0.25).abs() < 1e-6);
        // all-zero rows stay zero instead of becoming NaN
        assert_eq!(n.at(&[2, 2]), 0.0);
        assert!(n.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dynamic_operator_rows_sum_to_one() {
        let hg = Hypergraph::new(3, vec![vec![0, 1, 2]]);
        let p = NdArray::from_vec(
            vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0,
                 1.5, 1.0, 1.0, 2.0, 2.5, 2.0, 3.0, 3.0, 3.5],
            &[2, 3, 3],
        );
        let ops = dynamic_operators(&hg, &p);
        for t in 0..2 {
            for r in 0..3 {
                let sum: f32 = (0..3).map(|c| ops.at(&[t, r, c])).sum();
                assert!((sum - 1.0).abs() < 1e-5, "row ({t},{r}) sums to {sum}");
            }
        }
    }

    /// A deterministic [T, V, D] stream with one joint dropping out.
    fn stream(t: usize, v: usize, d: usize) -> NdArray {
        let mut data = Vec::with_capacity(t * v * d);
        for ti in 0..t {
            for vi in 0..v {
                for di in 0..d {
                    if vi == 1 && ti % 5 == 3 {
                        data.push(0.0); // missing detection
                    } else {
                        data.push(((ti * 31 + vi * 7 + di) as f32 * 0.37).sin() + 1.5);
                    }
                }
            }
        }
        NdArray::from_vec(data, &[t, v, d])
    }

    #[test]
    fn rolling_distance_first_window_matches_offline() {
        let (t, v, d) = (6, 4, 3);
        let p = stream(t, v, d);
        let mut roll = RollingDistance::new(t, v, d);
        for ti in 0..t {
            roll.push(&p.data()[ti * v * d..(ti + 1) * v * d]);
        }
        assert!(roll.is_full());
        assert_eq!(roll.distances(), moving_distance(&p), "first window must be bitwise offline");
    }

    #[test]
    fn rolling_distance_later_windows_are_full_stream_slices() {
        let (t, v, d, w) = (10, 4, 3, 4);
        let p = stream(t, v, d);
        let full = moving_distance(&p);
        let mut roll = RollingDistance::new(w, v, d);
        for ti in 0..t {
            roll.push(&p.data()[ti * v * d..(ti + 1) * v * d]);
        }
        // the window now covers stream frames t-w..t; each row must equal
        // the full-stream row (true-predecessor distances, not the
        // window-local frame-0 copy)
        let got = roll.distances();
        for (slot, ti) in (t - w..t).enumerate() {
            for vi in 0..v {
                assert_eq!(got.at(&[slot, vi]), full.at(&[ti, vi]), "row {ti} joint {vi}");
            }
        }
    }

    #[test]
    fn rolling_operators_match_dynamic_operators() {
        let (t, v, d, w) = (9, 5, 3, 4);
        let hg = Hypergraph::new(5, vec![vec![0, 1, 2], vec![2, 3, 4], vec![0, 4]]);
        let p = stream(t, v, d);
        let full_dist = moving_distance(&p);
        let mut roll = RollingOperators::new(w, hg.clone(), d);
        for ti in 0..t {
            roll.push(&p.data()[ti * v * d..(ti + 1) * v * d]);
            if ti + 1 >= w {
                // every held frame's operator equals the offline Eq. 9
                // operator of the full-stream distance row
                let got = roll.stacked();
                for (slot, si) in (ti + 1 - w..=ti).enumerate() {
                    let row = &full_dist.data()[si * v..(si + 1) * v];
                    let want = normalize_rows(&weighted_incidence_operator(&hg, row));
                    let block = got.slice_axis(0, slot, 1).reshape(&[v, v]);
                    assert_eq!(block, want, "frame {si} operator diverged");
                }
            }
        }
    }

    #[test]
    fn rolling_operators_first_window_matches_dynamic_operators() {
        let (t, v, d) = (5, 4, 3);
        let hg = Hypergraph::new(4, vec![vec![0, 1], vec![1, 2, 3]]);
        let p = stream(t, v, d);
        let mut roll = RollingOperators::new(t, hg.clone(), d);
        for ti in 0..t {
            roll.push(&p.data()[ti * v * d..(ti + 1) * v * d]);
        }
        assert_eq!(roll.stacked(), dynamic_operators(&hg, &p));
    }

    #[test]
    fn dynamic_operators_stack_per_frame() {
        let hg = Hypergraph::new(2, vec![vec![0, 1]]);
        let p = NdArray::from_vec(
            vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, /* t1 */ 3.0, 1.0, 1.0, 2.0, 2.0, 2.0],
            &[2, 2, 3],
        );
        let ops = dynamic_operators(&hg, &p);
        assert_eq!(ops.shape(), &[2, 2, 2]);
        // at t=1 joint 0 carries all the weight
        assert!((ops.at(&[1, 0, 0]) - 1.0).abs() < 1e-6);
        assert_eq!(ops.at(&[1, 1, 1]), 0.0);
    }
}
