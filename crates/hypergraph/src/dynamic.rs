//! Dynamic joint weights (§3.3, Eq. 6–9).
//!
//! Each joint's importance at time `t` is its moving distance between
//! consecutive frames (Eq. 6), normalised over the members of each
//! hyperedge (Eq. 7 — the paper labels this a softmax but writes a plain
//! distance-proportional normalisation; we follow the written equation).
//! The weighted incidence `Imp = W_all ∘ H` (Eq. 8) then yields the
//! propagation operator `Imp · Impᵀ` (Eq. 9).

use crate::Hypergraph;
use dhg_tensor::NdArray;

/// Per-frame, per-joint moving distance (Eq. 6).
///
/// `positions` is `[T, V, D]`; the result is `[T, V]` where entry `(t, v)`
/// is `‖p_v^t − p_v^{t−1}‖₂`. The first frame has no predecessor; it
/// copies frame 1's distance so it carries the same motion signal instead
/// of a dead zero (for `T == 1` everything is zero).
pub fn moving_distance(positions: &NdArray) -> NdArray {
    assert_eq!(positions.ndim(), 3, "positions must be [T, V, D]");
    let (t, v, d) = (positions.shape()[0], positions.shape()[1], positions.shape()[2]);
    let mut out = NdArray::zeros(&[t, v]);
    let p = positions.data();
    for ti in 1..t {
        for vi in 0..v {
            let cur = &p[(ti * v + vi) * d..(ti * v + vi) * d + d];
            let prev = &p[((ti - 1) * v + vi) * d..((ti - 1) * v + vi) * d + d];
            // missing detections (all-zero joints, the OpenPose
            // convention) would otherwise register as huge teleports
            if cur.iter().all(|&c| c == 0.0) || prev.iter().all(|&c| c == 0.0) {
                continue;
            }
            let dist: f32 =
                cur.iter().zip(prev).map(|(&a, &b)| (a - b) * (a - b)).sum::<f32>().sqrt();
            out.set(&[ti, vi], dist);
        }
    }
    if t > 1 {
        for vi in 0..v {
            let second = out.at(&[1, vi]);
            out.set(&[0, vi], second);
        }
    }
    out
}

/// The per-(vertex, hyperedge) weight matrix `W_all ∈ [0,1]^{V×E}`
/// (Eq. 7): within each hyperedge, member weights are the members' moving
/// distances normalised to sum to 1. A motionless hyperedge (all distances
/// zero) falls back to uniform weights, matching the static-hypergraph
/// behaviour.
pub fn joint_weights(hg: &Hypergraph, distances: &[f32]) -> NdArray {
    assert_eq!(distances.len(), hg.n_vertices(), "one distance per vertex required");
    let (v, e) = (hg.n_vertices(), hg.n_edges());
    let mut w = NdArray::zeros(&[v, e]);
    for (j, edge) in hg.edges().iter().enumerate() {
        let total: f32 = edge.iter().map(|&i| distances[i]).sum();
        if total > 1e-8 {
            for &i in edge {
                w.set(&[i, j], distances[i] / total);
            }
        } else {
            let uniform = 1.0 / edge.len() as f32;
            for &i in edge {
                w.set(&[i, j], uniform);
            }
        }
    }
    w
}

/// The propagation operator `Imp · Impᵀ` of Eq. 9 for one frame, where
/// `Imp = W_all ∘ H` (Eq. 8). Returns a `[V, V]` matrix.
pub fn weighted_incidence_operator(hg: &Hypergraph, distances: &[f32]) -> NdArray {
    let imp = joint_weights(hg, distances); // already zero off-edge, so ∘H is free
    imp.matmul(&imp.transpose_last2())
}

/// Stack [`weighted_incidence_operator`] over every frame of a sequence:
/// `positions` is `[T, V, D]`, the result is `[T, V, V]`.
/// Normalise each row of a `[V, V]` operator to sum to 1 (rows of zeros
/// stay zero). `Imp·Impᵀ` entries scale like `1/|e|²`, which would make
/// the joint-weight branch orders of magnitude weaker than the
/// row-stochastic static operator it is summed with; row normalisation
/// restores comparable feature magnitude while preserving Eq. 9\'s
/// motion-driven mixing *pattern*.
pub fn normalize_rows(op: &NdArray) -> NdArray {
    assert_eq!(op.ndim(), 2, "normalize_rows expects [V, V]");
    let v = op.shape()[0];
    let mut out = op.clone();
    let data = out.data_mut();
    for r in 0..v {
        let row = &mut data[r * v..(r + 1) * v];
        let sum: f32 = row.iter().sum();
        if sum.abs() > 1e-8 {
            for x in row {
                *x /= sum;
            }
        }
    }
    out
}

/// Stack the (row-normalised) [`weighted_incidence_operator`] over every
/// frame of a sequence: `positions` is `[T, V, D]`, the result is
/// `[T, V, V]`.
pub fn dynamic_operators(hg: &Hypergraph, positions: &NdArray) -> NdArray {
    let dis = moving_distance(positions);
    let (t, v) = (dis.shape()[0], dis.shape()[1]);
    let mut out = NdArray::zeros(&[t, v, v]);
    // frames are independent, so shard them over the worker pool; each
    // frame's [V, V] block is written by exactly one closure call, keeping
    // the result bitwise identical to the serial loop at any thread count
    let work = t * v * v * hg.n_edges().max(1);
    dhg_tensor::parallel::for_each_block(out.data_mut(), v * v, work, |ti, blk| {
        let row = &dis.data()[ti * v..(ti + 1) * v];
        let op = normalize_rows(&weighted_incidence_operator(hg, row));
        blk.copy_from_slice(op.data());
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_distance_matches_hand_computation() {
        // one joint moving 3-4-5 style, one static (offset by 1 so no
        // joint hits the all-zero "missing detection" sentinel)
        let p = NdArray::from_vec(
            vec![
                1.0, 1.0, 1.0, /* v1 */ 2.0, 2.0, 2.0, // t = 0
                4.0, 5.0, 1.0, /* v1 */ 2.0, 2.0, 2.0, // t = 1
            ],
            &[2, 2, 3],
        );
        let d = moving_distance(&p);
        assert_eq!(d.shape(), &[2, 2]);
        assert!((d.at(&[1, 0]) - 5.0).abs() < 1e-6);
        assert_eq!(d.at(&[1, 1]), 0.0);
        // first frame copies the second
        assert!((d.at(&[0, 0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn missing_detections_do_not_register_as_teleports() {
        // a joint that drops to (0,0,0) for one frame (OpenPose missing
        // detection) must not spike the moving distance
        let p = NdArray::from_vec(
            vec![
                1.0, 1.0, 1.0, // t = 0: present
                0.0, 0.0, 0.0, // t = 1: missing
                1.0, 1.0, 1.0, // t = 2: present again
            ],
            &[3, 1, 3],
        );
        let d = moving_distance(&p);
        assert_eq!(d.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn single_frame_distances_are_zero() {
        let p = NdArray::ones(&[1, 3, 3]);
        let d = moving_distance(&p);
        assert_eq!(d.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn weights_normalise_within_each_hyperedge() {
        let hg = Hypergraph::new(4, vec![vec![0, 1, 2], vec![2, 3]]);
        let w = joint_weights(&hg, &[1.0, 2.0, 3.0, 1.0]);
        // edge 0: 1/6, 2/6, 3/6
        assert!((w.at(&[0, 0]) - 1.0 / 6.0).abs() < 1e-6);
        assert!((w.at(&[1, 0]) - 2.0 / 6.0).abs() < 1e-6);
        assert!((w.at(&[2, 0]) - 3.0 / 6.0).abs() < 1e-6);
        // edge 1: 3/4, 1/4
        assert!((w.at(&[2, 1]) - 0.75).abs() < 1e-6);
        assert!((w.at(&[3, 1]) - 0.25).abs() < 1e-6);
        // non-members are zero
        assert_eq!(w.at(&[3, 0]), 0.0);
        assert_eq!(w.at(&[0, 1]), 0.0);
    }

    #[test]
    fn weights_columns_sum_to_one() {
        let hg = Hypergraph::new(5, vec![vec![0, 1, 4], vec![1, 2, 3], vec![0, 3]]);
        let w = joint_weights(&hg, &[0.3, 0.0, 2.0, 1.5, 0.7]);
        for j in 0..3 {
            let col: f32 = (0..5).map(|i| w.at(&[i, j])).sum();
            assert!((col - 1.0).abs() < 1e-5, "column {j} sums to {col}");
        }
    }

    #[test]
    fn motionless_hyperedge_falls_back_to_uniform() {
        let hg = Hypergraph::new(3, vec![vec![0, 1, 2]]);
        let w = joint_weights(&hg, &[0.0, 0.0, 0.0]);
        for i in 0..3 {
            assert!((w.at(&[i, 0]) - 1.0 / 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn operator_is_symmetric_psd_diagonal() {
        let hg = Hypergraph::new(4, vec![vec![0, 1, 2], vec![2, 3]]);
        let op = weighted_incidence_operator(&hg, &[1.0, 0.5, 2.0, 1.0]);
        assert_eq!(op.shape(), &[4, 4]);
        assert!(op.allclose(&op.transpose_last2(), 1e-6, 1e-7));
        // Gram matrices have non-negative diagonals
        for i in 0..4 {
            assert!(op.at(&[i, i]) >= 0.0);
        }
    }

    #[test]
    fn moving_joints_dominate_the_operator() {
        let hg = Hypergraph::new(3, vec![vec![0, 1, 2]]);
        // joint 2 moves 10x more than the others
        let op = weighted_incidence_operator(&hg, &[0.1, 0.1, 1.0]);
        assert!(op.at(&[2, 2]) > op.at(&[0, 0]) * 9.0);
    }

    #[test]
    fn normalize_rows_makes_rows_stochastic() {
        let op = NdArray::from_vec(vec![2.0, 2.0, 0.0, 0.0, 0.5, 1.5, 0.0, 0.0, 0.0], &[3, 3]);
        let n = normalize_rows(&op);
        assert!((n.at(&[0, 0]) - 0.5).abs() < 1e-6);
        assert!((n.at(&[1, 1]) - 0.25).abs() < 1e-6);
        // all-zero rows stay zero instead of becoming NaN
        assert_eq!(n.at(&[2, 2]), 0.0);
        assert!(n.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn dynamic_operator_rows_sum_to_one() {
        let hg = Hypergraph::new(3, vec![vec![0, 1, 2]]);
        let p = NdArray::from_vec(
            vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0,
                 1.5, 1.0, 1.0, 2.0, 2.5, 2.0, 3.0, 3.0, 3.5],
            &[2, 3, 3],
        );
        let ops = dynamic_operators(&hg, &p);
        for t in 0..2 {
            for r in 0..3 {
                let sum: f32 = (0..3).map(|c| ops.at(&[t, r, c])).sum();
                assert!((sum - 1.0).abs() < 1e-5, "row ({t},{r}) sums to {sum}");
            }
        }
    }

    #[test]
    fn dynamic_operators_stack_per_frame() {
        let hg = Hypergraph::new(2, vec![vec![0, 1]]);
        let p = NdArray::from_vec(
            vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, /* t1 */ 3.0, 1.0, 1.0, 2.0, 2.0, 2.0],
            &[2, 2, 3],
        );
        let ops = dynamic_operators(&hg, &p);
        assert_eq!(ops.shape(), &[2, 2, 2]);
        // at t=1 joint 0 carries all the weight
        assert!((ops.at(&[1, 0, 0]) - 1.0).abs() < 1e-6);
        assert_eq!(ops.at(&[1, 1, 1]), 0.0);
    }
}
