//! The hypergraph structure `G_h = {V_h, ξ_h, W_h}` of §3.2.

use dhg_tensor::NdArray;

/// A hypergraph over vertices `0..n_vertices` whose hyperedges each connect
/// an arbitrary subset of vertices with a scalar weight (`W_h`, initially 1
/// in the paper).
#[derive(Clone, Debug, PartialEq)]
pub struct Hypergraph {
    n_vertices: usize,
    /// Sorted, deduplicated member lists, one per hyperedge.
    edges: Vec<Vec<usize>>,
    /// Per-hyperedge weights `W_h(e)`.
    weights: Vec<f32>,
}

impl Hypergraph {
    /// Build a hypergraph with unit hyperedge weights. Panics on empty
    /// hyperedges or out-of-range vertices; members are sorted and
    /// deduplicated.
    pub fn new(n_vertices: usize, edges: Vec<Vec<usize>>) -> Self {
        let weights = vec![1.0; edges.len()];
        Self::with_weights(n_vertices, edges, weights)
    }

    /// Build a hypergraph with explicit hyperedge weights.
    pub fn with_weights(n_vertices: usize, edges: Vec<Vec<usize>>, weights: Vec<f32>) -> Self {
        assert_eq!(edges.len(), weights.len(), "one weight per hyperedge required");
        let edges: Vec<Vec<usize>> = edges
            .into_iter()
            .map(|mut e| {
                assert!(!e.is_empty(), "hyperedges must be non-empty");
                e.sort_unstable();
                e.dedup();
                for &v in &e {
                    assert!(v < n_vertices, "vertex {v} out of range (n={n_vertices})");
                }
                e
            })
            .collect();
        Hypergraph { n_vertices, edges, weights }
    }

    /// Number of vertices `|V_h|`.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of hyperedges `|ξ_h|`.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The member vertices of hyperedge `e`.
    pub fn edge(&self, e: usize) -> &[usize] {
        &self.edges[e]
    }

    /// All hyperedges.
    pub fn edges(&self) -> &[Vec<usize>] {
        &self.edges
    }

    /// Hyperedge weights `W_h`.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Merge the hyperedge sets of two hypergraphs over the same vertex set
    /// (the union of the k-NN and k-means sets in §3.4).
    pub fn union(&self, other: &Hypergraph) -> Hypergraph {
        assert_eq!(self.n_vertices, other.n_vertices, "union over differing vertex sets");
        let mut edges = self.edges.clone();
        edges.extend(other.edges.iter().cloned());
        let mut weights = self.weights.clone();
        weights.extend_from_slice(&other.weights);
        Hypergraph { n_vertices: self.n_vertices, edges, weights }
    }

    /// The incidence matrix `H ∈ {0,1}^{V×E}` of Eq. 2.
    pub fn incidence(&self) -> NdArray {
        let (v, e) = (self.n_vertices, self.edges.len());
        let mut h = NdArray::zeros(&[v, e]);
        for (j, edge) in self.edges.iter().enumerate() {
            for &i in edge {
                h.set(&[i, j], 1.0);
            }
        }
        h
    }

    /// Weighted vertex degrees `d(v) = Σ_e W_h(e) h(v, e)` (Eq. 3).
    pub fn vertex_degrees(&self) -> Vec<f32> {
        let mut d = vec![0.0f32; self.n_vertices];
        for (edge, &w) in self.edges.iter().zip(&self.weights) {
            for &v in edge {
                d[v] += w;
            }
        }
        d
    }

    /// Hyperedge degrees `δ(e) = Σ_v h(v, e)` (Eq. 4).
    pub fn edge_degrees(&self) -> Vec<f32> {
        self.edges.iter().map(|e| e.len() as f32).collect()
    }

    /// The normalised hypergraph convolution operator of Eq. 5:
    ///
    /// `Ω = D_v^{-1/2} · H · W · D_e^{-1} · Hᵀ · D_v^{-1/2}` — a `[V, V]`
    /// matrix applied to vertex features. Isolated vertices (degree 0)
    /// contribute zero rows/columns rather than NaNs.
    pub fn operator(&self) -> NdArray {
        let v = self.n_vertices;
        let dv = self.vertex_degrees();
        let de = self.edge_degrees();
        let dv_inv_sqrt: Vec<f32> =
            dv.iter().map(|&d| if d > 0.0 { d.powf(-0.5) } else { 0.0 }).collect();
        let mut op = NdArray::zeros(&[v, v]);
        let data = op.data_mut();
        // Ω[i][j] = Σ_e  dv⁻½[i] · h(i,e) · w(e)/δ(e) · h(j,e) · dv⁻½[j]
        for (edge, (&w, &deg)) in self.edges.iter().zip(self.weights.iter().zip(&de)) {
            if deg == 0.0 {
                continue;
            }
            let scale = w / deg;
            for &i in edge {
                let si = dv_inv_sqrt[i] * scale;
                if si == 0.0 {
                    continue;
                }
                for &j in edge {
                    data[i * v + j] += si * dv_inv_sqrt[j];
                }
            }
        }
        op
    }

    /// The operator of Eq. 5 computed naively from its matrix-product
    /// definition. Slower; retained as an independent oracle for tests.
    pub fn operator_dense_reference(&self) -> NdArray {
        let h = self.incidence();
        let v = self.n_vertices;
        let e = self.edges.len();
        let mut dv_is = NdArray::zeros(&[v, v]);
        for (i, &d) in self.vertex_degrees().iter().enumerate() {
            dv_is.set(&[i, i], if d > 0.0 { d.powf(-0.5) } else { 0.0 });
        }
        let mut w_de_inv = NdArray::zeros(&[e, e]);
        for (j, (&w, &d)) in self.weights.iter().zip(self.edge_degrees().iter()).enumerate() {
            w_de_inv.set(&[j, j], if d > 0.0 { w / d } else { 0.0 });
        }
        dv_is.matmul(&h).matmul(&w_de_inv).matmul(&h.transpose_last2()).matmul(&dv_is)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        // 5 vertices, 3 hyperedges incl. an overlap and a weighted edge
        Hypergraph::with_weights(
            5,
            vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 0]],
            vec![1.0, 2.0, 1.0],
        )
    }

    #[test]
    fn incidence_matches_membership() {
        let h = sample().incidence();
        assert_eq!(h.shape(), &[5, 3]);
        assert_eq!(h.at(&[0, 0]), 1.0);
        assert_eq!(h.at(&[0, 2]), 1.0);
        assert_eq!(h.at(&[0, 1]), 0.0);
        assert_eq!(h.at(&[2, 1]), 1.0);
    }

    #[test]
    fn degrees_follow_eq3_eq4() {
        let hg = sample();
        // d(2) = w(e0) + w(e1) = 1 + 2
        assert_eq!(hg.vertex_degrees(), vec![2.0, 1.0, 3.0, 3.0, 1.0]);
        assert_eq!(hg.edge_degrees(), vec![3.0, 2.0, 3.0]);
    }

    #[test]
    fn operator_matches_dense_reference() {
        let hg = sample();
        let fast = hg.operator();
        let slow = hg.operator_dense_reference();
        assert!(fast.allclose(&slow, 1e-5, 1e-6), "{fast:?} vs {slow:?}");
    }

    #[test]
    fn operator_is_symmetric() {
        let hg = sample();
        let op = hg.operator();
        assert!(op.allclose(&op.transpose_last2(), 1e-6, 1e-7));
    }

    #[test]
    fn isolated_vertex_gives_zero_row() {
        let hg = Hypergraph::new(4, vec![vec![0, 1]]);
        let op = hg.operator();
        for j in 0..4 {
            assert_eq!(op.at(&[3, j]), 0.0);
            assert_eq!(op.at(&[j, 3]), 0.0);
        }
        // no NaNs anywhere
        assert!(op.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn union_concatenates_edges() {
        let a = Hypergraph::new(4, vec![vec![0, 1]]);
        let b = Hypergraph::with_weights(4, vec![vec![2, 3]], vec![0.5]);
        let u = a.union(&b);
        assert_eq!(u.n_edges(), 2);
        assert_eq!(u.weights(), &[1.0, 0.5]);
    }

    #[test]
    fn members_are_sorted_and_deduped() {
        let hg = Hypergraph::new(5, vec![vec![3, 1, 3, 2]]);
        assert_eq!(hg.edge(0), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_edge_panics() {
        Hypergraph::new(3, vec![vec![]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_vertex_panics() {
        Hypergraph::new(3, vec![vec![0, 3]]);
    }

    #[test]
    fn single_edge_all_vertices_operator_rows_sum_to_one() {
        // With one hyperedge covering everything and unit weight, the
        // operator is (1/δ)·J normalised by dv=1: each row sums to 1.
        let hg = Hypergraph::new(4, vec![vec![0, 1, 2, 3]]);
        let op = hg.operator();
        for i in 0..4 {
            let row: f32 = (0..4).map(|j| op.at(&[i, j])).sum();
            assert!((row - 1.0).abs() < 1e-6);
        }
    }
}
