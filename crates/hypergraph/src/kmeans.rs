//! `k_m`-medoid cluster hyperedges — the "global information" set of §3.4.
//!
//! The paper's procedure: pick `k_m` joints as centroids, assign every
//! joint to its nearest centroid, replace each centroid by the member with
//! the smallest mean distance to the rest of its cluster (a medoid update,
//! which keeps centroids on actual joints), and iterate until the centroids
//! stop moving. The resulting `k_m` disjoint clusters become hyperedges.

use crate::Hypergraph;
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};

#[inline]
fn dist2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

const MAX_ITERS: usize = 50;

// process-wide observability counters (see [`kmeans_counters`]): cheap
// relaxed atomics so warm-start effectiveness is measurable in serving
// and bench binaries without threading a registry through every call
static RUNS: AtomicU64 = AtomicU64::new(0);
static NON_CONVERGED: AtomicU64 = AtomicU64::new(0);
static TOTAL_ITERS: AtomicU64 = AtomicU64::new(0);

/// Cumulative process-wide k-medoids statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KmeansCounters {
    /// Clustering runs performed.
    pub runs: u64,
    /// Runs that hit [`MAX_ITERS`](self) without the medoids stabilising.
    pub non_converged: u64,
    /// Total assignment/update iterations across all runs (mean iteration
    /// count = `total_iterations / runs` — warm starts push this down).
    pub total_iterations: u64,
}

/// Snapshot the process-wide counters updated by every clustering run.
pub fn kmeans_counters() -> KmeansCounters {
    KmeansCounters {
        runs: RUNS.load(Ordering::Relaxed),
        non_converged: NON_CONVERGED.load(Ordering::Relaxed),
        total_iterations: TOTAL_ITERS.load(Ordering::Relaxed),
    }
}

/// Result of one k-medoids run: the cluster hyperedges plus everything a
/// warm-started caller needs to observe and continue from.
#[derive(Clone, Debug, PartialEq)]
pub struct KmeansOutcome {
    /// The `k_m` disjoint, covering cluster hyperedges.
    pub hypergraph: Hypergraph,
    /// Final medoid vertex per cluster — feed back into
    /// [`kmeans_hyperedges_seeded`] to warm-start the next frame.
    pub medoids: Vec<usize>,
    /// Assignment/update iterations performed.
    pub iterations: usize,
    /// Whether the medoids stabilised before the iteration cap; `false`
    /// means the run was cut off at `MAX_ITERS` (previously a silent
    /// stop).
    pub converged: bool,
}

/// Partition `n_vertices` points (`coords` row-major `[n_vertices, dim]`)
/// into `k_m` disjoint clusters and return them as hyperedges.
///
/// The assignment is deterministic given the RNG state. Empty clusters are
/// repaired by stealing the point farthest from its current medoid, so the
/// result always has exactly `k_m` non-empty, disjoint, covering
/// hyperedges.
pub fn kmeans_hyperedges(
    coords: &[f32],
    n_vertices: usize,
    dim: usize,
    km: usize,
    rng: &mut impl Rng,
) -> Hypergraph {
    kmeans_hyperedges_outcome(coords, n_vertices, dim, km, rng).hypergraph
}

/// [`kmeans_hyperedges`] with the full [`KmeansOutcome`] (final medoids,
/// iteration count, convergence flag).
pub fn kmeans_hyperedges_outcome(
    coords: &[f32],
    n_vertices: usize,
    dim: usize,
    km: usize,
    rng: &mut impl Rng,
) -> KmeansOutcome {
    assert_eq!(coords.len(), n_vertices * dim, "coords must be [n_vertices, dim]");
    assert!(km >= 1, "k_m must be at least 1");
    assert!(km <= n_vertices, "k_m = {km} exceeds vertex count {n_vertices}");
    // initial centroids: km distinct joints
    let mut ids: Vec<usize> = (0..n_vertices).collect();
    ids.shuffle(rng);
    run(coords, n_vertices, dim, ids[..km].to_vec())
}

/// K-medoids warm-started from explicit initial medoids — the incremental
/// builder's entry point (§3.4's iteration, seeded with the previous
/// frame's converged medoids instead of a fresh shuffle). The medoids must
/// be distinct, in-range vertices.
pub fn kmeans_hyperedges_seeded(
    coords: &[f32],
    n_vertices: usize,
    dim: usize,
    medoids: &[usize],
) -> KmeansOutcome {
    assert_eq!(coords.len(), n_vertices * dim, "coords must be [n_vertices, dim]");
    assert!(!medoids.is_empty(), "need at least one seed medoid");
    assert!(medoids.len() <= n_vertices, "k_m = {} exceeds vertex count {n_vertices}", medoids.len());
    let mut seen = vec![false; n_vertices];
    for &m in medoids {
        assert!(m < n_vertices, "seed medoid {m} out of range (n={n_vertices})");
        assert!(!seen[m], "seed medoid {m} duplicated");
        seen[m] = true;
    }
    run(coords, n_vertices, dim, medoids.to_vec())
}

/// The shared assignment/repair/update loop behind both entry points.
fn run(coords: &[f32], n_vertices: usize, dim: usize, mut medoids: Vec<usize>) -> KmeansOutcome {
    let km = medoids.len();
    let point = |i: usize| &coords[i * dim..(i + 1) * dim];
    let mut assign = vec![0usize; n_vertices];
    let mut iterations = 0usize;
    let mut converged = false;
    for _ in 0..MAX_ITERS {
        iterations += 1;
        // assignment step: nearest medoid (ties to the lower cluster index)
        for (v, slot) in assign.iter_mut().enumerate() {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, &m) in medoids.iter().enumerate() {
                let d = dist2(point(v), point(m));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            *slot = best;
        }

        // repair empty clusters: steal the globally worst-assigned point
        loop {
            let mut counts = vec![0usize; km];
            for &a in &assign {
                counts[a] += 1;
            }
            let Some(empty) = counts.iter().position(|&c| c == 0) else { break };
            let (worst, _) = (0..n_vertices)
                .filter(|&v| counts[assign[v]] > 1)
                .map(|v| (v, dist2(point(v), point(medoids[assign[v]]))))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("at least one donor cluster has > 1 member");
            assign[worst] = empty;
            medoids[empty] = worst;
        }

        // update step: medoid = member with the smallest mean distance to
        // the other members of its cluster
        let mut new_medoids = medoids.clone();
        for (c, medoid) in new_medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n_vertices).filter(|&v| assign[v] == c).collect();
            let best = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let sa: f32 = members.iter().map(|&m| dist2(point(a), point(m))).sum();
                    let sb: f32 = members.iter().map(|&m| dist2(point(b), point(m))).sum();
                    sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
                })
                .expect("cluster repaired to be non-empty");
            *medoid = best;
        }

        if new_medoids == medoids {
            converged = true;
            break; // §3.4: iterate until the centroid change is 0
        }
        medoids = new_medoids;
    }

    RUNS.fetch_add(1, Ordering::Relaxed);
    TOTAL_ITERS.fetch_add(iterations as u64, Ordering::Relaxed);
    if !converged {
        NON_CONVERGED.fetch_add(1, Ordering::Relaxed);
    }

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); km];
    for (v, &c) in assign.iter().enumerate() {
        edges[c].push(v);
    }
    KmeansOutcome { hypergraph: Hypergraph::new(n_vertices, edges), medoids, iterations, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two well-separated 3-D clusters of 4 points each.
    fn two_clusters() -> Vec<f32> {
        let mut c = Vec::new();
        for i in 0..4 {
            c.extend_from_slice(&[i as f32 * 0.1, 0.0, 0.0]);
        }
        for i in 0..4 {
            c.extend_from_slice(&[50.0 + i as f32 * 0.1, 0.0, 0.0]);
        }
        c
    }

    #[test]
    fn partition_is_disjoint_and_covering() {
        let coords = two_clusters();
        let mut rng = StdRng::seed_from_u64(7);
        let hg = kmeans_hyperedges(&coords, 8, 3, 3, &mut rng);
        assert_eq!(hg.n_edges(), 3);
        let mut seen = [false; 8];
        for e in hg.edges() {
            assert!(!e.is_empty());
            for &v in e {
                assert!(!seen[v], "vertex {v} in two clusters");
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "not all vertices covered");
    }

    #[test]
    fn separated_clusters_are_recovered() {
        let coords = two_clusters();
        let mut rng = StdRng::seed_from_u64(3);
        let hg = kmeans_hyperedges(&coords, 8, 3, 2, &mut rng);
        let mut sizes: Vec<usize> = hg.edges().iter().map(|e| e.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![4, 4]);
        // each hyperedge is entirely one side
        for e in hg.edges() {
            let left = e.iter().filter(|&&v| v < 4).count();
            assert!(left == 0 || left == 4, "mixed cluster: {e:?}");
        }
    }

    #[test]
    fn km_equals_n_gives_singletons() {
        let coords = two_clusters();
        let mut rng = StdRng::seed_from_u64(11);
        let hg = kmeans_hyperedges(&coords, 8, 3, 8, &mut rng);
        for e in hg.edges() {
            assert_eq!(e.len(), 1);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let coords = two_clusters();
        let a = kmeans_hyperedges(&coords, 8, 3, 3, &mut StdRng::seed_from_u64(42));
        let b = kmeans_hyperedges(&coords, 8, 3, 3, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn identical_points_do_not_loop_forever() {
        let coords = vec![2.0; 6 * 3];
        let mut rng = StdRng::seed_from_u64(5);
        let hg = kmeans_hyperedges(&coords, 6, 3, 2, &mut rng);
        assert_eq!(hg.n_edges(), 2);
        let total: usize = hg.edges().iter().map(|e| e.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    #[should_panic(expected = "exceeds vertex count")]
    fn km_too_large_panics() {
        let coords = vec![0.0; 9];
        kmeans_hyperedges(&coords, 3, 3, 4, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn outcome_matches_plain_entry_point() {
        let coords = two_clusters();
        let out = kmeans_hyperedges_outcome(&coords, 8, 3, 3, &mut StdRng::seed_from_u64(42));
        let hg = kmeans_hyperedges(&coords, 8, 3, 3, &mut StdRng::seed_from_u64(42));
        assert_eq!(out.hypergraph, hg);
        assert!(out.converged, "well-separated clusters should converge");
        assert!(out.iterations >= 1);
        assert_eq!(out.medoids.len(), 3);
        // the reported medoids really are the final ones: re-seeding from
        // them is a fixed point
        let again = kmeans_hyperedges_seeded(&coords, 8, 3, &out.medoids);
        assert_eq!(again.hypergraph, out.hypergraph);
        assert_eq!(again.medoids, out.medoids);
        assert_eq!(again.iterations, 1, "converged medoids must be a fixed point");
    }

    #[test]
    fn seeded_warm_start_takes_fewer_iterations() {
        let coords = two_clusters();
        let cold = kmeans_hyperedges_outcome(&coords, 8, 3, 2, &mut StdRng::seed_from_u64(9));
        let warm = kmeans_hyperedges_seeded(&coords, 8, 3, &cold.medoids);
        assert!(warm.iterations <= cold.iterations);
        assert_eq!(warm.hypergraph, cold.hypergraph);
    }

    #[test]
    fn counters_accumulate() {
        let coords = two_clusters();
        let before = kmeans_counters();
        kmeans_hyperedges(&coords, 8, 3, 2, &mut StdRng::seed_from_u64(1));
        let after = kmeans_counters();
        assert!(after.runs > before.runs);
        assert!(after.total_iterations > before.total_iterations);
    }

    #[test]
    #[should_panic(expected = "duplicated")]
    fn seeded_rejects_duplicate_medoids() {
        let coords = vec![0.0; 12];
        kmeans_hyperedges_seeded(&coords, 4, 3, &[1, 1]);
    }
}
