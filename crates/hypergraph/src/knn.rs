//! `k_n`-nearest-neighbour hyperedges — the "common information" set of
//! §3.4 (Eq. 11).
//!
//! For each joint the `k_n` joints with the smallest Euclidean distance
//! (including the joint itself, whose distance is zero) form one hyperedge,
//! yielding `N` hyperedges of `k_n` members each.

use crate::Hypergraph;

/// Squared Euclidean distance between two points of dimension `d`.
#[inline]
fn dist2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// The `k_n`-NN hyperedge of a single anchor vertex, in canonical
/// (ascending-index) member order.
///
/// `coords` is row-major `[n_vertices, dim]`. Ties are broken by vertex
/// index, and the selected members are sorted before returning, so the
/// same coordinates always yield the same member list — edge sets built
/// by different code paths (from-scratch vs. incremental) compare
/// bitwise. The incremental builder caches these per-anchor lists.
pub fn knn_edge(coords: &[f32], n_vertices: usize, dim: usize, kn: usize, anchor: usize) -> Vec<usize> {
    let pi = &coords[anchor * dim..(anchor + 1) * dim];
    let mut order: Vec<usize> = (0..n_vertices).collect();
    // partial sort: the kn smallest by (distance, index)
    order.select_nth_unstable_by(kn - 1, |&a, &b| {
        let da = dist2(&coords[a * dim..(a + 1) * dim], pi);
        let db = dist2(&coords[b * dim..(b + 1) * dim], pi);
        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    order.truncate(kn);
    // canonicalise: `select_nth_unstable_by` leaves the prefix in
    // arbitrary order; sorting makes the member list a pure function of
    // the coordinates alone
    order.sort_unstable();
    order
}

/// Build the `k_n`-NN hyperedge set for one frame.
///
/// `coords` is row-major `[n_vertices, dim]` (the paper uses `dim = 3`
/// joint coordinates; the dynamic-topology branch uses FC-mapped features).
/// Ties are broken by vertex index so the construction is deterministic,
/// and every edge's members are in canonical ascending order (see
/// [`knn_edge`]).
///
/// Panics if `kn == 0` or `kn > n_vertices`.
pub fn knn_hyperedges(coords: &[f32], n_vertices: usize, dim: usize, kn: usize) -> Hypergraph {
    assert_eq!(coords.len(), n_vertices * dim, "coords must be [n_vertices, dim]");
    assert!(kn >= 1, "k_n must be at least 1");
    assert!(kn <= n_vertices, "k_n = {kn} exceeds vertex count {n_vertices}");
    // each anchor's neighbour search is independent; the partial sort is
    // deterministic (ties broken by index), so sharding anchors over the
    // worker pool returns the same edge set at any thread count
    let work = n_vertices * n_vertices * (dim + 4);
    let edges = dhg_tensor::parallel::parallel_map(n_vertices, work, |i| {
        knn_edge(coords, n_vertices, dim, kn, i)
    });
    Hypergraph::new(n_vertices, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four collinear points at x = 0, 1, 2, 10.
    fn line() -> Vec<f32> {
        vec![0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 2.0, 0.0, 0.0, 10.0, 0.0, 0.0]
    }

    #[test]
    fn each_vertex_gets_one_edge_of_size_kn() {
        let hg = knn_hyperedges(&line(), 4, 3, 2);
        assert_eq!(hg.n_edges(), 4);
        for e in hg.edges() {
            assert_eq!(e.len(), 2);
        }
    }

    #[test]
    fn every_edge_contains_its_anchor() {
        let hg = knn_hyperedges(&line(), 4, 3, 2);
        for (i, e) in hg.edges().iter().enumerate() {
            assert!(e.contains(&i), "edge {i} = {e:?} missing its anchor");
        }
    }

    #[test]
    fn nearest_neighbours_are_chosen() {
        let hg = knn_hyperedges(&line(), 4, 3, 2);
        // vertex 0's nearest other point is 1; vertex 3's is 2
        assert_eq!(hg.edge(0), &[0, 1]);
        assert_eq!(hg.edge(3), &[2, 3]);
        // vertex 1 is equidistant to 0 and 2: tie broken by index → 0
        assert_eq!(hg.edge(1), &[0, 1]);
    }

    #[test]
    fn kn_equal_n_connects_everything() {
        let hg = knn_hyperedges(&line(), 4, 3, 4);
        for e in hg.edges() {
            assert_eq!(e, &[0, 1, 2, 3]);
        }
    }

    #[test]
    fn identical_points_are_handled() {
        let coords = vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let hg = knn_hyperedges(&coords, 3, 3, 2);
        assert_eq!(hg.n_edges(), 3);
        for e in hg.edges() {
            assert_eq!(e.len(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds vertex count")]
    fn kn_too_large_panics() {
        knn_hyperedges(&line(), 4, 3, 5);
    }

    #[test]
    fn edge_members_are_in_canonical_order() {
        // a scrambled point cloud whose neighbour sets are not index-sorted
        // by construction; the returned member lists must still be
        let coords: Vec<f32> = (0..12 * 3).map(|i| ((i * 37 % 23) as f32).sin() * 5.0).collect();
        let hg = knn_hyperedges(&coords, 12, 3, 4);
        for (i, e) in hg.edges().iter().enumerate() {
            assert!(e.windows(2).all(|w| w[0] < w[1]), "edge {i} not sorted: {e:?}");
            assert_eq!(e, &knn_edge(&coords, 12, 3, 4, i), "per-anchor helper diverged");
        }
    }

    #[test]
    fn works_in_embedded_feature_space() {
        // 8-dimensional features: two tight clusters
        let mut coords = Vec::new();
        for i in 0..6 {
            let base = if i < 3 { 0.0 } else { 100.0 };
            for d in 0..8 {
                coords.push(base + (i * 8 + d) as f32 * 1e-3);
            }
        }
        let hg = knn_hyperedges(&coords, 6, 8, 3);
        // each vertex's edge stays within its cluster
        for (i, e) in hg.edges().iter().enumerate() {
            let cluster = |v: usize| v / 3;
            assert!(e.iter().all(|&v| cluster(v) == cluster(i)), "edge {i}: {e:?}");
        }
    }
}
