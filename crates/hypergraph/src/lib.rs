//! # dhg-hypergraph
//!
//! Hypergraph structures and operators for the DHGCN reproduction.
//!
//! This crate owns everything the paper's §3.2–§3.4 need:
//!
//! * [`Hypergraph`] — vertex/hyperedge structure with weighted incidence,
//!   vertex degrees (Eq. 3), hyperedge degrees (Eq. 4) and the normalised
//!   hypergraph convolution operator
//!   `D_v^{-1/2} H W D_e^{-1} Hᵀ D_v^{-1/2}` (Eq. 5).
//! * [`Graph`] — the plain skeleton graph of GCN baselines with the
//!   normalised adjacency `D̃^{-1/2} Ã D̃^{-1/2}` (Eq. 1).
//! * [`knn`] — per-frame `k_n`-nearest-neighbour hyperedges ("common
//!   information", Eq. 11).
//! * [`kmeans`] — `k_m`-medoid cluster hyperedges ("global information",
//!   §3.4's iterative centroid update).
//! * [`dynamic`] — moving-distance joint weights (Eq. 6–7), the weighted
//!   incidence `Imp = W_all ∘ H` (Eq. 8) and its propagation operator
//!   `Imp·Impᵀ` (Eq. 9), plus rolling per-frame maintenance of both for
//!   streaming windows ([`dynamic::RollingDistance`],
//!   [`dynamic::RollingOperators`]).
//! * [`incremental`] — stateful dynamic-topology construction: the
//!   [`TopologyBuilder`] abstraction with [`FromScratch`] and
//!   [`Incremental`] (dirty-set kNN invalidation + warm-started
//!   k-medoids) implementations, and the [`incremental::WindowTopology`]
//!   per-frame operator ring for sliding windows.
//! * [`sparse`] — a CSR matrix used to contrast sparse vs. dense operator
//!   application as the vertex count grows (benchmarked in `dhg-bench`).
//! * [`validate`] — static checks of the incidence invariants everything
//!   above relies on (binary `H`, full vertex coverage, non-singular
//!   degrees, normalised `Imp` columns), used by the model-plan analyzer.
//!
//! Operators are plain [`dhg_tensor::NdArray`]s: they enter model graphs as
//! constants while features flow through differentiable matmuls.

pub mod dynamic;
pub mod graph;
pub mod hypergraph;
pub mod incremental;
pub mod kmeans;
pub mod knn;
pub mod sparse;
pub mod spectral;
pub mod validate;

pub use dynamic::{
    dynamic_operators, joint_weights, moving_distance, normalize_rows,
    weighted_incidence_operator, RollingDistance, RollingOperators,
};
pub use graph::Graph;
pub use hypergraph::Hypergraph;
pub use incremental::{
    from_scratch_operator, stacked_operators, stacked_operators_with, BuildStats, FromScratch,
    Incremental, TopologyBuilder, TopologyConfig, TopologyGranularity, WindowTopology,
};
pub use kmeans::{
    kmeans_counters, kmeans_hyperedges, kmeans_hyperedges_outcome, kmeans_hyperedges_seeded,
    KmeansCounters, KmeansOutcome,
};
pub use knn::{knn_edge, knn_hyperedges};
pub use sparse::CsrMatrix;
pub use spectral::spectral_radius;
pub use validate::{validate_hypergraph, validate_imp, validate_incidence, IncidenceIssue};
