//! Incremental dynamic-topology construction (ROADMAP item 3).
//!
//! The paper rebuilds the §3.4 dynamic topology (per-anchor `k_n`-NN
//! "common information" hyperedges + `k_m`-medoid "global information"
//! clusters) from scratch for every clip. For streaming workloads the
//! coordinates of consecutive frames barely move, so this module makes
//! construction *stateful*:
//!
//! * [`TopologyBuilder`] — the abstraction every model consumes. A builder
//!   turns one coordinate set `[V, D]` into the union kNN ∪ k-medoid
//!   normalised operator `[V, V]`.
//! * [`FromScratch`] — the existing behaviour, bit-for-bit: reseeded
//!   k-medoids, full kNN sweep, no state.
//! * [`Incremental`] — caches per-anchor kNN edges, the converged medoids
//!   and the assembled operator between calls. Anchors are re-searched
//!   only when accumulated movement exceeds
//!   [`TopologyConfig::rebuild_threshold`]; k-medoids warm-start from the
//!   previous medoids ([`crate::kmeans::kmeans_hyperedges_seeded`]).
//!   Threshold `0.0` is an exact-equality escape hatch: any movement at
//!   all forces a full from-scratch rebuild, so the output is
//!   bitwise-identical to [`FromScratch`] (pinned in
//!   `crates/hypergraph/tests/incremental_props.rs`).
//! * [`WindowTopology`] — a ring of per-frame cached operators over a
//!   sliding window: pushing a frame builds one topology instead of
//!   rebuilding all `T`, which is where the streaming speedup comes from.
//!
//! # Dirty rule
//!
//! Between builds the builder tracks, per anchor `i`, the accumulated
//! self-movement `self_move[i]` (how far point `i` drifted since its edge
//! was last computed) and the accumulated worst-case movement of *any*
//! point `other_move[i]` over the same span. Distances obey the triangle
//! inequality, so an anchor's neighbour ranking can only have changed if
//! some pairwise distance changed by more than the threshold, and
//! `self_move[i] + other_move[i]` upper-bounds that change. An anchor is
//! dirty iff `self_move[i] + other_move[i] > τ` (strict, which is what
//! makes `τ = 0` all-or-nothing: bitwise-unchanged coordinates reuse the
//! cached operator — itself a pure function of those coordinates — while
//! any change rebuilds everything with the fresh seeded initialisation).

use crate::kmeans::{kmeans_hyperedges_outcome, kmeans_hyperedges_seeded};
use crate::knn::knn_edge;
use crate::Hypergraph;
use dhg_tensor::NdArray;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How often the dynamic topology is rebuilt (§3.4 builds it per frame;
/// per sample time-averages the embedding first — far cheaper, see the
/// `dynamic_topology` benchmark).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyGranularity {
    /// One hypergraph per sample per block (time-averaged embedding).
    PerSample,
    /// One hypergraph per frame per sample per block (paper-faithful).
    PerFrame,
}

/// Hyper-parameters of one dynamic-topology construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopologyConfig {
    /// `k_n`: members per kNN hyperedge (clamped to the vertex count).
    pub kn: usize,
    /// `k_m`: number of k-medoid cluster hyperedges (clamped likewise).
    pub km: usize,
    /// Seed for the k-medoid initial shuffle; identical coordinates +
    /// identical seed ⇒ identical topology.
    pub seed: u64,
    /// Movement budget before an anchor's kNN edge is recomputed
    /// (Euclidean distance in the embedding space). `0.0` means "exact":
    /// the incremental builder is bitwise-identical to [`FromScratch`].
    pub rebuild_threshold: f32,
}

impl TopologyConfig {
    /// Exact-mode config (threshold 0).
    pub fn new(kn: usize, km: usize, seed: u64) -> Self {
        TopologyConfig { kn, km, seed, rebuild_threshold: 0.0 }
    }

    /// Same config with a movement tolerance.
    pub fn with_threshold(mut self, tau: f32) -> Self {
        assert!(tau >= 0.0 && tau.is_finite(), "threshold must be finite and non-negative");
        self.rebuild_threshold = tau;
        self
    }
}

/// What one [`TopologyBuilder::build`] call actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BuildStats {
    /// kNN anchors re-searched this build.
    pub knn_recomputed: usize,
    /// kNN anchors served from the cache.
    pub knn_reused: usize,
    /// k-medoid iterations this build (0 if clustering was skipped).
    pub kmeans_iterations: usize,
    /// Whether the k-medoid run converged before its iteration cap.
    pub kmeans_converged: bool,
    /// Whether clustering was warm-started from cached medoids.
    pub warm_started: bool,
    /// Whether everything was rebuilt from scratch.
    pub full_rebuild: bool,
    /// Whether the cached operator was returned untouched.
    pub reused_everything: bool,
}

/// A source of union kNN ∪ k-medoid hypergraph operators.
///
/// `build` maps coordinates `[n_vertices, dim]` (row-major) to the
/// normalised `[V, V]` convolution operator of the union hypergraph. A
/// builder may carry state between calls; [`FromScratch`] does not,
/// [`Incremental`] does.
pub trait TopologyBuilder {
    /// Build the operator for one coordinate set.
    fn build(&mut self, coords: &[f32], n_vertices: usize, dim: usize) -> NdArray;

    /// What the most recent `build` call did.
    fn stats(&self) -> BuildStats;
}

/// Build the union operator with no cached state — the historical
/// behaviour of the private `union_topology_operator` helpers in
/// `dhg-core`. The k-medoid initialisation is reseeded per call, so
/// identical coordinates always give the same topology: the operator is a
/// deterministic function of the data, not of call order (which also makes
/// per-sample and per-frame loops safe to shard across threads).
pub fn from_scratch_operator(coords: &[f32], v: usize, d: usize, config: &TopologyConfig) -> NdArray {
    let knn = crate::knn_hyperedges(coords, v, d, config.kn.min(v));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let kmeans = crate::kmeans_hyperedges(coords, v, d, config.km.min(v), &mut rng);
    knn.union(&kmeans).operator()
}

/// The stateless builder: every call is [`from_scratch_operator`].
#[derive(Clone, Debug)]
pub struct FromScratch {
    config: TopologyConfig,
    stats: BuildStats,
}

impl FromScratch {
    /// A builder over the given hyper-parameters.
    pub fn new(config: TopologyConfig) -> Self {
        FromScratch { config, stats: BuildStats::default() }
    }

    /// The builder's configuration.
    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }
}

impl TopologyBuilder for FromScratch {
    fn build(&mut self, coords: &[f32], n_vertices: usize, dim: usize) -> NdArray {
        let op = from_scratch_operator(coords, n_vertices, dim, &self.config);
        self.stats = BuildStats {
            knn_recomputed: n_vertices,
            full_rebuild: true,
            ..BuildStats::default()
        };
        op
    }

    fn stats(&self) -> BuildStats {
        self.stats
    }
}

/// Cached state between two [`Incremental::build`] calls.
struct IncrementalState {
    /// Coordinates of the previous build call (movement baseline).
    coords: Vec<f32>,
    dim: usize,
    /// Per-anchor kNN edges, canonical member order (see
    /// [`crate::knn::knn_edge`]).
    edges: Vec<Vec<usize>>,
    /// Converged medoids of the last clustering run.
    medoids: Vec<usize>,
    /// Accumulated self-movement per anchor since its edge was built.
    self_move: Vec<f32>,
    /// Accumulated max-any-point movement per anchor over the same span.
    other_move: Vec<f32>,
    /// The assembled operator of the previous build.
    operator: NdArray,
}

/// The stateful builder: warm-started k-medoids + dirty-set kNN
/// invalidation. See the module docs for the dirty rule and the exactness
/// guarantee at threshold 0.
pub struct Incremental {
    config: TopologyConfig,
    state: Option<IncrementalState>,
    stats: BuildStats,
}

impl Incremental {
    /// A fresh builder with no cached state.
    pub fn new(config: TopologyConfig) -> Self {
        Incremental { config, state: None, stats: BuildStats::default() }
    }

    /// The builder's configuration.
    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }

    /// Drop all cached state; the next build is a full rebuild.
    pub fn reset(&mut self) {
        self.state = None;
    }

    #[inline]
    fn dist(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum::<f32>().sqrt()
    }

    /// Full rebuild: identical to [`from_scratch_operator`] (fresh seeded
    /// k-medoid initialisation), but caches edges/medoids for next time.
    fn rebuild(&mut self, coords: &[f32], v: usize, d: usize) -> NdArray {
        let knn = crate::knn_hyperedges(coords, v, d, self.config.kn.min(v));
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let outcome = kmeans_hyperedges_outcome(coords, v, d, self.config.km.min(v), &mut rng);
        let operator = knn.union(&outcome.hypergraph).operator();
        self.stats = BuildStats {
            knn_recomputed: v,
            kmeans_iterations: outcome.iterations,
            kmeans_converged: outcome.converged,
            full_rebuild: true,
            ..BuildStats::default()
        };
        self.state = Some(IncrementalState {
            coords: coords.to_vec(),
            dim: d,
            edges: knn.edges().to_vec(),
            medoids: outcome.medoids,
            self_move: vec![0.0; v],
            other_move: vec![0.0; v],
            operator: operator.clone(),
        });
        operator
    }
}

impl TopologyBuilder for Incremental {
    fn build(&mut self, coords: &[f32], n_vertices: usize, dim: usize) -> NdArray {
        assert_eq!(coords.len(), n_vertices * dim, "coords must be [n_vertices, dim]");
        let v = n_vertices;
        // shape change invalidates everything
        let compatible = self
            .state
            .as_ref()
            .is_some_and(|s| s.dim == dim && s.edges.len() == v);
        if !compatible {
            return self.rebuild(coords, v, dim);
        }
        let tau = self.config.rebuild_threshold;

        // movement accounting against the previous build's snapshot
        let dirty = {
            let s = self.state.as_mut().expect("checked above");
            let mut step_max = 0.0f32;
            let mut steps = vec![0.0f32; v];
            for i in 0..v {
                let step = Self::dist(&coords[i * dim..(i + 1) * dim], &s.coords[i * dim..(i + 1) * dim]);
                steps[i] = step;
                step_max = step_max.max(step);
            }
            let mut dirty = Vec::new();
            for (i, &step) in steps.iter().enumerate() {
                s.self_move[i] += step;
                s.other_move[i] += step_max;
                if s.self_move[i] + s.other_move[i] > tau {
                    dirty.push(i);
                }
            }
            dirty
        };

        if dirty.is_empty() {
            // nothing moved past the budget; in particular at τ = 0 this
            // means the coordinates are bitwise-unchanged, so the cached
            // operator — a pure function of them — is exactly right
            let s = self.state.as_mut().expect("checked above");
            s.coords.copy_from_slice(coords);
            self.stats = BuildStats {
                knn_reused: v,
                reused_everything: true,
                ..BuildStats::default()
            };
            return s.operator.clone();
        }
        if dirty.len() == v {
            // every anchor is past budget (always the case at τ = 0 with
            // any movement): fall back to the exact from-scratch path so
            // the result cannot drift from FromScratch
            return self.rebuild(coords, v, dim);
        }

        // partial rebuild (τ > 0): re-search dirty anchors, keep the rest
        let kn = self.config.kn.min(v);
        let s = self.state.as_mut().expect("checked above");
        for &i in &dirty {
            s.edges[i] = knn_edge(coords, v, dim, kn, i);
            s.self_move[i] = 0.0;
            s.other_move[i] = 0.0;
        }
        // clusters depend on every coordinate: re-run, but warm-started
        // from the previous converged medoids
        let outcome = kmeans_hyperedges_seeded(coords, v, dim, &s.medoids);
        s.medoids = outcome.medoids;
        s.coords.copy_from_slice(coords);
        let knn_hg = Hypergraph::new(v, s.edges.clone());
        let operator = knn_hg.union(&outcome.hypergraph).operator();
        s.operator = operator.clone();
        self.stats = BuildStats {
            knn_recomputed: dirty.len(),
            knn_reused: v - dirty.len(),
            kmeans_iterations: outcome.iterations,
            kmeans_converged: outcome.converged,
            warm_started: true,
            ..BuildStats::default()
        };
        operator
    }

    fn stats(&self) -> BuildStats {
        self.stats
    }
}

/// A ring of per-frame topology operators over a sliding window.
///
/// Offline code rebuilds all `T` per-frame topologies for every window; in
/// a stream the window shares `T − 1` frames with its predecessor, whose
/// operators cannot have changed (each frame's topology is a pure function
/// of that frame's coordinates). `push` therefore builds exactly one
/// topology — via an [`Incremental`] builder warm-started from the
/// previous frame — and evicts the oldest. This 1-build-per-frame vs.
/// `T`-builds-per-window ratio is the streaming speedup measured in
/// `BENCH_7.json`.
pub struct WindowTopology {
    window: usize,
    builder: Incremental,
    /// Cached `[V, V]` operators, oldest first.
    frames: std::collections::VecDeque<NdArray>,
}

impl WindowTopology {
    /// A ring of capacity `window` frames.
    pub fn new(window: usize, config: TopologyConfig) -> Self {
        assert!(window >= 1, "window must be at least one frame");
        WindowTopology {
            window,
            builder: Incremental::new(config),
            frames: std::collections::VecDeque::with_capacity(window),
        }
    }

    /// Append one frame's coordinates `[V, D]`, building its operator and
    /// evicting the oldest frame once the ring is full.
    pub fn push(&mut self, coords: &[f32], n_vertices: usize, dim: usize) {
        let op = self.builder.build(coords, n_vertices, dim);
        if self.frames.len() == self.window {
            self.frames.pop_front();
        }
        self.frames.push_back(op);
    }

    /// Frames currently held.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the ring holds no frames yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Whether a full window of operators is available.
    pub fn is_full(&self) -> bool {
        self.frames.len() == self.window
    }

    /// What the most recent push did.
    pub fn stats(&self) -> BuildStats {
        self.builder.stats()
    }

    /// Stack the cached operators into `[len, V, V]`, oldest first.
    pub fn stacked(&self) -> NdArray {
        assert!(!self.frames.is_empty(), "no frames pushed yet");
        let v = self.frames[0].shape()[0];
        let t = self.frames.len();
        let mut out = NdArray::zeros(&[t, v, v]);
        for (ti, op) in self.frames.iter().enumerate() {
            out.data_mut()[ti * v * v..(ti + 1) * v * v].copy_from_slice(op.data());
        }
        out
    }
}

/// Stack per-sample or per-(sample, frame) topology operators for a batch
/// of embedded features `feats ∈ [N, T, V, E]`, sharded over the worker
/// pool exactly like the historical in-branch loops (one `[V, V]` block
/// per closure call ⇒ bitwise-deterministic at any thread count).
///
/// `post` runs on each finished `[V, V]` block in place — the eval path
/// uses it to fuse the importance mask and learned refinement without a
/// second sweep. Pass a no-op for the plain operators.
pub fn stacked_operators_with(
    feats: &NdArray,
    granularity: TopologyGranularity,
    config: &TopologyConfig,
    post: impl Fn(&mut [f32]) + Sync,
) -> NdArray {
    assert_eq!(feats.ndim(), 4, "feats must be [N, T, V, E]");
    let s = feats.shape();
    let (n, t, v, e) = (s[0], s[1], s[2], s[3]);
    match granularity {
        TopologyGranularity::PerSample => {
            // time-average the embedding, one hypergraph per sample;
            // samples are independent, so shard them over the pool
            let mean = feats.mean_axes(&[1], false); // [N, V, E]
            let mut stacked = NdArray::zeros(&[n, v, v]);
            let work = n * v * v * (e + config.kn + config.km + 8);
            dhg_tensor::parallel::for_each_block(stacked.data_mut(), v * v, work, |ni, blk| {
                let coords = &mean.data()[ni * v * e..(ni + 1) * v * e];
                blk.copy_from_slice(from_scratch_operator(coords, v, e, config).data());
                post(blk);
            });
            stacked
        }
        TopologyGranularity::PerFrame => {
            // one hypergraph per (sample, frame) pair, sharded likewise;
            // block index ni·t + ti matches the [N, T, V, E] layout
            let mut stacked = NdArray::zeros(&[n, t, v, v]);
            let work = n * t * v * v * (e + config.kn + config.km + 8);
            dhg_tensor::parallel::for_each_block(stacked.data_mut(), v * v, work, |item, blk| {
                let base = item * v * e;
                let coords = &feats.data()[base..base + v * e];
                blk.copy_from_slice(from_scratch_operator(coords, v, e, config).data());
                post(blk);
            });
            stacked
        }
    }
}

/// [`stacked_operators_with`] without a post-processing step: the plain
/// stacked operators (`[N, V, V]` per-sample, `[N, T, V, V]` per-frame).
pub fn stacked_operators(
    feats: &NdArray,
    granularity: TopologyGranularity,
    config: &TopologyConfig,
) -> NdArray {
    stacked_operators_with(feats, granularity, config, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(v: usize, d: usize, salt: u64) -> Vec<f32> {
        (0..v * d).map(|i| ((i as u64 * 2654435761 + salt * 97) % 1000) as f32 * 0.01).collect()
    }

    fn config() -> TopologyConfig {
        TopologyConfig::new(3, 4, 0xDEAD_BEEF)
    }

    #[test]
    fn from_scratch_matches_free_function() {
        let coords = cloud(25, 8, 1);
        let mut b = FromScratch::new(config());
        let op = b.build(&coords, 25, 8);
        assert_eq!(op, from_scratch_operator(&coords, 25, 8, &config()));
        assert!(b.stats().full_rebuild);
    }

    #[test]
    fn incremental_first_build_matches_from_scratch() {
        let coords = cloud(25, 8, 2);
        let mut inc = Incremental::new(config());
        let mut fs = FromScratch::new(config());
        assert_eq!(inc.build(&coords, 25, 8), fs.build(&coords, 25, 8));
        assert!(inc.stats().full_rebuild);
    }

    #[test]
    fn unchanged_coords_reuse_everything() {
        let coords = cloud(25, 8, 3);
        let mut inc = Incremental::new(config());
        let first = inc.build(&coords, 25, 8);
        let second = inc.build(&coords, 25, 8);
        assert_eq!(first, second);
        assert!(inc.stats().reused_everything);
        assert_eq!(inc.stats().knn_reused, 25);
    }

    #[test]
    fn threshold_zero_movement_forces_full_rebuild() {
        let mut coords = cloud(25, 8, 4);
        let mut inc = Incremental::new(config());
        inc.build(&coords, 25, 8);
        coords[0] += 1e-3; // tiniest movement
        let op = inc.build(&coords, 25, 8);
        assert!(inc.stats().full_rebuild, "τ = 0 must never partially rebuild");
        assert_eq!(op, from_scratch_operator(&coords, 25, 8, &config()));
    }

    #[test]
    fn small_threshold_reuses_clean_anchors() {
        let mut coords = cloud(25, 8, 5);
        let cfg = config().with_threshold(0.05);
        let mut inc = Incremental::new(cfg);
        inc.build(&coords, 25, 8);
        // nudge one point well below the threshold... but every anchor
        // pays the global step, so pick a nudge < τ/2
        coords[10] += 0.02;
        inc.build(&coords, 25, 8);
        let st = inc.stats();
        assert!(st.reused_everything, "movement within budget must reuse the cache");
        // push the same point repeatedly: accumulated movement crosses τ
        let mut warm = false;
        for _ in 0..4 {
            coords[10] += 0.02;
            inc.build(&coords, 25, 8);
            warm |= inc.stats().warm_started;
        }
        assert!(warm, "accumulated movement must eventually trigger a partial rebuild");
    }

    #[test]
    fn partial_rebuild_happens_and_is_bounded() {
        // one far-away point moves a lot; the rest of a tight cluster
        // stays put under a generous threshold
        let v = 16;
        let d = 3;
        let mut coords = vec![0.0f32; v * d];
        for i in 0..v {
            coords[i * d] = i as f32 * 10.0;
        }
        let cfg = TopologyConfig::new(2, 2, 7).with_threshold(30.0);
        let mut inc = Incremental::new(cfg);
        inc.build(&coords, v, d);
        // the last point moves 20: its own budget (self 20 + global 20)
        // crosses τ = 30, everyone else's (global 20 alone) does not
        coords[(v - 1) * d] += 20.0;
        let op = inc.build(&coords, v, d);
        let st = inc.stats();
        assert!(st.warm_started, "expected a partial, warm-started rebuild, got {st:?}");
        assert!(st.knn_recomputed > 0 && st.knn_reused > 0);
        // the result is still a valid operator of the right shape
        assert_eq!(op.shape(), &[v, v]);
        assert!(op.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn shape_change_resets_state() {
        let mut inc = Incremental::new(config());
        inc.build(&cloud(25, 8, 6), 25, 8);
        let coords = cloud(10, 8, 6);
        let op = inc.build(&coords, 10, 8);
        assert!(inc.stats().full_rebuild);
        assert_eq!(op, from_scratch_operator(&coords, 10, 8, &config()));
    }

    #[test]
    fn window_topology_matches_per_frame_rebuilds() {
        let (v, d, t) = (12, 3, 6);
        let mut ring = WindowTopology::new(4, config());
        let mut frames = Vec::new();
        for ti in 0..t {
            frames.push(cloud(v, d, 100 + ti as u64));
        }
        for f in &frames {
            ring.push(f, v, d);
        }
        assert!(ring.is_full());
        assert_eq!(ring.len(), 4);
        let stacked = ring.stacked();
        assert_eq!(stacked.shape(), &[4, v, v]);
        // the ring holds the last 4 frames' exact from-scratch operators
        for (slot, f) in frames[t - 4..].iter().enumerate() {
            let want = from_scratch_operator(f, v, d, &config());
            let got = stacked.slice_axis(0, slot, 1).reshape(&[v, v]);
            assert_eq!(got, want, "slot {slot} diverged");
        }
    }

    #[test]
    fn stacked_operators_per_sample_matches_manual_loop() {
        let (n, t, v, e) = (2, 3, 8, 4);
        let feats = NdArray::from_vec(cloud(n * t * v, e, 9), &[n, t, v, e]);
        let cfg = config();
        let got = stacked_operators(&feats, TopologyGranularity::PerSample, &cfg);
        assert_eq!(got.shape(), &[n, v, v]);
        let mean = feats.mean_axes(&[1], false);
        for ni in 0..n {
            let coords = &mean.data()[ni * v * e..(ni + 1) * v * e];
            let want = from_scratch_operator(coords, v, e, &cfg);
            let block = got.slice_axis(0, ni, 1).reshape(&[v, v]);
            assert_eq!(block, want);
        }
    }

    #[test]
    fn stacked_operators_per_frame_shape_and_post() {
        let (n, t, v, e) = (1, 2, 6, 3);
        let feats = NdArray::from_vec(cloud(n * t * v, e, 11), &[n, t, v, e]);
        let cfg = config();
        let plain = stacked_operators(&feats, TopologyGranularity::PerFrame, &cfg);
        assert_eq!(plain.shape(), &[n, t, v, v]);
        let doubled =
            stacked_operators_with(&feats, TopologyGranularity::PerFrame, &cfg, |blk| {
                for x in blk {
                    *x *= 2.0;
                }
            });
        for (a, b) in plain.data().iter().zip(doubled.data()) {
            assert_eq!(a * 2.0, *b);
        }
    }
}
