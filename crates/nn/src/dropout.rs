//! Inverted dropout.

use crate::module::Module;
use crate::plan::{Plan, SymShape};
use dhg_tensor::{NdArray, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`; in eval mode the
/// layer is the identity.
pub struct Dropout {
    p: f32,
    training: bool,
    rng: RefCell<StdRng>,
}

impl Dropout {
    /// A new dropout layer with drop probability `p ∈ [0, 1)`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Dropout { p, training: true, rng: RefCell::new(StdRng::seed_from_u64(seed)) }
    }

    /// The drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Module for Dropout {
    fn forward(&self, x: &Tensor) -> Tensor {
        if !self.training || self.p == 0.0 {
            return x.clone();
        }
        let shape = x.shape();
        let n: usize = shape.iter().product();
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut rng = self.rng.borrow_mut();
        let mask_data: Vec<f32> =
            (0..n).map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 }).collect();
        let mask = Tensor::constant(NdArray::from_vec(mask_data, &shape));
        x.mul(&mask)
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn plan(&self, input: &SymShape) -> Plan {
        let mut p = Plan::new(input);
        let mode = if self.training && self.p > 0.0 { "mask" } else { "identity" };
        p.push_op("dropout", format!("p={} ({mode})", self.p), input.clone());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        d.set_training(false);
        let x = Tensor::constant(NdArray::ones(&[100]));
        assert_eq!(d.forward(&x).array(), NdArray::ones(&[100]));
    }

    #[test]
    fn training_preserves_expectation() {
        let d = Dropout::new(0.3, 1);
        let x = Tensor::constant(NdArray::ones(&[10_000]));
        let y = d.forward(&x).array();
        let mean = y.mean_all();
        assert!((mean - 1.0).abs() < 0.05, "expectation drifted: {mean}");
        // survivors carry the inverted scale
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-5));
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let d = Dropout::new(0.0, 2);
        let x = Tensor::constant(NdArray::ones(&[8]));
        assert_eq!(d.forward(&x).array(), NdArray::ones(&[8]));
    }

    #[test]
    fn gradient_is_masked_like_the_output() {
        let d = Dropout::new(0.5, 3);
        let x = Tensor::param(NdArray::ones(&[64]));
        let y = d.forward(&x);
        let out = y.array();
        y.sum_all().backward();
        let g = x.grad().unwrap();
        for (gv, ov) in g.data().iter().zip(out.data()) {
            assert_eq!(*gv, *ov, "gradient must equal the applied mask scale");
        }
    }
}
