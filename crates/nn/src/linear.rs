//! Fully connected layer.

use crate::init;
use crate::module::Module;
use crate::plan::{per_sample_elems, DiagCode, Dim, OpCost, Plan, SymShape};
use dhg_tensor::{NdArray, Tensor};
use rand::Rng;

/// A dense affine map `y = x W + b` with `W ∈ [in, out]`. Accepts inputs
/// of any rank; the last dimension must equal `in_features`.
pub struct Linear {
    weight: Tensor,
    bias: Option<Tensor>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// A new layer with Kaiming-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let weight =
            Tensor::param(init::kaiming_uniform(&[in_features, out_features], in_features, rng));
        let bias = Some(Tensor::param(NdArray::zeros(&[out_features])));
        Linear { weight, bias, in_features, out_features }
    }

    /// A new layer without a bias term.
    pub fn new_no_bias(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        let mut l = Self::new(in_features, out_features, rng);
        l.bias = None;
        l
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight matrix `[in, out]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias vector `[out]`, if present.
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }
}

impl Module for Linear {
    fn forward(&self, x: &Tensor) -> Tensor {
        let shape = x.shape();
        assert_eq!(
            *shape.last().expect("linear input must have rank >= 1"),
            self.in_features,
            "linear expected last dim {}, got {:?}",
            self.in_features,
            shape
        );
        // flatten leading dims to a matmul, then restore
        let rows: usize = shape[..shape.len() - 1].iter().product();
        let flat = x.reshape(&[rows, self.in_features]);
        let mut y = flat.matmul(&self.weight);
        if let Some(b) = &self.bias {
            y = y.add(b);
        }
        let mut out_shape = shape[..shape.len() - 1].to_vec();
        out_shape.push(self.out_features);
        y.reshape(&out_shape)
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }

    fn plan(&self, input: &SymShape) -> Plan {
        let mut p = Plan::new(input);
        if input.rank() == 0 {
            p.error(DiagCode::RankMismatch, "linear input must have rank >= 1");
            return p;
        }
        if let Some(last) = input.known(input.rank() - 1) {
            if last != self.in_features {
                p.error(
                    DiagCode::ShapeMismatch,
                    format!("linear expected last dim {}, got {input}", self.in_features),
                );
                return p;
            }
        }
        let out = input.with_dim(input.rank() - 1, Dim::Known(self.out_features));
        let rows = per_sample_elems(input) / self.in_features as u64;
        let cost = OpCost::linear(rows, self.in_features as u64, self.out_features as u64);
        p.push_op_costed("linear", format!("{} -> {}", self.in_features, self.out_features), out, cost);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(8, 3, &mut rng);
        let x = Tensor::constant(NdArray::ones(&[5, 8]));
        assert_eq!(l.forward(&x).shape(), vec![5, 3]);
        // rank-3 input
        let x3 = Tensor::constant(NdArray::ones(&[2, 5, 8]));
        assert_eq!(l.forward(&x3).shape(), vec![2, 5, 3]);
    }

    #[test]
    fn parameters_and_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(4, 6, &mut rng);
        assert_eq!(l.parameters().len(), 2);
        assert_eq!(l.n_parameters(), 4 * 6 + 6);
        let nb = Linear::new_no_bias(4, 6, &mut rng);
        assert_eq!(nb.n_parameters(), 24);
    }

    #[test]
    fn gradient_flows_to_weights() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(3, 2, &mut rng);
        let x = Tensor::constant(NdArray::ones(&[4, 3]));
        let loss = l.forward(&x).square().sum_all();
        loss.backward();
        for p in l.parameters() {
            assert!(p.grad().is_some(), "missing grad on {:?}", p);
        }
    }

    #[test]
    fn known_affine_map() {
        let mut rng = StdRng::seed_from_u64(0);
        let l = Linear::new(2, 2, &mut rng);
        // overwrite weights with an identity and bias [1, 2]
        l.weight().data_mut().data_mut().copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        l.parameters()[1].data_mut().data_mut().copy_from_slice(&[1.0, 2.0]);
        let x = Tensor::constant(NdArray::from_vec(vec![3.0, 4.0], &[1, 2]));
        assert_eq!(l.forward(&x).array().data(), &[4.0, 6.0]);
    }
}
