//! 2-D convolution layer (the workhorse of every skeleton model: pointwise
//! channel mixers and `k×1` temporal convolutions).

use crate::init;
use crate::module::Module;
use crate::plan::{DiagCode, Dim, OpCost, Plan, SymShape};
use dhg_tensor::ops::Conv2dSpec;
use dhg_tensor::{NdArray, Tensor};
use rand::Rng;

/// A convolution `[N, Cin, H, W] → [N, Cout, Ho, Wo]` with trainable
/// weight `[Cout, Cin, kh, kw]` and optional bias.
pub struct Conv2d {
    weight: Tensor,
    bias: Option<Tensor>,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
}

impl Conv2d {
    /// A new convolution with Kaiming-uniform weights and zero bias.
    pub fn new(in_channels: usize, out_channels: usize, spec: Conv2dSpec, rng: &mut impl Rng) -> Self {
        let shape = [out_channels, in_channels, spec.kernel.0, spec.kernel.1];
        let weight = Tensor::param(init::kaiming_uniform(&shape, init::conv_fan_in(&shape), rng));
        let bias = Some(Tensor::param(NdArray::zeros(&[out_channels])));
        Conv2d { weight, bias, spec, in_channels, out_channels }
    }

    /// A pointwise (`1×1`) convolution — the channel mixer used by every
    /// spatial graph/hypergraph convolution's Θ.
    pub fn pointwise(in_channels: usize, out_channels: usize, rng: &mut impl Rng) -> Self {
        Self::new(in_channels, out_channels, Conv2dSpec::pointwise(), rng)
    }

    /// A `k×1` temporal convolution with "same" output length at stride 1.
    pub fn temporal(
        in_channels: usize,
        out_channels: usize,
        kernel_t: usize,
        stride_t: usize,
        dilation_t: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self::new(in_channels, out_channels, Conv2dSpec::temporal(kernel_t, stride_t, dilation_t), rng)
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// The convolution geometry.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// The weight tensor `[Cout, Cin, kh, kw]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The bias tensor `[Cout]`, if present.
    pub fn bias(&self) -> Option<&Tensor> {
        self.bias.as_ref()
    }
}

impl Module for Conv2d {
    fn forward(&self, x: &Tensor) -> Tensor {
        x.conv2d(&self.weight, self.bias.as_ref(), self.spec)
    }

    fn parameters(&self) -> Vec<Tensor> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }

    fn plan(&self, input: &SymShape) -> Plan {
        let mut p = Plan::new(input);
        if input.rank() != 4 {
            p.error(
                DiagCode::RankMismatch,
                format!("conv2d expects [N, Cin, H, W], got rank {} {input}", input.rank()),
            );
            return p;
        }
        if let Some(c) = input.known(1) {
            if c != self.in_channels {
                p.error(
                    DiagCode::ChannelMismatch,
                    format!("conv2d channel mismatch: weight expects {}, input has {c}", self.in_channels),
                );
                return p;
            }
        }
        let (kh, kw) = self.spec.kernel;
        let detail = format!(
            "{}x{} kernel {kh}x{kw} stride {:?} pad {:?} dil {:?}",
            self.in_channels, self.out_channels, self.spec.stride, self.spec.padding, self.spec.dilation
        );
        match (input.known(2), input.known(3)) {
            (Some(h), Some(w)) => {
                match dhg_tensor::check_conv_out_size(
                    h, w, kh, kw,
                    self.spec.stride.0, self.spec.stride.1,
                    self.spec.padding.0, self.spec.padding.1,
                    self.spec.dilation.0, self.spec.dilation.1,
                ) {
                    Ok((ho, wo)) => {
                        let out = SymShape(vec![
                            input.at(0),
                            Dim::Known(self.out_channels),
                            Dim::Known(ho),
                            Dim::Known(wo),
                        ]);
                        let cost = OpCost::conv2d(
                            self.in_channels as u64,
                            self.out_channels as u64,
                            kh as u64,
                            kw as u64,
                            ho as u64,
                            wo as u64,
                        );
                        p.push_op_costed("conv2d", detail, out, cost);
                    }
                    // "conv input height {h} too small for kernel" — the
                    // exact text the eager path panics with
                    Err(e) => p.error(DiagCode::TemporalUnderflow, e.to_string()),
                }
            }
            _ => {
                // symbolic spatial extents: the output size can't be
                // computed, so record the channel change and flag it
                let out = input
                    .with_dim(1, Dim::Known(self.out_channels));
                p.push_op("conv2d", detail, out);
                p.warn(
                    DiagCode::UnplannedModule,
                    "conv2d over symbolic spatial extents; output size not verified",
                );
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pointwise_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::pointwise(3, 16, &mut rng);
        let x = Tensor::constant(NdArray::ones(&[2, 3, 8, 25]));
        assert_eq!(c.forward(&x).shape(), vec![2, 16, 8, 25]);
        assert_eq!(c.n_parameters(), 16 * 3 + 16);
    }

    #[test]
    fn temporal_stride_halves_frames() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::temporal(4, 4, 3, 2, 1, &mut rng);
        let x = Tensor::constant(NdArray::ones(&[1, 4, 16, 25]));
        assert_eq!(c.forward(&x).shape(), vec![1, 4, 8, 25]);
    }

    #[test]
    fn dilated_temporal_keeps_frames() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::temporal(4, 8, 3, 1, 3, &mut rng);
        let x = Tensor::constant(NdArray::ones(&[1, 4, 20, 25]));
        assert_eq!(c.forward(&x).shape(), vec![1, 8, 20, 25]);
    }

    #[test]
    fn gradients_reach_weight_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let c = Conv2d::temporal(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::constant(NdArray::ones(&[1, 2, 6, 4]));
        c.forward(&x).square().sum_all().backward();
        for p in c.parameters() {
            let g = p.grad().expect("parameter missing gradient");
            assert!(g.data().iter().any(|&v| v != 0.0));
        }
    }
}
