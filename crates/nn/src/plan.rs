//! Static op-level plan IR: symbolic shapes, diagnostics, and an analyzer
//! that walks a model's recorded op chain **without running a forward
//! pass**.
//!
//! Every [`Module`](crate::Module) can describe itself via
//! [`Module::plan`](crate::Module::plan): given a symbolic input shape it
//! returns a [`Plan`] — the ops it would execute, the shapes flowing
//! between them, and any [`Diagnostic`]s found along the way (shape
//! incompatibilities, cold BatchNorm statistics, missing serving caches,
//! broken hypergraph invariants). [`analyze`] then verifies the chain is
//! internally consistent and produces a printable [`Report`].
//!
//! Shape checks deliberately reuse the wording of the runtime
//! [`dhg_tensor::ShapeError`] diagnostics so that a plan rejected here and
//! an eager forward that panics report the same failure category.

use dhg_tensor::NdArray;
use std::fmt;

/// One dimension of a symbolic shape: either the free batch dimension `N`
/// (which every op passes through unchanged) or a concrete extent.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Dim {
    /// The symbolic batch dimension — any size, preserved by every op.
    Batch,
    /// A concrete extent.
    Known(usize),
}

impl Dim {
    /// The concrete extent, if this dimension has one.
    pub fn known(self) -> Option<usize> {
        match self {
            Dim::Batch => None,
            Dim::Known(n) => Some(n),
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Batch => write!(f, "N"),
            Dim::Known(n) => write!(f, "{n}"),
        }
    }
}

/// A shape whose batch dimension may be symbolic, e.g. `[N, 3, 16, 25]`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SymShape(pub Vec<Dim>);

impl SymShape {
    /// The canonical skeleton-sequence input `[N, C, T, V]`.
    pub fn nctv(c: usize, t: usize, v: usize) -> Self {
        SymShape(vec![Dim::Batch, Dim::Known(c), Dim::Known(t), Dim::Known(v)])
    }

    /// A symbolic batch followed by concrete trailing dims.
    pub fn batched(dims: &[usize]) -> Self {
        let mut ds = vec![Dim::Batch];
        ds.extend(dims.iter().map(|&d| Dim::Known(d)));
        SymShape(ds)
    }

    /// A fully concrete shape.
    pub fn concrete(dims: &[usize]) -> Self {
        SymShape(dims.iter().map(|&d| Dim::Known(d)).collect())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The dimensions.
    pub fn dims(&self) -> &[Dim] {
        &self.0
    }

    /// Dimension `i` (panics if out of range).
    pub fn at(&self, i: usize) -> Dim {
        self.0[i]
    }

    /// Concrete extent of dimension `i`, if it has one.
    pub fn known(&self, i: usize) -> Option<usize> {
        self.0.get(i).and_then(|d| d.known())
    }

    /// The shape with dimension `i` replaced.
    pub fn with_dim(&self, i: usize, d: Dim) -> Self {
        let mut ds = self.0.clone();
        ds[i] = d;
        SymShape(ds)
    }
}

impl fmt::Display for SymShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// How serious a [`Diagnostic`] is.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but servable (e.g. a fallback path will run).
    Warning,
    /// The described execution would panic or produce garbage.
    Error,
}

/// Stable machine-readable category of a [`Diagnostic`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DiagCode {
    /// Input rank differs from what the op requires.
    RankMismatch,
    /// Channel dimension disagrees with the layer's weights.
    ChannelMismatch,
    /// Joint/vertex dimension disagrees with the model topology.
    JointMismatch,
    /// General dimension disagreement (matmul inner dims, fusion, …).
    ShapeMismatch,
    /// The temporal extent is too small for a kernel/stride combination.
    TemporalUnderflow,
    /// Two-stream fusion received score tensors of different shapes.
    FusionMismatch,
    /// Eval-mode BatchNorm whose running statistics were never updated.
    BnStatsCold,
    /// Serving path requested but `prepare_inference` was not called.
    NotPrepared,
    /// A module without a real `plan` implementation was encountered.
    UnplannedModule,
    /// A hyperedge with no member vertices.
    IncidenceEmptyEdge,
    /// A vertex covered by no hyperedge.
    IncidenceUncoveredVertex,
    /// An incidence entry outside `{0, 1}`.
    IncidenceNotBinary,
    /// A per-hyperedge `Imp` weight column that does not sum to 1.
    ImpNotNormalized,
    /// A singular vertex/edge degree matrix (zero diagonal entry).
    DegreeSingular,
    /// A recycled workspace buffer was returned to the pool twice.
    WorkspaceAlias,
    /// Consecutive plan ops whose shapes do not connect.
    BrokenChain,
}

impl DiagCode {
    /// Stable kebab-case name (used by tests and tooling).
    pub fn name(self) -> &'static str {
        match self {
            DiagCode::RankMismatch => "rank-mismatch",
            DiagCode::ChannelMismatch => "channel-mismatch",
            DiagCode::JointMismatch => "joint-mismatch",
            DiagCode::ShapeMismatch => "shape-mismatch",
            DiagCode::TemporalUnderflow => "temporal-underflow",
            DiagCode::FusionMismatch => "fusion-mismatch",
            DiagCode::BnStatsCold => "bn-stats-cold",
            DiagCode::NotPrepared => "not-prepared",
            DiagCode::UnplannedModule => "unplanned-module",
            DiagCode::IncidenceEmptyEdge => "incidence-empty-edge",
            DiagCode::IncidenceUncoveredVertex => "incidence-uncovered-vertex",
            DiagCode::IncidenceNotBinary => "incidence-not-binary",
            DiagCode::ImpNotNormalized => "imp-not-normalized",
            DiagCode::DegreeSingular => "degree-singular",
            DiagCode::WorkspaceAlias => "workspace-alias",
            DiagCode::BrokenChain => "broken-chain",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One analyzer finding, attached to the op scope that produced it.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Machine-readable category.
    pub code: DiagCode,
    /// Error (would panic / produce garbage) or warning (fallback runs).
    pub severity: Severity,
    /// Human-readable description; shape checks reuse the runtime
    /// [`dhg_tensor::ShapeError`] wording.
    pub message: String,
    /// Dotted path of the op that raised it, e.g. `blocks[3].tcn.conv`.
    pub scope: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        if self.scope.is_empty() {
            write!(f, "{sev}[{}]: {}", self.code, self.message)
        } else {
            write!(f, "{sev}[{}] at {}: {}", self.code, self.scope, self.message)
        }
    }
}

/// One recorded op: name, free-form detail, and the shapes around it.
#[derive(Clone, Debug)]
pub struct PlanOp {
    /// Dotted scope path, e.g. `blocks[0].theta`.
    pub name: String,
    /// Short free-form description (kernel sizes, stride, …).
    pub detail: String,
    /// Shape consumed.
    pub input: SymShape,
    /// Shape produced.
    pub output: SymShape,
}

/// The op chain a module would execute for a given input shape, plus any
/// diagnostics discovered while recording it.
#[derive(Clone, Debug)]
pub struct Plan {
    input: SymShape,
    ops: Vec<PlanOp>,
    diagnostics: Vec<Diagnostic>,
    output: SymShape,
}

impl Plan {
    /// An empty plan whose output is the (unmodified) input.
    pub fn new(input: &SymShape) -> Self {
        Plan {
            input: input.clone(),
            ops: Vec::new(),
            diagnostics: Vec::new(),
            output: input.clone(),
        }
    }

    /// The passthrough plan of a module without a real `plan`
    /// implementation: shape unchanged, one [`DiagCode::UnplannedModule`]
    /// warning so the analyzer can't silently vouch for it.
    pub fn unplanned(what: &str, input: &SymShape) -> Self {
        let mut p = Plan::new(input);
        p.warn(
            DiagCode::UnplannedModule,
            format!("{what} has no plan() implementation; shapes not verified"),
        );
        p
    }

    /// The shape the plan was recorded for.
    pub fn input(&self) -> &SymShape {
        &self.input
    }

    /// The shape flowing out of the last recorded op.
    pub fn output(&self) -> &SymShape {
        &self.output
    }

    /// The recorded ops in execution order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// All diagnostics recorded so far.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Record an op consuming the current output and producing `output`.
    pub fn push_op(&mut self, name: &str, detail: impl Into<String>, output: SymShape) {
        self.ops.push(PlanOp {
            name: name.to_string(),
            detail: detail.into(),
            input: self.output.clone(),
            output: output.clone(),
        });
        self.output = output;
    }

    /// Record an error diagnostic at the current scope tail.
    pub fn error(&mut self, code: DiagCode, message: impl Into<String>) {
        self.diag(code, Severity::Error, message);
    }

    /// Record a warning diagnostic.
    pub fn warn(&mut self, code: DiagCode, message: impl Into<String>) {
        self.diag(code, Severity::Warning, message);
    }

    /// Record a diagnostic with explicit severity.
    pub fn diag(&mut self, code: DiagCode, severity: Severity, message: impl Into<String>) {
        let scope = self.ops.last().map(|op| op.name.clone()).unwrap_or_default();
        self.diagnostics.push(Diagnostic { code, severity, message: message.into(), scope });
    }

    /// Carry over a side branch's diagnostics (re-scoped under `scope.`)
    /// without splicing its ops into the chain — for parallel paths such
    /// as the bone stream of a two-stream fusion, whose ops would
    /// otherwise violate the sequential-chain invariant [`analyze`]
    /// checks.
    pub fn adopt(&mut self, scope: &str, child: &Plan) {
        for d in &child.diagnostics {
            let mut d = d.clone();
            d.scope = if d.scope.is_empty() {
                scope.to_string()
            } else {
                format!("{scope}.{}", d.scope)
            };
            self.diagnostics.push(d);
        }
    }

    /// Splice a sub-module's plan in: its ops are re-scoped under
    /// `scope.`, its diagnostics are carried over, and the plan output
    /// advances to the child's output.
    pub fn extend(&mut self, scope: &str, child: Plan) {
        for mut op in child.ops {
            op.name = if op.name.is_empty() {
                scope.to_string()
            } else {
                format!("{scope}.{}", op.name)
            };
            self.ops.push(op);
        }
        for mut d in child.diagnostics {
            d.scope = if d.scope.is_empty() {
                scope.to_string()
            } else {
                format!("{scope}.{}", d.scope)
            };
            self.diagnostics.push(d);
        }
        self.output = child.output;
    }

    /// True when no diagnostics of any severity were recorded.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one [`Severity::Error`] diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Require the input to be a rank-4 `[N, C, T, V]` shape with the
    /// given channel and joint extents; records the same error categories
    /// the eager path's asserts raise. Returns false when the plan cannot
    /// proceed meaningfully (wrong rank).
    pub fn expect_nctv(&mut self, c: usize, v: usize) -> bool {
        if self.output.rank() != 4 {
            self.error(
                DiagCode::RankMismatch,
                format!("input must be [N, C, T, V], got rank {} {}", self.output.rank(), self.output),
            );
            return false;
        }
        if let Some(got) = self.output.known(1) {
            if got != c {
                self.error(DiagCode::ChannelMismatch, format!("channel mismatch: expected {c}, got {got}"));
            }
        }
        if let Some(got) = self.output.known(3) {
            if got != v {
                self.error(DiagCode::JointMismatch, format!("joint mismatch: expected {v}, got {got}"));
            }
        }
        true
    }
}

/// The outcome of [`analyze`]: the plan's diagnostics plus chain-level
/// findings, ready to print.
#[derive(Clone, Debug)]
pub struct Report {
    /// Every diagnostic, plan-level and chain-level.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of ops walked.
    pub n_ops: usize,
    /// The plan's final output shape.
    pub output: SymShape,
}

impl Report {
    /// True when no diagnostics at all were found.
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one error-severity diagnostic was found.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Diagnostics of a given category.
    pub fn with_code(&self, code: DiagCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            return write!(f, "ok: {} ops, output {}", self.n_ops, self.output);
        }
        writeln!(f, "{} diagnostic(s) over {} ops:", self.diagnostics.len(), self.n_ops)?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Walk a recorded [`Plan`] and verify it is internally consistent: every
/// op must consume exactly the shape the previous op produced. Returns the
/// plan's diagnostics plus any [`DiagCode::BrokenChain`] findings.
pub fn analyze(plan: &Plan) -> Report {
    let mut diagnostics = plan.diagnostics().to_vec();
    let mut current = plan.input().clone();
    for op in plan.ops() {
        if op.input != current {
            diagnostics.push(Diagnostic {
                code: DiagCode::BrokenChain,
                severity: Severity::Error,
                message: format!("op consumes {} but predecessor produced {current}", op.input),
                scope: op.name.clone(),
            });
        }
        current = op.output.clone();
    }
    if &current != plan.output() {
        diagnostics.push(Diagnostic {
            code: DiagCode::BrokenChain,
            severity: Severity::Error,
            message: format!("plan output {} disagrees with last op output {current}", plan.output()),
            scope: String::new(),
        });
    }
    Report { diagnostics, n_ops: plan.ops().len(), output: plan.output().clone() }
}

/// True when a BatchNorm running-statistics pair still holds its
/// initialisation values (mean ≡ 0, var ≡ 1) — i.e. no training batch was
/// ever folded in. Serving such a layer in eval mode normalises with
/// made-up statistics, the classic v1-checkpoint silent failure.
pub fn bn_stats_cold(running_mean: &NdArray, running_var: &NdArray) -> bool {
    running_mean.data().iter().all(|&m| m == 0.0) && running_var.data().iter().all(|&v| v == 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symshape_display_and_accessors() {
        let s = SymShape::nctv(3, 16, 25);
        assert_eq!(s.to_string(), "[N, 3, 16, 25]");
        assert_eq!(s.rank(), 4);
        assert_eq!(s.at(0), Dim::Batch);
        assert_eq!(s.known(1), Some(3));
        assert_eq!(s.known(0), None);
        assert_eq!(s.with_dim(1, Dim::Known(64)).known(1), Some(64));
    }

    #[test]
    fn push_op_advances_output_and_chain_is_consistent() {
        let input = SymShape::nctv(3, 16, 25);
        let mut p = Plan::new(&input);
        p.push_op("theta", "1x1 conv", SymShape::nctv(64, 16, 25));
        p.push_op("pool", "global avg", SymShape::batched(&[64]));
        let r = analyze(&p);
        assert!(r.ok(), "{r}");
        assert_eq!(p.output(), &SymShape::batched(&[64]));
    }

    #[test]
    fn hand_built_broken_chain_is_detected() {
        let input = SymShape::nctv(3, 16, 25);
        let mut p = Plan::new(&input);
        p.push_op("a", "", SymShape::nctv(64, 16, 25));
        // corrupt the chain by splicing in a child plan recorded for a
        // different shape than `a` produces
        let child = Plan::new(&SymShape::nctv(32, 16, 25));
        p.extend("b", Plan { input: child.input.clone(), ops: vec![PlanOp {
            name: String::new(),
            detail: String::new(),
            input: SymShape::nctv(32, 16, 25),
            output: SymShape::nctv(32, 16, 25),
        }], diagnostics: Vec::new(), output: SymShape::nctv(32, 16, 25) });
        let r = analyze(&p);
        assert!(r.has_errors());
        assert!(!r.with_code(DiagCode::BrokenChain).is_empty());
    }

    #[test]
    fn expect_nctv_reports_runtime_error_categories() {
        let mut p = Plan::new(&SymShape::nctv(3, 16, 25));
        assert!(p.expect_nctv(3, 25));
        assert!(p.is_clean());

        let mut p = Plan::new(&SymShape::nctv(4, 16, 25));
        p.expect_nctv(3, 25);
        assert_eq!(p.diagnostics()[0].code, DiagCode::ChannelMismatch);
        assert!(p.diagnostics()[0].message.contains("channel mismatch"));

        let mut p = Plan::new(&SymShape::nctv(3, 16, 21));
        p.expect_nctv(3, 25);
        assert_eq!(p.diagnostics()[0].code, DiagCode::JointMismatch);

        let mut p = Plan::new(&SymShape::batched(&[3]));
        assert!(!p.expect_nctv(3, 25));
        assert_eq!(p.diagnostics()[0].code, DiagCode::RankMismatch);
        assert!(p.diagnostics()[0].message.contains("input must be [N, C, T, V]"));
    }

    #[test]
    fn unplanned_module_warns_but_is_not_an_error() {
        let p = Plan::unplanned("Mystery", &SymShape::nctv(3, 8, 25));
        assert!(!p.is_clean());
        assert!(!p.has_errors());
        assert_eq!(p.diagnostics()[0].code, DiagCode::UnplannedModule);
    }

    #[test]
    fn extend_rescopes_ops_and_diagnostics() {
        let mut child = Plan::new(&SymShape::nctv(3, 8, 25));
        child.push_op("conv", "", SymShape::nctv(16, 8, 25));
        child.error(DiagCode::ShapeMismatch, "boom");
        let mut parent = Plan::new(&SymShape::nctv(3, 8, 25));
        parent.extend("blocks[0]", child);
        assert_eq!(parent.ops()[0].name, "blocks[0].conv");
        assert_eq!(parent.diagnostics()[0].scope, "blocks[0].conv");
        assert_eq!(parent.output(), &SymShape::nctv(16, 8, 25));
    }

    #[test]
    fn bn_cold_detection() {
        assert!(bn_stats_cold(&NdArray::zeros(&[4]), &NdArray::ones(&[4])));
        assert!(!bn_stats_cold(&NdArray::full(&[4], 0.1), &NdArray::ones(&[4])));
    }

    #[test]
    fn diag_codes_have_stable_names() {
        assert_eq!(DiagCode::ImpNotNormalized.name(), "imp-not-normalized");
        assert_eq!(DiagCode::IncidenceEmptyEdge.to_string(), "incidence-empty-edge");
    }
}
