//! Static op-level plan IR: symbolic shapes, diagnostics, and an analyzer
//! that walks a model's recorded op chain **without running a forward
//! pass**.
//!
//! Every [`Module`](crate::Module) can describe itself via
//! [`Module::plan`](crate::Module::plan): given a symbolic input shape it
//! returns a [`Plan`] — the ops it would execute, the shapes flowing
//! between them, and any [`Diagnostic`]s found along the way (shape
//! incompatibilities, cold BatchNorm statistics, missing serving caches,
//! broken hypergraph invariants). [`analyze`] then verifies the chain is
//! internally consistent and produces a printable [`Report`].
//!
//! Shape checks deliberately reuse the wording of the runtime
//! [`dhg_tensor::ShapeError`] diagnostics so that a plan rejected here and
//! an eager forward that panics report the same failure category.

use dhg_tensor::NdArray;
use std::collections::BTreeMap;
use std::fmt;

/// One dimension of a symbolic shape: either the free batch dimension `N`
/// (which every op passes through unchanged) or a concrete extent.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Dim {
    /// The symbolic batch dimension — any size, preserved by every op.
    Batch,
    /// A concrete extent.
    Known(usize),
}

impl Dim {
    /// The concrete extent, if this dimension has one.
    pub fn known(self) -> Option<usize> {
        match self {
            Dim::Batch => None,
            Dim::Known(n) => Some(n),
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Batch => write!(f, "N"),
            Dim::Known(n) => write!(f, "{n}"),
        }
    }
}

/// A shape whose batch dimension may be symbolic, e.g. `[N, 3, 16, 25]`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SymShape(pub Vec<Dim>);

impl SymShape {
    /// The canonical skeleton-sequence input `[N, C, T, V]`.
    pub fn nctv(c: usize, t: usize, v: usize) -> Self {
        SymShape(vec![Dim::Batch, Dim::Known(c), Dim::Known(t), Dim::Known(v)])
    }

    /// A symbolic batch followed by concrete trailing dims.
    pub fn batched(dims: &[usize]) -> Self {
        let mut ds = vec![Dim::Batch];
        ds.extend(dims.iter().map(|&d| Dim::Known(d)));
        SymShape(ds)
    }

    /// A fully concrete shape.
    pub fn concrete(dims: &[usize]) -> Self {
        SymShape(dims.iter().map(|&d| Dim::Known(d)).collect())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The dimensions.
    pub fn dims(&self) -> &[Dim] {
        &self.0
    }

    /// Dimension `i` (panics if out of range).
    pub fn at(&self, i: usize) -> Dim {
        self.0[i]
    }

    /// Concrete extent of dimension `i`, if it has one.
    pub fn known(&self, i: usize) -> Option<usize> {
        self.0.get(i).and_then(|d| d.known())
    }

    /// The shape with dimension `i` replaced.
    pub fn with_dim(&self, i: usize, d: Dim) -> Self {
        let mut ds = self.0.clone();
        ds[i] = d;
        SymShape(ds)
    }
}

impl fmt::Display for SymShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// How serious a [`Diagnostic`] is.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but servable (e.g. a fallback path will run).
    Warning,
    /// The described execution would panic or produce garbage.
    Error,
}

/// Stable machine-readable category of a [`Diagnostic`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DiagCode {
    /// Input rank differs from what the op requires.
    RankMismatch,
    /// Channel dimension disagrees with the layer's weights.
    ChannelMismatch,
    /// Joint/vertex dimension disagrees with the model topology.
    JointMismatch,
    /// General dimension disagreement (matmul inner dims, fusion, …).
    ShapeMismatch,
    /// The temporal extent is too small for a kernel/stride combination.
    TemporalUnderflow,
    /// Two-stream fusion received score tensors of different shapes.
    FusionMismatch,
    /// Eval-mode BatchNorm whose running statistics were never updated.
    BnStatsCold,
    /// Serving path requested but `prepare_inference` was not called.
    NotPrepared,
    /// A module without a real `plan` implementation was encountered.
    UnplannedModule,
    /// A hyperedge with no member vertices.
    IncidenceEmptyEdge,
    /// A vertex covered by no hyperedge.
    IncidenceUncoveredVertex,
    /// An incidence entry outside `{0, 1}`.
    IncidenceNotBinary,
    /// A per-hyperedge `Imp` weight column that does not sum to 1.
    ImpNotNormalized,
    /// A singular vertex/edge degree matrix (zero diagonal entry).
    DegreeSingular,
    /// A recycled workspace buffer was returned to the pool twice.
    WorkspaceAlias,
    /// A workspace buffer is read after it was returned to the pool.
    WorkspaceUseAfterFree,
    /// Consecutive plan ops whose shapes do not connect.
    BrokenChain,
    /// Predicted peak workspace exceeds a configured byte budget.
    BudgetExceeded,
}

impl DiagCode {
    /// Stable kebab-case name (used by tests and tooling).
    pub fn name(self) -> &'static str {
        match self {
            DiagCode::RankMismatch => "rank-mismatch",
            DiagCode::ChannelMismatch => "channel-mismatch",
            DiagCode::JointMismatch => "joint-mismatch",
            DiagCode::ShapeMismatch => "shape-mismatch",
            DiagCode::TemporalUnderflow => "temporal-underflow",
            DiagCode::FusionMismatch => "fusion-mismatch",
            DiagCode::BnStatsCold => "bn-stats-cold",
            DiagCode::NotPrepared => "not-prepared",
            DiagCode::UnplannedModule => "unplanned-module",
            DiagCode::IncidenceEmptyEdge => "incidence-empty-edge",
            DiagCode::IncidenceUncoveredVertex => "incidence-uncovered-vertex",
            DiagCode::IncidenceNotBinary => "incidence-not-binary",
            DiagCode::ImpNotNormalized => "imp-not-normalized",
            DiagCode::DegreeSingular => "degree-singular",
            DiagCode::WorkspaceAlias => "workspace-alias",
            DiagCode::WorkspaceUseAfterFree => "workspace-use-after-free",
            DiagCode::BrokenChain => "broken-chain",
            DiagCode::BudgetExceeded => "budget-exceeded",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One analyzer finding, attached to the op scope that produced it.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Machine-readable category.
    pub code: DiagCode,
    /// Error (would panic / produce garbage) or warning (fallback runs).
    pub severity: Severity,
    /// Human-readable description; shape checks reuse the runtime
    /// [`dhg_tensor::ShapeError`] wording.
    pub message: String,
    /// Dotted path of the op that raised it, e.g. `blocks[3].tcn.conv`.
    pub scope: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        if self.scope.is_empty() {
            write!(f, "{sev}[{}]: {}", self.code, self.message)
        } else {
            write!(f, "{sev}[{}] at {}: {}", self.code, self.scope, self.message)
        }
    }
}

/// Product of a shape's extents with the symbolic batch counted as 1 —
/// the per-sample element count every [`OpCost`] is expressed in.
pub fn per_sample_elems(shape: &SymShape) -> u64 {
    shape.dims().iter().map(|d| d.known().unwrap_or(1) as u64).product()
}

/// Static per-sample cost of one plan op. All figures are for a batch of
/// one (the symbolic `N` counts as 1); scale by the batch size at the
/// call site. `f32` everywhere, so bytes are `4 × elements`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Floating-point operations (a multiply-accumulate counts as 2).
    pub flops: u64,
    /// Bytes moved: operands read plus outputs written.
    pub bytes: u64,
    /// Transient scratch bytes alive only while the op runs (im2col
    /// columns, packing panels) — charged against the workspace peak.
    pub scratch: u64,
    /// Autograd graph nodes the op would allocate. The plan describes
    /// the serving path, which runs under `no_grad`, so this must be 0;
    /// a nonzero count marks an op known to escape the guard.
    pub graph_nodes: u64,
}

impl OpCost {
    /// The heuristic cost [`Plan::push_op`] assumes when the caller does
    /// not supply one: one FLOP per output element (shuffles, additions,
    /// activations) and a read+write of every element touched.
    pub fn default_for(input: &SymShape, output: &SymShape) -> Self {
        let (i, o) = (per_sample_elems(input), per_sample_elems(output));
        OpCost { flops: o, bytes: 4 * (i + o), scratch: 0, graph_nodes: 0 }
    }

    /// A dense `[m, k] × [k, n]` matmul.
    pub fn matmul(m: u64, k: u64, n: u64) -> Self {
        OpCost {
            flops: 2 * m * k * n,
            bytes: 4 * (m * k + k * n + m * n),
            scratch: 0,
            graph_nodes: 0,
        }
    }

    /// A fully connected layer applied to `rows` independent rows.
    pub fn linear(rows: u64, in_features: u64, out_features: u64) -> Self {
        Self::matmul(rows, in_features, out_features)
    }

    /// A 2-D convolution `cin → cout` with a `kh × kw` kernel producing
    /// a `ho × wo` map. The scratch term is the im2col column buffer the
    /// runtime materialises for non-pointwise kernels.
    pub fn conv2d(cin: u64, cout: u64, kh: u64, kw: u64, ho: u64, wo: u64) -> Self {
        let cols = cin * kh * kw * ho * wo;
        OpCost {
            flops: 2 * cout * cols,
            bytes: 4 * (cols + cout * cin * kh * kw + cout * ho * wo),
            scratch: if kh * kw > 1 { 4 * cols } else { 0 },
            graph_nodes: 0,
        }
    }

    /// A per-frame vertex mix `[C, T, V] × [V, V]` (static hypergraph,
    /// Eq. 9 joint-weight, or topology operators).
    pub fn vertex_op(c: u64, t: u64, v: u64) -> Self {
        OpCost {
            flops: 2 * c * t * v * v,
            bytes: 4 * (c * t * v + t * v * v + c * t * v),
            scratch: 0,
            graph_nodes: 0,
        }
    }

    /// An elementwise pass over a shape (ReLU, BN affine, residual add).
    pub fn elementwise(shape: &SymShape) -> Self {
        let e = per_sample_elems(shape);
        OpCost { flops: e, bytes: 8 * e, scratch: 0, graph_nodes: 0 }
    }

    /// The same cost with an explicit scratch requirement.
    pub fn with_scratch(mut self, bytes: u64) -> Self {
        self.scratch = bytes;
        self
    }

    /// Component-wise sum.
    pub fn plus(self, other: OpCost) -> Self {
        OpCost {
            flops: self.flops + other.flops,
            bytes: self.bytes + other.bytes,
            scratch: self.scratch.max(other.scratch),
            graph_nodes: self.graph_nodes + other.graph_nodes,
        }
    }
}

/// What a [`WsEvent`] does to its buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WsEventKind {
    /// The buffer is taken from the pool (becomes live).
    Take,
    /// The buffer is read while it must still be live.
    Read,
    /// The buffer is returned to the pool (stops being live).
    Give,
}

/// One recorded workspace-lifetime event. Plans that mirror their
/// serving path's `Workspace` traffic record these so [`analyze`] can
/// prove no recycled buffer is read after reuse and bound the peak
/// number of live bytes.
#[derive(Clone, Debug)]
pub struct WsEvent {
    /// Index of the op *about to be recorded* when the event fired —
    /// events with the same index happen between ops `index - 1` and
    /// `index` of the chain.
    pub op_index: usize,
    /// Take, read, or give.
    pub kind: WsEventKind,
    /// Buffer identity, scoped like op names (`blocks[0].spatial`).
    pub id: String,
    /// Per-sample f32 bytes of the buffer (meaningful on `Take`).
    pub bytes: u64,
}

/// One recorded op: name, free-form detail, the shapes around it, and
/// its static cost.
#[derive(Clone, Debug)]
pub struct PlanOp {
    /// Dotted scope path, e.g. `blocks[0].theta`.
    pub name: String,
    /// Short free-form description (kernel sizes, stride, …).
    pub detail: String,
    /// Shape consumed.
    pub input: SymShape,
    /// Shape produced.
    pub output: SymShape,
    /// Per-sample static cost ([`OpCost::default_for`] heuristic unless
    /// the module supplied an exact figure via [`Plan::push_op_costed`]).
    pub cost: OpCost,
}

/// The op chain a module would execute for a given input shape, plus any
/// diagnostics discovered while recording it.
#[derive(Clone, Debug)]
pub struct Plan {
    input: SymShape,
    ops: Vec<PlanOp>,
    diagnostics: Vec<Diagnostic>,
    ws_events: Vec<WsEvent>,
    output: SymShape,
}

impl Plan {
    /// An empty plan whose output is the (unmodified) input.
    pub fn new(input: &SymShape) -> Self {
        Plan {
            input: input.clone(),
            ops: Vec::new(),
            diagnostics: Vec::new(),
            ws_events: Vec::new(),
            output: input.clone(),
        }
    }

    /// The passthrough plan of a module without a real `plan`
    /// implementation: shape unchanged, one [`DiagCode::UnplannedModule`]
    /// warning so the analyzer can't silently vouch for it.
    pub fn unplanned(what: &str, input: &SymShape) -> Self {
        let mut p = Plan::new(input);
        p.warn(
            DiagCode::UnplannedModule,
            format!("{what} has no plan() implementation; shapes not verified"),
        );
        p
    }

    /// The shape the plan was recorded for.
    pub fn input(&self) -> &SymShape {
        &self.input
    }

    /// The shape flowing out of the last recorded op.
    pub fn output(&self) -> &SymShape {
        &self.output
    }

    /// The recorded ops in execution order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// All diagnostics recorded so far.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Record an op consuming the current output and producing `output`,
    /// costed with the [`OpCost::default_for`] heuristic.
    pub fn push_op(&mut self, name: &str, detail: impl Into<String>, output: SymShape) {
        let cost = OpCost::default_for(&self.output, &output);
        self.push_op_costed(name, detail, output, cost);
    }

    /// Record an op with an exact static cost supplied by the module.
    pub fn push_op_costed(
        &mut self,
        name: &str,
        detail: impl Into<String>,
        output: SymShape,
        cost: OpCost,
    ) {
        self.ops.push(PlanOp {
            name: name.to_string(),
            detail: detail.into(),
            input: self.output.clone(),
            output: output.clone(),
            cost,
        });
        self.output = output;
    }

    /// Recorded workspace-lifetime events, in program order.
    pub fn ws_events(&self) -> &[WsEvent] {
        &self.ws_events
    }

    /// Record that the serving path takes a workspace buffer of `shape`
    /// under the name `id` at this point of the chain.
    pub fn ws_take(&mut self, id: &str, shape: &SymShape) {
        self.ws_take_bytes(id, 4 * per_sample_elems(shape));
    }

    /// [`Plan::ws_take`] with explicit per-sample bytes.
    pub fn ws_take_bytes(&mut self, id: &str, bytes: u64) {
        self.ws_events.push(WsEvent {
            op_index: self.ops.len(),
            kind: WsEventKind::Take,
            id: id.to_string(),
            bytes,
        });
    }

    /// Record a read of a buffer that must still be live here.
    pub fn ws_read(&mut self, id: &str) {
        self.ws_events.push(WsEvent {
            op_index: self.ops.len(),
            kind: WsEventKind::Read,
            id: id.to_string(),
            bytes: 0,
        });
    }

    /// Record that the serving path returns buffer `id` to the pool.
    pub fn ws_give(&mut self, id: &str) {
        self.ws_events.push(WsEvent {
            op_index: self.ops.len(),
            kind: WsEventKind::Give,
            id: id.to_string(),
            bytes: 0,
        });
    }

    /// Record an error diagnostic at the current scope tail.
    pub fn error(&mut self, code: DiagCode, message: impl Into<String>) {
        self.diag(code, Severity::Error, message);
    }

    /// Record a warning diagnostic.
    pub fn warn(&mut self, code: DiagCode, message: impl Into<String>) {
        self.diag(code, Severity::Warning, message);
    }

    /// Record a diagnostic with explicit severity.
    pub fn diag(&mut self, code: DiagCode, severity: Severity, message: impl Into<String>) {
        let scope = self.ops.last().map(|op| op.name.clone()).unwrap_or_default();
        self.diagnostics.push(Diagnostic { code, severity, message: message.into(), scope });
    }

    /// Carry over a side branch's diagnostics and workspace events
    /// (re-scoped under `scope.`) without splicing its ops into the chain
    /// — for parallel paths such as the bone stream of a two-stream
    /// fusion or the non-anchor branches of a branch sum, whose ops would
    /// otherwise violate the sequential-chain invariant [`analyze`]
    /// checks. The events land at the current chain position, modelling
    /// the branch running while the main chain's buffers are live.
    pub fn adopt(&mut self, scope: &str, child: &Plan) {
        for d in &child.diagnostics {
            let mut d = d.clone();
            d.scope = if d.scope.is_empty() {
                scope.to_string()
            } else {
                format!("{scope}.{}", d.scope)
            };
            self.diagnostics.push(d);
        }
        for ev in &child.ws_events {
            let mut ev = ev.clone();
            ev.op_index = self.ops.len();
            ev.id = format!("{scope}.{}", ev.id);
            self.ws_events.push(ev);
        }
    }

    /// Splice a sub-module's plan in: its ops and workspace events are
    /// re-scoped under `scope.`, its diagnostics are carried over, and
    /// the plan output advances to the child's output.
    pub fn extend(&mut self, scope: &str, child: Plan) {
        let base = self.ops.len();
        for mut op in child.ops {
            op.name = if op.name.is_empty() {
                scope.to_string()
            } else {
                format!("{scope}.{}", op.name)
            };
            self.ops.push(op);
        }
        for mut ev in child.ws_events {
            ev.op_index += base;
            ev.id = format!("{scope}.{}", ev.id);
            self.ws_events.push(ev);
        }
        for mut d in child.diagnostics {
            d.scope = if d.scope.is_empty() {
                scope.to_string()
            } else {
                format!("{scope}.{}", d.scope)
            };
            self.diagnostics.push(d);
        }
        self.output = child.output;
    }

    /// True when no diagnostics of any severity were recorded.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one [`Severity::Error`] diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Require the input to be a rank-4 `[N, C, T, V]` shape with the
    /// given channel and joint extents; records the same error categories
    /// the eager path's asserts raise. Returns false when the plan cannot
    /// proceed meaningfully (wrong rank).
    pub fn expect_nctv(&mut self, c: usize, v: usize) -> bool {
        if self.output.rank() != 4 {
            self.error(
                DiagCode::RankMismatch,
                format!("input must be [N, C, T, V], got rank {} {}", self.output.rank(), self.output),
            );
            return false;
        }
        if let Some(got) = self.output.known(1) {
            if got != c {
                self.error(DiagCode::ChannelMismatch, format!("channel mismatch: expected {c}, got {got}"));
            }
        }
        if let Some(got) = self.output.known(3) {
            if got != v {
                self.error(DiagCode::JointMismatch, format!("joint mismatch: expected {v}, got {got}"));
            }
        }
        true
    }
}

/// Aggregate static cost of a whole plan, per sample (batch ≡ 1).
/// Produced by [`analyze`]; retrieve via [`Report::cost_summary`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostSummary {
    /// Total floating-point operations.
    pub flops: u64,
    /// Total bytes moved.
    pub bytes: u64,
    /// Predicted peak live workspace bytes: the larger of the recorded
    /// lifetime-event peak and a 2× envelope of the heaviest single op's
    /// footprint (operands + scratch), covering plans that record no
    /// explicit events.
    pub workspace_peak: u64,
    /// Autograd graph nodes; 0 for a clean `no_grad` serving path.
    pub graph_nodes: u64,
    /// Ops the totals cover.
    pub n_ops: usize,
}

impl CostSummary {
    /// The summary scaled to a concrete batch size (peak workspace and
    /// totals all grow linearly in `N`; op count does not).
    pub fn scaled(&self, batch: usize) -> Self {
        let n = batch as u64;
        CostSummary {
            flops: self.flops * n,
            bytes: self.bytes * n,
            workspace_peak: self.workspace_peak * n,
            graph_nodes: self.graph_nodes * n,
            n_ops: self.n_ops,
        }
    }
}

impl fmt::Display for CostSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} MFLOP, {:.2} MiB moved, peak ws {:.2} MiB, {} graph nodes, {} ops",
            self.flops as f64 / 1e6,
            self.bytes as f64 / (1 << 20) as f64,
            self.workspace_peak as f64 / (1 << 20) as f64,
            self.graph_nodes,
            self.n_ops,
        )
    }
}

/// The outcome of [`analyze`]: the plan's diagnostics plus chain-level
/// findings, ready to print.
#[derive(Clone, Debug)]
pub struct Report {
    /// Every diagnostic, plan-level and chain-level.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of ops walked.
    pub n_ops: usize,
    /// The plan's final output shape.
    pub output: SymShape,
    /// Aggregate per-sample static cost.
    pub cost: CostSummary,
}

impl Report {
    /// The plan's aggregate per-sample static cost.
    pub fn cost_summary(&self) -> CostSummary {
        self.cost
    }

    /// True when no diagnostics at all were found.
    pub fn ok(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one error-severity diagnostic was found.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Diagnostics of a given category.
    pub fn with_code(&self, code: DiagCode) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            return write!(f, "ok: {} ops, output {}", self.n_ops, self.output);
        }
        writeln!(f, "{} diagnostic(s) over {} ops:", self.diagnostics.len(), self.n_ops)?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Walk a recorded [`Plan`] and verify it is internally consistent: every
/// op must consume exactly the shape the previous op produced, and the
/// workspace-lifetime events must form a sound take/read/give discipline
/// (no double give, no read after give). Returns the plan's diagnostics
/// plus any chain/lifetime findings and the aggregate [`CostSummary`].
pub fn analyze(plan: &Plan) -> Report {
    let mut diagnostics = plan.diagnostics().to_vec();
    let mut current = plan.input().clone();
    let mut cost = CostSummary { n_ops: plan.ops().len(), ..CostSummary::default() };
    let mut max_footprint = 0u64;
    let mut max_scratch = 0u64;
    for op in plan.ops() {
        if op.input != current {
            diagnostics.push(Diagnostic {
                code: DiagCode::BrokenChain,
                severity: Severity::Error,
                message: format!("op consumes {} but predecessor produced {current}", op.input),
                scope: op.name.clone(),
            });
        }
        current = op.output.clone();
        cost.flops += op.cost.flops;
        cost.bytes += op.cost.bytes;
        cost.graph_nodes += op.cost.graph_nodes;
        max_footprint = max_footprint.max(op.cost.bytes + op.cost.scratch);
        max_scratch = max_scratch.max(op.cost.scratch);
    }
    if &current != plan.output() {
        diagnostics.push(Diagnostic {
            code: DiagCode::BrokenChain,
            severity: Severity::Error,
            message: format!("plan output {} disagrees with last op output {current}", plan.output()),
            scope: String::new(),
        });
    }
    // workspace-lifetime verification: events are in program order, so a
    // single forward sweep with a live-set suffices
    let scope_of = |ev: &WsEvent| {
        plan.ops()
            .get(ev.op_index.min(plan.ops().len().saturating_sub(1)))
            .map(|op| op.name.clone())
            .unwrap_or_default()
    };
    let mut live: BTreeMap<&str, u64> = BTreeMap::new();
    let mut live_bytes = 0u64;
    let mut event_peak = 0u64;
    for ev in plan.ws_events() {
        match ev.kind {
            WsEventKind::Take => {
                if live.insert(&ev.id, ev.bytes).is_some() {
                    diagnostics.push(Diagnostic {
                        code: DiagCode::WorkspaceAlias,
                        severity: Severity::Error,
                        message: format!("buffer `{}` taken while already live", ev.id),
                        scope: scope_of(ev),
                    });
                } else {
                    live_bytes += ev.bytes;
                    event_peak = event_peak.max(live_bytes);
                }
            }
            WsEventKind::Read => {
                if !live.contains_key(ev.id.as_str()) {
                    diagnostics.push(Diagnostic {
                        code: DiagCode::WorkspaceUseAfterFree,
                        severity: Severity::Error,
                        message: format!(
                            "buffer `{}` read after being returned to the pool",
                            ev.id
                        ),
                        scope: scope_of(ev),
                    });
                }
            }
            WsEventKind::Give => match live.remove(ev.id.as_str()) {
                Some(bytes) => live_bytes -= bytes,
                None => diagnostics.push(Diagnostic {
                    code: DiagCode::WorkspaceAlias,
                    severity: Severity::Error,
                    message: format!(
                        "buffer `{}` returned to the pool twice (or never taken)",
                        ev.id
                    ),
                    scope: scope_of(ev),
                }),
            },
        }
    }
    // Peak prediction: the event-stream peak (plus the heaviest op's
    // transient scratch, live while that op runs) where the plan mirrors
    // its serving path, floored by a 2× envelope of the heaviest op (an
    // op's operands plus scratch are live at once; the factor covers a
    // concurrently-held residual/branch buffer for un-evented plans).
    cost.workspace_peak = (event_peak + max_scratch).max(2 * max_footprint);
    Report { diagnostics, n_ops: plan.ops().len(), output: plan.output().clone(), cost }
}

/// True when a BatchNorm running-statistics pair still holds its
/// initialisation values (mean ≡ 0, var ≡ 1) — i.e. no training batch was
/// ever folded in. Serving such a layer in eval mode normalises with
/// made-up statistics, the classic v1-checkpoint silent failure.
pub fn bn_stats_cold(running_mean: &NdArray, running_var: &NdArray) -> bool {
    running_mean.data().iter().all(|&m| m == 0.0) && running_var.data().iter().all(|&v| v == 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symshape_display_and_accessors() {
        let s = SymShape::nctv(3, 16, 25);
        assert_eq!(s.to_string(), "[N, 3, 16, 25]");
        assert_eq!(s.rank(), 4);
        assert_eq!(s.at(0), Dim::Batch);
        assert_eq!(s.known(1), Some(3));
        assert_eq!(s.known(0), None);
        assert_eq!(s.with_dim(1, Dim::Known(64)).known(1), Some(64));
    }

    #[test]
    fn push_op_advances_output_and_chain_is_consistent() {
        let input = SymShape::nctv(3, 16, 25);
        let mut p = Plan::new(&input);
        p.push_op("theta", "1x1 conv", SymShape::nctv(64, 16, 25));
        p.push_op("pool", "global avg", SymShape::batched(&[64]));
        let r = analyze(&p);
        assert!(r.ok(), "{r}");
        assert_eq!(p.output(), &SymShape::batched(&[64]));
    }

    #[test]
    fn hand_built_broken_chain_is_detected() {
        let input = SymShape::nctv(3, 16, 25);
        let mut p = Plan::new(&input);
        p.push_op("a", "", SymShape::nctv(64, 16, 25));
        // corrupt the chain by splicing in a child plan recorded for a
        // different shape than `a` produces
        let mut child = Plan::new(&SymShape::nctv(32, 16, 25));
        child.push_op("", "", SymShape::nctv(32, 16, 25));
        p.extend("b", child);
        let r = analyze(&p);
        assert!(r.has_errors());
        assert!(!r.with_code(DiagCode::BrokenChain).is_empty());
    }

    #[test]
    fn expect_nctv_reports_runtime_error_categories() {
        let mut p = Plan::new(&SymShape::nctv(3, 16, 25));
        assert!(p.expect_nctv(3, 25));
        assert!(p.is_clean());

        let mut p = Plan::new(&SymShape::nctv(4, 16, 25));
        p.expect_nctv(3, 25);
        assert_eq!(p.diagnostics()[0].code, DiagCode::ChannelMismatch);
        assert!(p.diagnostics()[0].message.contains("channel mismatch"));

        let mut p = Plan::new(&SymShape::nctv(3, 16, 21));
        p.expect_nctv(3, 25);
        assert_eq!(p.diagnostics()[0].code, DiagCode::JointMismatch);

        let mut p = Plan::new(&SymShape::batched(&[3]));
        assert!(!p.expect_nctv(3, 25));
        assert_eq!(p.diagnostics()[0].code, DiagCode::RankMismatch);
        assert!(p.diagnostics()[0].message.contains("input must be [N, C, T, V]"));
    }

    #[test]
    fn unplanned_module_warns_but_is_not_an_error() {
        let p = Plan::unplanned("Mystery", &SymShape::nctv(3, 8, 25));
        assert!(!p.is_clean());
        assert!(!p.has_errors());
        assert_eq!(p.diagnostics()[0].code, DiagCode::UnplannedModule);
    }

    #[test]
    fn extend_rescopes_ops_and_diagnostics() {
        let mut child = Plan::new(&SymShape::nctv(3, 8, 25));
        child.push_op("conv", "", SymShape::nctv(16, 8, 25));
        child.error(DiagCode::ShapeMismatch, "boom");
        let mut parent = Plan::new(&SymShape::nctv(3, 8, 25));
        parent.extend("blocks[0]", child);
        assert_eq!(parent.ops()[0].name, "blocks[0].conv");
        assert_eq!(parent.diagnostics()[0].scope, "blocks[0].conv");
        assert_eq!(parent.output(), &SymShape::nctv(16, 8, 25));
    }

    #[test]
    fn bn_cold_detection() {
        assert!(bn_stats_cold(&NdArray::zeros(&[4]), &NdArray::ones(&[4])));
        assert!(!bn_stats_cold(&NdArray::full(&[4], 0.1), &NdArray::ones(&[4])));
    }

    #[test]
    fn diag_codes_have_stable_names() {
        assert_eq!(DiagCode::ImpNotNormalized.name(), "imp-not-normalized");
        assert_eq!(DiagCode::IncidenceEmptyEdge.to_string(), "incidence-empty-edge");
        assert_eq!(DiagCode::WorkspaceUseAfterFree.name(), "workspace-use-after-free");
        assert_eq!(DiagCode::BudgetExceeded.name(), "budget-exceeded");
    }

    #[test]
    fn per_sample_elems_counts_batch_as_one() {
        assert_eq!(per_sample_elems(&SymShape::nctv(3, 16, 25)), 3 * 16 * 25);
        assert_eq!(per_sample_elems(&SymShape::concrete(&[2, 4])), 8);
        assert_eq!(per_sample_elems(&SymShape::batched(&[64])), 64);
    }

    #[test]
    fn op_cost_constructors_match_hand_counts() {
        let mm = OpCost::matmul(6, 10, 4);
        assert_eq!(mm.flops, 2 * 6 * 10 * 4);
        assert_eq!(mm.bytes, 4 * (60 + 40 + 24));
        let conv = OpCost::conv2d(3, 8, 5, 1, 12, 25);
        assert_eq!(conv.flops, 2 * 8 * 3 * 5 * 12 * 25);
        assert_eq!(conv.scratch, 4 * 3 * 5 * 12 * 25, "im2col columns");
        assert_eq!(OpCost::conv2d(3, 8, 1, 1, 16, 25).scratch, 0, "pointwise skips im2col");
        let v = OpCost::vertex_op(16, 8, 25);
        assert_eq!(v.flops, 2 * 16 * 8 * 25 * 25);
    }

    #[test]
    fn cost_summary_totals_and_scaling() {
        let input = SymShape::nctv(3, 16, 25);
        let mut p = Plan::new(&input);
        p.push_op_costed("theta", "", SymShape::nctv(64, 16, 25), OpCost::matmul(400, 3, 64));
        p.push_op("relu", "", SymShape::nctv(64, 16, 25));
        let r = analyze(&p);
        assert!(r.ok(), "{r}");
        let c = r.cost_summary();
        assert_eq!(c.n_ops, 2);
        assert_eq!(c.flops, 2 * 400 * 3 * 64 + 64 * 16 * 25);
        assert_eq!(c.graph_nodes, 0);
        assert!(c.workspace_peak > 0, "envelope floor must kick in without events");
        let doubled = c.scaled(2);
        assert_eq!(doubled.flops, 2 * c.flops);
        assert_eq!(doubled.workspace_peak, 2 * c.workspace_peak);
        assert_eq!(doubled.n_ops, c.n_ops);
        assert!(c.to_string().contains("MFLOP"));
    }

    #[test]
    fn ws_event_discipline_is_verified() {
        let input = SymShape::nctv(3, 16, 25);
        // sound: take, read, give
        let mut p = Plan::new(&input);
        p.ws_take("mixed", &SymShape::nctv(3, 16, 25));
        p.push_op("vertex_op", "", SymShape::nctv(3, 16, 25));
        p.ws_read("mixed");
        p.ws_give("mixed");
        let r = analyze(&p);
        assert!(r.ok(), "{r}");
        assert!(r.cost_summary().workspace_peak >= 4 * 3 * 16 * 25);

        // read after give
        let mut p = Plan::new(&input);
        p.ws_take("mixed", &input);
        p.ws_give("mixed");
        p.ws_read("mixed");
        let r = analyze(&p);
        assert!(r.has_errors());
        assert!(!r.with_code(DiagCode::WorkspaceUseAfterFree).is_empty());

        // double give
        let mut p = Plan::new(&input);
        p.ws_take("mixed", &input);
        p.ws_give("mixed");
        p.ws_give("mixed");
        let r = analyze(&p);
        assert!(!r.with_code(DiagCode::WorkspaceAlias).is_empty());

        // take while live
        let mut p = Plan::new(&input);
        p.ws_take("mixed", &input);
        p.ws_take("mixed", &input);
        assert!(!analyze(&p).with_code(DiagCode::WorkspaceAlias).is_empty());
    }

    #[test]
    fn ws_event_peak_tracks_concurrent_buffers() {
        let input = SymShape::concrete(&[100]);
        let mut p = Plan::new(&input);
        p.ws_take_bytes("a", 400);
        p.ws_take_bytes("b", 800);
        p.ws_give("a");
        p.ws_take_bytes("c", 100);
        p.ws_give("b");
        p.ws_give("c");
        let r = analyze(&p);
        assert!(r.ok(), "{r}");
        assert_eq!(r.cost_summary().workspace_peak, 1200);
    }

    #[test]
    fn extend_rescopes_ws_events() {
        let mut child = Plan::new(&SymShape::nctv(3, 8, 25));
        child.ws_take("spatial", &SymShape::nctv(16, 8, 25));
        child.push_op("theta", "", SymShape::nctv(16, 8, 25));
        child.ws_give("spatial");
        let mut parent = Plan::new(&SymShape::nctv(3, 8, 25));
        parent.push_op("bn", "", SymShape::nctv(3, 8, 25));
        parent.extend("blocks[0]", child);
        assert_eq!(parent.ws_events()[0].id, "blocks[0].spatial");
        assert_eq!(parent.ws_events()[0].op_index, 1, "offset by the parent's ops");
        assert!(analyze(&parent).ok());
        // the parent can give a child-scoped buffer it inherits
        let mut child = Plan::new(&SymShape::nctv(3, 8, 25));
        child.ws_take("ret", &SymShape::nctv(16, 8, 25));
        child.push_op("theta", "", SymShape::nctv(16, 8, 25));
        let mut parent = Plan::new(&SymShape::nctv(3, 8, 25));
        parent.extend("blocks[0]", child);
        parent.ws_give("blocks[0].ret");
        assert!(analyze(&parent).ok());
    }
}
