//! Batch normalisation over `[N, C, H, W]` feature maps.

use crate::module::{Buffer, Module};
use crate::plan::{bn_stats_cold, DiagCode, Plan, SymShape};
use dhg_tensor::{NdArray, Tensor};
use std::cell::RefCell;
use std::rc::Rc;

/// BatchNorm2d: per-channel normalisation over the `(N, H, W)` axes with
/// trainable scale `γ` and shift `β`.
///
/// In training mode, batch statistics normalise the input and update
/// exponential running estimates; in eval mode the running estimates are
/// used as constants.
pub struct BatchNorm2d {
    gamma: Tensor,
    beta: Tensor,
    running_mean: Buffer,
    running_var: Buffer,
    momentum: f32,
    eps: f32,
    training: bool,
    channels: usize,
}

impl BatchNorm2d {
    /// A new layer with `γ = 1`, `β = 0`, momentum 0.1 and eps 1e-5.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Tensor::param(NdArray::ones(&[channels])),
            beta: Tensor::param(NdArray::zeros(&[channels])),
            running_mean: Rc::new(RefCell::new(NdArray::zeros(&[channels]))),
            running_var: Rc::new(RefCell::new(NdArray::ones(&[channels]))),
            momentum: 0.1,
            eps: 1e-5,
            training: true,
            channels,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Whether the layer is in training mode (batch statistics).
    pub fn training(&self) -> bool {
        self.training
    }

    /// Whether the running statistics still hold their initialisation
    /// values (mean ≡ 0, var ≡ 1) — i.e. no training batch was ever folded
    /// in. Serving in eval mode with cold statistics normalises with
    /// made-up constants; the plan analyzer flags it as `bn-stats-cold`.
    pub fn stats_cold(&self) -> bool {
        bn_stats_cold(&self.running_mean.borrow(), &self.running_var.borrow())
    }

    /// The running mean estimate (eval-mode statistics).
    pub fn running_mean(&self) -> NdArray {
        self.running_mean.borrow().clone()
    }

    /// The running variance estimate.
    pub fn running_var(&self) -> NdArray {
        self.running_var.borrow().clone()
    }

    /// The trainable per-channel scale `γ`.
    pub fn gamma(&self) -> &Tensor {
        &self.gamma
    }

    /// The trainable per-channel shift `β`.
    pub fn beta(&self) -> &Tensor {
        &self.beta
    }

    /// The numerical-stability epsilon.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Eval-mode BatchNorm collapsed to a per-channel affine map:
    /// `y_c = scale_c · x_c + shift_c` with `scale_c = γ_c/√(σ²_c + ε)` and
    /// `shift_c = β_c − scale_c·μ_c` over the running statistics. This is
    /// the quantity Conv+BN folding bakes into the convolution weights.
    pub fn eval_affine(&self) -> (Vec<f32>, Vec<f32>) {
        let gamma = self.gamma.data();
        let beta = self.beta.data();
        let rm = self.running_mean.borrow();
        let rv = self.running_var.borrow();
        let mut scale = Vec::with_capacity(self.channels);
        let mut shift = Vec::with_capacity(self.channels);
        for c in 0..self.channels {
            let s = gamma.data()[c] / (rv.data()[c] + self.eps).sqrt();
            scale.push(s);
            shift.push(beta.data()[c] - s * rm.data()[c]);
        }
        (scale, shift)
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, x: &Tensor) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "BatchNorm2d expects [N, C, H, W]");
        assert_eq!(shape[1], self.channels, "BatchNorm2d channel mismatch");
        let view = [1, self.channels, 1, 1];
        if self.training {
            let mean = x.mean_axes(&[0, 2, 3], true); // [1, C, 1, 1]
            let centred = x.sub(&mean);
            let var = centred.square().mean_axes(&[0, 2, 3], true);
            // update running stats outside the graph; the batch itself is
            // normalised with the biased variance (standard BN), but the
            // running estimate used at eval time takes Bessel's correction
            // n/(n−1) over the N·H·W reduction count so it is an unbiased
            // estimator of the population variance
            {
                let m = self.momentum;
                let count = (shape[0] * shape[2] * shape[3]) as f32;
                let bessel = if count > 1.0 { count / (count - 1.0) } else { 1.0 };
                let mean_a = mean.array().reshape(&[self.channels]);
                let var_a = var.array().reshape(&[self.channels]);
                let mut rm = self.running_mean.borrow_mut();
                let mut rv = self.running_var.borrow_mut();
                *rm = rm.mul_scalar(1.0 - m).add(&mean_a.mul_scalar(m));
                *rv = rv.mul_scalar(1.0 - m).add(&var_a.mul_scalar(m * bessel));
            }
            let denom = var.add_scalar(self.eps).sqrt();
            let xhat = centred.div(&denom);
            xhat.mul(&self.gamma.reshape(&view)).add(&self.beta.reshape(&view))
        } else {
            let mean = Tensor::constant(self.running_mean.borrow().reshape(&view));
            let var = Tensor::constant(self.running_var.borrow().reshape(&view));
            let denom = var.add_scalar(self.eps).sqrt();
            let xhat = x.sub(&mean).div(&denom);
            xhat.mul(&self.gamma.reshape(&view)).add(&self.beta.reshape(&view))
        }
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn buffers(&self) -> Vec<Buffer> {
        vec![Rc::clone(&self.running_mean), Rc::clone(&self.running_var)]
    }

    fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    fn plan(&self, input: &SymShape) -> Plan {
        let mut p = Plan::new(input);
        if input.rank() != 4 {
            p.error(
                DiagCode::RankMismatch,
                format!("BatchNorm2d expects [N, C, H, W], got rank {} {input}", input.rank()),
            );
            return p;
        }
        if let Some(c) = input.known(1) {
            if c != self.channels {
                p.error(
                    DiagCode::ChannelMismatch,
                    format!("BatchNorm2d channel mismatch: layer has {}, input has {c}", self.channels),
                );
                return p;
            }
        }
        let mode = if self.training { "train (batch stats)" } else { "eval (running stats)" };
        p.push_op("batchnorm2d", format!("{} channels, {mode}", self.channels), input.clone());
        if !self.training && self.stats_cold() {
            p.warn(
                DiagCode::BnStatsCold,
                "eval-mode BatchNorm with untouched running statistics (mean=0, var=1); \
                 output will be normalised with initialisation constants",
            );
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_output_is_normalised() {
        let bn = BatchNorm2d::new(3);
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::constant(random_uniform(&[4, 3, 5, 5], -3.0, 7.0, &mut rng));
        let y = bn.forward(&x).array();
        // per-channel mean ≈ 0, var ≈ 1
        let mean = y.mean_axes(&[0, 2, 3], false);
        let var = y
            .sub(&y.mean_axes(&[0, 2, 3], true))
            .map(|v| v * v)
            .mean_axes(&[0, 2, 3], false);
        for c in 0..3 {
            assert!(mean.data()[c].abs() < 1e-4, "mean[{c}] = {}", mean.data()[c]);
            assert!((var.data()[c] - 1.0).abs() < 1e-2, "var[{c}] = {}", var.data()[c]);
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        // feed many batches with mean 5 so running stats converge there
        for _ in 0..60 {
            let x = Tensor::constant(random_uniform(&[8, 2, 3, 3], 4.0, 6.0, &mut rng));
            bn.forward(&x);
        }
        assert!((bn.running_mean().data()[0] - 5.0).abs() < 0.3);
        bn.set_training(false);
        // a constant-5 input should map to ≈ 0 in eval mode
        let x = Tensor::constant(NdArray::full(&[2, 2, 3, 3], 5.0));
        let y = bn.forward(&x).array();
        assert!(y.data().iter().all(|v| v.abs() < 0.5), "{y:?}");
        // and eval mode must not touch the running stats
        let before = bn.running_mean();
        bn.forward(&x);
        assert_eq!(bn.running_mean(), before);
    }

    #[test]
    fn running_var_uses_bessel_correction() {
        // hand-computed case: x = [1, 2, 3, 4] as [N=2, C=1, H=1, W=2]
        // reduction count n = N·H·W = 4, mean = 2.5
        // biased var  = (1.5² + 0.5² + 0.5² + 1.5²)/4 = 1.25  (normalises the batch)
        // unbiased    = 5/4 · 4/3 = 5/3                        (feeds the running stat)
        let bn = BatchNorm2d::new(1);
        let x = Tensor::constant(NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 1, 1, 2]));
        let y = bn.forward(&x).array();
        // the batch itself is still normalised with the *biased* variance
        let denom = (1.25f32 + 1e-5).sqrt();
        for (got, xv) in y.data().iter().zip([1.0f32, 2.0, 3.0, 4.0]) {
            assert!((got - (xv - 2.5) / denom).abs() < 1e-6, "{got} vs {xv}");
        }
        // running stats start at (0, 1) with momentum 0.1:
        // rm = 0.9·0 + 0.1·2.5 = 0.25
        // rv = 0.9·1 + 0.1·(5/3) ≈ 1.0666667   (1.025 would be the biased bug)
        assert!((bn.running_mean().data()[0] - 0.25).abs() < 1e-6);
        assert!((bn.running_var().data()[0] - (0.9 + 0.1 * 5.0 / 3.0)).abs() < 1e-6);
    }

    #[test]
    fn single_element_reduction_skips_bessel() {
        // n = N·H·W = 1 would divide by zero; the update must fall back to
        // the biased estimate (which is 0 variance here) without NaN
        let bn = BatchNorm2d::new(1);
        let x = Tensor::constant(NdArray::from_vec(vec![3.0], &[1, 1, 1, 1]));
        bn.forward(&x);
        let rv = bn.running_var().data()[0];
        assert!(rv.is_finite(), "running_var became {rv}");
        assert!((rv - 0.9).abs() < 1e-6); // 0.9·1 + 0.1·0
    }

    #[test]
    fn gamma_beta_receive_gradients() {
        let bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::constant(random_uniform(&[3, 2, 4, 4], -1.0, 1.0, &mut rng));
        bn.forward(&x).square().sum_all().backward();
        for p in bn.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        // gradient through the full composed normalisation
        use dhg_tensor::gradcheck::assert_gradients_close;
        let mut rng = StdRng::seed_from_u64(3);
        let x = random_uniform(&[2, 2, 2, 2], -1.0, 1.0, &mut rng);
        assert_gradients_close(
            &x,
            |t| {
                let bn = BatchNorm2d::new(2);
                bn.forward(t).square().sum_all()
            },
            5e-2,
        );
    }
}
