//! Seeded, deterministic fault injection for chaos testing.
//!
//! Robustness claims ("a dead worker is respawned", "training resumes
//! from the last valid checkpoint") are only testable if the failures
//! can be *produced on demand, reproducibly*. This module is the single
//! switchboard: production code consults a [`FaultPlan`] at a handful of
//! named [`FaultSite`]s, and the plan — driven by a seed, per-site rates
//! and per-site trip limits — decides deterministically whether that
//! particular call fails. With no plan installed every hook is a no-op
//! that costs one relaxed atomic load.
//!
//! Two wiring styles:
//!
//! * **Explicit** — pass an `Arc<FaultPlan>` into the component under
//!   test (e.g. `ServeConfig::faults`). Preferred in tests: plans stay
//!   isolated per engine, and parallel tests cannot see each other's
//!   faults.
//! * **Global** — [`install`] a plan process-wide (or let a binary call
//!   [`install_from_env`], which reads `DHGCN_FAULTS`). Free-function
//!   hooks ([`fire`], [`checkpoint_io`]) consult it; this is how the
//!   chaos binary drives faults through code it does not construct.
//!
//! Decisions are a pure function of `(seed, site, per-site call index)`
//! — two runs with the same plan and the same call interleaving per site
//! trip the same faults. The per-site call counter is atomic, so the
//! *set* of decisions is stable even when calls race; which thread draws
//! which decision may vary, which is exactly the nondeterminism a chaos
//! suite wants to survive.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// Number of distinct injection sites (length of the per-site tables).
pub const FAULT_SITES: usize = 11;

/// Named places in the stack where a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Kill a serve worker thread (panic outside the batch guard).
    WorkerDeath = 0,
    /// Panic inside a micro-batch forward (caught; fails the batch only).
    BatchPanic = 1,
    /// Stall a micro-batch by the plan's delay (exercises deadlines).
    BatchDelay = 2,
    /// Corrupt a batch's logits with a NaN (exercises output validation).
    BadLogits = 3,
    /// Fail a checkpoint file write partway (exercises crash-atomicity).
    CheckpointIo = 4,
    /// Poison a training loss with a NaN (exercises the non-finite guard).
    NonFiniteLoss = 5,
    /// Drop a TCP connection mid-exchange (exercises client reconnect).
    ConnDrop = 6,
    /// Write only a prefix of a wire frame, then close (exercises
    /// framing-level typed errors and retry).
    FrameTruncate = 7,
    /// Flip one byte of a wire frame (exercises the frame checksum).
    FrameCorrupt = 8,
    /// Stall a reply by the plan's delay (exercises client reply
    /// timeouts and idempotent retry).
    ReplyDelay = 9,
    /// Accept a connection, then close it immediately (exercises
    /// client connect/first-request retry).
    AcceptReject = 10,
}

impl FaultSite {
    /// All sites, in tag order.
    pub const ALL: [FaultSite; FAULT_SITES] = [
        FaultSite::WorkerDeath,
        FaultSite::BatchPanic,
        FaultSite::BatchDelay,
        FaultSite::BadLogits,
        FaultSite::CheckpointIo,
        FaultSite::NonFiniteLoss,
        FaultSite::ConnDrop,
        FaultSite::FrameTruncate,
        FaultSite::FrameCorrupt,
        FaultSite::ReplyDelay,
        FaultSite::AcceptReject,
    ];

    /// The transport-level sites consulted inside `dhg_train::net`.
    pub const WIRE: [FaultSite; 5] = [
        FaultSite::ConnDrop,
        FaultSite::FrameTruncate,
        FaultSite::FrameCorrupt,
        FaultSite::ReplyDelay,
        FaultSite::AcceptReject,
    ];

    /// Stable kebab-case name (used by `DHGCN_FAULTS` and reports).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WorkerDeath => "worker-death",
            FaultSite::BatchPanic => "batch-panic",
            FaultSite::BatchDelay => "batch-delay",
            FaultSite::BadLogits => "bad-logits",
            FaultSite::CheckpointIo => "checkpoint-io",
            FaultSite::NonFiniteLoss => "non-finite-loss",
            FaultSite::ConnDrop => "conn-drop",
            FaultSite::FrameTruncate => "frame-truncate",
            FaultSite::FrameCorrupt => "frame-corrupt",
            FaultSite::ReplyDelay => "reply-delay",
            FaultSite::AcceptReject => "accept-reject",
        }
    }

    fn from_name(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|s| s.name() == name)
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Immutable description of what a [`FaultPlan`] injects.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed for the per-call decision hash.
    pub seed: u64,
    /// Per-site probability in `[0, 1]` that a given call trips.
    pub rates: [f64; FAULT_SITES],
    /// Per-site cap on total trips (`u64::MAX` = unlimited).
    pub limits: [u64; FAULT_SITES],
    /// How long a tripped [`FaultSite::BatchDelay`] stalls.
    pub delay: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            rates: [0.0; FAULT_SITES],
            limits: [u64::MAX; FAULT_SITES],
            delay: Duration::from_millis(20),
        }
    }
}

impl FaultConfig {
    /// Parse the `DHGCN_FAULTS` grammar: comma/semicolon-separated
    /// `key=value` entries. `seed=N` and `delay-ms=N` set globals; a site
    /// name maps to `rate` or `rate:limit`, e.g.
    /// `seed=42,worker-death=0.05:2,batch-delay=0.5,delay-ms=10`.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut config = FaultConfig::default();
        for entry in spec.split([',', ';']).map(str::trim).filter(|e| !e.is_empty()) {
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("fault entry {entry:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    config.seed =
                        value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                "delay-ms" => {
                    let ms: u64 =
                        value.parse().map_err(|_| format!("bad delay-ms {value:?}"))?;
                    config.delay = Duration::from_millis(ms);
                }
                site_name => {
                    let site = FaultSite::from_name(site_name)
                        .ok_or_else(|| format!("unknown fault site {site_name:?}"))?;
                    let (rate_str, limit) = match value.split_once(':') {
                        Some((r, l)) => (
                            r,
                            l.parse().map_err(|_| format!("bad limit in {entry:?}"))?,
                        ),
                        None => (value, u64::MAX),
                    };
                    let rate: f64 =
                        rate_str.parse().map_err(|_| format!("bad rate in {entry:?}"))?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(format!("rate {rate} out of [0, 1] in {entry:?}"));
                    }
                    config.rates[site as usize] = rate;
                    config.limits[site as usize] = limit;
                }
            }
        }
        Ok(config)
    }
}

/// A thread-safe, seeded fault schedule. See the module docs.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    calls: [AtomicU64; FAULT_SITES],
    trips: [AtomicU64; FAULT_SITES],
}

/// Builder for a [`FaultPlan`] (the ergonomic test-side entry point).
#[derive(Clone, Debug)]
pub struct FaultPlanBuilder {
    config: FaultConfig,
}

impl FaultPlanBuilder {
    /// Trip `site` on each call with probability `rate`.
    pub fn rate(mut self, site: FaultSite, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of [0, 1]");
        self.config.rates[site as usize] = rate;
        self
    }

    /// Cap `site` at `limit` total trips.
    pub fn limit(mut self, site: FaultSite, limit: u64) -> Self {
        self.config.limits[site as usize] = limit;
        self
    }

    /// Stall duration for [`FaultSite::BatchDelay`] trips.
    pub fn delay(mut self, delay: Duration) -> Self {
        self.config.delay = delay;
        self
    }

    /// Finish the plan.
    pub fn build(self) -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new(self.config))
    }
}

/// splitmix64 finaliser: avalanche `x` into an independent-looking word.
/// Public because deterministic policy code elsewhere (canary traffic
/// splitting, wire-corruption byte choice) wants the same seeded hash.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix(z: u64) -> u64 {
    mix64(z)
}

impl FaultPlan {
    /// A plan from an explicit config.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            config,
            calls: Default::default(),
            trips: Default::default(),
        }
    }

    /// Start building a plan with the given decision seed.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder { config: FaultConfig { seed, ..FaultConfig::default() } }
    }

    /// A plan that injects nothing (every hook is a cheap no-op).
    pub fn disabled() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::new(FaultConfig::default()))
    }

    /// The plan's immutable configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Should this call of `site` fail? Deterministic in
    /// `(seed, site, per-site call index)`; respects the site's trip
    /// limit. Counts the call either way.
    pub fn should_fire(&self, site: FaultSite) -> bool {
        self.fire_word(site).is_some()
    }

    /// Like [`should_fire`](FaultPlan::should_fire), but on a trip also
    /// hands back a decision word derived from the same
    /// `(seed, site, call)` hash, so the caller can make sub-choices
    /// (which byte to corrupt, where to truncate) that replay exactly.
    pub fn fire_word(&self, site: FaultSite) -> Option<u64> {
        let s = site as usize;
        let call = self.calls[s].fetch_add(1, Ordering::Relaxed);
        let rate = self.config.rates[s];
        if rate <= 0.0 {
            return None;
        }
        // uniform in [0, 1) from the (seed, site, call) hash
        let word = mix(self.config.seed ^ mix((s as u64) << 32 | call));
        let unit = (word >> 11) as f64 / (1u64 << 53) as f64;
        if unit >= rate {
            return None;
        }
        // claim one trip under the site's budget, exactly
        let limit = self.config.limits[s];
        self.trips[s]
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                (t < limit).then_some(t + 1)
            })
            .is_ok()
            // re-mix so sub-choice bits are independent of the bits the
            // threshold comparison consumed
            .then(|| mix(word))
    }

    /// Panic (payload names the site) if this call of `site` trips.
    pub fn maybe_panic(&self, site: FaultSite) {
        if self.should_fire(site) {
            panic!("injected fault: {site}");
        }
    }

    /// Sleep the plan's delay if this call of [`FaultSite::BatchDelay`]
    /// trips. Returns whether it stalled.
    pub fn maybe_delay(&self) -> bool {
        let fired = self.should_fire(FaultSite::BatchDelay);
        if fired {
            std::thread::sleep(self.config.delay);
        }
        fired
    }

    /// Overwrite `data[0]` with NaN if this call of
    /// [`FaultSite::BadLogits`] trips. Returns whether it corrupted.
    pub fn maybe_corrupt(&self, data: &mut [f32]) -> bool {
        let fired = self.should_fire(FaultSite::BadLogits) && !data.is_empty();
        if fired {
            data[0] = f32::NAN;
        }
        fired
    }

    /// A synthetic I/O error if this call of [`FaultSite::CheckpointIo`]
    /// trips (the caller maps it like a real filesystem failure).
    pub fn maybe_io_error(&self) -> Option<std::io::Error> {
        self.should_fire(FaultSite::CheckpointIo).then(|| {
            std::io::Error::new(std::io::ErrorKind::Interrupted, "injected checkpoint fault")
        })
    }

    /// Sleep the plan's delay if this call of [`FaultSite::ReplyDelay`]
    /// trips. Returns whether it stalled.
    pub fn maybe_reply_delay(&self) -> bool {
        let fired = self.should_fire(FaultSite::ReplyDelay);
        if fired {
            std::thread::sleep(self.config.delay);
        }
        fired
    }

    /// XOR one byte of `data[skip..]` with a nonzero mask if this call of
    /// `site` trips. Byte index and mask both come from the decision
    /// word, so the corruption replays exactly. Returns the flipped
    /// index. No-op (but still counted) when `data[skip..]` is empty.
    pub fn maybe_flip_byte(
        &self,
        site: FaultSite,
        data: &mut [u8],
        skip: usize,
    ) -> Option<usize> {
        let word = self.fire_word(site)?;
        if data.len() <= skip {
            return None;
        }
        let index = skip + (word as usize) % (data.len() - skip);
        // nonzero mask: the byte always actually changes
        let mask = ((word >> 32) as u8) | 1;
        data[index] ^= mask;
        Some(index)
    }

    /// If this call of `site` trips, a deterministic keep-length strictly
    /// shorter than `len` (possibly zero) for the caller to truncate a
    /// write to. `None` when the call does not trip or `len` is zero.
    pub fn maybe_truncate(&self, site: FaultSite, len: usize) -> Option<usize> {
        let word = self.fire_word(site)?;
        if len == 0 {
            return None;
        }
        Some((word as usize) % len)
    }

    /// Times `site` has been consulted.
    pub fn calls(&self, site: FaultSite) -> u64 {
        self.calls[site as usize].load(Ordering::Relaxed)
    }

    /// Times `site` has actually tripped.
    pub fn trips(&self, site: FaultSite) -> u64 {
        self.trips[site as usize].load(Ordering::Relaxed)
    }

    /// Total trips across all sites.
    pub fn total_trips(&self) -> u64 {
        FaultSite::ALL.iter().map(|&s| self.trips(s)).sum()
    }

    /// Human-readable per-site `name: trips/calls` summary.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for site in FaultSite::ALL {
            if self.config.rates[site as usize] > 0.0 || self.calls(site) > 0 {
                out.push_str(&format!(
                    "{}: tripped {}/{} calls\n",
                    site.name(),
                    self.trips(site),
                    self.calls(site)
                ));
            }
        }
        if out.is_empty() {
            out.push_str("no fault sites active\n");
        }
        out
    }
}

/// Fast-path flag: global hooks return immediately while this is false.
static GLOBAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static GLOBAL_PLAN: OnceLock<RwLock<Option<Arc<FaultPlan>>>> = OnceLock::new();

fn global_slot() -> &'static RwLock<Option<Arc<FaultPlan>>> {
    GLOBAL_PLAN.get_or_init(|| RwLock::new(None))
}

/// Install `plan` process-wide; the free-function hooks consult it.
/// Pass-through code that cannot take an explicit plan (e.g. free
/// checkpoint functions) observes it immediately. Returns the previously
/// installed plan, if any.
pub fn install(plan: Arc<FaultPlan>) -> Option<Arc<FaultPlan>> {
    let mut slot = global_slot().write().unwrap_or_else(|e| e.into_inner());
    let previous = slot.replace(plan);
    GLOBAL_ACTIVE.store(true, Ordering::Release);
    previous
}

/// Remove the process-wide plan (hooks become no-ops again).
pub fn uninstall() -> Option<Arc<FaultPlan>> {
    let mut slot = global_slot().write().unwrap_or_else(|e| e.into_inner());
    GLOBAL_ACTIVE.store(false, Ordering::Release);
    slot.take()
}

/// The process-wide plan, if one is installed.
pub fn installed() -> Option<Arc<FaultPlan>> {
    if !GLOBAL_ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    global_slot().read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Install a plan from the `DHGCN_FAULTS` environment variable (see
/// [`FaultConfig::parse`]). `Ok(None)` when the variable is unset,
/// `Err` when it is set but malformed.
pub fn install_from_env() -> Result<Option<Arc<FaultPlan>>, String> {
    match std::env::var("DHGCN_FAULTS") {
        Ok(spec) => {
            let plan = Arc::new(FaultPlan::new(FaultConfig::parse(&spec)?));
            install(plan.clone());
            Ok(Some(plan))
        }
        Err(_) => Ok(None),
    }
}

/// Global-plan hook: does this call of `site` fail? False (one relaxed
/// load) when no plan is installed.
pub fn fire(site: FaultSite) -> bool {
    match installed() {
        Some(plan) => plan.should_fire(site),
        None => false,
    }
}

/// Global-plan hook for checkpoint writers: a synthetic I/O error if the
/// installed plan trips [`FaultSite::CheckpointIo`].
pub fn checkpoint_io() -> Option<std::io::Error> {
    installed().and_then(|plan| plan.maybe_io_error())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::builder(seed).rate(FaultSite::BatchPanic, 0.3).build();
            (0..64).map(|_| plan.should_fire(FaultSite::BatchPanic)).collect()
        };
        assert_eq!(draw(7), draw(7), "same seed must replay the same schedule");
        assert_ne!(draw(7), draw(8), "different seeds must diverge");
    }

    #[test]
    fn rate_zero_never_fires_and_rate_one_always_fires() {
        let plan = FaultPlan::builder(1)
            .rate(FaultSite::WorkerDeath, 1.0)
            .build();
        for _ in 0..32 {
            assert!(plan.should_fire(FaultSite::WorkerDeath));
            assert!(!plan.should_fire(FaultSite::BatchPanic), "unconfigured site fired");
        }
        assert_eq!(plan.trips(FaultSite::WorkerDeath), 32);
        assert_eq!(plan.trips(FaultSite::BatchPanic), 0);
        assert_eq!(plan.calls(FaultSite::BatchPanic), 32);
    }

    #[test]
    fn trip_limit_caps_total_failures() {
        let plan = FaultPlan::builder(2)
            .rate(FaultSite::CheckpointIo, 1.0)
            .limit(FaultSite::CheckpointIo, 3)
            .build();
        let fired = (0..50).filter(|_| plan.should_fire(FaultSite::CheckpointIo)).count();
        assert_eq!(fired, 3, "limit must cap trips");
        assert_eq!(plan.trips(FaultSite::CheckpointIo), 3);
        assert_eq!(plan.calls(FaultSite::CheckpointIo), 50);
    }

    #[test]
    fn rates_land_near_their_probability() {
        let plan = FaultPlan::builder(3).rate(FaultSite::BadLogits, 0.25).build();
        let n = 4000;
        let fired = (0..n).filter(|_| plan.should_fire(FaultSite::BadLogits)).count();
        let frac = fired as f64 / n as f64;
        assert!((0.2..0.3).contains(&frac), "0.25-rate site fired {frac} of calls");
    }

    #[test]
    fn limit_claims_are_exact_under_contention() {
        let plan = FaultPlan::builder(4)
            .rate(FaultSite::WorkerDeath, 1.0)
            .limit(FaultSite::WorkerDeath, 10)
            .build();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let plan = &plan;
                scope.spawn(move || {
                    for _ in 0..100 {
                        plan.should_fire(FaultSite::WorkerDeath);
                    }
                });
            }
        });
        assert_eq!(plan.trips(FaultSite::WorkerDeath), 10);
        assert_eq!(plan.calls(FaultSite::WorkerDeath), 800);
    }

    #[test]
    fn corrupt_hook_writes_nan_when_tripped() {
        let plan = FaultPlan::builder(5).rate(FaultSite::BadLogits, 1.0).build();
        let mut logits = [0.5f32, 1.5];
        assert!(plan.maybe_corrupt(&mut logits));
        assert!(logits[0].is_nan());
        assert_eq!(logits[1], 1.5);
        let disabled = FaultPlan::disabled();
        let mut clean = [0.5f32, 1.5];
        assert!(!disabled.maybe_corrupt(&mut clean));
        assert_eq!(clean, [0.5, 1.5]);
    }

    #[test]
    fn io_hook_returns_typed_error_when_tripped() {
        let plan = FaultPlan::builder(6).rate(FaultSite::CheckpointIo, 1.0).build();
        let err = plan.maybe_io_error().expect("must trip at rate 1");
        assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        assert!(FaultPlan::disabled().maybe_io_error().is_none());
    }

    #[test]
    fn env_grammar_parses_sites_rates_and_limits() {
        let config = FaultConfig::parse(
            "seed=42, worker-death=0.05:2; batch-delay=0.5, delay-ms=7",
        )
        .expect("valid spec");
        assert_eq!(config.seed, 42);
        assert_eq!(config.delay, Duration::from_millis(7));
        assert_eq!(config.rates[FaultSite::WorkerDeath as usize], 0.05);
        assert_eq!(config.limits[FaultSite::WorkerDeath as usize], 2);
        assert_eq!(config.rates[FaultSite::BatchDelay as usize], 0.5);
        assert_eq!(config.limits[FaultSite::BatchDelay as usize], u64::MAX);
        assert_eq!(config.rates[FaultSite::BatchPanic as usize], 0.0);
    }

    #[test]
    fn env_grammar_rejects_garbage() {
        assert!(FaultConfig::parse("not-a-site=0.5").is_err());
        assert!(FaultConfig::parse("worker-death").is_err());
        assert!(FaultConfig::parse("worker-death=1.5").is_err());
        assert!(FaultConfig::parse("worker-death=x").is_err());
        assert!(FaultConfig::parse("seed=abc").is_err());
        assert!(FaultConfig::parse("worker-death=0.5:abc").is_err());
    }

    #[test]
    fn empty_spec_is_a_disabled_plan() {
        let config = FaultConfig::parse("").expect("empty spec");
        assert_eq!(config, FaultConfig::default());
        let plan = FaultPlan::new(config);
        assert!(!plan.should_fire(FaultSite::WorkerDeath));
    }

    #[test]
    fn report_names_active_sites() {
        let plan = FaultPlan::builder(9).rate(FaultSite::BatchPanic, 1.0).build();
        plan.should_fire(FaultSite::BatchPanic);
        let report = plan.report();
        assert!(report.contains("batch-panic: tripped 1/1"), "{report}");
        assert_eq!(FaultPlan::disabled().report(), "no fault sites active\n");
    }

    #[test]
    fn wire_sites_parse_and_report_by_name() {
        let config = FaultConfig::parse(
            "seed=9,conn-drop=0.5:3,frame-truncate=0.1,frame-corrupt=0.2,\
             reply-delay=0.3,accept-reject=0.4",
        )
        .expect("valid wire spec");
        assert_eq!(config.rates[FaultSite::ConnDrop as usize], 0.5);
        assert_eq!(config.limits[FaultSite::ConnDrop as usize], 3);
        assert_eq!(config.rates[FaultSite::AcceptReject as usize], 0.4);
        for site in FaultSite::WIRE {
            assert_eq!(FaultSite::from_name(site.name()), Some(site));
        }
    }

    #[test]
    fn flip_byte_is_deterministic_and_always_changes_the_byte() {
        let flips = |seed: u64| -> Vec<(usize, Vec<u8>)> {
            let plan =
                FaultPlan::builder(seed).rate(FaultSite::FrameCorrupt, 1.0).build();
            (0..16)
                .map(|_| {
                    let mut data = vec![0u8; 32];
                    let index = plan
                        .maybe_flip_byte(FaultSite::FrameCorrupt, &mut data, 8)
                        .expect("rate 1 must trip");
                    assert!(index >= 8, "skip region must be untouched");
                    assert_ne!(data[index], 0, "flip must change the byte");
                    (index, data)
                })
                .collect()
        };
        assert_eq!(flips(3), flips(3), "same seed must replay the same flips");
        assert_ne!(flips(3), flips(4));
        // degenerate target: counted, but no corruption possible
        let plan = FaultPlan::builder(5).rate(FaultSite::FrameCorrupt, 1.0).build();
        assert!(plan.maybe_flip_byte(FaultSite::FrameCorrupt, &mut [1u8; 4], 4).is_none());
        assert_eq!(plan.calls(FaultSite::FrameCorrupt), 1);
    }

    #[test]
    fn truncate_keep_length_is_strictly_shorter() {
        let plan = FaultPlan::builder(6).rate(FaultSite::FrameTruncate, 1.0).build();
        for len in [1usize, 2, 9, 1024] {
            let keep = plan
                .maybe_truncate(FaultSite::FrameTruncate, len)
                .expect("rate 1 must trip");
            assert!(keep < len, "keep {keep} must be < len {len}");
        }
        assert!(plan.maybe_truncate(FaultSite::FrameTruncate, 0).is_none());
        let quiet = FaultPlan::disabled();
        assert!(quiet.maybe_truncate(FaultSite::FrameTruncate, 64).is_none());
    }

    #[test]
    fn fire_word_matches_should_fire_schedule() {
        let words = {
            let plan = FaultPlan::builder(12).rate(FaultSite::ConnDrop, 0.5).build();
            (0..64).map(|_| plan.fire_word(FaultSite::ConnDrop)).collect::<Vec<_>>()
        };
        let bools = {
            let plan = FaultPlan::builder(12).rate(FaultSite::ConnDrop, 0.5).build();
            (0..64).map(|_| plan.should_fire(FaultSite::ConnDrop)).collect::<Vec<_>>()
        };
        assert_eq!(words.iter().map(Option::is_some).collect::<Vec<_>>(), bools);
        assert!(words.iter().flatten().count() > 0, "0.5 rate must trip sometimes");
    }

    #[test]
    fn global_install_round_trips() {
        // single test for the global slot (tests in one binary share it)
        assert!(fire(FaultSite::BatchPanic) || installed().is_none());
        let plan = FaultPlan::builder(11).rate(FaultSite::BatchPanic, 1.0).build();
        let previous = install(plan.clone());
        assert!(fire(FaultSite::BatchPanic), "installed plan must drive fire()");
        assert!(checkpoint_io().is_none(), "checkpoint-io not configured");
        let removed = uninstall().expect("was installed");
        assert!(Arc::ptr_eq(&removed, &plan));
        assert!(!fire(FaultSite::BatchPanic), "uninstalled hooks are no-ops");
        if let Some(previous) = previous {
            install(previous);
        }
    }
}
