//! The Adam optimiser — not used by the paper (§4.2 trains with SGD), but
//! part of any adoptable training stack and used by the ablation bench to
//! show the recipe is optimiser-robust.

use dhg_tensor::{NdArray, Tensor};
use std::collections::HashMap;

/// Hyper-parameters of [`Adam`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first-moment estimate.
    pub beta1: f32,
    /// Exponential decay for the second-moment estimate.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// Decoupled weight decay (AdamW-style).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// Adam with optional decoupled weight decay.
pub struct Adam {
    params: Vec<Tensor>,
    config: AdamConfig,
    m: HashMap<u64, NdArray>,
    v: HashMap<u64, NdArray>,
    step: u64,
}

impl Adam {
    /// An optimiser over the given parameters.
    pub fn new(params: Vec<Tensor>, config: AdamConfig) -> Self {
        assert!(config.beta1 < 1.0 && config.beta2 < 1.0, "betas must be < 1");
        Adam { params, config, m: HashMap::new(), v: HashMap::new(), step: 0 }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.config.lr
    }

    /// Set the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Apply one update from the accumulated gradients, then clear them.
    pub fn step(&mut self) {
        self.step += 1;
        let c = self.config;
        let bias1 = 1.0 - c.beta1.powi(self.step as i32);
        let bias2 = 1.0 - c.beta2.powi(self.step as i32);
        for p in &self.params {
            let Some(grad) = p.grad() else { continue };
            let m = self.m.entry(p.id()).or_insert_with(|| NdArray::zeros(grad.shape()));
            let v = self.v.entry(p.id()).or_insert_with(|| NdArray::zeros(grad.shape()));
            *m = m.mul_scalar(c.beta1);
            m.add_assign_scaled(&grad, 1.0 - c.beta1);
            *v = v.mul_scalar(c.beta2);
            let g2 = grad.zip_map(&grad, |a, b| a * b);
            v.add_assign_scaled(&g2, 1.0 - c.beta2);
            {
                let mut data = p.data_mut();
                let dd = data.data_mut();
                let md = m.data();
                let vd = v.data();
                for i in 0..dd.len() {
                    let mhat = md[i] / bias1;
                    let vhat = vd[i] / bias2;
                    dd[i] -= c.lr * (mhat / (vhat.sqrt() + c.eps) + c.weight_decay * dd[i]);
                }
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_descends_a_quadratic() {
        let x = Tensor::param(NdArray::from_vec(vec![3.0, -4.0], &[2]));
        let mut opt = Adam::new(vec![x.clone()], AdamConfig { lr: 0.1, ..Default::default() });
        for _ in 0..200 {
            let loss = x.square().sum_all();
            loss.backward();
            opt.step();
        }
        assert!(x.data().data().iter().all(|v| v.abs() < 1e-2), "{:?}", x.data());
    }

    #[test]
    fn adam_handles_ill_scaled_coordinates_better_than_plain_sgd() {
        // f(x, y) = 100 x² + 0.01 y² — pathological conditioning
        let run_adam = || {
            let p = Tensor::param(NdArray::from_vec(vec![1.0, 1.0], &[2]));
            let scale = Tensor::constant(NdArray::from_vec(vec![100.0, 0.01], &[2]));
            let mut opt =
                Adam::new(vec![p.clone()], AdamConfig { lr: 0.05, ..Default::default() });
            for _ in 0..300 {
                let loss = p.square().mul(&scale).sum_all();
                loss.backward();
                opt.step();
            }
            let d = p.data();
            d.data()[0].abs() + d.data()[1].abs()
        };
        assert!(run_adam() < 0.3, "Adam should handle conditioning");
    }

    #[test]
    fn decoupled_weight_decay_shrinks_without_gradient() {
        let x = Tensor::param(NdArray::from_vec(vec![1.0], &[1]));
        let mut opt = Adam::new(
            vec![x.clone()],
            AdamConfig { lr: 0.1, weight_decay: 0.5, ..Default::default() },
        );
        let loss = x.mul_scalar(0.0).sum_all();
        loss.backward();
        opt.step();
        assert!(x.data().data()[0] < 1.0);
    }

    #[test]
    fn skips_parameters_without_grads() {
        let a = Tensor::param(NdArray::from_vec(vec![1.0], &[1]));
        let b = Tensor::param(NdArray::from_vec(vec![2.0], &[1]));
        let mut opt = Adam::new(vec![a.clone(), b.clone()], AdamConfig::default());
        a.square().sum_all().backward();
        opt.step();
        assert_eq!(b.data().data(), &[2.0]);
    }
}
