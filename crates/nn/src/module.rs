//! The [`Module`] trait: the common interface of all layers and models.

use crate::plan::{Plan, SymShape};
use dhg_tensor::{NdArray, Tensor, Workspace};
use std::cell::RefCell;
use std::rc::Rc;

/// Shared handle to a non-trainable state array (BatchNorm running
/// statistics). Buffers are serialised by checkpoints alongside the
/// parameters but are never touched by the optimiser.
pub type Buffer = Rc<RefCell<NdArray>>;

/// A trainable component: forward computation over a single input tensor,
/// parameter enumeration for the optimiser, and a train/eval switch.
///
/// Layers without parameters or mode-dependence accept the default no-op
/// implementations.
///
/// ## Execution modes
///
/// [`Module::forward`] is the training path: it records autograd graph
/// edges and uses batch statistics. [`Module::forward_inference`] is the
/// serving path: it runs under a [`dhg_tensor::no_grad`] guard (zero graph
/// nodes allocated) and may use weights pre-folded by
/// [`Module::prepare_inference`] plus scratch buffers from the caller's
/// [`Workspace`]. The contract: after `prepare_inference()`,
/// `forward_inference` must agree with eval-mode `forward` bitwise when no
/// folding applies, and within `1e-5` per logit when Conv+BN folding
/// rewrites the arithmetic. Training again after `prepare_inference`
/// invalidates the folded caches; call `set_training(true)` (which drops
/// them) before resuming training.
pub trait Module {
    /// Compute the layer's output. Builds autograd graph edges whenever
    /// any involved tensor requires gradients.
    fn forward(&self, x: &Tensor) -> Tensor;

    /// All trainable parameter tensors, in a stable order.
    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }

    /// Non-trainable state buffers in a stable order (BatchNorm running
    /// statistics). Checkpoints persist these alongside parameters.
    fn buffers(&self) -> Vec<Buffer> {
        Vec::new()
    }

    /// Switch between training (true) and evaluation (false) behaviour.
    fn set_training(&mut self, _training: bool) {}

    /// Grad-free forward pass for serving. The default wraps
    /// [`Module::forward`] in a [`dhg_tensor::no_grad`] guard — bitwise
    /// identical outputs with zero graph construction. Models with a
    /// compiled eval path (folded Conv+BN, cached hypergraph operators)
    /// override this to run on [`NdArray`] kernels drawing scratch space
    /// from `ws`.
    fn forward_inference(&self, x: &Tensor, _ws: &mut Workspace) -> Tensor {
        let _guard = dhg_tensor::no_grad();
        self.forward(x)
    }

    /// One-time compilation step before serving: switch to eval mode and
    /// build whatever caches [`Module::forward_inference`] uses (folded
    /// Conv+BN weights, static-hypergraph propagation operators). Safe to
    /// call repeatedly; caches are rebuilt from the current parameters.
    fn prepare_inference(&mut self) {
        self.set_training(false);
    }

    /// Total number of scalar parameters.
    fn n_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.data().len()).sum()
    }

    /// Record the op-level [`Plan`] this module would execute for a
    /// symbolic `input` shape — **without running a forward pass**. The
    /// plan carries the shapes flowing between ops plus diagnostics for
    /// anything the static analyzer can prove wrong: shape
    /// incompatibilities (the same categories the eager path's asserts
    /// raise), cold BatchNorm statistics in eval mode, missing
    /// `prepare_inference` caches, and broken hypergraph invariants.
    ///
    /// The default is an honest passthrough: shape unchanged plus an
    /// `unplanned-module` warning, so un-implemented modules can never be
    /// silently vouched for.
    fn plan(&self, input: &SymShape) -> Plan {
        Plan::unplanned(std::any::type_name::<Self>(), input)
    }
}

impl Module for Box<dyn Module> {
    fn forward(&self, x: &Tensor) -> Tensor {
        (**self).forward(x)
    }

    fn parameters(&self) -> Vec<Tensor> {
        (**self).parameters()
    }

    fn buffers(&self) -> Vec<Buffer> {
        (**self).buffers()
    }

    fn set_training(&mut self, training: bool) {
        (**self).set_training(training)
    }

    fn forward_inference(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        (**self).forward_inference(x, ws)
    }

    fn prepare_inference(&mut self) {
        (**self).prepare_inference()
    }

    fn plan(&self, input: &SymShape) -> Plan {
        (**self).plan(input)
    }
}

/// Collect the parameters of many modules into one vector (stable order).
pub fn collect_parameters<'a>(modules: impl IntoIterator<Item = &'a dyn Module>) -> Vec<Tensor> {
    modules.into_iter().flat_map(|m| m.parameters()).collect()
}

/// Collect the buffers of many modules into one vector (stable order).
pub fn collect_buffers<'a>(modules: impl IntoIterator<Item = &'a dyn Module>) -> Vec<Buffer> {
    modules.into_iter().flat_map(|m| m.buffers()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhg_tensor::NdArray;

    struct Scale(Tensor);
    impl Module for Scale {
        fn forward(&self, x: &Tensor) -> Tensor {
            x.mul(&self.0)
        }
        fn parameters(&self) -> Vec<Tensor> {
            vec![self.0.clone()]
        }
    }

    #[test]
    fn default_impls_are_noop() {
        struct Identity;
        impl Module for Identity {
            fn forward(&self, x: &Tensor) -> Tensor {
                x.clone()
            }
        }
        let mut id = Identity;
        id.set_training(true);
        assert!(id.parameters().is_empty());
        assert_eq!(id.n_parameters(), 0);
    }

    #[test]
    fn collect_parameters_preserves_order() {
        let a = Scale(Tensor::param(NdArray::ones(&[2])));
        let b = Scale(Tensor::param(NdArray::ones(&[3])));
        let ps = collect_parameters([&a as &dyn Module, &b as &dyn Module]);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].data().len(), 2);
        assert_eq!(ps[1].data().len(), 3);
        assert_eq!(a.n_parameters(), 2);
    }
}
