//! The [`Module`] trait: the common interface of all layers and models.

use dhg_tensor::Tensor;

/// A trainable component: forward computation over a single input tensor,
/// parameter enumeration for the optimiser, and a train/eval switch.
///
/// Layers without parameters or mode-dependence accept the default no-op
/// implementations.
pub trait Module {
    /// Compute the layer's output. Builds autograd graph edges whenever
    /// any involved tensor requires gradients.
    fn forward(&self, x: &Tensor) -> Tensor;

    /// All trainable parameter tensors, in a stable order.
    fn parameters(&self) -> Vec<Tensor> {
        Vec::new()
    }

    /// Switch between training (true) and evaluation (false) behaviour.
    fn set_training(&mut self, _training: bool) {}

    /// Total number of scalar parameters.
    fn n_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.data().len()).sum()
    }
}

/// Collect the parameters of many modules into one vector (stable order).
pub fn collect_parameters<'a>(modules: impl IntoIterator<Item = &'a dyn Module>) -> Vec<Tensor> {
    modules.into_iter().flat_map(|m| m.parameters()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhg_tensor::NdArray;

    struct Scale(Tensor);
    impl Module for Scale {
        fn forward(&self, x: &Tensor) -> Tensor {
            x.mul(&self.0)
        }
        fn parameters(&self) -> Vec<Tensor> {
            vec![self.0.clone()]
        }
    }

    #[test]
    fn default_impls_are_noop() {
        struct Identity;
        impl Module for Identity {
            fn forward(&self, x: &Tensor) -> Tensor {
                x.clone()
            }
        }
        let mut id = Identity;
        id.set_training(true);
        assert!(id.parameters().is_empty());
        assert_eq!(id.n_parameters(), 0);
    }

    #[test]
    fn collect_parameters_preserves_order() {
        let a = Scale(Tensor::param(NdArray::ones(&[2])));
        let b = Scale(Tensor::param(NdArray::ones(&[3])));
        let ps = collect_parameters([&a as &dyn Module, &b as &dyn Module]);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].data().len(), 2);
        assert_eq!(ps[1].data().len(), 3);
        assert_eq!(a.n_parameters(), 2);
    }
}
