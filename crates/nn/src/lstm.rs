//! A long short-term memory layer, used by the RNN-family baselines in
//! Tabs. 7–8 (ST-LSTM \[21\] and relatives).

use crate::init;
use crate::module::Module;
use crate::plan::{DiagCode, Plan, SymShape};
use dhg_tensor::{NdArray, Tensor};
use rand::Rng;

/// A single-layer LSTM over `[N, T, D]` sequences, returning the final
/// hidden state `[N, H]` from [`Module::forward`] (use
/// [`Lstm::forward_all`] for every step's hidden state).
pub struct Lstm {
    w_ih: Tensor,
    w_hh: Tensor,
    bias: Tensor,
    input_size: usize,
    hidden_size: usize,
}

impl Lstm {
    /// A new LSTM with Xavier-initialised weights and the forget-gate bias
    /// set to 1 (the standard trick for gradient flow early in training).
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut impl Rng) -> Self {
        let w_ih = Tensor::param(init::xavier_uniform(
            &[input_size, 4 * hidden_size],
            input_size,
            hidden_size,
            rng,
        ));
        let w_hh = Tensor::param(init::xavier_uniform(
            &[hidden_size, 4 * hidden_size],
            hidden_size,
            hidden_size,
            rng,
        ));
        let mut b = NdArray::zeros(&[4 * hidden_size]);
        // gate order: input, forget, cell, output — forget bias = 1
        for i in hidden_size..2 * hidden_size {
            b.data_mut()[i] = 1.0;
        }
        Lstm { w_ih, w_hh, bias: Tensor::param(b), input_size, hidden_size }
    }

    /// Hidden width `H`.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Run the recurrence and return each step's hidden state
    /// `[N, T, H]`.
    pub fn forward_all(&self, x: &Tensor) -> Tensor {
        let shape = x.shape();
        assert_eq!(shape.len(), 3, "LSTM expects [N, T, D]");
        assert_eq!(shape[2], self.input_size, "LSTM input width mismatch");
        let (n, t_len) = (shape[0], shape[1]);
        let h0 = Tensor::constant(NdArray::zeros(&[n, self.hidden_size]));
        let c0 = Tensor::constant(NdArray::zeros(&[n, self.hidden_size]));
        let (mut h, mut c) = (h0, c0);
        let hs = self.hidden_size;
        let mut outputs = Vec::with_capacity(t_len);
        for t in 0..t_len {
            let xt = x.slice_axis(1, t, 1).reshape(&[n, self.input_size]);
            let gates = xt.matmul(&self.w_ih).add(&h.matmul(&self.w_hh)).add(&self.bias);
            let i = gates.slice_axis(1, 0, hs).sigmoid();
            let f = gates.slice_axis(1, hs, hs).sigmoid();
            let g = gates.slice_axis(1, 2 * hs, hs).tanh();
            let o = gates.slice_axis(1, 3 * hs, hs).sigmoid();
            c = f.mul(&c).add(&i.mul(&g));
            h = o.mul(&c.tanh());
            outputs.push(h.reshape(&[n, 1, hs]));
        }
        let refs: Vec<&Tensor> = outputs.iter().collect();
        Tensor::concat(&refs, 1)
    }
}

impl Module for Lstm {
    /// Final hidden state `[N, H]`.
    fn forward(&self, x: &Tensor) -> Tensor {
        let all = self.forward_all(x);
        let t_len = all.shape()[1];
        let n = all.shape()[0];
        all.slice_axis(1, t_len - 1, 1).reshape(&[n, self.hidden_size])
    }

    fn parameters(&self) -> Vec<Tensor> {
        vec![self.w_ih.clone(), self.w_hh.clone(), self.bias.clone()]
    }

    fn plan(&self, input: &SymShape) -> Plan {
        let mut p = Plan::new(input);
        if input.rank() != 3 {
            p.error(
                DiagCode::RankMismatch,
                format!("LSTM expects [N, T, D], got rank {} {input}", input.rank()),
            );
            return p;
        }
        if let Some(d) = input.known(2) {
            if d != self.input_size {
                p.error(
                    DiagCode::ShapeMismatch,
                    format!("LSTM input width mismatch: layer expects {}, input has {d}", self.input_size),
                );
                return p;
            }
        }
        let out = SymShape(vec![input.at(0), crate::plan::Dim::Known(self.hidden_size)]);
        p.push_op("lstm", format!("{} -> {} (final hidden)", self.input_size, self.hidden_size), out);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_and_parameter_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let lstm = Lstm::new(6, 8, &mut rng);
        let x = Tensor::constant(NdArray::ones(&[3, 5, 6]));
        assert_eq!(lstm.forward(&x).shape(), vec![3, 8]);
        assert_eq!(lstm.forward_all(&x).shape(), vec![3, 5, 8]);
        assert_eq!(lstm.n_parameters(), 6 * 32 + 8 * 32 + 32);
    }

    #[test]
    fn hidden_states_are_bounded_by_tanh() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(4, 4, &mut rng);
        let x = Tensor::constant(NdArray::full(&[2, 10, 4], 100.0));
        let h = lstm.forward(&x).array();
        assert!(h.data().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn gradients_flow_through_time() {
        let mut rng = StdRng::seed_from_u64(2);
        let lstm = Lstm::new(3, 5, &mut rng);
        let x = Tensor::param(init::random_uniform(&[2, 7, 3], -1.0, 1.0, &mut rng));
        lstm.forward(&x).square().sum_all().backward();
        let g = x.grad().expect("input gradient missing");
        // the first timestep must receive gradient through the recurrence
        let first = g.slice_axis(1, 0, 1);
        assert!(first.data().iter().any(|&v| v.abs() > 0.0), "vanished entirely at t=0");
        for p in lstm.parameters() {
            assert!(p.grad().is_some());
        }
    }

    #[test]
    fn order_sensitivity() {
        // an LSTM must distinguish a sequence from its reverse
        let mut rng = StdRng::seed_from_u64(3);
        let lstm = Lstm::new(2, 4, &mut rng);
        let fwd: Vec<f32> = (0..12).map(|i| i as f32 / 6.0 - 1.0).collect();
        let mut rev_frames: Vec<f32> = Vec::new();
        for t in (0..6).rev() {
            rev_frames.extend_from_slice(&fwd[t * 2..(t + 1) * 2]);
        }
        let a = lstm.forward(&Tensor::constant(NdArray::from_vec(fwd, &[1, 6, 2]))).array();
        let b = lstm.forward(&Tensor::constant(NdArray::from_vec(rev_frames, &[1, 6, 2]))).array();
        assert!(!a.allclose(&b, 1e-3, 1e-3), "LSTM output should be order sensitive");
    }
}
