//! # dhg-nn
//!
//! Neural-network building blocks on top of [`dhg_tensor`]: layers with
//! trainable parameters, weight initialisation, the SGD optimiser and
//! learning-rate schedule from the paper's §4.2, losses and metrics.
//!
//! All layers implement [`Module`]: forward computation, parameter
//! collection for the optimiser, and a train/eval mode switch (BatchNorm
//! and Dropout behave differently between the two).

pub mod adam;
pub mod batchnorm;
pub mod conv;
pub mod dropout;
pub mod fault;
pub mod fold;
pub mod init;
pub mod linear;
pub mod lstm;
pub mod metrics;
pub mod module;
pub mod optim;
pub mod plan;
pub mod pool;

pub use adam::{Adam, AdamConfig};
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use fault::{FaultConfig, FaultPlan, FaultSite};
pub use fold::EvalConv;
pub use linear::Linear;
pub use lstm::Lstm;
pub use metrics::{
    confusion_matrix, labeled, top_k_accuracy, Counter, Gauge, Histogram, HistogramSnapshot,
    Registry,
};
pub use module::{collect_buffers, collect_parameters, Buffer, Module};
pub use optim::{clip_gradient_norm, CosineLr, Sgd, SgdConfig, StepLr};
pub use plan::{
    analyze, bn_stats_cold, per_sample_elems, CostSummary, DiagCode, Diagnostic, Dim, OpCost,
    Plan, PlanOp, Report, Severity, SymShape, WsEvent, WsEventKind,
};
pub use pool::global_avg_pool;
