//! Classification metrics: Top-k accuracy (the paper reports Top-1/Top-5)
//! and confusion matrices.

use dhg_tensor::NdArray;

/// Fraction of rows whose true label is among the `k` highest-scoring
/// classes. `scores` is `[N, K]`.
pub fn top_k_accuracy(scores: &NdArray, labels: &[usize], k: usize) -> f32 {
    assert_eq!(scores.ndim(), 2, "scores must be [N, K]");
    let (n, classes) = (scores.shape()[0], scores.shape()[1]);
    assert_eq!(n, labels.len(), "scores/labels length mismatch");
    assert!(k >= 1 && k <= classes, "k must be in 1..={classes}");
    if n == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for (row, &label) in scores.data().chunks_exact(classes).zip(labels) {
        let target = row[label];
        // rank = how many classes strictly beat the target (ties resolved
        // in the target's favour, matching argsort-stable evaluation)
        let beaten = row.iter().filter(|&&v| v > target).count();
        if beaten < k {
            hits += 1;
        }
    }
    hits as f32 / n as f32
}

/// Row-normalised confusion matrix `[K, K]`: entry `(i, j)` is the
/// fraction of true-class-`i` samples predicted as class `j`.
pub fn confusion_matrix(scores: &NdArray, labels: &[usize], n_classes: usize) -> NdArray {
    assert_eq!(scores.ndim(), 2, "scores must be [N, K]");
    let preds = scores.argmax_last();
    let mut counts = NdArray::zeros(&[n_classes, n_classes]);
    let mut row_totals = vec![0usize; n_classes];
    for (&pred, &label) in preds.iter().zip(labels) {
        assert!(label < n_classes && pred < n_classes, "class out of range");
        let cur = counts.at(&[label, pred]);
        counts.set(&[label, pred], cur + 1.0);
        row_totals[label] += 1;
    }
    for i in 0..n_classes {
        if row_totals[i] > 0 {
            for j in 0..n_classes {
                let v = counts.at(&[i, j]);
                counts.set(&[i, j], v / row_totals[i] as f32);
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores() -> NdArray {
        // 3 samples, 4 classes
        NdArray::from_vec(
            vec![
                0.9, 0.05, 0.03, 0.02, // pred 0
                0.1, 0.2, 0.6, 0.1, // pred 2
                0.25, 0.30, 0.25, 0.20, // pred 1
            ],
            &[3, 4],
        )
    }

    #[test]
    fn top1_counts_exact_hits() {
        let s = scores();
        assert!((top_k_accuracy(&s, &[0, 2, 1], 1) - 1.0).abs() < 1e-6);
        assert!((top_k_accuracy(&s, &[0, 1, 1], 1) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn topk_grows_with_k() {
        let s = scores();
        let labels = [3usize, 3, 3];
        let t1 = top_k_accuracy(&s, &labels, 1);
        let t2 = top_k_accuracy(&s, &labels, 2);
        let t4 = top_k_accuracy(&s, &labels, 4);
        assert!(t1 <= t2 && t2 <= t4);
        assert!((t4 - 1.0).abs() < 1e-6, "top-K with K = classes is always 1");
    }

    #[test]
    fn ties_resolve_in_favour_of_target() {
        let s = NdArray::from_vec(vec![0.5, 0.5], &[1, 2]);
        assert!((top_k_accuracy(&s, &[1], 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn confusion_matrix_rows_sum_to_one() {
        let s = scores();
        let cm = confusion_matrix(&s, &[0, 2, 2], 4);
        // class 0 row: all mass on prediction 0
        assert!((cm.at(&[0, 0]) - 1.0).abs() < 1e-6);
        // class 2 row: one sample predicted 2, one predicted 1
        assert!((cm.at(&[2, 2]) - 0.5).abs() < 1e-6);
        assert!((cm.at(&[2, 1]) - 0.5).abs() < 1e-6);
        // unobserved class rows are zero
        assert_eq!(cm.at(&[3, 3]), 0.0);
    }

    #[test]
    fn empty_input_is_zero_accuracy() {
        let s = NdArray::zeros(&[0, 4]);
        assert_eq!(top_k_accuracy(&s, &[], 1), 0.0);
    }
}
