//! Classification metrics — Top-k accuracy (the paper reports Top-1/Top-5)
//! and confusion matrices — plus the thread-safe *serving* metrics
//! primitives ([`Counter`], [`Gauge`], [`Histogram`]) and the named
//! [`Registry`] the `dhg-train` serve engine instruments its request path
//! with.
//!
//! The serving primitives are deliberately lock-free on the hot path:
//! every update is a relaxed atomic, so observing a latency or bumping a
//! counter costs nanoseconds and never serialises concurrent request
//! threads. Quantiles come from fixed bucket boundaries (set at
//! construction), so a histogram is a handful of atomics — no sample
//! buffers, no allocation after construction, safe to keep in a
//! long-running process forever.

use dhg_tensor::NdArray;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fraction of rows whose true label is among the `k` highest-scoring
/// classes. `scores` is `[N, K]`.
pub fn top_k_accuracy(scores: &NdArray, labels: &[usize], k: usize) -> f32 {
    assert_eq!(scores.ndim(), 2, "scores must be [N, K]");
    let (n, classes) = (scores.shape()[0], scores.shape()[1]);
    assert_eq!(n, labels.len(), "scores/labels length mismatch");
    assert!(k >= 1 && k <= classes, "k must be in 1..={classes}");
    if n == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for (row, &label) in scores.data().chunks_exact(classes).zip(labels) {
        let target = row[label];
        // rank = how many classes strictly beat the target (ties resolved
        // in the target's favour, matching argsort-stable evaluation)
        let beaten = row.iter().filter(|&&v| v > target).count();
        if beaten < k {
            hits += 1;
        }
    }
    hits as f32 / n as f32
}

/// Row-normalised confusion matrix `[K, K]`: entry `(i, j)` is the
/// fraction of true-class-`i` samples predicted as class `j`.
pub fn confusion_matrix(scores: &NdArray, labels: &[usize], n_classes: usize) -> NdArray {
    assert_eq!(scores.ndim(), 2, "scores must be [N, K]");
    let preds = scores.argmax_last();
    let mut counts = NdArray::zeros(&[n_classes, n_classes]);
    let mut row_totals = vec![0usize; n_classes];
    for (&pred, &label) in preds.iter().zip(labels) {
        assert!(label < n_classes && pred < n_classes, "class out of range");
        let cur = counts.at(&[label, pred]);
        counts.set(&[label, pred], cur + 1.0);
        row_totals[label] += 1;
    }
    for (i, &total) in row_totals.iter().enumerate() {
        if total > 0 {
            for j in 0..n_classes {
                let v = counts.at(&[i, j]);
                counts.set(&[i, j], v / total as f32);
            }
        }
    }
    counts
}

/// A monotonically increasing event count (requests served, batches run,
/// requests shed). Relaxed atomics: cheap from any thread.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that goes up and down (queue depth, in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `u64` observations (latency in
/// microseconds, batch sizes). Buckets are inclusive upper bounds fixed at
/// construction; one implicit overflow bucket catches everything larger.
/// Quantiles are resolved to the bucket boundary at or above the requested
/// rank — an upper bound on the true quantile, tight when buckets are
/// dense (the exponential layout doubles, so the bound is within 2×).
#[derive(Debug)]
pub struct Histogram {
    /// Strictly increasing inclusive upper bounds; the `counts` vector has
    /// one extra slot for observations above the last bound.
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Mean observed value (0 when empty).
    pub mean: f64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Median (bucket upper bound, clamped to the observed max); `None`
    /// when nothing was observed — an empty histogram has no quantiles,
    /// and reporting `0` would read as an observed value.
    pub p50: Option<u64>,
    /// 95th percentile (same resolution).
    pub p95: Option<u64>,
    /// 99th percentile (same resolution).
    pub p99: Option<u64>,
}

/// Render an optional quantile: the value, or `-` for "never observed".
fn fmt_q(q: Option<u64>) -> String {
    match q {
        Some(v) => v.to_string(),
        None => "-".to_string(),
    }
}

impl std::fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} p50={} p95={} p99={} max={}",
            self.count,
            self.mean,
            self.min,
            fmt_q(self.p50),
            fmt_q(self.p95),
            fmt_q(self.p99),
            self.max
        )
    }
}

impl Histogram {
    /// A histogram over explicit inclusive upper bounds. Bounds must be
    /// non-empty and strictly increasing.
    pub fn with_bounds(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must be strictly increasing");
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Exponential bucket layout: `start, start*2, start*4, …` for `n`
    /// buckets (saturating). The standard latency layout: `exponential(1,
    /// 27)` spans 1 µs to ~67 s in doublings.
    pub fn exponential(start: u64, n: usize) -> Self {
        assert!(start > 0 && n > 0, "exponential histogram needs start > 0 and n > 0");
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            if bounds.last() == Some(&b) {
                break; // saturated
            }
            bounds.push(b);
            b = b.saturating_mul(2);
        }
        Histogram::with_bounds(bounds)
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket upper bound clamped to
    /// the observed maximum. `None` when the histogram is empty: an
    /// unobserved distribution has no quantiles, and the old `0` return
    /// was indistinguishable from a genuine 0-valued observation.
    /// Observations in the implicit overflow bucket resolve to the
    /// observed maximum, never to the last finite boundary.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let max = self.max.load(Ordering::Relaxed);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            if cum >= rank {
                return Some(match self.bounds.get(i) {
                    Some(&b) => b.min(max),
                    None => max, // overflow bucket: clamp to observed max
                });
            }
        }
        Some(max)
    }

    /// Consistent point-in-time summary (reads are relaxed; under
    /// concurrent writes the fields may be off by in-flight observations,
    /// which is fine for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let sum = self.sum();
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum,
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Compose a labeled metric name in the conventional
/// `base{key="value",…}` form, so one [`Registry`] can hold per-tenant
/// (or per-model) series of the same base metric. Label values are
/// escaped for quotes/backslashes so the rendered name stays parseable;
/// keys are code-controlled identifiers and are emitted verbatim.
///
/// ```
/// use dhg_nn::metrics::labeled;
/// assert_eq!(
///     labeled("net-requests-total", &[("tenant", "acme")]),
///     "net-requests-total{tenant=\"acme\"}"
/// );
/// ```
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for c in value.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// One named metric in a [`Registry`].
#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of serving metrics. Handles are `Arc`s: register
/// once, then update lock-free from any thread. Registering the same name
/// twice returns the existing handle (or panics if the kinds disagree —
/// that is a naming bug, not a runtime condition).
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        match m.entry(name.to_string()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram `name`; `make` builds it on first
    /// registration (so different histograms can use different layouts).
    pub fn histogram(&self, name: &str, make: impl FnOnce() -> Histogram) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(make())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Human-readable dump, one `name value` line per metric, sorted by
    /// name (histograms render their snapshot summary).
    pub fn render_text(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Metric::Histogram(h) => out.push_str(&format!("{name} {}\n", h.snapshot())),
            }
        }
        out
    }

    /// JSON object dump (counters and gauges as numbers, histograms as
    /// objects with count/sum/mean/min/max/p50/p95/p99; empty-histogram
    /// quantiles are `null`, not 0). Names are JSON-escaped: [`labeled`]
    /// series embed quotes.
    pub fn to_json(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let fields: Vec<String> = m
            .iter()
            .map(|(raw_name, metric)| {
                let name = raw_name.replace('\\', "\\\\").replace('"', "\\\"");
                match metric {
                    Metric::Counter(c) => format!("\"{name}\":{}", c.get()),
                    Metric::Gauge(g) => format!("\"{name}\":{}", g.get()),
                    Metric::Histogram(h) => {
                        let s = h.snapshot();
                        let q = |v: Option<u64>| match v {
                            Some(v) => v.to_string(),
                            None => "null".to_string(),
                        };
                        format!(
                            "\"{name}\":{{\"count\":{},\"sum\":{},\"mean\":{:.3},\"min\":{},\
                             \"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                            s.count,
                            s.sum,
                            s.mean,
                            s.min,
                            s.max,
                            q(s.p50),
                            q(s.p95),
                            q(s.p99)
                        )
                    }
                }
            })
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scores() -> NdArray {
        // 3 samples, 4 classes
        NdArray::from_vec(
            vec![
                0.9, 0.05, 0.03, 0.02, // pred 0
                0.1, 0.2, 0.6, 0.1, // pred 2
                0.25, 0.30, 0.25, 0.20, // pred 1
            ],
            &[3, 4],
        )
    }

    #[test]
    fn top1_counts_exact_hits() {
        let s = scores();
        assert!((top_k_accuracy(&s, &[0, 2, 1], 1) - 1.0).abs() < 1e-6);
        assert!((top_k_accuracy(&s, &[0, 1, 1], 1) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn topk_grows_with_k() {
        let s = scores();
        let labels = [3usize, 3, 3];
        let t1 = top_k_accuracy(&s, &labels, 1);
        let t2 = top_k_accuracy(&s, &labels, 2);
        let t4 = top_k_accuracy(&s, &labels, 4);
        assert!(t1 <= t2 && t2 <= t4);
        assert!((t4 - 1.0).abs() < 1e-6, "top-K with K = classes is always 1");
    }

    #[test]
    fn ties_resolve_in_favour_of_target() {
        let s = NdArray::from_vec(vec![0.5, 0.5], &[1, 2]);
        assert!((top_k_accuracy(&s, &[1], 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn confusion_matrix_rows_sum_to_one() {
        let s = scores();
        let cm = confusion_matrix(&s, &[0, 2, 2], 4);
        // class 0 row: all mass on prediction 0
        assert!((cm.at(&[0, 0]) - 1.0).abs() < 1e-6);
        // class 2 row: one sample predicted 2, one predicted 1
        assert!((cm.at(&[2, 2]) - 0.5).abs() < 1e-6);
        assert!((cm.at(&[2, 1]) - 0.5).abs() < 1e-6);
        // unobserved class rows are zero
        assert_eq!(cm.at(&[3, 3]), 0.0);
    }

    #[test]
    fn empty_input_is_zero_accuracy() {
        let s = NdArray::zeros(&[0, 4]);
        assert_eq!(top_k_accuracy(&s, &[], 1), 0.0);
    }

    #[test]
    fn counter_and_gauge_update_across_threads() {
        let c = Arc::new(Counter::new());
        let g = Arc::new(Gauge::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let g = g.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        g.add(2);
                        g.add(-1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(g.get(), 4000);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn histogram_quantiles_bound_the_true_values() {
        let h = Histogram::exponential(1, 20);
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500500);
        let s = h.snapshot();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        // bucket-resolved quantiles are upper bounds within one doubling
        let (p50, p95, p99) = (s.p50.unwrap(), s.p95.unwrap(), s.p99.unwrap());
        assert!((500..=1000).contains(&p50), "p50 = {p50}");
        assert!((950..=1900).contains(&p95), "p95 = {p95}");
        assert!(p99 >= 990, "p99 = {p99}");
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_clamps_quantiles_to_observed_max() {
        let h = Histogram::exponential(1, 30);
        h.observe(3);
        h.observe(3);
        let s = h.snapshot();
        // both observations land in the (2, 4] bucket; the boundary 4
        // exceeds the observed max and must be clamped back to 3
        assert_eq!(s.p50, Some(3));
        assert_eq!(s.p99, Some(3));
    }

    #[test]
    fn histogram_overflow_bucket_reports_max() {
        let h = Histogram::with_bounds(vec![10, 20]);
        h.observe(5);
        h.observe(1_000_000);
        assert_eq!(h.quantile(1.0), Some(1_000_000));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        // regression: an empty histogram used to report p50=0 as if a
        // 0-valued latency had been observed
        let h = Histogram::exponential(1, 8);
        assert_eq!(h.quantile(0.5), None);
        let s = h.snapshot();
        assert_eq!((s.count, s.sum, s.min, s.max), (0, 0, 0, 0));
        assert_eq!((s.p50, s.p95, s.p99), (None, None, None));
        assert_eq!(format!("{s}"), "n=0 mean=0.0 min=0 p50=- p95=- p99=- max=0");
    }

    #[test]
    fn all_overflow_histogram_clamps_every_quantile_to_observed_max() {
        // regression: every observation past the last finite boundary must
        // resolve quantiles to the observed max, not the boundary 20
        let h = Histogram::with_bounds(vec![10, 20]);
        h.observe(500);
        h.observe(900);
        h.observe(700);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(900), "q={q}");
        }
        let s = h.snapshot();
        assert_eq!((s.p50, s.p95, s.p99), (Some(900), Some(900), Some(900)));
    }

    #[test]
    fn single_observation_pins_every_quantile() {
        let h = Histogram::exponential(1, 27);
        h.observe(123);
        let s = h.snapshot();
        assert_eq!((s.count, s.min, s.max), (1, 123, 123));
        assert_eq!((s.p50, s.p95, s.p99), (Some(123), Some(123), Some(123)));
        // the same holds for a single 0-valued observation — which the old
        // empty-histogram sentinel made unrepresentable
        let z = Histogram::exponential(1, 8);
        z.observe(0);
        assert_eq!(z.quantile(0.5), Some(0));
        assert_eq!(z.count(), 1);
    }

    #[test]
    fn labeled_names_compose_and_render() {
        assert_eq!(labeled("reqs", &[]), "reqs");
        assert_eq!(labeled("reqs", &[("tenant", "acme")]), "reqs{tenant=\"acme\"}");
        assert_eq!(
            labeled("reqs", &[("tenant", "a"), ("model", "DHGCN")]),
            "reqs{tenant=\"a\",model=\"DHGCN\"}"
        );
        // hostile label values stay parseable in text and JSON renders
        assert_eq!(labeled("reqs", &[("t", "a\"b")]), "reqs{t=\"a\\\"b\"}");
        let r = Registry::new();
        r.counter(&labeled("net-requests-total", &[("tenant", "acme")])).inc();
        let text = r.render_text();
        assert!(text.contains("net-requests-total{tenant=\"acme\"} 1"), "{text}");
        let json = r.to_json();
        assert!(
            json.contains("\"net-requests-total{tenant=\\\"acme\\\"}\":1"),
            "{json}"
        );
    }

    #[test]
    fn registry_returns_shared_handles_and_renders() {
        let r = Registry::new();
        let c1 = r.counter("requests-total");
        let c2 = r.counter("requests-total");
        c1.inc();
        c2.inc();
        assert_eq!(c1.get(), 2, "same name must alias the same counter");
        r.gauge("queue-depth").set(5);
        r.histogram("latency-us", || Histogram::exponential(1, 27)).observe(123);
        let text = r.render_text();
        assert!(text.contains("requests-total 2"), "{text}");
        assert!(text.contains("queue-depth 5"), "{text}");
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"requests-total\":2"), "{json}");
        assert!(json.contains("\"latency-us\":{\"count\":1"), "{json}");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_clashes() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }
}
