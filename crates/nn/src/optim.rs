//! Optimisation: SGD with momentum and the paper's step learning-rate
//! schedule (§4.2: SGD, momentum 0.9, lr 0.1 divided by 10 at fixed
//! epochs).

use dhg_tensor::{NdArray, Tensor};
use std::collections::HashMap;

/// Hyper-parameters of [`Sgd`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0.9 in the paper).
    pub momentum: f32,
    /// L2 weight decay added to gradients.
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        // §4.2: SGD with momentum 0.9; initial lr 0.1
        SgdConfig { lr: 0.1, momentum: 0.9, weight_decay: 1e-4 }
    }
}

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    params: Vec<Tensor>,
    config: SgdConfig,
    velocity: HashMap<u64, NdArray>,
}

impl Sgd {
    /// An optimiser over the given parameter tensors.
    pub fn new(params: Vec<Tensor>, config: SgdConfig) -> Self {
        Sgd { params, config, velocity: HashMap::new() }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.config.lr
    }

    /// Set the learning rate (driven by [`StepLr`]).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Apply one update from the accumulated gradients, then clear them.
    /// Parameters without gradients (unused branches) are skipped.
    pub fn step(&mut self) {
        for p in &self.params {
            let Some(mut grad) = p.grad() else { continue };
            if self.config.weight_decay > 0.0 {
                grad.add_assign_scaled(&p.data(), self.config.weight_decay);
            }
            let v = self
                .velocity
                .entry(p.id())
                .or_insert_with(|| NdArray::zeros(grad.shape()));
            // v ← μ v + g;  p ← p − lr · v
            *v = v.mul_scalar(self.config.momentum);
            v.add_assign_scaled(&grad, 1.0);
            p.data_mut().add_assign_scaled(v, -self.config.lr);
            p.zero_grad();
        }
    }

    /// Clear all gradients without updating.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Snapshot the momentum buffers in parameter order, materialising a
    /// zero buffer for parameters that have never been stepped. With the
    /// parameters themselves, this is the complete optimiser state:
    /// restoring it via [`Sgd::load_velocities`] resumes training
    /// bitwise-identically.
    pub fn velocities(&self) -> Vec<NdArray> {
        self.params
            .iter()
            .map(|p| {
                self.velocity
                    .get(&p.id())
                    .cloned()
                    .unwrap_or_else(|| NdArray::zeros(p.data().shape()))
            })
            .collect()
    }

    /// Restore momentum buffers snapshotted by [`Sgd::velocities`] (same
    /// parameter order, shape-for-shape).
    ///
    /// # Panics
    /// If the count or any shape disagrees with the managed parameters.
    pub fn load_velocities(&mut self, velocities: Vec<NdArray>) {
        assert_eq!(
            velocities.len(),
            self.params.len(),
            "velocity count does not match parameter count"
        );
        self.velocity.clear();
        for (p, v) in self.params.iter().zip(velocities) {
            assert_eq!(
                v.shape(),
                p.data().shape(),
                "velocity shape does not match its parameter"
            );
            self.velocity.insert(p.id(), v);
        }
    }

    /// Number of managed parameter tensors.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }
}

/// The paper's step schedule: divide the learning rate by 10 at each
/// milestone epoch (§4.2: epochs 30/40 for NTU, 45/55 for Kinetics).
#[derive(Clone, Debug, PartialEq)]
pub struct StepLr {
    initial: f32,
    milestones: Vec<usize>,
    factor: f32,
}

impl StepLr {
    /// A schedule starting at `initial` and multiplying by `factor` at
    /// each milestone (pass `0.1` for "divide by 10").
    pub fn new(initial: f32, milestones: Vec<usize>, factor: f32) -> Self {
        StepLr { initial, milestones, factor }
    }

    /// The learning rate in force during `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.initial * self.factor.powi(passed as i32)
    }
}

/// Cosine-annealing learning-rate schedule from `initial` down to
/// `floor` over `total_epochs` — a common alternative to the paper's step
/// schedule, used by the schedule-ablation bench.
#[derive(Clone, Debug, PartialEq)]
pub struct CosineLr {
    initial: f32,
    floor: f32,
    total_epochs: usize,
}

impl CosineLr {
    /// A schedule over `total_epochs`.
    pub fn new(initial: f32, floor: f32, total_epochs: usize) -> Self {
        assert!(total_epochs > 0, "schedule needs at least one epoch");
        assert!(floor <= initial, "floor above initial lr");
        CosineLr { initial, floor, total_epochs }
    }

    /// The learning rate in force during `epoch` (0-based; clamps past the
    /// end).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let t = (epoch.min(self.total_epochs - 1)) as f32 / (self.total_epochs - 1).max(1) as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.floor + (self.initial - self.floor) * cos
    }
}

/// Scale all gradients so their global L2 norm is at most `max_norm`
/// (no-op when already below). Returns the pre-clip norm.
pub fn clip_gradient_norm(params: &[Tensor], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut total = 0.0f32;
    for p in params {
        if let Some(g) = p.grad() {
            total += g.data().iter().map(|v| v * v).sum::<f32>();
        }
    }
    let norm = total.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for p in params {
            if let Some(mut g) = p.grad() {
                g.map_inplace(|v| v * scale);
                p.replace_grad(g);
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_descends_a_quadratic() {
        let x = Tensor::param(NdArray::from_vec(vec![5.0], &[1]));
        let mut opt = Sgd::new(
            vec![x.clone()],
            SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.0 },
        );
        for _ in 0..50 {
            let loss = x.square().sum_all();
            loss.backward();
            opt.step();
        }
        assert!(x.data().data()[0].abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| -> f32 {
            let x = Tensor::param(NdArray::from_vec(vec![5.0], &[1]));
            let mut opt = Sgd::new(
                vec![x.clone()],
                SgdConfig { lr: 0.01, momentum, weight_decay: 0.0 },
            );
            for _ in 0..40 {
                let loss = x.square().sum_all();
                loss.backward();
                opt.step();
            }
            let v = x.data().data()[0].abs();
            v
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster on a quadratic");
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient_signal() {
        let x = Tensor::param(NdArray::from_vec(vec![1.0], &[1]));
        let mut opt = Sgd::new(
            vec![x.clone()],
            SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.5 },
        );
        // zero data gradient: loss does not involve x's value meaningfully
        let loss = x.mul_scalar(0.0).sum_all();
        loss.backward();
        opt.step();
        assert!(x.data().data()[0] < 1.0, "decay should shrink the weight");
    }

    #[test]
    fn step_skips_parameters_without_grads() {
        let used = Tensor::param(NdArray::from_vec(vec![1.0], &[1]));
        let unused = Tensor::param(NdArray::from_vec(vec![2.0], &[1]));
        let mut opt = Sgd::new(
            vec![used.clone(), unused.clone()],
            SgdConfig { lr: 0.1, momentum: 0.0, weight_decay: 0.0 },
        );
        used.square().sum_all().backward();
        opt.step();
        assert_eq!(unused.data().data(), &[2.0]);
        assert!(used.grad().is_none(), "grads cleared after step");
    }

    #[test]
    fn velocity_roundtrip_resumes_bitwise() {
        let config = SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 0.0 };
        let step_once = |opt: &mut Sgd, x: &Tensor| {
            x.square().sum_all().backward();
            opt.step();
        };
        // reference: four uninterrupted steps
        let a = Tensor::param(NdArray::from_vec(vec![3.0, -2.0], &[2]));
        let mut opt_a = Sgd::new(vec![a.clone()], config);
        for _ in 0..4 {
            step_once(&mut opt_a, &a);
        }
        // resumed: two steps, snapshot, restore into a fresh optimiser
        let b = Tensor::param(NdArray::from_vec(vec![3.0, -2.0], &[2]));
        let mut opt_b = Sgd::new(vec![b.clone()], config);
        for _ in 0..2 {
            step_once(&mut opt_b, &b);
        }
        let snapshot = opt_b.velocities();
        assert_eq!(snapshot.len(), 1);
        let mut opt_b2 = Sgd::new(vec![b.clone()], config);
        opt_b2.load_velocities(snapshot);
        for _ in 0..2 {
            step_once(&mut opt_b2, &b);
        }
        assert_eq!(a.data().data(), b.data().data(), "resumed trajectory must be bitwise");
    }

    #[test]
    fn velocities_materialise_zeros_for_unstepped_parameters() {
        let x = Tensor::param(NdArray::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let opt = Sgd::new(vec![x], SgdConfig::default());
        let vs = opt.velocities();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0], NdArray::zeros(&[3]));
    }

    #[test]
    #[should_panic(expected = "velocity count")]
    fn load_velocities_rejects_count_mismatch() {
        let x = Tensor::param(NdArray::from_vec(vec![1.0], &[1]));
        let mut opt = Sgd::new(vec![x], SgdConfig::default());
        opt.load_velocities(vec![]);
    }

    #[test]
    fn cosine_lr_endpoints_and_monotonicity() {
        let s = CosineLr::new(0.1, 0.001, 20);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-6);
        assert!((s.lr_at(19) - 0.001).abs() < 1e-6);
        assert!((s.lr_at(100) - 0.001).abs() < 1e-6, "clamps past the end");
        for e in 1..20 {
            assert!(s.lr_at(e) <= s.lr_at(e - 1) + 1e-7, "monotone decreasing");
        }
    }

    #[test]
    fn gradient_clipping_rescales_to_max_norm() {
        let a = Tensor::param(NdArray::from_vec(vec![3.0], &[1]));
        let b = Tensor::param(NdArray::from_vec(vec![4.0], &[1]));
        // gradients (6, 8): global norm 10
        a.square().sum_all().backward();
        b.square().sum_all().backward();
        let params = [a.clone(), b.clone()];
        let before = clip_gradient_norm(&params, 5.0);
        assert!((before - 10.0).abs() < 1e-4);
        let ga = a.grad().unwrap().data()[0];
        let gb = b.grad().unwrap().data()[0];
        assert!(((ga * ga + gb * gb).sqrt() - 5.0).abs() < 1e-4);
        // direction preserved
        assert!((gb / ga - 8.0 / 6.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_clipping_is_noop_below_threshold() {
        let a = Tensor::param(NdArray::from_vec(vec![0.1], &[1]));
        a.square().sum_all().backward();
        let g_before = a.grad().unwrap();
        clip_gradient_norm(std::slice::from_ref(&a), 100.0);
        assert_eq!(a.grad().unwrap(), g_before);
    }

    #[test]
    fn step_lr_follows_paper_schedule() {
        // NTU: decay at 30 and 40, train to 50 (§4.2)
        let s = StepLr::new(0.1, vec![30, 40], 0.1);
        assert!((s.lr_at(0) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(29) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(30) - 0.01).abs() < 1e-7);
        assert!((s.lr_at(39) - 0.01).abs() < 1e-7);
        assert!((s.lr_at(40) - 0.001).abs() < 1e-8);
        assert!((s.lr_at(49) - 0.001).abs() < 1e-8);
    }
}
