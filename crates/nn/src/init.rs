//! Weight initialisation.

use dhg_tensor::NdArray;
use rand::Rng;

/// Kaiming (He) uniform initialisation for ReLU networks: values drawn
/// from `U(−b, b)` with `b = sqrt(6 / fan_in)`.
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> NdArray {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0f32 / fan_in as f32).sqrt();
    random_uniform(shape, -bound, bound, rng)
}

/// Xavier/Glorot uniform initialisation: `b = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> NdArray {
    assert!(fan_in + fan_out > 0, "fans must be positive");
    let bound = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
    random_uniform(shape, -bound, bound, rng)
}

/// Uniform samples in `[lo, hi)`.
pub fn random_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> NdArray {
    let n: usize = shape.iter().product();
    NdArray::from_vec((0..n).map(|_| rng.gen_range(lo..hi)).collect(), shape)
}

/// Conventional fan-in of a conv weight `[out, in, kh, kw]`.
pub fn conv_fan_in(shape: &[usize]) -> usize {
    assert_eq!(shape.len(), 4, "conv weights are [out, in, kh, kw]");
    shape[1] * shape[2] * shape[3]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(0);
        let w = kaiming_uniform(&[64, 64], 64, &mut rng);
        let bound = (6.0f32 / 64.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= bound));
        // and actually uses the range
        assert!(w.max_all() > bound * 0.5);
    }

    #[test]
    fn xavier_scales_with_both_fans() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(&[10, 1000], 10, 1000, &mut rng);
        let bound = (6.0f32 / 1010.0).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn conv_fan_in_is_in_times_kernel() {
        assert_eq!(conv_fan_in(&[32, 16, 3, 1]), 48);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = kaiming_uniform(&[4, 4], 4, &mut StdRng::seed_from_u64(7));
        let b = kaiming_uniform(&[4, 4], 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
