//! Eval-time Conv2d(+BatchNorm2d) weight folding.
//!
//! At inference a BatchNorm is a fixed per-channel affine map
//! `y_c = scale_c · x_c + shift_c` over its running statistics (see
//! [`BatchNorm2d::eval_affine`]). Since a convolution is linear, the affine
//! map folds exactly into the convolution that feeds it:
//!
//! ```text
//! BN(conv(x; W, b)) = conv(x; scale∘W, scale∘b + shift)
//! ```
//!
//! where `scale∘W` scales every output-channel slice of the kernel. An
//! [`EvalConv`] holds the folded weights in the `[Cout, Cin·kh·kw]` layout
//! the im2col matmul consumes, plus the folded bias, and runs entirely on
//! [`NdArray`] kernels with scratch space from a [`Workspace`] — no
//! autograd graph, no per-call weight reshapes, and a dedicated `1×1` fast
//! path that skips im2col altogether.
//!
//! Folding reorders floating-point arithmetic, so folded outputs match the
//! unfused eval path to within ~1e-6 relative error rather than bitwise;
//! the property tests in this module and the workspace-level inference
//! suite pin the 1e-5 contract.

use crate::batchnorm::BatchNorm2d;
use crate::conv::Conv2d;
use dhg_tensor::ops::Conv2dSpec;
use dhg_tensor::{parallel, NdArray, Workspace};

/// A convolution with eval-mode weights baked in: optional BatchNorm (or
/// any per-channel affine) folded into the kernel, weights pre-reshaped
/// for the im2col matmul, bias applied in the output pass.
pub struct EvalConv {
    /// Folded weights, `[Cout, Cin·kh·kw]`.
    w2d: NdArray,
    /// Folded bias, one per output channel.
    bias: Vec<f32>,
    spec: Conv2dSpec,
    in_channels: usize,
    out_channels: usize,
}

impl EvalConv {
    /// Bake `conv`'s current weights with no normalisation folded in.
    pub fn from_conv(conv: &Conv2d) -> Self {
        let c = conv.out_channels();
        Self::fold_affine(conv, &vec![1.0; c], &vec![0.0; c])
    }

    /// Bake `conv` followed by eval-mode `bn` into one kernel.
    pub fn from_conv_bn(conv: &Conv2d, bn: &BatchNorm2d) -> Self {
        assert_eq!(
            conv.out_channels(),
            bn.channels(),
            "Conv+BN fold: conv outputs {} channels but BN normalises {}",
            conv.out_channels(),
            bn.channels()
        );
        let (scale, shift) = bn.eval_affine();
        Self::fold_affine(conv, &scale, &shift)
    }

    /// Bake `conv` followed by an arbitrary per-output-channel affine map
    /// `y_c = scale_c · x_c + shift_c`. This is how a BatchNorm applied
    /// *after a sum of branches* folds: every branch's Θ takes the scale,
    /// and exactly one branch's Θ takes the shift.
    pub fn fold_affine(conv: &Conv2d, scale: &[f32], shift: &[f32]) -> Self {
        let spec = conv.spec();
        let (cin, cout) = (conv.in_channels(), conv.out_channels());
        assert_eq!(scale.len(), cout, "fold_affine scale length mismatch");
        assert_eq!(shift.len(), cout, "fold_affine shift length mismatch");
        let ckk = cin * spec.kernel.0 * spec.kernel.1;
        let w = conv.weight().data();
        let mut w2d = Vec::with_capacity(cout * ckk);
        for (o, &s) in scale.iter().enumerate() {
            for &v in &w.data()[o * ckk..(o + 1) * ckk] {
                w2d.push(v * s);
            }
        }
        let bias: Vec<f32> = match conv.bias() {
            Some(b) => {
                let b = b.data();
                (0..cout).map(|o| b.data()[o] * scale[o] + shift[o]).collect()
            }
            None => shift.to_vec(),
        };
        EvalConv {
            w2d: NdArray::from_vec(w2d, &[cout, ckk]),
            bias,
            spec,
            in_channels: cin,
            out_channels: cout,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Run the folded convolution on `[N, Cin, H, W]`, drawing scratch
    /// space from `ws`.
    pub fn forward(&self, x: &NdArray, ws: &mut Workspace) -> NdArray {
        self.forward_act(x, ws, false)
    }

    /// [`EvalConv::forward`] with a ReLU fused into the output pass.
    pub fn forward_relu(&self, x: &NdArray, ws: &mut Workspace) -> NdArray {
        self.forward_act(x, ws, true)
    }

    fn forward_act(&self, x: &NdArray, ws: &mut Workspace, relu: bool) -> NdArray {
        let shape = x.shape();
        assert_eq!(shape.len(), 4, "EvalConv expects [N, Cin, H, W]");
        assert_eq!(shape[1], self.in_channels, "EvalConv channel mismatch");
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let s = self.spec;
        if s.kernel == (1, 1) && s.stride == (1, 1) && s.padding == (0, 0) {
            return self.pointwise(x, ws, relu);
        }
        let (ho, wo) = s.out_size(h, w);
        let cols = x.im2col_ws(
            s.kernel.0, s.kernel.1, s.stride.0, s.stride.1, s.padding.0, s.padding.1,
            s.dilation.0, s.dilation.1, ws,
        );
        let out = self.w2d.matmul_ws(&cols, ws); // [N, Cout, L]
        ws.recycle(cols);
        let mut out = out.into_shape(&[n, self.out_channels, ho, wo]);
        out.bias_relu_inplace(&self.bias, relu);
        out
    }

    /// `1×1` stride-1 fast path: channel mixing without materialising
    /// im2col columns. Each output row starts at its channel's bias and
    /// accumulates the weighted input rows, so bias (and optionally ReLU)
    /// cost no extra pass.
    fn pointwise(&self, x: &NdArray, ws: &mut Workspace, relu: bool) -> NdArray {
        let shape = x.shape();
        let (n, cin) = (shape[0], shape[1]);
        let l = shape[2] * shape[3];
        let cout = self.out_channels;
        let mut out = ws.take(n * cout * l);
        let xd = x.data();
        let wd = self.w2d.data();
        let work = n * cout * cin * l;
        parallel::for_each_block(&mut out, l.max(1), work, |item, row| {
            let (b, co) = (item / cout, item % cout);
            row.fill(self.bias[co]);
            let wrow = &wd[co * cin..(co + 1) * cin];
            let xb = b * cin * l;
            for (ci, &a) in wrow.iter().enumerate() {
                if a != 0.0 {
                    let xrow = &xd[xb + ci * l..xb + (ci + 1) * l];
                    for (o, &xv) in row.iter_mut().zip(xrow) {
                        *o += a * xv;
                    }
                }
            }
            if relu {
                for o in row.iter_mut() {
                    *o = o.max(0.0);
                }
            }
        });
        NdArray::from_vec(out, &[n, cout, shape[2], shape[3]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::random_uniform;
    use crate::module::Module;
    use dhg_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn close(a: &NdArray, b: &NdArray, tol: f32) -> bool {
        a.shape() == b.shape()
            && a.data()
                .iter()
                .zip(b.data())
                .all(|(&x, &y)| (x - y).abs() <= tol * (1.0 + y.abs()))
    }

    /// Run some batches through a training-mode BN so its running stats
    /// move away from the (0, 1) init — folding must use the real stats.
    fn warmed_bn(channels: usize, rng: &mut StdRng) -> BatchNorm2d {
        let mut bn = BatchNorm2d::new(channels);
        for _ in 0..4 {
            let x = Tensor::constant(random_uniform(&[3, channels, 5, 4], -2.0, 3.0, rng));
            bn.forward(&x);
        }
        bn.set_training(false);
        bn
    }

    #[test]
    fn folded_conv_bn_matches_unfused_eval() {
        // property sweep over seeds and both conv shapes used by the models
        let mut ws = Workspace::new();
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let conv = if seed % 2 == 0 {
                Conv2d::pointwise(4, 6, &mut rng)
            } else {
                Conv2d::temporal(4, 6, 3, 1 + (seed % 3 == 1) as usize, 1, &mut rng)
            };
            let bn = warmed_bn(6, &mut rng);
            let folded = EvalConv::from_conv_bn(&conv, &bn);
            let x = random_uniform(&[2, 4, 8, 5], -1.0, 1.0, &mut rng);
            let reference = {
                let _g = dhg_tensor::no_grad();
                bn.forward(&conv.forward(&Tensor::constant(x.clone()))).array()
            };
            let got = folded.forward(&x, &mut ws);
            assert!(close(&got, &reference, 1e-5), "seed {seed}: fold diverged");
        }
    }

    #[test]
    fn plain_fold_matches_conv_exactly_on_im2col_path() {
        // without BN the temporal (k=3) path reuses the same im2col+matmul
        // kernels in the same order, so outputs are bitwise identical
        let mut rng = StdRng::seed_from_u64(7);
        let conv = Conv2d::temporal(3, 5, 3, 1, 1, &mut rng);
        let folded = EvalConv::from_conv(&conv);
        let x = random_uniform(&[2, 3, 6, 4], -1.0, 1.0, &mut rng);
        let reference = {
            let _g = dhg_tensor::no_grad();
            conv.forward(&Tensor::constant(x.clone())).array()
        };
        let mut ws = Workspace::new();
        let got = folded.forward(&x, &mut ws);
        assert_eq!(got, reference);
    }

    #[test]
    fn pointwise_fast_path_matches_im2col_within_tolerance() {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::pointwise(8, 3, &mut rng);
        let folded = EvalConv::from_conv(&conv);
        let x = random_uniform(&[2, 8, 7, 5], -1.0, 1.0, &mut rng);
        let reference = {
            let _g = dhg_tensor::no_grad();
            conv.forward(&Tensor::constant(x.clone())).array()
        };
        let mut ws = Workspace::new();
        let got = folded.forward(&x, &mut ws);
        assert!(close(&got, &reference, 1e-5));
    }

    #[test]
    fn fused_relu_equals_separate_relu() {
        let mut rng = StdRng::seed_from_u64(9);
        let conv = Conv2d::pointwise(4, 4, &mut rng);
        let folded = EvalConv::from_conv(&conv);
        let x = random_uniform(&[1, 4, 3, 3], -1.0, 1.0, &mut rng);
        let mut ws = Workspace::new();
        let mut plain = folded.forward(&x, &mut ws);
        plain.relu_inplace();
        let fused = folded.forward_relu(&x, &mut ws);
        assert_eq!(plain, fused);
    }

    #[test]
    fn fold_affine_applies_scale_and_shift() {
        // conv with identity weight: fold(scale, shift) must be the affine
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::pointwise(1, 1, &mut rng);
        conv.weight().data_mut().data_mut()[0] = 1.0;
        let folded = EvalConv::fold_affine(&conv, &[2.0], &[-1.0]);
        let x = NdArray::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let mut ws = Workspace::new();
        let y = folded.forward(&x, &mut ws);
        // bias starts at 0, so y = 2·x − 1
        assert_eq!(y.data(), &[1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "Conv+BN fold")]
    fn channel_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2d::pointwise(2, 3, &mut rng);
        let bn = BatchNorm2d::new(4);
        EvalConv::from_conv_bn(&conv, &bn);
    }
}
