//! Pooling.

use dhg_tensor::Tensor;

/// Global average pooling over the spatial-temporal axes:
/// `[N, C, T, V] → [N, C]` (the GAP layer before the classifier, §3.5).
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().len(), 4, "global_avg_pool expects [N, C, T, V]");
    x.mean_axes(&[2, 3], false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhg_tensor::NdArray;

    #[test]
    fn averages_over_time_and_joints() {
        let mut data = NdArray::zeros(&[1, 2, 2, 2]);
        // channel 0: 1, 2, 3, 4 → mean 2.5; channel 1: all 10 → mean 10
        data.data_mut()[..4].copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        data.data_mut()[4..].copy_from_slice(&[10.0; 4]);
        let y = global_avg_pool(&Tensor::constant(data)).array();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    fn gradient_spreads_uniformly() {
        let x = Tensor::param(NdArray::ones(&[1, 1, 4, 5]));
        global_avg_pool(&x).sum_all().backward();
        let g = x.grad().unwrap();
        assert!(g.allclose(&NdArray::full(&[1, 1, 4, 5], 1.0 / 20.0), 1e-6, 1e-7));
    }
}
