//! Property suite for the plan IR's static cost model: over random
//! shapes, the FLOP counts `Report::cost_summary()` reports for conv,
//! matmul-backed linear, and incidence (vertex-mix) ops must equal the
//! hand-computed arithmetic counts, totals must add across ops, and
//! batch scaling must be exactly linear.

use dhg_nn::{analyze, per_sample_elems, Conv2d, Linear, Module, OpCost, Plan, SymShape};
use dhg_tensor::ops::Conv2dSpec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Standard conv output extent: `(in + 2·pad − dil·(k−1) − 1) / stride + 1`.
fn conv_out(i: usize, k: usize, stride: usize, pad: usize, dil: usize) -> usize {
    (i + 2 * pad - dil * (k - 1) - 1) / stride + 1
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Conv2d plans carry exactly `2·cout·cin·kh·kw·ho·wo` FLOPs per
    /// sample, whatever the kernel/stride/dilation geometry.
    #[test]
    fn conv2d_flops_match_hand_count(
        seed in 0u64..1000,
        cin in 1usize..6,
        cout in 1usize..8,
        half_k in 0usize..3,
        stride in 1usize..3,
        dil in 1usize..3,
        t in 8usize..24,
        v in 5usize..26,
    ) {
        let k = 2 * half_k + 1; // temporal spec requires odd kernels
        prop_assume!(dil * (k - 1) < t); // kernel must fit the input
        let spec = Conv2dSpec::temporal(k, stride, dil);
        let conv = Conv2d::new(cin, cout, spec, &mut StdRng::seed_from_u64(seed));
        let input = SymShape::nctv(cin, t, v);
        let report = analyze(&conv.plan(&input));
        let pad = dil * (k - 1) / 2;
        let ho = conv_out(t, k, stride, pad, dil) as u64;
        let wo = v as u64;
        let want = 2 * cout as u64 * cin as u64 * k as u64 * ho * wo;
        prop_assert_eq!(report.cost_summary().flops, want);
        // batch scaling is exactly linear
        prop_assert_eq!(report.cost_summary().scaled(7).flops, 7 * want);
    }

    /// Linear plans cost `2·rows·in·out` FLOPs, with `rows` derived from
    /// the per-sample elements of the input shape.
    #[test]
    fn linear_flops_match_hand_count(
        seed in 0u64..1000,
        rows in 1usize..9,
        inf in 1usize..33,
        out in 1usize..17,
    ) {
        let lin = Linear::new(inf, out, &mut StdRng::seed_from_u64(seed));
        let input = SymShape::batched(&[rows, inf]);
        prop_assert_eq!(per_sample_elems(&input), (rows * inf) as u64);
        let report = analyze(&lin.plan(&input));
        let want = 2 * (rows * inf * out) as u64;
        prop_assert_eq!(report.cost_summary().flops, want);
    }

    /// A hand-built plan mixing incidence (vertex-mix) and matmul ops
    /// totals to the sum of its parts: `2ctv²` per vertex op, `2mkn` per
    /// matmul — and the per-op constructors agree with first principles.
    #[test]
    fn mixed_plan_totals_add(
        c in 1usize..8,
        t in 1usize..32,
        v in 2usize..26,
        m in 1usize..16,
        k in 1usize..16,
        n in 1usize..16,
    ) {
        let (c64, t64, v64) = (c as u64, t as u64, v as u64);
        let (m64, k64, n64) = (m as u64, k as u64, n as u64);
        prop_assert_eq!(OpCost::vertex_op(c64, t64, v64).flops, 2 * c64 * t64 * v64 * v64);
        prop_assert_eq!(OpCost::matmul(m64, k64, n64).flops, 2 * m64 * k64 * n64);

        let shape = SymShape::nctv(c, t, v);
        let mut p = Plan::new(&shape);
        p.push_op_costed("incidence", "", shape.clone(), OpCost::vertex_op(c64, t64, v64));
        p.push_op_costed("incidence2", "", shape.clone(), OpCost::vertex_op(c64, t64, v64));
        p.push_op_costed(
            "proj",
            "",
            SymShape::batched(&[m, n]),
            OpCost::matmul(m64, k64, n64),
        );
        let cost = analyze(&p).cost_summary();
        let want = 2 * (2 * c64 * t64 * v64 * v64) + 2 * m64 * k64 * n64;
        prop_assert_eq!(cost.flops, want);
        prop_assert_eq!(cost.n_ops, 3);
        let s = cost.scaled(3);
        prop_assert_eq!(s.flops, 3 * want);
        prop_assert_eq!(s.bytes, 3 * cost.bytes);
    }
}
