//! `dhg-lint`: a std-only source auditor for the properties the test
//! suite cannot see from the outside — determinism hazards, unsafe
//! hygiene, and panic discipline on the serving request path.
//!
//! The scanner is deliberately token-level (no external parser): it
//! strips comments and string literals with a small line-state machine,
//! tracks `#[cfg(test)]` spans by brace matching, and applies each rule
//! as a substring/boundary check over the stripped text. That keeps the
//! crate dependency-free and the rules cheap enough to run in tier-1.
//!
//! Rules:
//!
//! | code  | what it flags |
//! |-------|---------------|
//! | DL001 | `HashMap`/`HashSet` iteration in determinism-critical crates |
//! | DL002 | wall-clock / entropy calls (`Instant::now`, `thread_rng`, …) outside sanctioned sites |
//! | DL003 | unordered float reductions (`.sum::<f32>()`) in hot-path crates |
//! | DL004 | `unsafe` without a `SAFETY:` comment in the preceding lines |
//! | DL005 | `unwrap`/`expect`/`assert!`/`panic!` on the serve/streaming request path |
//! | DL006 | retry loops without a backoff/sleep call on the request path |
//!
//! Findings can be suppressed through an allowlist file (`lint.allow` at
//! the scan root): one entry per line, `CODE path-suffix content-fragment
//! # reason`. Entries that match nothing are reported so the allowlist
//! cannot silently rot.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lint rule identifiers. Stable — scripts and the allowlist key on the
/// `DLxxx` names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Code {
    /// Hash-order iteration in a determinism-critical crate.
    Dl001,
    /// Wall clock or entropy outside sanctioned sites.
    Dl002,
    /// Unordered float reduction in a hot-path crate.
    Dl003,
    /// `unsafe` without a nearby `SAFETY:` comment.
    Dl004,
    /// Panicking call on the serving request path.
    Dl005,
    /// Retry loop without a backoff call on the request path.
    Dl006,
}

impl Code {
    /// All rules, in order.
    pub const ALL: [Code; 6] =
        [Code::Dl001, Code::Dl002, Code::Dl003, Code::Dl004, Code::Dl005, Code::Dl006];

    /// The stable `DLxxx` name.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Dl001 => "DL001",
            Code::Dl002 => "DL002",
            Code::Dl003 => "DL003",
            Code::Dl004 => "DL004",
            Code::Dl005 => "DL005",
            Code::Dl006 => "DL006",
        }
    }

    /// Parse a `DLxxx` name (used by the allowlist loader).
    pub fn parse(s: &str) -> Option<Code> {
        Code::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// One-line rule description for reports.
    pub fn description(self) -> &'static str {
        match self {
            Code::Dl001 => "hash-order iteration in a determinism-critical crate",
            Code::Dl002 => "wall clock / entropy outside sanctioned sites",
            Code::Dl003 => "unordered float reduction in a hot-path crate",
            Code::Dl004 => "`unsafe` without a SAFETY: comment",
            Code::Dl005 => "panicking call on the serving request path",
            Code::Dl006 => "retry loop without a backoff call on the request path",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule violation at one source line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub code: Code,
    /// Path as scanned (repo-relative when walking a tree).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation with the offending token.
    pub message: String,
    /// The raw (unstripped) source line.
    pub raw: String,
    /// The raw line plus the next three lines, joined — allowlist
    /// fragments match against this so multi-line macro calls can be
    /// identified by their message string.
    pub context: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {} {}", self.path, self.line, self.code, self.message)
    }
}

// ---------------------------------------------------------------------------
// line-state stripper
// ---------------------------------------------------------------------------

/// Cross-line lexer state: inside a (possibly nested) block comment,
/// inside a normal string, or inside a raw string with `hashes` hashes.
#[derive(Default)]
struct StripState {
    block_depth: usize,
    in_string: bool,
    raw_hashes: Option<usize>,
}

/// Replace comments and string/char-literal contents with spaces so rule
/// patterns can never fire inside them. Length is not preserved; only
/// token adjacency matters to the rules.
fn strip_line(state: &mut StripState, line: &str) -> String {
    let b = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < b.len() {
        if let Some(h) = state.raw_hashes {
            // scan for `"###...` with exactly h hashes
            if b[i] == b'"' && b.len() - i > h && b[i + 1..i + 1 + h].iter().all(|&c| c == b'#') {
                state.raw_hashes = None;
                i += 1 + h;
                out.push(' ');
            } else {
                i += 1;
            }
            continue;
        }
        if state.block_depth > 0 {
            if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                state.block_depth += 1;
                i += 2;
            } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                state.block_depth -= 1;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if state.in_string {
            match b[i] {
                b'\\' => i += 2,
                b'"' => {
                    state.in_string = false;
                    out.push(' ');
                    i += 1;
                }
                _ => i += 1,
            }
            continue;
        }
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => break, // line comment
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                state.block_depth = 1;
                i += 2;
            }
            b'r' if i + 1 < b.len()
                && (b[i + 1] == b'"' || b[i + 1] == b'#')
                && !prev_is_ident(b, i) =>
            {
                // raw string r"..." / r#"..."#
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    state.raw_hashes = Some(hashes);
                    out.push(' ');
                    i = j + 1;
                } else {
                    out.push(b[i] as char);
                    i += 1;
                }
            }
            b'"' => {
                state.in_string = true;
                out.push(' ');
                i += 1;
            }
            b'\'' => {
                // char literal vs lifetime: 'x' / '\n' are literals,
                // 'a (no closing quote nearby) is a lifetime
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    out.push(' ');
                    i = j + 1;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out.push(' ');
                    i += 3;
                } else {
                    out.push('\''); // lifetime
                    i += 1;
                }
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

/// `needle` occurring in `hay` on identifier boundaries — so `assert!(`
/// does not match inside `debug_assert!(` and `unsafe` does not match
/// inside `unsafe_cell`. Boundary checks only apply on the sides of the
/// needle that are themselves identifier characters (so `.unwrap()` can
/// follow a receiver).
fn find_token(hay: &str, needle: &str) -> bool {
    let b = hay.as_bytes();
    let n = needle.as_bytes();
    let check_before = n.first().is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_');
    let check_after = n.last().is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_');
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let end = at + needle.len();
        let ok_before = !check_before || !prev_is_ident(b, at);
        let ok_after = !check_after
            || end >= b.len()
            || !(b[end].is_ascii_alphanumeric() || b[end] == b'_');
        if ok_before && ok_after {
            return true;
        }
        from = end;
    }
    false
}

// ---------------------------------------------------------------------------
// per-file scan
// ---------------------------------------------------------------------------

/// Per-line facts the rules consume.
struct FileView {
    raw: Vec<String>,
    stripped: Vec<String>,
    in_test: Vec<bool>,
}

fn view(source: &str) -> FileView {
    let raw: Vec<String> = source.lines().map(str::to_string).collect();
    let mut state = StripState::default();
    let stripped: Vec<String> = raw.iter().map(|l| strip_line(&mut state, l)).collect();

    // #[cfg(test)] span tracking: after the attribute, the next block
    // opened at depth N closes the test span when depth returns to N.
    let mut in_test = vec![false; raw.len()];
    let mut pending = false;
    let mut test_until_depth: Option<i64> = None;
    let mut depth: i64 = 0;
    for (i, line) in stripped.iter().enumerate() {
        if line.contains("#[cfg(test)]") {
            pending = true;
        }
        let before = depth;
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending && test_until_depth.is_none() {
                        test_until_depth = Some(before);
                        pending = false;
                    }
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if pending || test_until_depth.is_some() {
            in_test[i] = true;
        }
        if let Some(base) = test_until_depth {
            if depth <= base {
                test_until_depth = None;
            }
        }
    }
    FileView { raw, stripped, in_test }
}

/// Crates whose sorted/replayable behavior the test suite depends on.
const DETERMINISM_CRATES: [&str; 6] = [
    "crates/tensor/",
    "crates/nn/",
    "crates/core/",
    "crates/hypergraph/",
    "crates/skeleton/",
    "crates/train/",
];

/// Crates whose inner loops dominate benchmark numbers.
const HOT_PATH_CRATES: [&str; 2] = ["crates/tensor/", "crates/hypergraph/"];

/// Files forming the serving request path (DL005 scope): the in-process
/// engine and streaming session, plus the network layers a remote
/// request traverses (wire decoding, routing, the TCP frontend).
const REQUEST_PATH_FILES: [&str; 5] = [
    "crates/train/src/serve.rs",
    "crates/train/src/streaming.rs",
    "crates/train/src/proto.rs",
    "crates/train/src/router.rs",
    "crates/train/src/net.rs",
];

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    let p = path.replace('\\', "/");
    prefixes.iter().any(|pre| p.contains(pre))
}

/// Scan one file's source. `path` decides rule scoping and is echoed in
/// findings; it does not need to exist on disk (the self-test scans
/// fixture strings under synthetic paths).
pub fn scan_file(path: &str, source: &str) -> Vec<Finding> {
    let v = view(source);
    let mut findings = Vec::new();
    let norm = path.replace('\\', "/");

    // DL001 needs the set of bindings declared as HashMap/HashSet
    let hash_bindings = collect_hash_bindings(&v.stripped);

    for (i, line) in v.stripped.iter().enumerate() {
        if v.in_test[i] {
            continue;
        }
        let push = |findings: &mut Vec<Finding>, code: Code, message: String| {
            let end = (i + 4).min(v.raw.len());
            findings.push(Finding {
                code,
                path: norm.clone(),
                line: i + 1,
                message,
                raw: v.raw[i].clone(),
                context: v.raw[i..end].join("\n"),
            });
        };

        if in_scope(&norm, &DETERMINISM_CRATES) {
            if let Some(name) = hash_iteration(line, &hash_bindings) {
                push(
                    &mut findings,
                    Code::Dl001,
                    format!("iteration over hash-ordered `{name}`; use a BTreeMap/sorted keys"),
                );
            }
        }

        if !norm.contains("crates/bench/") && !norm.contains("/bin/") {
            for pat in ["Instant::now", "SystemTime::now", "thread_rng", "from_entropy"] {
                if find_token(line, pat) {
                    push(
                        &mut findings,
                        Code::Dl002,
                        format!("`{pat}` makes replay diverge; thread time/seed in from the caller"),
                    );
                }
            }
        }

        if in_scope(&norm, &HOT_PATH_CRATES)
            && (line.contains(".sum::<f32>()") || line.contains(".sum::<f64>()"))
        {
            push(
                &mut findings,
                Code::Dl003,
                "unordered float reduction; accumulate explicitly or document the ordering".into(),
            );
        }

        if find_token(line, "unsafe") {
            let lookback = i.saturating_sub(5);
            let documented = v.raw[lookback..=i]
                .iter()
                .any(|r| r.to_ascii_lowercase().contains("safety"));
            if !documented {
                push(
                    &mut findings,
                    Code::Dl004,
                    "`unsafe` without a `// SAFETY:` comment in the preceding 5 lines".into(),
                );
            }
        }

        if REQUEST_PATH_FILES.iter().any(|f| norm.ends_with(f)) {
            for pat in [
                ".unwrap()",
                ".expect(",
                "assert!(",
                "assert_eq!(",
                "assert_ne!(",
                "panic!(",
                "unreachable!(",
                "unimplemented!(",
            ] {
                if find_token(line, pat) {
                    push(
                        &mut findings,
                        Code::Dl005,
                        format!("`{pat}` on the serving request path; return a typed ServeError"),
                    );
                }
            }
        }
    }

    // DL006 is block-scoped: a loop that retries must back off somewhere
    // in its body, which no single line can prove.
    if REQUEST_PATH_FILES.iter().any(|f| norm.ends_with(f)) {
        for start in retry_loops_without_backoff(&v) {
            let end = (start + 4).min(v.raw.len());
            findings.push(Finding {
                code: Code::Dl006,
                path: norm.clone(),
                line: start + 1,
                message: "retry loop never backs off; busy-spinning a failing peer \
                          amplifies the outage"
                    .into(),
                raw: v.raw[start].clone(),
                context: v.raw[start..end].join("\n"),
            });
        }
    }
    findings
}

/// Identifier fragments that mark a loop as a *retry* loop.
const RETRY_MARKERS: [&str; 4] = ["retry", "retries", "reconnect", "resend"];
/// Calls that count as backing off between attempts.
const BACKOFF_MARKERS: [&str; 3] = ["backoff", "sleep", "wait_timeout"];

/// 0-based start lines of non-test loops whose body mentions a retry
/// marker but never a backoff call. Loop bodies are found by brace
/// matching over the stripped text, so string/comment contents cannot
/// fire or suppress the rule; a nested loop that backs off exempts its
/// enclosing loop (the schedule lives somewhere on every iteration
/// path we can see).
fn retry_loops_without_backoff(v: &FileView) -> Vec<usize> {
    let mut flagged = Vec::new();
    for (i, line) in v.stripped.iter().enumerate() {
        if v.in_test[i] {
            continue;
        }
        let is_loop = find_token(line, "loop") || find_token(line, "while") || {
            // `for` also introduces loops, but only as a statement head
            // (not `impl Trait for T {`)
            let t = line.trim_start();
            t.starts_with("for ") && !line.contains(" impl ") && !t.starts_with("impl")
        };
        if !is_loop || find_token(line, "impl") {
            continue;
        }
        // find the body: first `{` at or after the header, then every
        // character until its matching `}`
        let mut depth = 0usize;
        let mut opened = false;
        let mut body = String::new();
        'scan: for l in v.stripped.iter().skip(i) {
            for ch in l.chars() {
                match ch {
                    '{' => {
                        if opened {
                            body.push(ch);
                        }
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            break 'scan;
                        }
                        body.push(ch);
                    }
                    _ if opened => body.push(ch),
                    _ => {}
                }
            }
            if opened {
                body.push('\n');
            } else if l.contains(';') {
                break; // statement ended with no block: not a loop body
            }
        }
        let lower = body.to_ascii_lowercase();
        let retries = RETRY_MARKERS.iter().any(|m| lower.contains(m));
        let backs_off = BACKOFF_MARKERS.iter().any(|m| lower.contains(m));
        if retries && !backs_off {
            flagged.push(i);
        }
    }
    flagged
}

/// Names bound (let or field) to a HashMap/HashSet anywhere in the file.
fn collect_hash_bindings(stripped: &[String]) -> Vec<String> {
    let mut names = Vec::new();
    for line in stripped {
        for ty in ["HashMap", "HashSet"] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(ty) {
                let at = from + pos;
                from = at + ty.len();
                if prev_is_ident(line.as_bytes(), at) {
                    continue;
                }
                // `name: HashMap<..>` or `let name = HashMap::new()`
                let before = line[..at].trim_end();
                let anchor = if let Some(head) = before.strip_suffix(':') {
                    head
                } else if let Some(head) = before.strip_suffix('=') {
                    head
                } else {
                    continue;
                };
                let name: String = anchor
                    .trim_end()
                    .chars()
                    .rev()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect::<String>()
                    .chars()
                    .rev()
                    .collect();
                if !name.is_empty()
                    && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && !names.contains(&name)
                {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// Does `line` iterate one of the tracked hash-ordered bindings?
fn hash_iteration(line: &str, bindings: &[String]) -> Option<String> {
    for name in bindings {
        for suffix in [".iter()", ".iter_mut()", ".into_iter()", ".keys()", ".values()", ".drain("]
        {
            let pat = format!("{name}{suffix}");
            if find_token(line, &pat) {
                return Some(name.clone());
            }
        }
        // `for x in map` / `for x in &map` / `for x in &mut map`
        if let Some(pos) = line.find(" in ") {
            let tail = line[pos + 4..].trim_start_matches(['&', ' ']).trim_start_matches("mut ");
            let tail = tail.strip_prefix("self.").unwrap_or(tail);
            let ident: String =
                tail.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
            if ident == *name && line.trim_start().starts_with("for ") {
                let rest = &tail[ident.len()..];
                // `for k in map.keys()` already matched above; bare
                // iteration is `for x in map {` / `for x in map`
                if rest.trim_start().is_empty() || rest.trim_start().starts_with('{') {
                    return Some(name.clone());
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// allowlist
// ---------------------------------------------------------------------------

/// One `lint.allow` entry: `CODE path-suffix content-fragment # reason`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule this entry suppresses.
    pub code: Code,
    /// Path suffix the finding's file must end with.
    pub path_suffix: String,
    /// Substring of the raw offending line.
    pub fragment: String,
    /// Why this site is acceptable (everything after `#`).
    pub reason: String,
}

/// Parsed allowlist with per-entry usage tracking.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
    used: Vec<bool>,
}

impl Allowlist {
    /// Parse allowlist text. Malformed lines are returned as errors so a
    /// typo cannot silently allow nothing.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (spec, reason) = match line.split_once(" #") {
                Some((s, r)) => (s.trim(), r.trim().to_string()),
                None => (line, String::new()),
            };
            let mut parts = spec.splitn(3, char::is_whitespace);
            let code = parts
                .next()
                .and_then(Code::parse)
                .ok_or_else(|| format!("lint.allow:{}: bad rule code", ln + 1))?;
            let path_suffix = parts
                .next()
                .ok_or_else(|| format!("lint.allow:{}: missing path suffix", ln + 1))?
                .to_string();
            let fragment = parts.next().unwrap_or("").trim().to_string();
            entries.push(AllowEntry { code, path_suffix, fragment, reason });
        }
        let used = vec![false; entries.len()];
        Ok(Allowlist { entries, used })
    }

    /// Load from a file; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Result<Allowlist, String> {
        match fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Does an entry cover this finding? Marks the entry used.
    pub fn allows(&mut self, f: &Finding) -> bool {
        for (i, e) in self.entries.iter().enumerate() {
            if e.code == f.code
                && f.path.ends_with(&e.path_suffix)
                && (e.fragment.is_empty() || f.context.contains(&e.fragment))
            {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// Entries that matched no finding (stale suppressions).
    pub fn unused(&self) -> Vec<&AllowEntry> {
        self.entries.iter().zip(&self.used).filter(|(_, &u)| !u).map(|(e, _)| e).collect()
    }
}

// ---------------------------------------------------------------------------
// tree walk
// ---------------------------------------------------------------------------

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> =
        fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?.into_iter().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan every `crates/**/src/**/*.rs` under `root` (sorted walk, so the
/// report order is deterministic). Returns the findings and the number
/// of files scanned.
pub fn scan_tree(root: &Path) -> io::Result<(Vec<Finding>, usize)> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk(&src, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for file in &files {
        let rel = file.strip_prefix(root).unwrap_or(file).to_string_lossy().replace('\\', "/");
        let source = fs::read_to_string(file)?;
        findings.extend(scan_file(&rel, &source));
    }
    Ok((findings, files.len()))
}

/// Group findings per rule (for the summary footer).
pub fn counts_by_code(findings: &[Finding]) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    for f in findings {
        *m.entry(f.code.as_str()).or_insert(0) += 1;
    }
    m
}

// ---------------------------------------------------------------------------
// self-test: seeded negatives
// ---------------------------------------------------------------------------

/// Run the scanner against embedded fixtures with planted violations.
/// Every planted negative must be flagged with the expected code, and a
/// clean fixture must produce zero findings. Returns a description of
/// the first failure.
pub fn self_test() -> Result<(), String> {
    struct Case {
        name: &'static str,
        path: &'static str,
        source: &'static str,
        expect: &'static [(Code, usize)],
    }
    let cases = [
        Case {
            name: "hash iteration is flagged",
            path: "crates/core/src/fixture.rs",
            source: "use std::collections::HashMap;\nstruct S { scores: HashMap<u32, f32> }\nfn f(s: &S) {\n    let local = HashMap::new();\n    for (k, v) in s.scores.iter() { let _ = (k, v); }\n    for k in local.keys() { let _ = k; }\n}\n",
            expect: &[(Code::Dl001, 5), (Code::Dl001, 6)],
        },
        Case {
            name: "hash lookup alone is not iteration",
            path: "crates/core/src/fixture.rs",
            source: "use std::collections::HashMap;\nfn f(m: &HashMap<u32, f32>) -> Option<f32> {\n    m.get(&3).copied()\n}\n",
            expect: &[],
        },
        Case {
            name: "wall clock and entropy are flagged",
            path: "crates/train/src/fixture.rs",
            source: "use std::time::Instant;\nfn f() -> u64 {\n    let t = Instant::now();\n    let rng = thread_rng();\n    t.elapsed().as_micros() as u64\n}\n",
            expect: &[(Code::Dl002, 3), (Code::Dl002, 4)],
        },
        Case {
            name: "bench binaries may read the clock",
            path: "crates/bench/src/bin/fixture.rs",
            source: "fn f() { let _ = std::time::Instant::now(); }\n",
            expect: &[],
        },
        Case {
            name: "unordered float sum in a hot crate is flagged",
            path: "crates/hypergraph/src/fixture.rs",
            source: "fn f(xs: &[f32]) -> f32 {\n    xs.iter().copied().sum::<f32>()\n}\n",
            expect: &[(Code::Dl003, 2)],
        },
        Case {
            name: "undocumented unsafe is flagged, documented is not",
            path: "crates/tensor/src/fixture.rs",
            source: "fn f(p: *const f32) -> f32 {\n    unsafe { *p }\n}\nfn g(p: *const f32) -> f32 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n",
            expect: &[(Code::Dl004, 2)],
        },
        Case {
            name: "request-path panics are flagged",
            path: "crates/train/src/serve.rs",
            source: "fn f(v: Option<u32>) -> u32 {\n    assert!(v.is_some(), \"must be set\");\n    v.unwrap()\n}\n",
            expect: &[(Code::Dl005, 2), (Code::Dl005, 3)],
        },
        Case {
            name: "test code and comments are exempt",
            path: "crates/train/src/serve.rs",
            source: "// calling .unwrap() here would be bad\nfn f() -> &'static str {\n    \"assert!(no) Instant::now()\"\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(3).unwrap(); }\n}\n",
            expect: &[],
        },
        Case {
            name: "debug_assert does not shadow assert",
            path: "crates/train/src/streaming.rs",
            source: "fn f(x: usize) {\n    debug_assert!(x > 0);\n}\n",
            expect: &[],
        },
        Case {
            name: "retry loop without backoff is flagged",
            path: "crates/train/src/net.rs",
            source: "fn call(mut attempt: u32, max_retries: u32) -> bool {\n    loop {\n        if attempt >= max_retries { return false; }\n        attempt += 1;\n    }\n}\n",
            expect: &[(Code::Dl006, 2)],
        },
        Case {
            name: "retry loop with a backoff schedule is clean",
            path: "crates/train/src/net.rs",
            source: "fn call(mut attempt: u32, max_retries: u32) {\n    while attempt < max_retries {\n        std::thread::sleep(retry_backoff(attempt));\n        attempt += 1;\n    }\n}\n",
            expect: &[],
        },
        Case {
            name: "loops that never retry are not retry loops",
            path: "crates/train/src/net.rs",
            source: "fn pump(frames: &[u8]) {\n    for f in frames {\n        let _ = f;\n    }\n}\n",
            expect: &[],
        },
    ];
    for case in cases {
        let got = scan_file(case.path, case.source);
        let got_pairs: Vec<(Code, usize)> = got.iter().map(|f| (f.code, f.line)).collect();
        for want in case.expect {
            if !got_pairs.contains(want) {
                return Err(format!(
                    "self-test `{}`: expected {} at line {}, got {:?}",
                    case.name,
                    want.0,
                    want.1,
                    got_pairs
                ));
            }
        }
        for (code, line) in &got_pairs {
            if !case.expect.contains(&(*code, *line)) {
                return Err(format!(
                    "self-test `{}`: unexpected {} at line {}",
                    case.name, code, line
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_negatives_all_caught() {
        self_test().expect("self-test fixtures");
    }

    #[test]
    fn stripper_handles_raw_strings_and_nested_comments() {
        let mut st = StripState::default();
        let s = strip_line(&mut st, r##"let x = r#"unsafe Instant::now()"#; /* a /* b */"##);
        assert!(!s.contains("unsafe"));
        assert!(!s.contains("Instant"));
        // the nested comment is still open
        let s2 = strip_line(&mut st, "still comment */ after");
        assert!(!s2.contains("still"));
        assert!(s2.contains("after"));
    }

    #[test]
    fn allowlist_suppresses_and_tracks_usage() {
        let mut allow = Allowlist::parse(
            "DL003 crates/hypergraph/src/fixture.rs .sum::<f32>() # documented ordering\n\
             DL001 crates/core/src/stale.rs whatever # never matches\n",
        )
        .expect("parse");
        let fixture = "fn f(xs: &[f32]) -> f32 { xs.iter().copied().sum::<f32>() }\n";
        let findings = scan_file("crates/hypergraph/src/fixture.rs", fixture);
        assert_eq!(findings.len(), 1);
        let mut kept: Vec<&Finding> = Vec::new();
        for f in &findings {
            if !allow.allows(f) {
                kept.push(f);
            }
        }
        assert!(kept.is_empty(), "allowlisted finding must be suppressed");
        assert_eq!(allow.unused().len(), 1, "the stale entry must be reported");
    }

    #[test]
    fn malformed_allowlist_is_an_error() {
        assert!(Allowlist::parse("DL999 foo bar\n").is_err());
    }

    #[test]
    fn cfg_test_span_tracking_covers_nested_braces() {
        let source = "fn live() { Some(1).unwrap(); }\n\
                      #[cfg(test)]\n\
                      mod tests {\n\
                          fn helper() { if true { Some(1).unwrap(); } }\n\
                      }\n\
                      fn live_again() { Some(2).unwrap(); }\n";
        let findings = scan_file("crates/train/src/serve.rs", source);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 6], "test module must be exempt, code after it must not");
    }
}
