//! CLI for the [`dhg_lint`] source auditor.
//!
//! ```text
//! dhg-lint [--root PATH] [--allow FILE] [--self-test]
//! ```
//!
//! Scans `crates/**/src/**/*.rs` under the root (default: the current
//! directory, falling back upward to the workspace root if `crates/` is
//! not here), suppresses findings covered by the allowlist (default:
//! `<root>/lint.allow`), prints the survivors, and exits non-zero if any
//! remain. `--self-test` instead runs the embedded seeded negatives.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--allow" => allow_path = args.next().map(PathBuf::from),
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                println!("usage: dhg-lint [--root PATH] [--allow FILE] [--self-test]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dhg-lint: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    if self_test {
        return match dhg_lint::self_test() {
            Ok(()) => {
                println!("dhg-lint self-test: every seeded negative flagged with its code");
                ExitCode::SUCCESS
            }
            Err(why) => {
                eprintln!("dhg-lint self-test FAILED: {why}");
                ExitCode::FAILURE
            }
        };
    }

    let root = root.unwrap_or_else(|| {
        // run from anywhere inside the workspace: walk up to `crates/`
        let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        while !dir.join("crates").is_dir() {
            if !dir.pop() {
                return PathBuf::from(".");
            }
        }
        dir
    });
    let allow_path = allow_path.unwrap_or_else(|| root.join("lint.allow"));

    let mut allow = match dhg_lint::Allowlist::load(&allow_path) {
        Ok(a) => a,
        Err(why) => {
            eprintln!("dhg-lint: {why}");
            return ExitCode::FAILURE;
        }
    };
    let (findings, n_files) = match dhg_lint::scan_tree(&root) {
        Ok(r) => r,
        Err(why) => {
            eprintln!("dhg-lint: scan failed: {why}");
            return ExitCode::FAILURE;
        }
    };
    let mut kept = Vec::new();
    for f in findings {
        if !allow.allows(&f) {
            kept.push(f);
        }
    }

    for f in &kept {
        println!("{f}");
    }
    for e in allow.unused() {
        println!(
            "dhg-lint: warning: stale allowlist entry {} {} `{}` matches nothing",
            e.code, e.path_suffix, e.fragment
        );
    }
    let counts = dhg_lint::counts_by_code(&kept);
    let summary: Vec<String> =
        counts.iter().map(|(code, n)| format!("{code}: {n}")).collect();
    println!(
        "dhg-lint: {} file(s) scanned, {} finding(s){}",
        n_files,
        kept.len(),
        if summary.is_empty() { String::new() } else { format!(" [{}]", summary.join(", ")) }
    );
    if kept.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
