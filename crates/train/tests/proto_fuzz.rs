//! Exhaustive corruption fuzz over the wire protocol, mirroring the
//! checkpoint robustness suite: every strict prefix and every single
//! byte flip of encoded request/response bodies and framed wire bytes
//! must produce a **typed** error or a clean decode — never a panic,
//! never an unbounded allocation, and (at the frame layer) never a
//! silently corrupted payload: the CRC32 in the frame header turns
//! every body flip into [`ProtoError::BadChecksum`].

use dhg_train::proto::{
    decode_request, decode_response, encode_err, encode_ok, encode_request, frame_bytes,
    read_frame, OkPayload, ProtoError, Request, Status, FRAME_HEADER,
};

const MAX_FRAME: usize = 1 << 20;

/// Representative bodies covering every request kind.
fn request_bodies() -> Vec<Vec<u8>> {
    let reqs = [
        Request::Infer {
            tenant: "acme".into(),
            model: "ST-GCN".into(),
            input: (0..12).map(|i| i as f32 * 0.5).collect(),
        },
        Request::OpenStream { tenant: "acme".into(), model: "DHGCN-lite".into(), emit_every: 4 },
        Request::PushFrame {
            tenant: "globex".into(),
            stream: 99,
            frame: vec![1.0, -2.0, 3.5],
        },
        Request::CloseStream { tenant: "acme".into(), stream: 7 },
        Request::Health,
        Request::Swap { model: "ST-GCN".into(), checkpoint: b"fake checkpoint bytes".to_vec() },
        Request::SwapCanary {
            model: "DHGCN-lite".into(),
            fraction_bp: 2_500,
            checkpoint: b"candidate weights".to_vec(),
        },
    ];
    reqs.iter().enumerate().map(|(i, r)| encode_request(0x1000 + i as u64, r)).collect()
}

/// Representative bodies covering ok and error response shapes.
fn response_bodies() -> Vec<Vec<u8>> {
    vec![
        encode_ok(1, &OkPayload::Logits(vec![0.25, -1.5, 3.0, 0.0])),
        encode_ok(2, &OkPayload::Stream(41)),
        encode_ok(3, &OkPayload::Window(Some(vec![1.0, 2.0]))),
        encode_ok(4, &OkPayload::Window(None)),
        encode_ok(5, &OkPayload::Closed(true)),
        encode_ok(6, &OkPayload::Health("{\"models\":{}}".into())),
        encode_ok(7, &OkPayload::Version(2)),
        encode_ok(8, &OkPayload::CanaryVersion(3)),
        encode_err(9, Status::BadShape, "input shape [2] does not match", 1),
        encode_err(0, Status::Busy, "connection limit reached", 0),
    ]
}

#[test]
fn every_request_prefix_truncation_is_a_typed_error() {
    for body in request_bodies() {
        // sanity: the full body round-trips
        let (id, req) = decode_request(&body).expect("full body decodes");
        assert_eq!(encode_request(id, &req), body, "canonical re-encode");
        for cut in 0..body.len() {
            match decode_request(&body[..cut]) {
                Err(_) => {} // typed; which variant depends on the cut point
                Ok(_) => panic!("prefix of length {cut}/{} decoded", body.len()),
            }
        }
    }
}

#[test]
fn every_request_byte_flip_never_panics_and_decodes_canonically_or_errs() {
    for body in request_bodies() {
        for i in 0..body.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut flipped = body.clone();
                flipped[i] ^= mask;
                match decode_request(&flipped) {
                    Err(_) => {} // typed rejection
                    Ok((id, req)) => {
                        // a surviving decode must be exactly the flipped
                        // bytes' canonical meaning, never the original's
                        let re = encode_request(id, &req);
                        assert_eq!(re, flipped, "flip at {i} decoded non-canonically");
                        assert_ne!(re, body, "flip at {i} was silently ignored");
                    }
                }
            }
        }
    }
}

#[test]
fn every_response_prefix_and_flip_is_typed_or_clean() {
    for body in response_bodies() {
        decode_response(&body).expect("full body decodes");
        for cut in 0..body.len() {
            assert!(
                decode_response(&body[..cut]).is_err(),
                "response prefix of length {cut}/{} decoded",
                body.len()
            );
        }
        for i in 0..body.len() {
            let mut flipped = body.clone();
            flipped[i] ^= 0xFF;
            // typed error or a different-but-valid decode; the test
            // harness turns any panic into a failure
            let _ = decode_response(&flipped);
        }
    }
}

#[test]
fn every_frame_byte_flip_is_caught_before_the_decoder() {
    let body = encode_request(
        42,
        &Request::Infer {
            tenant: "acme".into(),
            model: "ST-GCN".into(),
            input: vec![0.5; 16],
        },
    );
    let wire = frame_bytes(&body, MAX_FRAME).expect("frame");
    // sanity: the untouched frame reads back
    let mut cursor = std::io::Cursor::new(wire.clone());
    assert_eq!(read_frame(&mut cursor, MAX_FRAME).expect("clean read"), body);

    for i in 0..wire.len() {
        let mut flipped = wire.clone();
        flipped[i] ^= 0x40;
        let mut cursor = std::io::Cursor::new(flipped);
        match read_frame(&mut cursor, MAX_FRAME) {
            Ok(_) => panic!("flip at byte {i} slipped past the frame CRC"),
            // flips in the length prefix surface as size/eof errors;
            // flips in the crc field or body must be BadChecksum
            Err(e) => {
                if i >= 4 {
                    assert!(
                        matches!(e, ProtoError::BadChecksum { .. }),
                        "flip at {i} gave {e:?}, want BadChecksum"
                    );
                }
            }
        }
    }
}

#[test]
fn every_frame_prefix_truncation_is_a_typed_error() {
    let body = encode_request(7, &Request::Health);
    let wire = frame_bytes(&body, MAX_FRAME).expect("frame");
    assert_eq!(wire.len(), FRAME_HEADER + body.len());
    for cut in 0..wire.len() {
        let mut cursor = std::io::Cursor::new(wire[..cut].to_vec());
        assert!(
            read_frame(&mut cursor, MAX_FRAME).is_err(),
            "wire prefix of length {cut}/{} read back as a frame",
            wire.len()
        );
    }
}
