//! The static cost model must be a safe envelope for the runtime: for
//! every zoo model, the plan IR's predicted peak workspace bytes must be
//! at least the `Workspace` high-water mark one real batch-1
//! `forward_inference` pass actually reaches — otherwise the
//! `analyze --budget` gate could admit a model that blows the serving
//! cap. Streaming window paths are held to the same bound.

use dhg_core::StreamableModel;
use dhg_nn::{analyze, Module, SymShape};
use dhg_skeleton::SkeletonTopology;
use dhg_tensor::{NdArray, Tensor, Workspace};
use dhg_train::zoo::Zoo;

const MODELS: [&str; 9] = [
    "ST-GCN",
    "2s-AGCN",
    "2s-AHGCN",
    "Shift-GCN",
    "TCN",
    "ST-LSTM",
    "Lie Group",
    "DHGCN",
    "DHGCN-lite",
];

fn batch1(t: usize, v: usize) -> Tensor {
    Tensor::constant(NdArray::from_vec(
        (0..3 * t * v).map(|i| (i as f32 * 0.017).sin()).collect(),
        &[1, 3, t, v],
    ))
}

/// `predicted >= measured` for one prepared model on one input; returns
/// the pair for the assertion message.
fn peaks(m: &dyn Module, x: &Tensor, shape: &SymShape) -> (u64, u64) {
    let predicted = analyze(&m.plan(shape)).cost_summary().workspace_peak;
    let mut ws = Workspace::new();
    let _ = m.forward_inference(x, &mut ws);
    (predicted, ws.high_water_bytes() as u64)
}

#[test]
fn predicted_peak_bounds_measured_high_water_across_the_zoo() {
    for (topology, t) in [(SkeletonTopology::ntu25(), 16), (SkeletonTopology::openpose18(), 12)] {
        let v = topology.n_joints();
        let zoo = Zoo::tiny(topology, 4, 0);
        let x = batch1(t, v);
        let shape = SymShape::nctv(3, t, v);
        for name in MODELS {
            let mut m = zoo.by_name(name).expect("zoo model");
            m.forward(&x);
            m.prepare_inference();
            let (predicted, measured) = peaks(&m, &x, &shape);
            assert!(
                predicted >= measured,
                "{name} on {v} joints: predicted peak {predicted} B < measured high water \
                 {measured} B — the static cost model under-predicts"
            );
            // the envelope must also stay meaningful: an over-prediction
            // beyond 64x would make the budget gate useless
            if measured > 0 {
                assert!(
                    predicted <= measured.saturating_mul(64),
                    "{name}: predicted peak {predicted} B is more than 64x the measured \
                     {measured} B — the envelope is too loose to gate on"
                );
            }
        }
    }
}

#[test]
fn predicted_peak_bounds_measured_high_water_on_window_paths() {
    let topology = SkeletonTopology::ntu25();
    let v = topology.n_joints();
    let t = 16;
    let zoo = Zoo::tiny(topology, 4, 0);
    let x = batch1(t, v);
    let shape = SymShape::nctv(3, t, v);

    let check = |name: &str, mut m: Box<dyn StreamableModel>| {
        m.forward(&x);
        m.prepare_inference();
        let ops_shape = SymShape::batched(&[t, v, v]);
        let injected = m.consumes_window_ops().then_some(&ops_shape);
        let predicted = analyze(&m.plan_window(&shape, injected)).cost_summary().workspace_peak;
        let ops = m
            .consumes_window_ops()
            .then(|| NdArray::from_vec(vec![1.0 / v as f32; t * v * v], &[1, t, v, v]));
        let mut ws = Workspace::new();
        let _ = m.forward_window(&x, ops.as_ref(), &mut ws);
        let measured = ws.high_water_bytes() as u64;
        assert!(
            predicted >= measured,
            "{name} window path: predicted peak {predicted} B < measured {measured} B"
        );
    };
    check("ST-GCN", Box::new(zoo.stgcn()));
    check("DHGCN", Box::new(zoo.dhgcn()));
    check("DHGCN-lite", Box::new(zoo.dhgcn_lite()));
}
