//! TCP serving frontend: a std-only threaded listener speaking the
//! [`crate::proto`] length-prefixed protocol over keep-alive
//! connections, routing every request through a shared [`Router`].
//!
//! ## Connection model
//!
//! One OS thread per connection (bounded by
//! [`NetConfig::max_connections`]; excess connections receive one
//! [`Status::Busy`] frame and are closed). A connection is a keep-alive
//! request/response loop: frames are answered in arrival order, and the
//! peer may hold the socket open idle indefinitely — idleness is
//! distinguished from a stalled peer by socket read timeouts, not
//! wall-clock reads, so this file stays clock-free. Once the first byte
//! of a frame arrives the remainder is subject to
//! [`NetConfig::read_timeout`] per read; a peer that stalls mid-frame is
//! disconnected. Replies are subject to [`NetConfig::write_timeout`].
//!
//! Malformed bodies are answered with a typed
//! [`Status::BadRequest`] frame (echoing the request id when at least
//! its 8 bytes arrived) rather than dropping the connection; framing
//! violations — an oversized length prefix, a mid-frame disconnect —
//! close it.
//!
//! [`NetClient`] is the matching blocking client: one request in flight
//! per connection, correlation-id checked.

use crate::proto::{
    decode_request, decode_response, encode_err, encode_ok, encode_request, peek_req_id,
    read_frame, write_frame, OkPayload, ProtoError, Request, Response, Status,
    DEFAULT_MAX_FRAME,
};
use crate::router::{RouteError, Router, SwapError};
use crate::serve::ServeError;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Listener configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`NetServer::addr`]).
    pub addr: String,
    /// Concurrent connection cap; excess connections get one
    /// [`Status::Busy`] frame and are closed.
    pub max_connections: usize,
    /// Per-read deadline once a frame has started arriving.
    pub read_timeout: Duration,
    /// Per-write deadline for replies.
    pub write_timeout: Duration,
    /// Frame size cap, both directions.
    pub max_frame: usize,
    /// Poll cadence while a connection sits idle between frames (bounds
    /// both shutdown latency and the stop-flag check interval).
    pub idle_tick: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            max_frame: DEFAULT_MAX_FRAME,
            idle_tick: Duration::from_millis(50),
        }
    }
}

/// Typed client/server transport failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::ErrorKind),
    /// Wire-format violation.
    Proto(ProtoError),
    /// The server answered with a non-`Ok` status.
    Remote {
        /// Typed failure class from the wire.
        status: Status,
        /// Human-readable detail.
        message: String,
    },
    /// The reply's correlation id did not match the request's.
    ReqIdMismatch {
        /// Id this client sent.
        sent: u64,
        /// Id the server echoed.
        got: u64,
    },
    /// The reply decoded cleanly but carried the wrong payload variant.
    UnexpectedPayload,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(kind) => write!(f, "socket error: {kind}"),
            NetError::Proto(e) => write!(f, "protocol error: {e}"),
            NetError::Remote { status, message } => {
                write!(f, "server refused ({status:?}): {message}")
            }
            NetError::ReqIdMismatch { sent, got } => {
                write!(f, "correlation id mismatch: sent {sent}, got {got}")
            }
            NetError::UnexpectedPayload => write!(f, "reply payload variant mismatch"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(kind) => NetError::Io(kind),
            other => NetError::Proto(other),
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.kind())
    }
}

fn is_timeout(kind: std::io::ErrorKind) -> bool {
    matches!(kind, std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

// ------------------------------------------------------------------ server

/// The running TCP frontend. Shutting down (or dropping) stops the
/// accept loop and signals connection threads, which exit at their next
/// idle tick.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<AtomicUsize>,
    idle_tick: Duration,
    accept_thread: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Bind and start serving `router` on [`NetConfig::addr`].
    pub fn start(router: Arc<Router>, config: NetConfig) -> Result<NetServer, NetError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(AtomicUsize::new(0));
        let idle_tick = config.idle_tick;
        let accept_thread = {
            let stop = stop.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("dhg-net-accept".into())
                .spawn(move || accept_loop(&listener, &router, &config, &stop, &conns))
                .map_err(|e| NetError::Io(e.kind()))?
        };
        Ok(NetServer { addr, stop, conns, idle_tick, accept_thread: Some(accept_thread) })
    }

    /// The bound address (resolves port 0 binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connection count.
    pub fn connections(&self) -> usize {
        self.conns.load(Ordering::SeqCst)
    }

    /// Stop accepting, signal connection threads, and wait (bounded) for
    /// them to drain. Idempotent; dropping the server does the same.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        let Some(handle) = self.accept_thread.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // the accept loop blocks in accept(); a self-connection wakes it
        // so it can observe the stop flag
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
        // connection threads notice the flag at their next idle tick;
        // wait a bounded number of ticks, then let stragglers (a peer
        // stalled mid-frame) finish on their socket deadlines
        for _ in 0..64 {
            if self.conns.load(Ordering::SeqCst) == 0 {
                break;
            }
            std::thread::sleep(self.idle_tick);
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.close();
    }
}

fn accept_loop(
    listener: &TcpListener,
    router: &Arc<Router>,
    config: &NetConfig,
    stop: &Arc<AtomicBool>,
    conns: &Arc<AtomicUsize>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if conns.load(Ordering::SeqCst) >= config.max_connections {
            // best-effort typed refusal; the peer may already be gone
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(config.write_timeout));
            let body = encode_err(0, Status::Busy, "connection limit reached", 0);
            let _ = write_frame(&mut stream, &body, config.max_frame);
            continue;
        }
        conns.fetch_add(1, Ordering::SeqCst);
        let router = router.clone();
        let conn_config = config.clone();
        let conn_stop = stop.clone();
        let conn_conns = conns.clone();
        let spawned = std::thread::Builder::new().name("dhg-net-conn".into()).spawn(move || {
            serve_connection(stream, &router, &conn_config, &conn_stop);
            conn_conns.fetch_sub(1, Ordering::SeqCst);
        });
        if spawned.is_err() {
            conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// What one read attempt at the top of the keep-alive loop produced.
enum FrameRead {
    /// A complete frame body.
    Frame(Vec<u8>),
    /// Nothing arrived within one idle tick.
    Idle,
    /// The peer closed cleanly between frames.
    Eof,
}

/// Read one frame, tolerating idleness *between* frames but applying
/// `read_timeout` per read once a frame has started.
fn read_frame_keepalive(
    stream: &mut TcpStream,
    config: &NetConfig,
) -> Result<FrameRead, NetError> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut header[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(FrameRead::Eof);
                }
                return Err(NetError::Io(std::io::ErrorKind::UnexpectedEof));
            }
            Ok(n) => {
                if got == 0 {
                    // the frame has started: stalls are now fatal
                    stream.set_read_timeout(Some(config.read_timeout))?;
                }
                got += n;
            }
            Err(e) if is_timeout(e.kind()) && got == 0 => return Ok(FrameRead::Idle),
            Err(e) => return Err(NetError::Io(e.kind())),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > config.max_frame {
        return Err(NetError::Proto(ProtoError::Oversize { declared: len, max: config.max_frame }));
    }
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(NetError::Io(std::io::ErrorKind::UnexpectedEof)),
            Ok(n) => filled += n,
            Err(e) => return Err(NetError::Io(e.kind())),
        }
    }
    Ok(FrameRead::Frame(body))
}

fn serve_connection(
    mut stream: TcpStream,
    router: &Arc<Router>,
    config: &NetConfig,
    stop: &Arc<AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_write_timeout(Some(config.write_timeout)).is_err() {
        return;
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        if stream.set_read_timeout(Some(config.idle_tick)).is_err() {
            return;
        }
        let body = match read_frame_keepalive(&mut stream, config) {
            Ok(FrameRead::Frame(body)) => body,
            Ok(FrameRead::Idle) => continue,
            Ok(FrameRead::Eof) | Err(_) => return,
        };
        let reply = handle_request(router, &body);
        if write_frame(&mut stream, &reply, config.max_frame).is_err() {
            return;
        }
    }
}

/// Map a routing failure onto its wire status.
fn route_status(e: &RouteError) -> Status {
    match e {
        RouteError::UnknownModel(_) => Status::UnknownModel,
        RouteError::QuotaExceeded { .. } => Status::QuotaExceeded,
        RouteError::Serve(s) => match s {
            ServeError::Rejected { .. } => Status::Rejected,
            ServeError::BadShape { .. } => Status::BadShape,
            ServeError::DeadlineExceeded => Status::DeadlineExceeded,
            ServeError::BadOutput => Status::BadOutput,
            ServeError::BadFrame { .. } => Status::BadFrame,
            ServeError::UnknownStream => Status::UnknownStream,
            ServeError::NotStreamable(_) => Status::NotStreamable,
            ServeError::Closed => Status::Closed,
            ServeError::Startup(_) => Status::Startup,
        },
    }
}

fn swap_status(e: &SwapError) -> Status {
    match e {
        SwapError::UnknownModel(_) => Status::UnknownModel,
        SwapError::Checkpoint(_) => Status::SwapCheckpoint,
        SwapError::Vetoed(_) => Status::SwapVetoed,
        SwapError::Startup(_) => Status::Startup,
    }
}

/// Decode, dispatch and encode one request. Never panics; every failure
/// is a typed response frame.
fn handle_request(router: &Arc<Router>, body: &[u8]) -> Vec<u8> {
    let (req_id, req) = match decode_request(body) {
        Ok(decoded) => decoded,
        Err(e) => {
            let req_id = peek_req_id(body).unwrap_or(0);
            return encode_err(req_id, Status::BadRequest, &e.to_string(), 0);
        }
    };
    let kind = req.kind();
    match req {
        Request::Infer { tenant, model, input } => {
            match router.infer(&tenant, &model, &input) {
                Ok(logits) => encode_ok(req_id, &OkPayload::Logits(logits.data().to_vec())),
                Err(e) => encode_err(req_id, route_status(&e), &e.to_string(), kind),
            }
        }
        Request::OpenStream { tenant, model, emit_every } => {
            match router.open_stream(&tenant, &model, emit_every as usize) {
                Ok(stream) => encode_ok(req_id, &OkPayload::Stream(stream)),
                Err(e) => encode_err(req_id, route_status(&e), &e.to_string(), kind),
            }
        }
        Request::PushFrame { tenant, stream, frame } => {
            match router.push_frame(&tenant, stream, &frame) {
                Ok(window) => encode_ok(
                    req_id,
                    &OkPayload::Window(window.map(|l| l.data().to_vec())),
                ),
                Err(e) => encode_err(req_id, route_status(&e), &e.to_string(), kind),
            }
        }
        Request::CloseStream { tenant, stream } => {
            match router.close_stream(&tenant, stream) {
                Ok(existed) => encode_ok(req_id, &OkPayload::Closed(existed)),
                Err(e) => encode_err(req_id, route_status(&e), &e.to_string(), kind),
            }
        }
        Request::Health => encode_ok(req_id, &OkPayload::Health(router.health_json())),
        Request::Swap { model, checkpoint } => match router.swap(&model, &checkpoint) {
            Ok(version) => encode_ok(req_id, &OkPayload::Version(version)),
            Err(e) => encode_err(req_id, swap_status(&e), &e.to_string(), kind),
        },
    }
}

// ------------------------------------------------------------------ client

/// Blocking request/response client over one keep-alive connection.
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
    max_frame: usize,
}

impl NetClient {
    /// Connect with 30 s read / 10 s write socket deadlines and the
    /// default frame cap.
    pub fn connect(addr: SocketAddr) -> Result<NetClient, NetError> {
        Self::connect_with(addr, Duration::from_secs(30), DEFAULT_MAX_FRAME)
    }

    /// Connect with an explicit reply deadline and frame cap.
    pub fn connect_with(
        addr: SocketAddr,
        reply_timeout: Duration,
        max_frame: usize,
    ) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(reply_timeout))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(NetClient { stream, next_id: 1, max_frame })
    }

    fn call(&mut self, req: &Request) -> Result<OkPayload, NetError> {
        let sent = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.stream, &encode_request(sent, req), self.max_frame)?;
        let body = read_frame(&mut self.stream, self.max_frame)?;
        match decode_response(&body)? {
            Response::Ok { req_id, payload } => {
                if req_id != sent {
                    return Err(NetError::ReqIdMismatch { sent, got: req_id });
                }
                Ok(payload)
            }
            Response::Err { req_id, status, message } => {
                // id 0 marks failures where the server could not recover
                // the request id (or a pre-request Busy refusal)
                if req_id != sent && req_id != 0 {
                    return Err(NetError::ReqIdMismatch { sent, got: req_id });
                }
                Err(NetError::Remote { status, message })
            }
        }
    }

    /// Batch inference of one flat row-major sample.
    pub fn infer(
        &mut self,
        tenant: &str,
        model: &str,
        input: &[f32],
    ) -> Result<Vec<f32>, NetError> {
        match self.call(&Request::Infer {
            tenant: tenant.to_string(),
            model: model.to_string(),
            input: input.to_vec(),
        })? {
            OkPayload::Logits(logits) => Ok(logits),
            _ => Err(NetError::UnexpectedPayload),
        }
    }

    /// Open a sliding-window stream; returns the server stream id.
    pub fn open_stream(
        &mut self,
        tenant: &str,
        model: &str,
        emit_every: u32,
    ) -> Result<u64, NetError> {
        match self.call(&Request::OpenStream {
            tenant: tenant.to_string(),
            model: model.to_string(),
            emit_every,
        })? {
            OkPayload::Stream(id) => Ok(id),
            _ => Err(NetError::UnexpectedPayload),
        }
    }

    /// Push one flat `[C*V]` frame; `Some(logits)` when it completed a
    /// window.
    pub fn push_frame(
        &mut self,
        tenant: &str,
        stream: u64,
        frame: &[f32],
    ) -> Result<Option<Vec<f32>>, NetError> {
        match self.call(&Request::PushFrame {
            tenant: tenant.to_string(),
            stream,
            frame: frame.to_vec(),
        })? {
            OkPayload::Window(window) => Ok(window),
            _ => Err(NetError::UnexpectedPayload),
        }
    }

    /// Close a stream; `true` if it was open.
    pub fn close_stream(&mut self, tenant: &str, stream: u64) -> Result<bool, NetError> {
        match self.call(&Request::CloseStream { tenant: tenant.to_string(), stream })? {
            OkPayload::Closed(existed) => Ok(existed),
            _ => Err(NetError::UnexpectedPayload),
        }
    }

    /// Router-wide health snapshot (JSON).
    pub fn health(&mut self) -> Result<String, NetError> {
        match self.call(&Request::Health)? {
            OkPayload::Health(json) => Ok(json),
            _ => Err(NetError::UnexpectedPayload),
        }
    }

    /// Hot-swap `model` to `checkpoint`; returns the new version.
    pub fn swap(&mut self, model: &str, checkpoint: &[u8]) -> Result<u64, NetError> {
        match self.call(&Request::Swap {
            model: model.to_string(),
            checkpoint: checkpoint.to_vec(),
        })? {
            OkPayload::Version(version) => Ok(version),
            _ => Err(NetError::UnexpectedPayload),
        }
    }
}
